module sconrep

go 1.22
