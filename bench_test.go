package sconrep

// One testing.B benchmark per table and figure of the paper's
// evaluation (§V). Each runs the corresponding experiment at the Quick
// profile — a smoke-sized sweep whose relative numbers already show
// the paper's shapes — and reports throughput / latency via
// b.ReportMetric. The full sweeps live in cmd/sconrep-bench.
//
// Metric names:
//
//	tps          committed transactions per second
//	resp_ms      mean response time, rescaled to paper milliseconds
//	sync_ms      mean synchronization delay (start delay for the lazy
//	             modes, global commit delay for eager)
//
// Shapes to look for (EXPERIMENTS.md records full-run numbers):
//
//	Fig3: ESC tps well below CSC/FSC/SC once updates dominate.
//	Fig4: ESC's global stage dwarfs the lazy modes' version stage.
//	Fig5: lazy modes scale with replicas; ESC flattens on ordering.
//	Fig6: ESC sync delay grows with replicas; CSC/FSC stay small.
//	Fig7: lazy response time falls with replicas; ESC's rises.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"sconrep/internal/bench"
	"sconrep/internal/core"
	"sconrep/internal/metrics"
)

// benchThink compresses the emulated-browser think time so the short
// smoke intervals still gather enough samples.
const benchThink = 40 * time.Millisecond

// benchProfile is sized so each point costs well under two seconds.
func benchProfile() bench.Profile {
	return bench.Profile{
		Scale:   1.0, // sub-ms compression is below this host's timer floor
		Warmup:  300 * time.Millisecond,
		Measure: 900 * time.Millisecond,
	}
}

// reportPoint publishes one experiment point's metrics under a label.
func reportPoint(b *testing.B, label string, r bench.Result, prof bench.Profile) {
	b.ReportMetric(r.Snapshot.TPS, label+"_tps")
	b.ReportMetric(float64(r.Snapshot.MeanResponse)/float64(time.Millisecond)/prof.Scale, label+"_resp_ms")
}

// BenchmarkTableI regenerates Table I (deterministic, no measurement).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.TableI(io.Discard)
	}
}

// BenchmarkFig3 regenerates Figure 3's curve shape: micro-benchmark
// throughput at a read-heavy and an update-only mix for all modes.
func BenchmarkFig3(b *testing.B) {
	prof := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, ratio := range []int{25, 100} {
			for _, mode := range bench.Modes {
				res, err := bench.Run(bench.Point{
					Workload: "micro", Mode: mode,
					Replicas: bench.MicroReplicas, Clients: bench.MicroClients,
					UpdatePercent: ratio,
				}, prof)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportPoint(b, fmt.Sprintf("u%d_%s", ratio, mode), res, prof)
				}
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4's breakdown: the version stage of
// the lazy modes against the global stage of eager at 100% updates.
func BenchmarkFig4(b *testing.B) {
	prof := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, mode := range []core.Mode{core.Eager, core.Coarse, core.Fine} {
			res, err := bench.Run(bench.Point{
				Workload: "micro", Mode: mode,
				Replicas: bench.MicroReplicas, Clients: bench.MicroClients,
				UpdatePercent: 100,
			}, prof)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				ver := float64(res.Snapshot.StageMeans[metrics.StageVersion]) / float64(time.Millisecond) / prof.Scale
				glob := float64(res.Snapshot.StageMeans[metrics.StageGlobal]) / float64(time.Millisecond) / prof.Scale
				b.ReportMetric(ver, mode.String()+"_version_ms")
				b.ReportMetric(glob, mode.String()+"_global_ms")
			}
		}
	}
}

// tpcwScaledBench runs a two-replica-count slice of Figure 5 for one
// mix and reports tps/resp per mode and replica count.
func tpcwScaledBench(b *testing.B, mix string, cpr int) {
	prof := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, reps := range []int{2, 6} {
			for _, mode := range bench.Modes {
				res, err := bench.Run(bench.Point{
					Workload: "tpcw", Mode: mode,
					Replicas: reps, Clients: reps * cpr,
					Mix: mix, ThinkTime: benchThink,
				}, prof)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportPoint(b, fmt.Sprintf("r%d_%s", reps, mode), res, prof)
				}
			}
		}
	}
}

// BenchmarkFig5Browsing / Shopping / Ordering regenerate Figure 5's
// throughput and response-time series per mix (scaled load).
func BenchmarkFig5Browsing(b *testing.B) { tpcwScaledBench(b, "browsing", 10) }

func BenchmarkFig5Shopping(b *testing.B) { tpcwScaledBench(b, "shopping", 8) }

func BenchmarkFig5Ordering(b *testing.B) { tpcwScaledBench(b, "ordering", 5) }

// BenchmarkFig6 regenerates Figure 6: synchronization delay on the
// ordering mix as replicas grow — the series where eager's global
// commit delay diverges.
func BenchmarkFig6(b *testing.B) {
	prof := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, reps := range []int{2, 6} {
			for _, mode := range bench.Modes {
				res, err := bench.Run(bench.Point{
					Workload: "tpcw", Mode: mode,
					Replicas: reps, Clients: reps * 5,
					Mix: "ordering", ThinkTime: benchThink,
				}, prof)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					sync := float64(res.Snapshot.MeanSync) / float64(time.Millisecond) / prof.Scale
					b.ReportMetric(sync, fmt.Sprintf("r%d_%s_sync_ms", reps, mode))
				}
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: response time under fixed load
// on the ordering mix — replicas should help the lazy modes and hurt
// eager.
func BenchmarkFig7(b *testing.B) {
	prof := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, reps := range []int{1, 6} {
			for _, mode := range bench.Modes {
				res, err := bench.Run(bench.Point{
					Workload: "tpcw", Mode: mode,
					Replicas: reps, Clients: 10, // fixed
					Mix: "ordering", ThinkTime: benchThink,
				}, prof)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					respMS := float64(res.Snapshot.MeanResponse) / float64(time.Millisecond) / prof.Scale
					b.ReportMetric(respMS, fmt.Sprintf("r%d_%s_resp_ms", reps, mode))
				}
			}
		}
	}
}

// BenchmarkAblationGranularity measures FSC's table-level
// synchronization against CSC's database-level on a skewed workload —
// the design choice Table I motivates.
func BenchmarkAblationGranularity(b *testing.B) {
	prof := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, mode := range []core.Mode{core.Coarse, core.Fine} {
			res, err := bench.RunSkewedMicro(mode, prof)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.Snapshot.TPS, mode.String()+"_tps")
				startMS := float64(res.Snapshot.StageMeans[metrics.StageVersion]) / float64(time.Millisecond) / prof.Scale
				b.ReportMetric(startMS, mode.String()+"_start_ms")
			}
		}
	}
}

// BenchmarkAblationEarlyCert measures early certification on a
// high-conflict update workload.
func BenchmarkAblationEarlyCert(b *testing.B) {
	prof := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, disable := range []bool{false, true} {
			res, err := bench.RunEarlyCertPoint(disable, prof)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				label := "on"
				if disable {
					label = "off"
				}
				b.ReportMetric(res.Snapshot.TPS, label+"_tps")
				b.ReportMetric(res.Snapshot.AbortRate(), label+"_abort_rate")
			}
		}
	}
}
