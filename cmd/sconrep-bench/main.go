// Command sconrep-bench regenerates the paper's evaluation (§V): every
// table and figure, as aligned text tables, on an in-process cluster
// with the simulated LAN cost model.
//
// Usage:
//
//	sconrep-bench -exp all                    # everything (minutes)
//	sconrep-bench -exp fig3                   # one experiment
//	sconrep-bench -exp fig5 -mixes shopping -replicas 1,2,4
//	sconrep-bench -exp table1
//	sconrep-bench -quick                      # smoke-sized sweeps
//
// Experiments: table1, fig3, fig4, fig5 (also emits fig6), fig7,
// ablation, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sconrep/internal/bench"
	"sconrep/internal/cluster"
	"sconrep/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig3, fig4, fig5, fig7, ablation, all")
	quick := flag.Bool("quick", false, "smoke-sized sweeps (seconds instead of minutes)")
	scale := flag.Float64("scale", 0, "override latency time scale (0 = profile default)")
	measure := flag.Duration("measure", 0, "override per-point measurement interval")
	mixesFlag := flag.String("mixes", "", "comma-separated TPC-W mixes (default all)")
	replicasFlag := flag.String("replicas", "", "comma-separated replica counts (default 1,2,4,6,8)")
	ratiosFlag := flag.String("ratios", "", "comma-separated micro update ratios (default 0,10,25,50,75,100)")
	obsAddr := flag.String("obs", "", "observability listen address: watch the sweep live via /metrics, /healthz, /traces, /snapshot, /debug/pprof")
	flag.Parse()

	prof := bench.Full()
	if *quick {
		prof = bench.Quick()
	}
	if *scale > 0 {
		prof.Scale = *scale
	}
	if *measure > 0 {
		prof.Measure = *measure
	}
	if *obsAddr != "" {
		prof = withObs(prof, *obsAddr)
	}

	var mixes []string
	if *mixesFlag != "" {
		mixes = strings.Split(*mixesFlag, ",")
	}
	replicas, err := parseInts(*replicasFlag)
	if err != nil {
		log.Fatalf("bad -replicas: %v", err)
	}
	ratios, err := parseInts(*ratiosFlag)
	if err != nil {
		log.Fatalf("bad -ratios: %v", err)
	}

	w := os.Stdout
	start := time.Now()
	fmt.Fprintf(w, "sconrep-bench: profile scale=%.2f warmup=%s measure=%s\n\n",
		prof.Scale, prof.Warmup, prof.Measure)

	run := func(name string, fn func() error) {
		t0 := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(w, "[%s done in %s]\n\n", name, time.Since(t0).Round(time.Second))
	}

	switch *exp {
	case "table1":
		bench.TableI(w)
	case "fig3":
		run("fig3", func() error { _, err := bench.Fig3(w, prof, ratios); return err })
	case "fig4":
		run("fig4", func() error { return bench.Fig4(w, prof) })
	case "fig5", "fig6":
		run("fig5+6", func() error { return bench.TPCWScaled(w, prof, mixes, replicas) })
	case "fig7":
		run("fig7", func() error { return bench.TPCWFixed(w, prof, mixes, replicas) })
	case "ablation":
		run("ablation", func() error {
			if err := bench.AblationGranularity(w, prof); err != nil {
				return err
			}
			return bench.AblationEarlyCert(w, prof)
		})
	case "all":
		bench.TableI(w)
		run("fig3", func() error { _, err := bench.Fig3(w, prof, ratios); return err })
		run("fig4", func() error { return bench.Fig4(w, prof) })
		run("fig5+6", func() error { return bench.TPCWScaled(w, prof, mixes, replicas) })
		run("fig7", func() error { return bench.TPCWFixed(w, prof, mixes, replicas) })
		run("ablation", func() error {
			if err := bench.AblationGranularity(w, prof); err != nil {
				return err
			}
			return bench.AblationEarlyCert(w, prof)
		})
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
	fmt.Fprintf(w, "total: %s\n", time.Since(start).Round(time.Second))
}

// withObs attaches a live observability endpoint to the sweep: every
// point's cluster re-registers its instruments with one registry, so
// /metrics always describes the point currently running, /traces holds
// the most recent transaction timelines, and /snapshot serves the live
// collector snapshot in the metrics.Snapshot JSON format.
func withObs(prof bench.Profile, addr string) bench.Profile {
	prof.Obs = obs.NewRegistry()
	prof.Traces = obs.NewTraceRecorder(1024)
	var cur atomic.Pointer[cluster.Cluster]
	prof.OnCluster = func(c *cluster.Cluster) { cur.Store(c) }
	srv, err := obs.Serve(addr, obs.Options{
		Registry: prof.Obs,
		Traces:   prof.Traces,
		Health: func() obs.Health {
			return obs.Health{Ready: cur.Load() != nil, Role: "bench", Detail: map[string]any{
				"running": cur.Load() != nil,
			}}
		},
		JSON: map[string]func() any{
			"/snapshot": func() any {
				c := cur.Load()
				if c == nil {
					return map[string]any{"running": false}
				}
				return c.Collector().Snapshot()
			},
		},
	})
	if err != nil {
		log.Fatalf("obs: %v", err)
	}
	log.Printf("bench observability on http://%s (/metrics /healthz /traces /snapshot /debug/pprof)", srv.Addr())
	return prof
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
