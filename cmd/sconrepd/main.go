// Command sconrepd runs one node of a distributed sconrep deployment —
// the multi-process topology of the paper's Figure 2 over TCP.
//
// A three-replica cluster on one machine:
//
//	sconrepd -role certifier -listen :7100 &
//	sconrepd -role replica -id 0 -listen :7110 -certifier :7100 -bootstrap schema.sql &
//	sconrepd -role replica -id 1 -listen :7111 -certifier :7100 -bootstrap schema.sql &
//	sconrepd -role replica -id 2 -listen :7112 -certifier :7100 -bootstrap schema.sql &
//	sconrepd -role gateway -listen :7000 -mode FSC -replicas :7110,:7111,:7112 &
//	sconrepd -role client -connect :7000        # interactive SQL
//
// The bootstrap file contains semicolon-terminated SQL statements and
// MUST be identical for every replica (deterministic load); the
// certifier adopts the replicas' bootstrapped version on first
// contact.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/core"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/pstore"
	"sconrep/internal/replica"
	"sconrep/internal/shard"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
	"sconrep/internal/wal"
	"sconrep/internal/wire"
)

func main() {
	role := flag.String("role", "", "certifier | replica | gateway | client")
	listen := flag.String("listen", "", "listen address (certifier/replica/gateway)")
	id := flag.Int("id", 0, "replica id")
	certAddr := flag.String("certifier", "", "certifier address (replica role)")
	replicasFlag := flag.String("replicas", "", "comma-separated replica addresses (gateway role)")
	modeFlag := flag.String("mode", "CSC", "consistency mode (gateway role)")
	bootstrap := flag.String("bootstrap", "", "SQL bootstrap file (replica role)")
	dataDir := flag.String("data-dir", "", "replica role: durable storage directory (WAL + fuzzy checkpoints); empty runs in memory and rebuilds from the certifier's history on restart")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "replica role: logged versions between automatic fuzzy checkpoints (0 = default; needs -data-dir)")
	walPath := flag.String("wal", "", "decision log path (certifier role)")
	connect := flag.String("connect", "", "gateway address (client role)")
	session := flag.String("session", "cli", "session id (client role)")
	eager := flag.Bool("eager", false, "enable eager global-commit tracking (certifier role; required when the gateway runs -mode ESC)")
	obsAddr := flag.String("obs", "", "observability listen address (server roles): serves /metrics, /healthz, /traces, /debug/pprof")
	obsMaxLag := flag.Uint64("obs-maxlag", 100, "replica /healthz reports unready when the worst per-table lag (certifier table version - applied table version) exceeds this")
	callTimeout := flag.Duration("call-timeout", 15*time.Second, "deadline for one request/response exchange; must exceed -sub-lease or eager commits can time out while the certifier waits for a leased replica (0 = none)")
	longPollTimeout := flag.Duration("long-poll-timeout", 30*time.Second, "deadline for deliberately long-blocking calls such as the eager global-commit wait (0 = none)")
	streamIdle := flag.Duration("stream-idle", 5*time.Second, "server-side idle teardown and refresh-stream partition detector (0 = none)")
	backoffMin := flag.Duration("backoff-min", 20*time.Millisecond, "initial reconnect/retry backoff")
	backoffMax := flag.Duration("backoff-max", time.Second, "backoff ceiling")
	subLease := flag.Duration("sub-lease", 10*time.Second, "certifier role: how long a replica stays subscribed after its refresh stream drops")
	streamGrace := flag.Duration("stream-grace", 500*time.Millisecond, "replica role: how long after losing the refresh stream the replica keeps serving; must stay below -sub-lease")
	applyWorkers := flag.Int("apply-workers", 0, "replica role: width of the conflict-aware parallel refresh applier (0 = default, 1 = serial group apply)")
	maxApplyBatch := flag.Int("max-apply-batch", 0, "replica role: refresh group-apply batch bound (0 = default)")
	shards := flag.Int("shards", 1, "certifier/replica/gateway roles: number of certification shards; every role of one deployment must agree")
	shardTables := flag.String("shard-tables", "", "explicit table→shard pins as table=shard[,table=shard...]; unlisted tables hash over [0,shards). Must be identical on every role")
	serveShards := flag.String("serve-shards", "", "replica role: comma-separated shard IDs this replica subscribes to (empty = all); versions certified elsewhere arrive as skip markers")
	replicaShards := flag.String("replica-shards", "", "gateway role: per-replica served shards as idx=shard[+shard...][,idx=...] matching each replica's -serve-shards (replicas absent from the list serve all shards); enables shard-aware routing")
	flag.Parse()

	smap, err := buildShardMap(*shards, *shardTables)
	if err != nil {
		log.Fatal(err)
	}

	wireOpts := []wire.Option{
		wire.WithTimeouts(wire.Timeouts{Call: *callTimeout, LongPoll: *longPollTimeout, Idle: *streamIdle}),
		wire.WithBackoff(wire.Backoff{Min: *backoffMin, Max: *backoffMax}),
	}

	switch *role {
	case "certifier":
		runCertifier(*listen, *walPath, *eager, *obsAddr, smap, append(wireOpts, wire.WithSubLease(*subLease)))
	case "replica":
		served, err := parseShardList(*serveShards)
		if err != nil {
			log.Fatalf("-serve-shards: %v", err)
		}
		runReplica(*listen, *id, *certAddr, *bootstrap, *dataDir, *checkpointEvery, *obsAddr, *obsMaxLag, *streamGrace, *applyWorkers, *maxApplyBatch, smap, served, wireOpts)
	case "gateway":
		served, err := parseReplicaShards(*replicaShards)
		if err != nil {
			log.Fatalf("-replica-shards: %v", err)
		}
		runGateway(*listen, *modeFlag, *replicasFlag, *obsAddr, smap, served, wireOpts)
	case "client":
		runClient(*connect, *session, wireOpts)
	default:
		log.Fatalf("unknown -role %q (want certifier, replica, gateway, or client)", *role)
	}
}

// buildShardMap turns the -shards / -shard-tables flags into a shard
// map; nil when sharding is off (n <= 1).
func buildShardMap(n int, tablesSpec string) (*shard.Map, error) {
	if n <= 1 {
		if tablesSpec != "" {
			return nil, fmt.Errorf("-shard-tables requires -shards > 1")
		}
		return nil, nil
	}
	assign := map[string]int{}
	if tablesSpec != "" {
		for _, pair := range strings.Split(tablesSpec, ",") {
			table, shardStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, fmt.Errorf("-shard-tables: %q is not table=shard", pair)
			}
			s, err := strconv.Atoi(shardStr)
			if err != nil {
				return nil, fmt.Errorf("-shard-tables: %q: %w", pair, err)
			}
			assign[table] = s
		}
	}
	return shard.New(n, assign)
}

// parseShardList parses a comma-separated shard ID list; nil for "".
func parseShardList(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// parseReplicaShards parses idx=shard[+shard...][,idx=...] into the
// balancer's served map; nil for "".
func parseReplicaShards(spec string) (map[int][]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[int][]int{}
	for _, ent := range strings.Split(spec, ",") {
		idxStr, shardsStr, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok {
			return nil, fmt.Errorf("%q is not idx=shard+shard", ent)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			return nil, err
		}
		var served []int
		for _, f := range strings.Split(shardsStr, "+") {
			s, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, err
			}
			served = append(served, s)
		}
		out[idx] = served
	}
	return out, nil
}

// serveObs starts the observability endpoint, fatally on bind errors
// (a requested but unserved endpoint is worse than no endpoint).
func serveObs(addr, role string, o obs.Options) {
	srv, err := obs.Serve(addr, o)
	if err != nil {
		log.Fatalf("obs: %v", err)
	}
	log.Printf("%s observability on http://%s (/metrics /healthz /traces /debug/pprof)", role, srv.Addr())
}

func runCertifier(listen, walPath string, eager bool, obsAddr string, smap *shard.Map, wireOpts []wire.Option) {
	var opts []certifier.Option
	if smap != nil {
		opts = append(opts, certifier.WithShards(smap))
	}
	if walPath != "" {
		// Recover prior decisions, then append to the same log. A crash
		// can leave a torn final frame; replay reports the valid prefix
		// and we truncate to it so the reopened log appends cleanly
		// instead of burying new records behind garbage. The validation
		// pass must share the shard map: a sharded log interleaves
		// per-shard record streams that a single-shard replay would
		// reject as gapped.
		fresh := certifier.New(opts...)
		valid, err := wal.ReplayFileN(walPath, func(*wal.Record) error { return nil })
		if err != nil {
			log.Fatalf("wal replay: %v", err)
		}
		if fi, statErr := os.Stat(walPath); statErr == nil && fi.Size() > valid {
			log.Printf("wal: discarding torn tail (%d of %d bytes valid)", valid, fi.Size())
			if err := os.Truncate(walPath, valid); err != nil {
				log.Fatalf("wal truncate: %v", err)
			}
		}
		if err := fresh.RestoreFromWAL(func(fn func(*wal.Record) error) error {
			return wal.ReplayFile(walPath, fn)
		}); err != nil {
			log.Fatalf("wal replay: %v", err)
		}
		l, err := wal.Open(walPath)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, certifier.WithWAL(l))
		if eager {
			opts = append(opts, certifier.WithEager())
		}
		// Rebuild with the log attached; state replays again into the
		// final instance to keep construction simple.
		cert := certifier.New(opts...)
		if err := cert.RestoreFromWAL(func(fn func(*wal.Record) error) error {
			return wal.ReplayFile(walPath, fn)
		}); err != nil {
			log.Fatalf("wal replay: %v", err)
		}
		serveCertifier(cert, listen, obsAddr, wireOpts)
		return
	}
	if eager {
		opts = append(opts, certifier.WithEager())
	}
	serveCertifier(certifier.New(opts...), listen, obsAddr, wireOpts)
}

func serveCertifier(cert *certifier.Certifier, listen, obsAddr string, wireOpts []wire.Option) {
	srv, err := wire.ServeCertifier(cert, listen, wireOpts...)
	if err != nil {
		log.Fatal(err)
	}
	if obsAddr != "" {
		reg := obs.NewRegistry()
		cert.EnableObs(reg)
		srv.EnableObs(reg)
		coll := dtrace.NewCollector(4096)
		cert.EnableTracing(dtrace.New("certifier", coll))
		serveObs(obsAddr, "certifier", obs.Options{
			Registry: reg,
			Spans:    coll,
			Health: func() obs.Health {
				return obs.Health{Ready: true, Role: "certifier", Detail: map[string]any{
					"version":  cert.Version(),
					"replicas": len(cert.Replicas()),
				}}
			},
		})
	}
	log.Printf("certifier serving on %s (version %d)", srv.Addr(), cert.Version())
	select {}
}

func runReplica(listen string, id int, certAddr, bootstrap, dataDir string, checkpointEvery uint64, obsAddr string, maxLag uint64, streamGrace time.Duration, applyWorkers, maxApplyBatch int, smap *shard.Map, served []int, wireOpts []wire.Option) {
	if certAddr == "" {
		log.Fatal("replica role requires -certifier")
	}
	if served != nil && smap == nil {
		log.Fatal("-serve-shards requires -shards > 1 (and the same -shard-tables as the certifier)")
	}
	var backend storage.Backend
	var st *pstore.Store
	if dataDir != "" {
		// Durable replica: restore the newest verifying fuzzy checkpoint
		// plus the contiguous WAL suffix; a wiped directory re-runs the
		// bootstrap. Whatever the disk is missing, the certifier
		// backfills on resubscription.
		var boot func(e *storage.Engine) error
		if bootstrap != "" {
			boot = func(e *storage.Engine) error { return loadBootstrap(e, bootstrap) }
		}
		var err error
		st, err = pstore.Open(dataDir, pstore.Options{
			CheckpointEvery: checkpointEvery,
			Bootstrap:       boot,
		})
		if err != nil {
			log.Fatalf("data-dir: %v", err)
		}
		defer st.Close()
		stats := st.Stats()
		log.Printf("replica %d recovered to version %d from %s (checkpoint %d, took %s)",
			id, st.Engine().Version(), dataDir, stats.CheckpointVersion, stats.RecoveryTook)
		backend = st
	} else {
		eng := storage.NewEngine()
		if bootstrap != "" {
			if err := loadBootstrap(eng, bootstrap); err != nil {
				log.Fatalf("bootstrap: %v", err)
			}
		}
		backend = storage.MemBackend{Eng: eng}
	}
	eng := backend.Engine()
	cc := wire.DialCertifier(certAddr, id, eng.Version(),
		append(wireOpts, wire.WithVLocal(eng.Version), wire.WithShards(served))...)
	rep := replica.NewWithBackend(replica.Config{
		ID:            id,
		EarlyCert:     true,
		ApplyWorkers:  applyWorkers,
		MaxApplyBatch: maxApplyBatch,
	}, backend, cc)
	// Serve gate: while the refresh stream has been dead longer than the
	// grace (or the replica is still catching up to the version floor it
	// saw at resubscribe), begin requests fail with ErrUnavailable and
	// the gateway routes elsewhere — a partitioned replica must not
	// serve possibly stale strong reads.
	gate := func() error {
		if cc.Ready(streamGrace) {
			return nil
		}
		return wire.ErrUnavailable
	}
	srv, err := wire.ServeReplica(rep, listen, append(wireOpts, wire.WithGate(gate))...)
	if err != nil {
		log.Fatal(err)
	}
	if obsAddr != "" {
		reg := obs.NewRegistry()
		tr := obs.NewTraceRecorder(512)
		rep.EnableObs(reg, tr)
		srv.EnableObs(reg)
		if st != nil {
			reg.GaugeFunc("sconrep_pstore_checkpoint_version",
				"Version the last durable fuzzy checkpoint captured.",
				func() float64 { return float64(st.Stats().CheckpointVersion) })
			reg.GaugeFunc("sconrep_pstore_checkpoint_age_seconds",
				"Seconds since the last durable fuzzy checkpoint (0 before the first).",
				func() float64 {
					at := st.Stats().LastCheckpointAt
					if at.IsZero() {
						return 0
					}
					return time.Since(at).Seconds()
				})
			reg.GaugeFunc("sconrep_pstore_checkpoint_seconds",
				"Duration of the last fuzzy checkpoint write.",
				func() float64 { return st.Stats().LastCheckpointTook.Seconds() })
			reg.GaugeFunc("sconrep_pstore_wal_bytes",
				"Live WAL footprint: bytes across the retained log segments.",
				func() float64 { return float64(st.Stats().WALBytes) })
			reg.GaugeFunc("sconrep_pstore_recovery_seconds",
				"This process's startup recovery time: checkpoint restore plus WAL suffix replay.",
				func() float64 { return st.Stats().RecoveryTook.Seconds() })
		}
		coll := dtrace.NewCollector(4096)
		rep.EnableTracing(dtrace.New(fmt.Sprintf("replica-%d", id), coll))
		serveObs(obsAddr, "replica", obs.Options{
			Registry: reg,
			Traces:   tr,
			Spans:    coll,
			// Readiness is replication lag, measured per table: the
			// certifier's last committed version for each table against
			// this replica's applied version of it. The worst table
			// governs — a scalar version delta over-reports lag when the
			// missing versions only touch tables this replica already has
			// current (e.g. after a refresh batch applied out of a larger
			// backlog). A crashed replica or one whose worst table lags
			// more than maxLag versions is unready.
			Health: func() obs.Health {
				vlocal := rep.Version()
				serving := cc.Ready(streamGrace)
				detail := map[string]any{"replica": id, "vlocal": vlocal, "crashed": rep.Crashed(), "serving": serving}
				ready := !rep.Crashed() && serving
				if certTV, err := cc.TableVersions(); err != nil {
					detail["certifier_error"] = err.Error()
					ready = false
				} else {
					// A partial subscription deliberately never applies
					// unserved tables' data; their lag is meaningless and
					// would otherwise grow without bound.
					if served != nil {
						for t := range certTV {
							if !shard.Covers(served, []int{smap.Of(t)}) {
								delete(certTV, t)
							}
						}
					}
					names := make([]string, 0, len(certTV))
					for t := range certTV {
						names = append(names, t)
					}
					engTV := eng.TableVersionsAt(names, vlocal)
					lags := make(map[string]uint64, len(certTV))
					var maxTableLag uint64
					for t, cv := range certTV {
						var lag uint64
						if lv := engTV[t]; cv > lv {
							lag = cv - lv
						}
						lags[t] = lag
						if lag > maxTableLag {
							maxTableLag = lag
						}
					}
					detail["table_lag"] = lags
					detail["lag"] = maxTableLag
					if maxTableLag > maxLag {
						ready = false
					}
				}
				return obs.Health{Ready: ready, Role: "replica", Detail: detail}
			},
		})
	}
	log.Printf("replica %d serving on %s (bootstrapped at version %d)", id, srv.Addr(), eng.Version())
	select {}
}

// loadBootstrap executes semicolon-terminated statements from a file.
func loadBootstrap(eng *storage.Engine, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, stmtText := range strings.Split(string(data), ";") {
		stmtText = strings.TrimSpace(stmtText)
		if stmtText == "" || strings.HasPrefix(stmtText, "--") {
			continue
		}
		tx := eng.Begin()
		if _, err := sql.Exec(tx, eng, stmtText); err != nil {
			tx.Abort()
			return fmt.Errorf("%q: %w", stmtText, err)
		}
		if _, err := tx.CommitLocal(); err != nil {
			return err
		}
	}
	return nil
}

func runGateway(listen, modeFlag, replicasFlag, obsAddr string, smap *shard.Map, served map[int][]int, wireOpts []wire.Option) {
	mode, err := core.ParseMode(modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	if replicasFlag == "" {
		log.Fatal("gateway role requires -replicas")
	}
	if served != nil && smap == nil {
		log.Fatal("-replica-shards requires -shards > 1 (and the same -shard-tables as the certifier)")
	}
	addrs := strings.Split(replicasFlag, ",")
	gw, err := wire.ServeGateway(listen, mode, addrs, wireOpts...)
	if err != nil {
		log.Fatal(err)
	}
	if smap != nil {
		gw.Balancer().SetShardRouting(smap, served)
	}
	if obsAddr != "" {
		reg := obs.NewRegistry()
		gw.EnableObs(reg)
		coll := dtrace.NewCollector(4096)
		gw.Balancer().EnableTracing(dtrace.New("gateway", coll))
		serveObs(obsAddr, "gateway", obs.Options{
			Registry: reg,
			Spans:    coll,
			// The gateway is ready while it has at least one live
			// replica to route to.
			Health: func() obs.Health {
				live := gw.Balancer().LiveReplicas()
				return obs.Health{Ready: live > 0, Role: "gateway", Detail: map[string]any{
					"mode":          mode.String(),
					"live_replicas": live,
					"replicas":      len(addrs),
				}}
			},
		})
	}
	log.Printf("gateway serving on %s, mode %s, %d replicas", gw.Addr(), mode, len(addrs))
	select {}
}

func runClient(connect, session string, wireOpts []wire.Option) {
	if connect == "" {
		log.Fatal("client role requires -connect")
	}
	c, err := wire.Dial(connect, session, wireOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Println("connected; statements run in autocommit, or \\begin ... \\commit. \\quit exits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inTxn := false
	for {
		if inTxn {
			fmt.Print("txn> ")
		} else {
			fmt.Print("> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "\\quit" || line == "\\q":
			return
		case line == "\\begin":
			if err := c.Begin(""); err != nil {
				fmt.Println("error:", err)
			} else {
				inTxn = true
			}
		case line == "\\commit":
			v, ro, err := c.Commit()
			inTxn = false
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("committed at version %d (read-only=%v)\n", v, ro)
			}
		case line == "\\abort":
			_ = c.Abort()
			inTxn = false
		case strings.HasPrefix(line, "\\"):
			fmt.Println("commands: \\begin \\commit \\abort \\quit")
		default:
			if inTxn {
				printRes(c.Exec(line))
				continue
			}
			if err := c.Begin(""); err != nil {
				fmt.Println("error:", err)
				continue
			}
			res, err := c.Exec(line)
			if err != nil {
				fmt.Println("error:", err)
				_ = c.Abort()
				continue
			}
			if _, _, err := c.Commit(); err != nil {
				fmt.Println("commit error:", err)
				continue
			}
			printResOK(res)
		}
	}
}

func printRes(res *sql.Result, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResOK(res)
}

func printResOK(res *sql.Result) {
	if res == nil {
		fmt.Println("ok")
		return
	}
	if len(res.Columns) == 0 {
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = storage.FormatValue(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
