// Command sconrep-vet runs sconrep's custom static-analysis suite
// (tableset, lockcheck, determinism, wirecompat, lockorder — see
// internal/analysis) over the module:
//
//	sconrep-vet [-run names] [-strict] [-update-schema] [packages]
//
// Packages default to ./... and are resolved with `go list`, so the
// command must run from the module root (`make lint` does). Errors
// (consistency holes: wire fields legacy peers can't decode, lock
// cycles, staleness bugs) always fail the run; Warnings (hygiene:
// unreviewed new wire fields, undeclared lock orders) fail only under
// -strict, which is how `make lint` and CI run.
//
// -update-schema regenerates internal/wire/schema.lock from the
// current tree instead of analyzing, making intentional protocol
// evolution a reviewed diff.
//
// The suite is built on a stdlib-only mirror of
// golang.org/x/tools/go/analysis; if x/tools is ever vendored, the
// analyzers port to a unitchecker-based vettool unchanged and this
// driver becomes `go vet -vettool=sconrep-vet ./...`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"sconrep/internal/analysis"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	strict := flag.Bool("strict", false, "fail on warnings too, not just errors (CI mode)")
	updateSchema := flag.Bool("update-schema", false,
		"regenerate "+analysis.WireSchemaLockFile+" from the tree and exit")
	detPkgs := flag.String("determinism.pkgs", "",
		"comma-separated extra package paths holding seeded (replay-critical) code")
	flag.Parse()

	if *detPkgs != "" {
		analysis.DeterminismSeeded = append(analysis.DeterminismSeeded, strings.Split(*detPkgs, ",")...)
	}
	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
		os.Exit(2)
	}

	loader := analysis.NewLoader()
	if *updateSchema {
		if err := writeSchemaLock(loader, pkgs); err != nil {
			fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
			os.Exit(2)
		}
		return
	}

	errors, warnings := 0, 0
	seen := map[string]bool{} // structs shared across packages would double-report
	for _, p := range pkgs {
		files := make([]string, 0, len(p.GoFiles))
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := loader.Load(p.ImportPath, files)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(pkg, loader.Fset, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			rel := pos.Filename
			if wd, err := os.Getwd(); err == nil {
				if r, err := filepath.Rel(wd, pos.Filename); err == nil {
					rel = r
				}
			}
			line := fmt.Sprintf("%s:%d:%d: %s: %s", rel, pos.Line, pos.Column, d.Severity, d.Message)
			if seen[line] {
				continue
			}
			seen[line] = true
			if d.Severity == analysis.Error {
				errors++
			} else {
				warnings++
			}
			fmt.Println(line)
		}
	}
	if errors > 0 || warnings > 0 {
		fmt.Fprintf(os.Stderr, "sconrep-vet: %d error(s), %d warning(s)\n", errors, warnings)
	}
	if errors > 0 || (*strict && warnings > 0) {
		os.Exit(1)
	}
}

// writeSchemaLock collects the gob-reachable schema from every listed
// package, merges, and rewrites the committed lockfile.
func writeSchemaLock(loader *analysis.Loader, pkgs []listPkg) error {
	merged := &analysis.Schema{Structs: map[string]*analysis.SchemaStruct{}}
	for _, p := range pkgs {
		files := make([]string, 0, len(p.GoFiles))
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := loader.Load(p.ImportPath, files)
		if err != nil {
			return err
		}
		schema, err := analysis.CollectSchema(pkg, loader.Fset)
		if err != nil {
			return err
		}
		if err := merged.Merge(schema); err != nil {
			return err
		}
	}
	if len(merged.Structs) == 0 {
		return fmt.Errorf("no gob-reachable wire structs found in the listed packages; refusing to write an empty %s", analysis.WireSchemaLockFile)
	}
	if err := os.WriteFile(analysis.WireSchemaLockFile, merged.Format(), 0o644); err != nil {
		return err
	}
	var names []string
	for n := range merged.Structs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("sconrep-vet: wrote %s (%d structs)\n", analysis.WireSchemaLockFile, len(names))
	return nil
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	var known []string
	for _, a := range all {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// listPkg is the slice of `go list -json` output the driver needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// goList resolves package patterns to source file lists, exactly as
// the build sees them (testdata and _test.go files excluded).
func goList(patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
