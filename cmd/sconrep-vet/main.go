// Command sconrep-vet runs sconrep's custom static-analysis suite
// (tableset, lockcheck, determinism — see internal/analysis) over the
// module:
//
//	sconrep-vet [-run tableset,lockcheck,determinism] [packages]
//
// Packages default to ./... and are resolved with `go list`, so the
// command must run from the module root (`make lint` does). Any
// diagnostic fails the run; errors are consistency holes, warnings
// are performance or hygiene regressions, and the tree is kept clean
// of both.
//
// The suite is built on a stdlib-only mirror of
// golang.org/x/tools/go/analysis; if x/tools is ever vendored, the
// analyzers port to a unitchecker-based vettool unchanged and this
// driver becomes `go vet -vettool=sconrep-vet ./...`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"sconrep/internal/analysis"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	detPkgs := flag.String("determinism.pkgs", "",
		"comma-separated extra package paths holding seeded (replay-critical) code")
	flag.Parse()

	if *detPkgs != "" {
		analysis.DeterminismSeeded = append(analysis.DeterminismSeeded, strings.Split(*detPkgs, ",")...)
	}
	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
		os.Exit(2)
	}

	loader := analysis.NewLoader()
	findings := 0
	for _, p := range pkgs {
		files := make([]string, 0, len(p.GoFiles))
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := loader.Load(p.ImportPath, files)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(pkg, loader.Fset, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sconrep-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			findings++
			pos := loader.Fset.Position(d.Pos)
			rel := pos.Filename
			if wd, err := os.Getwd(); err == nil {
				if r, err := filepath.Rel(wd, pos.Filename); err == nil {
					rel = r
				}
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", rel, pos.Line, pos.Column, d.Severity, d.Message)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "sconrep-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have tableset, lockcheck, determinism)", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// listPkg is the slice of `go list -json` output the driver needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// goList resolves package patterns to source file lists, exactly as
// the build sees them (testdata and _test.go files excluded).
func goList(patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
