// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark runs can be
// committed and diffed (see `make bench-hotpath` → BENCH_hotpath.json).
//
// Each benchmark result line
//
//	BenchmarkFoo/sub-8   12345   987 ns/op   64 B/op   2 allocs/op
//
// becomes one entry with the iteration count and every reported
// metric (including custom b.ReportMetric units) keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	require := flag.String("require", "",
		"comma-separated benchmark names (GOMAXPROCS suffix stripped) that must appear in the input; exit non-zero if any is missing")
	flag.Parse()
	var d doc
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			d.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			d.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			d.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Package = pkg
				d.Benchmarks = append(d.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(d.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	if *require != "" {
		have := make(map[string]bool, len(d.Benchmarks))
		for _, r := range d.Benchmarks {
			// "BenchmarkFoo/sub-8" → "BenchmarkFoo/sub"
			name := r.Name
			if i := strings.LastIndex(name, "-"); i > 0 {
				if _, err := strconv.Atoi(name[i+1:]); err == nil {
					name = name[:i]
				}
			}
			have[name] = true
		}
		missing := false
		for _, want := range strings.Split(*require, ",") {
			if want = strings.TrimSpace(want); want != "" && !have[want] {
				fmt.Fprintf(os.Stderr, "benchjson: required benchmark missing: %s\n", want)
				missing = true
			}
		}
		if missing {
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&d); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result: name, iteration count, then
// value/unit pairs.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
