package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/storage"
	"sconrep/internal/workload/tpcw"
)

// runTrace implements `sconrep-cli trace <trace-id> -nodes a,b,c`: it
// fetches the trace's spans from every node's /trace/{id} endpoint,
// merges them (BuildForest dedups by span ID), and prints the stitched
// causal tree.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	nodes := fs.String("nodes", "", "comma-separated observability endpoints (host:port) to fetch spans from")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sconrep-cli trace <trace-id> -nodes host:port[,host:port...]")
		fs.PrintDefaults()
	}
	// Accept the id before or after the flags (stdlib flag parsing
	// stops at the first positional argument, so re-parse the rest).
	fs.Parse(args)
	rest := fs.Args()
	var idArg string
	if len(rest) > 0 {
		idArg = rest[0]
		fs.Parse(rest[1:])
		rest = fs.Args()
	}
	if idArg == "" || len(rest) > 0 || *nodes == "" {
		fs.Usage()
		os.Exit(2)
	}
	id, err := dtrace.ParseTraceID(idArg)
	if err != nil {
		log.Fatalf("bad trace id %q: %v", rest[0], err)
	}
	spans := fetchSpans(strings.Split(*nodes, ","), id)
	if len(spans) == 0 {
		log.Fatalf("no spans found for trace %s on any node", id)
	}
	printForest(os.Stdout, spans)
}

// fetchSpans collects a trace's spans from each node, tolerating
// unreachable nodes (a crashed replica should not hide the rest of the
// tree).
func fetchSpans(nodes []string, id dtrace.TraceID) []dtrace.Span {
	client := &http.Client{Timeout: 5 * time.Second}
	var all []dtrace.Span
	for _, n := range nodes {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		resp, err := client.Get("http://" + n + "/trace/" + id.String())
		if err != nil {
			fmt.Fprintf(os.Stderr, "warn: %s: %v\n", n, err)
			continue
		}
		var body struct {
			Spans []dtrace.Span `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "warn: %s: decode: %v\n", n, err)
			continue
		}
		all = append(all, body.Spans...)
	}
	return all
}

// printForest renders the stitched span tree(s) with durations and the
// annotations that matter for the consistency story.
func printForest(w *os.File, spans []dtrace.Span) {
	forest := dtrace.BuildForest(spans)
	for _, root := range forest {
		printNode(w, root, "", true, true)
	}
	if orphans := dtrace.Orphans(spans); len(orphans) > 0 {
		fmt.Fprintf(w, "warn: %d orphan span(s) whose parent was not fetched\n", len(orphans))
	}
}

func printNode(w *os.File, n *dtrace.TreeNode, prefix string, isRoot, last bool) {
	connector := ""
	childPrefix := prefix
	if !isRoot {
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		} else {
			connector = "├─ "
			childPrefix = prefix + "│  "
		}
	}
	sp := n.Span
	attrs := make([]string, 0, len(sp.Attrs))
	for k, v := range sp.Attrs {
		attrs = append(attrs, k+"="+v)
	}
	sort.Strings(attrs)
	line := fmt.Sprintf("%s%s%s (%s) %s", prefix, connector, sp.Name, sp.Node,
		sp.Duration().Round(time.Microsecond))
	if len(attrs) > 0 {
		line += " " + strings.Join(attrs, " ")
	}
	if len(sp.Links) > 0 {
		line += fmt.Sprintf(" links=%d", len(sp.Links))
	}
	fmt.Fprintln(w, line)
	for i, c := range n.Children {
		printNode(w, c, childPrefix, false, i == len(n.Children)-1)
	}
}

// runDemo implements `sconrep-cli demo`: it stands up a networked
// three-replica FSC cluster with tracing on, serves each node's span
// collector on its own observability endpoint, runs one TPC-W
// buyConfirm, and stitches the resulting trace back together over HTTP
// — the full distributed-tracing loop in one command.
func runDemo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	replicas := fs.Int("replicas", 3, "replica count")
	hold := fs.Duration("hold", 0, "keep the cluster and its observability endpoints up this long after printing the trace (for external scraping)")
	fs.Parse(args)

	c, err := cluster.NewNetworked(cluster.Config{
		Replicas: *replicas,
		Mode:     core.Fine,
		Seed:     1,
	}, cluster.NetConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	colls := c.EnableDTrace(4096)
	reg := obs.NewRegistry()
	c.EnableObs(reg, nil)

	// One observability server per logical node, exactly as a
	// multi-process deployment would run them.
	names := make([]string, 0, len(colls))
	for name := range colls {
		names = append(names, name)
	}
	sort.Strings(names)
	var nodeAddrs []string
	for _, name := range names {
		srv, err := obs.Serve("127.0.0.1:0", obs.Options{Registry: reg, Spans: colls[name]})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		nodeAddrs = append(nodeAddrs, srv.Addr())
		fmt.Printf("node %-10s observability on http://%s\n", name, srv.Addr())
	}

	scale := tpcw.Scale{Items: 100, Customers: 100, Seed: 7}
	if err := c.LoadData(func(e *storage.Engine) error { return tpcw.Load(e, scale) }); err != nil {
		log.Fatal(err)
	}
	tpcw.RegisterAll(c)

	s := c.NewSession()
	defer s.Close()
	x := tpcw.NewCtx(scale, 0, 42)
	if err := tpcw.BuyConfirm(s, x); err != nil {
		log.Fatal(err)
	}
	// Let the refresh fan-out land on every replica so the remote
	// refresh.apply spans are collected too.
	time.Sleep(300 * time.Millisecond)

	id, ok := latestCommitTrace(colls["client"], "tpcw.buyConfirm")
	if !ok {
		log.Fatal("demo: no committed buyConfirm trace recorded")
	}
	fmt.Printf("\ntrace %s (reproduce with: sconrep-cli trace %s -nodes %s)\n\n",
		id, id, strings.Join(nodeAddrs, ","))
	spans := fetchSpans(nodeAddrs, id)
	printForest(os.Stdout, spans)
	if *hold > 0 {
		fmt.Printf("\nholding endpoints for %s\n", *hold)
		time.Sleep(*hold)
	}
}

// latestCommitTrace finds the newest committed client.txn root span for
// the named transaction in the client's collector.
func latestCommitTrace(coll *dtrace.Collector, txnName string) (dtrace.TraceID, bool) {
	var id dtrace.TraceID
	var at time.Time
	found := false
	for _, sp := range coll.Recent(0) {
		if sp.Name != "client.txn" || sp.Attrs["txn"] != txnName || sp.Attrs["outcome"] != "commit" {
			continue
		}
		if !found || sp.Start.After(at) {
			id, at, found = sp.Trace, sp.Start, true
		}
	}
	return id, found
}
