// Command sconrep-cli is an interactive SQL shell against an
// in-process replicated cluster — a sandbox for exploring the system's
// behaviour by hand.
//
//	sconrep-cli -replicas 3 -mode FSC
//
// Besides SQL, the shell understands:
//
//	\begin [name]   start an explicit transaction (autocommit otherwise)
//	\commit         commit the explicit transaction
//	\abort          abort it
//	\crash N        crash replica N
//	\recover N      recover replica N
//	\versions       show certifier and replica versions
//	\stats          show throughput counters
//	\check          run the strong-consistency checker
//	\help           this list
//	\quit           exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sconrep"
)

func main() {
	// Subcommands ride in front of the interactive shell's flags:
	//
	//	sconrep-cli trace <trace-id> -nodes host:port,...   stitch a distributed trace
	//	sconrep-cli demo [-replicas N]                      end-to-end tracing demo
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			runTrace(os.Args[2:])
			return
		case "demo":
			runDemo(os.Args[2:])
			return
		}
	}
	replicas := flag.Int("replicas", 3, "replica count")
	modeFlag := flag.String("mode", "FSC", "consistency mode: ESC, CSC, FSC, SC")
	lan := flag.Bool("lan", false, "simulate LAN latencies")
	flag.Parse()

	mode, err := sconrep.ParseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}
	db, err := sconrep.Open(sconrep.Config{
		Replicas:      *replicas,
		Mode:          mode,
		SimulateLAN:   *lan,
		TimeScale:     0.2,
		RecordHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	// Empty deterministic bootstrap; interactive CREATE statements are
	// applied to every replica via ExecSchema below.
	if err := db.Bootstrap(func(b *sconrep.Boot) error { return nil }); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sconrep shell — %d replicas, %s. \\help for commands.\n", *replicas, mode)
	fmt.Println("note: run CREATE TABLE statements first; they apply to every replica.")

	session := db.Session()
	defer session.Close()
	var open *sconrep.Tx
	openName := ""

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if open != nil {
			fmt.Printf("sconrep(%s)*> ", openName)
		} else {
			fmt.Print("sconrep> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if done := command(db, session, &open, &openName, line); done {
				return
			}
			continue
		}

		// DDL fans out to every replica (not replicated by the commit
		// protocol, mirroring systems that roll schema changes out of
		// band).
		upper := strings.ToUpper(line)
		if strings.HasPrefix(upper, "CREATE ") {
			if err := db.ExecSchema(line); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
			continue
		}

		if open != nil {
			printResult(open.Exec(line))
			continue
		}
		// Autocommit.
		tx, err := session.Begin("")
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		res, err := tx.Exec(line)
		if err != nil {
			tx.Abort()
			fmt.Println("error:", err)
			continue
		}
		if err := tx.Commit(); err != nil {
			fmt.Println("commit error:", err)
			continue
		}
		printResultOK(res)
	}
}

func command(db *sconrep.DB, session *sconrep.SessionHandle, open **sconrep.Tx, openName *string, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println(`\begin [name]  \commit  \abort  \crash N  \recover N  \versions  \stats  \check  \quit`)
	case "\\begin":
		if *open != nil {
			fmt.Println("error: transaction already open")
			break
		}
		name := ""
		if len(fields) > 1 {
			name = fields[1]
		}
		tx, err := session.Begin(name)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		*open, *openName = tx, name
	case "\\commit":
		if *open == nil {
			fmt.Println("error: no open transaction")
			break
		}
		if err := (*open).Commit(); err != nil {
			fmt.Println("commit error:", err)
		} else {
			fmt.Println("committed")
		}
		*open = nil
	case "\\abort":
		if *open == nil {
			fmt.Println("error: no open transaction")
			break
		}
		(*open).Abort()
		*open = nil
		fmt.Println("aborted")
	case "\\crash", "\\recover":
		if len(fields) != 2 {
			fmt.Println("usage:", fields[0], "N")
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 || n >= db.Replicas() {
			fmt.Println("error: bad replica number")
			break
		}
		if fields[0] == "\\crash" {
			db.CrashReplica(n)
			fmt.Printf("replica %d crashed\n", n)
		} else if err := db.RecoverReplica(n); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("replica %d recovering\n", n)
		}
	case "\\versions":
		for i := 0; i < db.Replicas(); i++ {
			fmt.Printf("replica %d: Vlocal=%d\n", i, db.ReplicaVersion(i))
		}
	case "\\stats":
		st := db.Stats()
		fmt.Printf("committed=%d (updates=%d reads=%d) aborted=%d tps=%.1f mean=%.2fms\n",
			st.Committed, st.Updates, st.ReadOnly, st.Aborted, st.TPS, st.MeanResponseSeconds*1000)
	case "\\check":
		v, err := db.CheckConsistency()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("strong-consistency violations: %d\n", len(v))
		for i, s := range v {
			if i >= 5 {
				fmt.Println("...")
				break
			}
			fmt.Println(" ", s)
		}
	default:
		fmt.Println("unknown command; \\help lists commands")
	}
	return false
}

func printResult(res *sconrep.Result, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResultOK(res)
}

func printResultOK(res *sconrep.Result) {
	if res == nil {
		fmt.Println("ok")
		return
	}
	if len(res.Columns) == 0 {
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
		return
	}
	for i, c := range res.Columns {
		if i > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(c)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				fmt.Print(" | ")
			}
			if v == nil {
				fmt.Print("NULL")
			} else {
				fmt.Print(v)
			}
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
