package sconrep

import (
	"strings"
	"testing"
)

func TestExecSchemaReachesEveryReplica(t *testing.T) {
	db, err := Open(Config{Replicas: 3, Mode: Coarse})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Bootstrap(func(b *Boot) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := db.ExecSchema(`CREATE TABLE late (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.ExecSchema(`CREATE INDEX late_v ON late (v)`); err != nil {
		t.Fatal(err)
	}

	// Writes through the replicated protocol must now succeed, and be
	// readable from every replica (coarse consistency loops sessions
	// across replicas).
	s := db.Session()
	defer s.Close()
	tx, err := s.Begin("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO late VALUES (1, 'x')`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tx, err := s.Begin("")
		if err != nil {
			t.Fatal(err)
		}
		res, err := tx.Exec(`SELECT v FROM late WHERE id = 1`)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].(string) != "x" {
			t.Fatalf("iteration %d: %v", i, res.Rows)
		}
	}

	// Schema errors carry the replica context.
	err = db.ExecSchema(`CREATE TABLE late (id INT PRIMARY KEY)`)
	if err == nil || !strings.Contains(err.Error(), "replica 0") {
		t.Fatalf("duplicate schema err = %v", err)
	}
}

func TestBeginWithTableSet(t *testing.T) {
	db, err := Open(Config{Replicas: 2, Mode: Fine, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Bootstrap(func(b *Boot) error {
		b.Exec(`CREATE TABLE hot (id INT PRIMARY KEY, n INT)`)
		b.Exec(`CREATE TABLE cold (id INT PRIMARY KEY, n INT)`)
		b.Exec(`INSERT INTO hot VALUES (1, 0)`)
		b.Exec(`INSERT INTO cold VALUES (1, 0)`)
		return b.Err()
	}); err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	// Update the hot table a few times.
	for i := 0; i < 3; i++ {
		tx, err := s.BeginWithTableSet("hot")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(`UPDATE hot SET n = n + 1 WHERE id = 1`); err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// A reader declaring only the cold table must not be blocked by the
	// hot traffic, and reads under the checker must stay consistent.
	fresh := db.SessionWithID("cold-reader")
	defer fresh.Close()
	tx, err := fresh.BeginWithTableSet("cold")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`SELECT n FROM cold WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.CheckConsistency(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}
