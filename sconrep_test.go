package sconrep

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func openTestDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := db.Bootstrap(func(b *Boot) error {
		b.Exec(`CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance FLOAT)`)
		b.Exec(`CREATE INDEX accounts_owner ON accounts (owner)`)
		b.Exec(`INSERT INTO accounts VALUES (1, 'ann', 100.0), (2, 'bob', 50.0), (3, 'ann', 10.0)`)
		return b.Err()
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenDefaults(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Replicas() != 1 {
		t.Fatalf("default replicas = %d", db.Replicas())
	}
	if db.Mode() != Eager {
		t.Fatalf("default mode = %v", db.Mode())
	}
}

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{Eager, Coarse, Fine, Session} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), back, err)
		}
	}
	if Session.Strong() {
		t.Error("Session marked strong")
	}
	if !Fine.Strong() {
		t.Error("Fine not marked strong")
	}
}

func TestBasicTransactions(t *testing.T) {
	db := openTestDB(t, Config{Replicas: 3, Mode: Coarse})
	s := db.Session()
	defer s.Close()

	tx, err := s.Begin("")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tx.Exec(`SELECT balance FROM accounts WHERE id = ?`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 100.0 {
		t.Fatalf("balance = %v", res.Rows[0][0])
	}
	if _, err := tx.Exec(`UPDATE accounts SET balance = balance - 10 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE accounts SET balance = balance + 10 WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Another session must see the transfer (strong consistency).
	s2 := db.Session()
	defer s2.Close()
	tx2, _ := s2.Begin("")
	res, err = tx2.Exec(`SELECT SUM(balance) FROM accounts`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 160.0 {
		t.Fatalf("sum = %v, want 160", res.Rows[0][0])
	}
	one, err := tx2.Exec(`SELECT balance FROM accounts WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if one.Rows[0][0].(float64) != 90.0 {
		t.Fatalf("account 1 = %v, want 90", one.Rows[0][0])
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedStatements(t *testing.T) {
	db := openTestDB(t, Config{Replicas: 2, Mode: Fine})
	get := MustPrepare(`SELECT balance FROM accounts WHERE id = ?`)
	upd := MustPrepare(`UPDATE accounts SET balance = ? WHERE id = ?`)
	db.RegisterTxn("setBalance", get, upd)

	if got := get.TableSet(); len(got) != 1 || got[0] != "accounts" {
		t.Fatalf("TableSet = %v", got)
	}
	if !get.ReadOnly() || upd.ReadOnly() {
		t.Fatal("ReadOnly flags wrong")
	}

	s := db.Session()
	defer s.Close()
	tx, err := s.Begin("setBalance")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Stmt(upd, 77.0, 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, _ = s.Begin("setBalance")
	res, err := tx.Stmt(get, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 77.0 {
		t.Fatalf("balance = %v", res.Rows[0][0])
	}
	_ = tx.Commit()
}

func TestMustPreparePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPrepare did not panic on bad SQL")
		}
	}()
	MustPrepare(`NOT SQL AT ALL`)
}

func TestConflictErrIsRetryable(t *testing.T) {
	db := openTestDB(t, Config{Replicas: 2, Mode: Coarse})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.SessionWithID(fmt.Sprintf("w%d", w))
			defer s.Close()
			for i := 0; i < 12; i++ {
				tx, err := s.Begin("")
				if err != nil {
					errs <- err
					continue
				}
				if _, err := tx.Exec(`UPDATE accounts SET balance = balance + 1 WHERE id = 1`); err != nil {
					tx.Abort()
					errs <- err
					continue
				}
				if err := tx.Commit(); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !IsRetryable(err) {
			t.Fatalf("non-retryable contention error: %v", err)
		}
		if !errors.Is(err, ErrConflict) {
			t.Fatalf("conflict not mapped to ErrConflict: %v", err)
		}
	}
}

func TestCrashRecoverThroughFacade(t *testing.T) {
	db := openTestDB(t, Config{Replicas: 3, Mode: Coarse})
	db.CrashReplica(2)
	s := db.Session()
	defer s.Close()
	for i := 0; i < 5; i++ {
		tx, err := s.Begin("")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(`UPDATE accounts SET balance = balance + 1 WHERE id = 2`); err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil && !IsRetryable(err) {
			t.Fatal(err)
		}
	}
	if err := db.RecoverReplica(2); err != nil {
		t.Fatal(err)
	}
	// Eventually the replica catches up.
	target := db.ReplicaVersion(0)
	for tries := 0; db.ReplicaVersion(2) < target; tries++ {
		if tries > 5000 {
			t.Fatalf("replica 2 stuck at %d < %d", db.ReplicaVersion(2), target)
		}
	}
}

func TestStatsAndVacuum(t *testing.T) {
	db := openTestDB(t, Config{Replicas: 2, Mode: Session})
	s := db.Session()
	defer s.Close()
	for i := 0; i < 5; i++ {
		tx, _ := s.Begin("")
		if _, err := tx.Exec(`UPDATE accounts SET balance = balance + 1 WHERE id = 3`); err != nil {
			tx.Abort()
			continue
		}
		_ = tx.Commit()
	}
	st := db.Stats()
	if st.Committed == 0 || st.Updates == 0 {
		t.Fatalf("stats = %+v", st)
	}
	db.Vacuum()
	tx, _ := s.Begin("")
	if _, err := tx.Exec(`SELECT * FROM accounts`); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
}

func TestConsistencyCheckers(t *testing.T) {
	db := openTestDB(t, Config{Replicas: 2, Mode: Coarse, RecordHistory: true})
	s := db.Session()
	defer s.Close()
	for i := 0; i < 10; i++ {
		tx, _ := s.Begin("")
		if _, err := tx.Exec(`UPDATE accounts SET balance = balance + 1 WHERE id = 1`); err != nil {
			tx.Abort()
			continue
		}
		_ = tx.Commit()
	}
	v, err := db.CheckConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("violations under CSC: %v", v)
	}
	if _, err := db.CheckSessionConsistency(); err != nil {
		t.Fatal(err)
	}

	// Without history recording, the checkers refuse.
	db2 := openTestDB(t, Config{Replicas: 1})
	if _, err := db2.CheckConsistency(); err == nil {
		t.Fatal("checker ran without history")
	}
}

func TestWALBackedOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.wal")
	db, err := Open(Config{Replicas: 2, Mode: Coarse, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Bootstrap(func(b *Boot) error {
		b.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
		b.Exec(`INSERT INTO t VALUES (1, 0)`)
		return b.Err()
	}); err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	tx, _ := s.Begin("")
	if _, err := tx.Exec(`UPDATE t SET v = 9 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapErrors(t *testing.T) {
	db, err := Open(Config{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.Bootstrap(func(b *Boot) error {
		b.Exec(`CREATE GARBAGE`)
		b.Exec(`this never runs`)
		return b.Err()
	})
	if err == nil {
		t.Fatal("bad bootstrap accepted")
	}
}

func TestBeginUnknownTxnNameUnderFine(t *testing.T) {
	db := openTestDB(t, Config{Replicas: 2, Mode: Fine, RecordHistory: true})
	s := db.Session()
	defer s.Close()
	// Unregistered name: must degrade to coarse, never lose strong
	// consistency.
	tx, err := s.Begin("never-registered")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`SELECT COUNT(*) FROM accounts`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.CheckConsistency(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}
