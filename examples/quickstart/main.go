// Command quickstart demonstrates the public API end to end: open a
// replicated cluster, bootstrap a schema, run transactions under
// fine-grained strong consistency, and inspect the result.
package main

import (
	"fmt"
	"log"

	"sconrep"
)

func main() {
	// Three replicas, fine-grained lazy strong consistency (FSC): the
	// paper's recommended configuration.
	db, err := sconrep.Open(sconrep.Config{
		Replicas:      3,
		Mode:          sconrep.Fine,
		RecordHistory: true, // enable the consistency checker
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Bootstrap runs deterministically on every replica.
	err = db.Bootstrap(func(b *sconrep.Boot) error {
		b.Exec(`CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance FLOAT)`)
		b.Exec(`CREATE INDEX accounts_owner ON accounts (owner)`)
		b.Exec(`INSERT INTO accounts VALUES
			(1, 'ann', 100.0),
			(2, 'bob', 50.0),
			(3, 'carla', 75.0)`)
		return b.Err()
	})
	if err != nil {
		log.Fatal(err)
	}

	// Register the transactions we run, so the fine-grained mode knows
	// each one's table-set up front.
	getBalance := sconrep.MustPrepare(`SELECT owner, balance FROM accounts WHERE id = ?`)
	transferOut := sconrep.MustPrepare(`UPDATE accounts SET balance = balance - ? WHERE id = ?`)
	transferIn := sconrep.MustPrepare(`UPDATE accounts SET balance = balance + ? WHERE id = ?`)
	db.RegisterTxn("transfer", getBalance, transferOut, transferIn)
	db.RegisterTxn("audit", getBalance)

	// A money transfer: one transaction, retried on conflict.
	alice := db.SessionWithID("alice")
	defer alice.Close()
	for {
		tx, err := alice.Begin("transfer")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tx.Stmt(transferOut, 25.0, 1); err != nil {
			tx.Abort()
			log.Fatal(err)
		}
		if _, err := tx.Stmt(transferIn, 25.0, 2); err != nil {
			tx.Abort()
			log.Fatal(err)
		}
		err = tx.Commit()
		if err == nil {
			break
		}
		if !sconrep.IsRetryable(err) {
			log.Fatal(err)
		}
		fmt.Println("conflict, retrying:", err)
	}

	// Strong consistency: a different client, possibly routed to a
	// different replica, immediately sees the transfer.
	bob := db.SessionWithID("bob")
	defer bob.Close()
	tx, err := bob.Begin("audit")
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []int{1, 2, 3} {
		res, err := tx.Stmt(getBalance, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("account %d: %-6s %6.2f\n", id, res.Rows[0][0], res.Rows[0][1])
	}
	res, err := tx.Exec(`SELECT COUNT(*), SUM(balance) FROM accounts`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total: %d accounts, %.2f across the bank\n", res.Rows[0][0], res.Rows[0][1])
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// The independent checker confirms no stale read slipped through.
	violations, err := db.CheckConsistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strong-consistency violations: %d\n", len(violations))

	st := db.Stats()
	fmt.Printf("stats: %d committed (%d updates), %d aborted\n",
		st.Committed, st.Updates, st.Aborted)
}
