// Command agents reproduces the paper's motivating example (§I): two
// automated clients under separate administrative domains communicate
// through a hidden channel the database cannot see. Agent A executes a
// trade on Agent B's behalf and notifies B out of band; B then queries
// the database and must observe the trade.
//
// Run it under session consistency to watch the anomaly the paper
// fixes, then under a strong mode to watch it disappear:
//
//	go run ./examples/agents -mode SC
//	go run ./examples/agents -mode FSC
package main

import (
	"flag"
	"fmt"
	"log"

	"sconrep"
)

func main() {
	modeFlag := flag.String("mode", "FSC", "consistency mode: ESC, CSC, FSC, or SC")
	rounds := flag.Int("rounds", 200, "number of trade/notify/read rounds")
	flag.Parse()

	mode, err := sconrep.ParseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}

	// SimulateLAN injects realistic propagation delay; without it the
	// replicas synchronize too fast to observe anything. TimeScale
	// compresses the paper-scale delays 10× so the demo runs quickly.
	db, err := sconrep.Open(sconrep.Config{
		Replicas:      4,
		Mode:          mode,
		SimulateLAN:   true,
		TimeScale:     1.0,
		RecordHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	err = db.Bootstrap(func(b *sconrep.Boot) error {
		b.Exec(`CREATE TABLE trades (
			id INT PRIMARY KEY,
			account TEXT,
			shares INT,
			status TEXT
		)`)
		b.Exec(`CREATE TABLE ticker (id INT PRIMARY KEY, px FLOAT)`)
		for i := 0; i < 64; i++ {
			b.Exec(`INSERT INTO ticker VALUES (?, 100.0)`, i)
		}
		return b.Err()
	})
	if err != nil {
		log.Fatal(err)
	}

	placeTrade := sconrep.MustPrepare(`INSERT INTO trades (id, account, shares, status) VALUES (?, ?, ?, 'FILLED')`)
	readTrade := sconrep.MustPrepare(`SELECT shares, status FROM trades WHERE id = ?`)
	tick := sconrep.MustPrepare(`UPDATE ticker SET px = px + 0.01 WHERE id = ?`)
	db.RegisterTxn("placeTrade", placeTrade)
	db.RegisterTxn("readTrade", readTrade)
	db.RegisterTxn("tick", tick)

	// Market-data noise: an unrelated feed keeps the refresh appliers
	// busy, which is what makes replicas lag in a loaded system. Note
	// it touches only the ticker table — under FSC, agent B''s trade
	// reads never wait for it.
	noiseStop := make(chan struct{})
	defer close(noiseStop)
	for n := 0; n < 6; n++ {
		go func(n int) {
			s := db.SessionWithID(fmt.Sprintf("feed-%d", n))
			defer s.Close()
			for i := 0; ; i++ {
				select {
				case <-noiseStop:
					return
				default:
				}
				tx, err := s.Begin("tick")
				if err != nil {
					return
				}
				if _, err := tx.Stmt(tick, (i*7+n)%64); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(n)
	}

	agentA := db.SessionWithID("agent-A") // the broker
	agentB := db.SessionWithID("agent-B") // the customer's auditor
	defer agentA.Close()
	defer agentB.Close()

	// The "hidden channel" is this goroutine handoff: A tells B the
	// trade is done the instant A's commit is acknowledged. The
	// database never sees this communication.
	stale := 0
	for round := 1; round <= *rounds; round++ {
		// Agent A: execute the trade and commit.
		tx, err := agentA.Begin("placeTrade")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tx.Stmt(placeTrade, round, "acct-B", 100+round); err != nil {
			tx.Abort()
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			if sconrep.IsRetryable(err) {
				continue
			}
			log.Fatal(err)
		}

		// Hidden channel: A notifies B (function call order here).
		// Agent B: verify the trade it was just told about.
		btx, err := agentB.Begin("readTrade")
		if err != nil {
			log.Fatal(err)
		}
		res, err := btx.Stmt(readTrade, round)
		if err != nil {
			btx.Abort()
			log.Fatal(err)
		}
		if err := btx.Commit(); err != nil {
			log.Fatal(err)
		}
		if len(res.Rows) == 0 {
			stale++
			if stale <= 5 {
				fmt.Printf("round %3d: agent B could NOT see the trade it was notified about!\n", round)
			}
		}
	}

	fmt.Printf("\nmode %s: %d/%d rounds agent B read stale data\n", mode, stale, *rounds)
	violations, err := db.CheckConsistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checker: %d strong-consistency violations recorded\n", len(violations))
	switch {
	case mode.Strong() && stale == 0:
		fmt.Println("=> strong consistency held: the hidden channel is safe.")
	case !mode.Strong() && stale > 0:
		fmt.Println("=> session consistency exposed the §I anomaly: B's reads ignored A's commits.")
	case !mode.Strong():
		fmt.Println("=> no anomaly observed this run (propagation won the race); try more -rounds.")
	default:
		fmt.Println("=> unexpected: strong mode showed stale reads — file a bug!")
	}
}
