// Command bookstore is a small e-commerce workload on the public API —
// the application class the paper's evaluation targets. It compares
// two consistency configurations side by side on the same workload:
// checkout transactions race against best-seller dashboards, and the
// program reports throughput, latency, and checker results for each.
//
//	go run ./examples/bookstore            # FSC (default)
//	go run ./examples/bookstore -mode ESC  # the eager baseline
package main

import (
	"flag"
	"fmt"
	"log"
	// det:unseeded-ok — demo traffic shaping only, never replayed
	"math/rand"
	"sync"
	"time"

	"sconrep"
)

var (
	stBrowse = sconrep.MustPrepare(`SELECT b.id, b.title, b.price, a.name
		FROM books b JOIN authors a ON b.author_id = a.id
		WHERE b.genre = ? ORDER BY b.title LIMIT 10`)
	stBestSellers = sconrep.MustPrepare(`SELECT b.title, SUM(s.qty) AS sold
		FROM sales s JOIN books b ON s.book_id = b.id
		GROUP BY b.title ORDER BY sold DESC LIMIT 5`)
	stStock   = sconrep.MustPrepare(`SELECT stock FROM books WHERE id = ?`)
	stSell    = sconrep.MustPrepare(`UPDATE books SET stock = stock - ? WHERE id = ?`)
	stRecord  = sconrep.MustPrepare(`INSERT INTO sales (id, book_id, qty, day) VALUES (?, ?, ?, ?)`)
	stRestock = sconrep.MustPrepare(`UPDATE books SET stock = stock + 50 WHERE id = ?`)
)

func main() {
	modeFlag := flag.String("mode", "FSC", "consistency mode: ESC, CSC, FSC, or SC")
	seconds := flag.Int("seconds", 3, "workload duration")
	flag.Parse()
	mode, err := sconrep.ParseMode(*modeFlag)
	if err != nil {
		log.Fatal(err)
	}

	db, err := sconrep.Open(sconrep.Config{
		Replicas:      4,
		Mode:          mode,
		SimulateLAN:   true,
		TimeScale:     1.0,
		RecordHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	genres := []string{"scifi", "mystery", "history", "poetry"}
	err = db.Bootstrap(func(b *sconrep.Boot) error {
		b.Exec(`CREATE TABLE authors (id INT PRIMARY KEY, name TEXT)`)
		b.Exec(`CREATE TABLE books (
			id INT PRIMARY KEY, title TEXT, author_id INT,
			genre TEXT, price FLOAT, stock INT)`)
		b.Exec(`CREATE INDEX books_genre ON books (genre)`)
		b.Exec(`CREATE TABLE sales (id INT PRIMARY KEY, book_id INT, qty INT, day INT)`)
		for a := 1; a <= 20; a++ {
			b.Exec(`INSERT INTO authors VALUES (?, ?)`, a, fmt.Sprintf("author-%02d", a))
		}
		for i := 1; i <= 200; i++ {
			b.Exec(`INSERT INTO books VALUES (?, ?, ?, ?, ?, ?)`,
				i, fmt.Sprintf("book %03d", i), 1+i%20, genres[i%len(genres)], 5.0+float64(i%40), 100)
		}
		return b.Err()
	})
	if err != nil {
		log.Fatal(err)
	}

	db.RegisterTxn("browse", stBrowse)
	db.RegisterTxn("dashboard", stBestSellers)
	db.RegisterTxn("checkout", stStock, stSell, stRecord)
	db.RegisterTxn("restock", stRestock)

	fmt.Printf("bookstore under %s with 4 replicas — running %ds of mixed load...\n", mode, *seconds)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var saleID int64 = 1 << 32

	worker := func(id int, checkoutPct int) {
		defer wg.Done()
		s := db.SessionWithID(fmt.Sprintf("shopper-%d", id))
		defer s.Close()
		rng := rand.New(rand.NewSource(int64(id)))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rng.Intn(100) < checkoutPct {
				// Checkout: read stock, decrement, record the sale.
				book := 1 + rng.Intn(200)
				tx, err := s.Begin("checkout")
				if err != nil {
					continue
				}
				res, err := tx.Stmt(stStock, book)
				if err != nil || len(res.Rows) == 0 {
					tx.Abort()
					continue
				}
				qty := 1 + rng.Intn(3)
				if int(res.Rows[0][0].(int64)) < qty {
					tx.Abort()
					// Separate restock transaction.
					rtx, err := s.Begin("restock")
					if err == nil {
						if _, err := rtx.Stmt(stRestock, book); err == nil {
							_ = rtx.Commit()
						} else {
							rtx.Abort()
						}
					}
					continue
				}
				if _, err := tx.Stmt(stSell, qty, book); err != nil {
					tx.Abort()
					continue
				}
				id := saleID + rng.Int63n(1<<30) // collision-unlikely demo IDs
				if _, err := tx.Stmt(stRecord, id, book, qty, 1); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit() // conflicts just retry next loop
			} else if rng.Intn(2) == 0 {
				// Browse a genre.
				tx, err := s.Begin("browse")
				if err != nil {
					continue
				}
				if _, err := tx.Stmt(stBrowse, genres[rng.Intn(len(genres))]); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			} else {
				// The manager dashboard: best sellers so far.
				tx, err := s.Begin("dashboard")
				if err != nil {
					continue
				}
				if _, err := tx.Stmt(stBestSellers); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}
	}

	for i := 0; i < 12; i++ {
		wg.Add(1)
		go worker(i, 30)
	}
	time.Sleep(time.Duration(*seconds) * time.Second)
	close(stop)
	wg.Wait()

	st := db.Stats()
	fmt.Printf("\n%-22s %v\n", "mode:", mode)
	fmt.Printf("%-22s %d (%d updates, %d reads)\n", "committed:", st.Committed, st.Updates, st.ReadOnly)
	fmt.Printf("%-22s %d\n", "aborted (conflicts):", st.Aborted)
	fmt.Printf("%-22s %.1f\n", "throughput (TPS):", st.TPS)
	fmt.Printf("%-22s %.2f ms\n", "mean response:", st.MeanResponseSeconds*1000)

	violations, err := db.CheckConsistency()
	if err != nil {
		log.Fatal(err)
	}
	if mode.Strong() {
		fmt.Printf("%-22s %d (must be 0 under %s)\n", "stale reads:", len(violations), mode)
	} else {
		fmt.Printf("%-22s %d (allowed under SC)\n", "stale reads:", len(violations))
	}

	// Final dashboard through a fresh session.
	s := db.Session()
	defer s.Close()
	tx, err := s.Begin("dashboard")
	if err != nil {
		log.Fatal(err)
	}
	res, err := tx.Stmt(stBestSellers)
	if err != nil {
		log.Fatal(err)
	}
	_ = tx.Commit()
	fmt.Println("\nbest sellers:")
	for _, r := range res.Rows {
		fmt.Printf("  %-12s %4d sold\n", r[0], r[1])
	}
}
