// Package sconrep is a replicated in-memory SQL database that provides
// strong consistency for a bargain — a faithful implementation of
// Krikellas, Elnikety, Vagena & Hodson, "Strongly consistent
// replication for a bargain" (ICDE 2010).
//
// A cluster of multi-master replicas executes snapshot-isolated SQL
// transactions; a certifier orders and certifies update transactions
// and lazily propagates their writesets; a load balancer routes
// transactions and — this is the paper's contribution — delays each
// transaction's start just long enough for its replica to be current,
// giving clients the semantics of a single centralized database:
//
//	ESC (Eager)   — classic eager strong consistency: commits wait for
//	                every replica (slow, the baseline to beat).
//	CSC (Coarse)  — lazy coarse-grained strong consistency: begin waits
//	                until the replica has applied ALL committed updates.
//	FSC (Fine)    — lazy fine-grained strong consistency: begin waits
//	                only for the tables the transaction touches.
//	SC  (Session) — session consistency: weaker; each client only sees
//	                its own updates (the performance upper bound).
//
// Quick start:
//
//	db, _ := sconrep.Open(sconrep.Config{Replicas: 3, Mode: sconrep.Fine})
//	defer db.Close()
//	db.Bootstrap(func(b *sconrep.Boot) error {
//		b.Exec(`CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT)`)
//		b.Exec(`INSERT INTO accounts VALUES (1, 100.0), (2, 50.0)`)
//		return b.Err()
//	})
//	s := db.Session()
//	tx, _ := s.Begin("transfer")
//	tx.Exec(`UPDATE accounts SET balance = balance - 10 WHERE id = 1`)
//	tx.Exec(`UPDATE accounts SET balance = balance + 10 WHERE id = 2`)
//	tx.Commit()
package sconrep

import (
	"errors"
	"fmt"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/history"
	"sconrep/internal/latency"
	"sconrep/internal/replica"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
	"sconrep/internal/wal"
)

// Mode selects the consistency configuration.
type Mode int

// The four configurations of the paper (§III, §IV).
const (
	Eager Mode = iota
	Coarse
	Fine
	Session
)

// String returns the paper-style label (ESC/CSC/FSC/SC).
func (m Mode) String() string { return m.internal().String() }

// Strong reports whether the mode guarantees strong consistency.
func (m Mode) Strong() bool { return m.internal().Strong() }

func (m Mode) internal() core.Mode {
	switch m {
	case Eager:
		return core.Eager
	case Coarse:
		return core.Coarse
	case Fine:
		return core.Fine
	default:
		return core.Session
	}
}

// ParseMode resolves "ESC", "CSC", "FSC", "SC" (and lowercase
// synonyms eager/coarse/fine/session).
func ParseMode(s string) (Mode, error) {
	cm, err := core.ParseMode(s)
	if err != nil {
		return 0, err
	}
	switch cm {
	case core.Eager:
		return Eager, nil
	case core.Coarse:
		return Coarse, nil
	case core.Fine:
		return Fine, nil
	default:
		return Session, nil
	}
}

// Config configures a replicated database.
type Config struct {
	// Replicas is the number of database replicas (default 1).
	Replicas int
	// Mode is the consistency configuration (default Eager — the
	// zero value is the conservative choice).
	Mode Mode
	// SimulateLAN injects the paper's testbed costs (network hops,
	// commit I/O, writeset application), scaled by TimeScale. Without
	// it the cluster runs at raw in-memory speed.
	SimulateLAN bool
	// TimeScale compresses (<1) or stretches (>1) simulated delays;
	// 0 means 1.0.
	TimeScale float64
	// Seed makes simulated jitter deterministic.
	Seed int64
	// WALPath, when set, makes the certifier's decision log durable in
	// that file; otherwise the log is in memory.
	WALPath string
	// RecordHistory enables the consistency-violation checker (see
	// DB.CheckConsistency).
	RecordHistory bool
	// DisableEarlyCert turns off early certification.
	DisableEarlyCert bool
}

// DB is a running replicated database.
type DB struct {
	c   *cluster.Cluster
	w   *wal.Log
	cfg Config
}

// Open starts a cluster.
func Open(cfg Config) (*DB, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	var model latency.Model
	if cfg.SimulateLAN {
		scale := cfg.TimeScale
		if scale == 0 {
			scale = 1.0
		}
		model = latency.DefaultLAN().Scaled(scale)
	}
	var log *wal.Log
	if cfg.WALPath != "" {
		var err error
		log, err = wal.Open(cfg.WALPath)
		if err != nil {
			return nil, err
		}
	}
	c, err := cluster.New(cluster.Config{
		Replicas:         cfg.Replicas,
		Mode:             cfg.Mode.internal(),
		Latency:          model,
		Seed:             cfg.Seed,
		WAL:              log,
		RecordHistory:    cfg.RecordHistory,
		DisableEarlyCert: cfg.DisableEarlyCert,
	})
	if err != nil {
		return nil, err
	}
	return &DB{c: c, w: log, cfg: cfg}, nil
}

// Close shuts the cluster down.
func (db *DB) Close() {
	db.c.Close()
	if db.w != nil {
		_ = db.w.Close()
	}
}

// Mode returns the configured consistency mode.
func (db *DB) Mode() Mode { return db.cfg.Mode }

// Replicas returns the replica count.
func (db *DB) Replicas() int { return db.c.NumReplicas() }

// Boot executes bootstrap statements against one replica during
// Bootstrap. Errors are sticky: after the first failure subsequent
// Exec calls are no-ops and Err returns the failure.
type Boot struct {
	e   *storage.Engine
	err error
}

// Exec runs one DDL or DML statement (its own transaction).
func (b *Boot) Exec(q string, args ...any) {
	if b.err != nil {
		return
	}
	tx := b.e.Begin()
	if _, err := sql.Exec(tx, b.e, q, args...); err != nil {
		tx.Abort()
		b.err = fmt.Errorf("sconrep: bootstrap %q: %w", q, err)
		return
	}
	if _, err := tx.CommitLocal(); err != nil {
		b.err = fmt.Errorf("sconrep: bootstrap commit: %w", err)
	}
}

// Err returns the first error, if any.
func (b *Boot) Err() error { return b.err }

// Bootstrap loads the initial schema and data. The function runs once
// per replica and must be deterministic (same statements, same
// order). Call it exactly once, before any sessions.
func (db *DB) Bootstrap(fn func(*Boot) error) error {
	return db.c.LoadData(func(e *storage.Engine) error {
		b := &Boot{e: e}
		if err := fn(b); err != nil {
			return err
		}
		return b.err
	})
}

// ExecSchema applies a DDL statement (CREATE TABLE / CREATE INDEX) to
// every replica. Schema changes are not replicated through the commit
// protocol (the paper's prototype pre-creates the TPC-W schema); this
// is the managed way to roll one out after Bootstrap.
func (db *DB) ExecSchema(q string) error {
	for i := 0; i < db.c.NumReplicas(); i++ {
		e := db.c.Replica(i).Engine()
		tx := e.Begin()
		_, err := sql.Exec(tx, e, q)
		tx.Abort() // DDL is engine-level; nothing to commit
		if err != nil {
			return fmt.Errorf("sconrep: schema on replica %d: %w", i, err)
		}
	}
	return nil
}

// Stmt is a prepared statement, shareable across sessions.
type Stmt struct{ p *sql.Prepared }

// Prepare parses a statement once. The statement's table-set feeds the
// fine-grained consistency mode.
func Prepare(q string) (*Stmt, error) {
	p, err := sql.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &Stmt{p: p}, nil
}

// MustPrepare is Prepare that panics on error — for package-level
// statement variables.
func MustPrepare(q string) *Stmt {
	s, err := Prepare(q)
	if err != nil {
		panic(err)
	}
	return s
}

// TableSet returns the tables the statement touches.
func (s *Stmt) TableSet() []string { return append([]string(nil), s.p.TableSet...) }

// ReadOnly reports whether the statement cannot modify data.
func (s *Stmt) ReadOnly() bool { return s.p.ReadOnly }

// RegisterTxn declares a named transaction and the statements it may
// execute. Under Fine mode the union of their table-sets becomes the
// transaction's synchronization set; unregistered names degrade to
// coarse-grained treatment (still strongly consistent).
func (db *DB) RegisterTxn(name string, stmts ...*Stmt) {
	ps := make([]*sql.Prepared, len(stmts))
	for i, s := range stmts {
		ps[i] = s.p
	}
	db.c.RegisterTxn(name, ps...)
}

// SessionHandle is one client connection. Transactions within a
// session are serial.
type SessionHandle struct{ s *cluster.Session }

// Session opens a session with a generated ID.
func (db *DB) Session() *SessionHandle {
	return &SessionHandle{s: db.c.NewSession()}
}

// SessionWithID opens a session with an explicit ID (one ID = one
// client for the session-consistency bookkeeping).
func (db *DB) SessionWithID(id string) *SessionHandle {
	return &SessionHandle{s: db.c.SessionWithID(id)}
}

// Close releases the session's accounting.
func (s *SessionHandle) Close() { s.s.Close() }

// ID returns the session identifier.
func (s *SessionHandle) ID() string { return s.s.ID() }

// Result is the outcome of one statement.
type Result struct {
	Columns  []string
	Rows     [][]any
	Affected int
}

func fromSQLResult(r *sql.Result) *Result {
	if r == nil {
		return nil
	}
	return &Result{Columns: r.Columns, Rows: r.Rows, Affected: r.Affected}
}

// Tx is one transaction in flight.
type Tx struct{ tx *cluster.Tx }

// Begin starts a transaction. txnName identifies the transaction for
// fine-grained synchronization; pass "" when not using Fine mode or
// when the name is unknown (strong consistency is preserved either
// way).
func (s *SessionHandle) Begin(txnName string) (*Tx, error) {
	tx, err := s.s.Begin(txnName)
	if err != nil {
		return nil, err
	}
	return &Tx{tx: tx}, nil
}

// BeginWithTableSet starts a transaction tagged with an explicit
// table-set instead of a registered name — useful when the application
// computes its access set dynamically (the paper's footnote-1
// variant). Under non-Fine modes the set is ignored.
func (s *SessionHandle) BeginWithTableSet(tables ...string) (*Tx, error) {
	tx, err := s.s.BeginTables(tables)
	if err != nil {
		return nil, err
	}
	return &Tx{tx: tx}, nil
}

// Exec runs an ad-hoc SQL statement inside the transaction.
func (t *Tx) Exec(q string, args ...any) (*Result, error) {
	r, err := t.tx.ExecSQL(q, args...)
	return fromSQLResult(r), err
}

// Stmt runs a prepared statement inside the transaction.
func (t *Tx) Stmt(st *Stmt, args ...any) (*Result, error) {
	r, err := t.tx.Exec(st.p, args...)
	return fromSQLResult(r), err
}

// Commit finishes the transaction. ErrConflict means a concurrent
// transaction won certification; retry the whole transaction.
func (t *Tx) Commit() error {
	_, err := t.tx.Commit()
	if err != nil {
		return mapErr(err)
	}
	return nil
}

// Abort discards the transaction.
func (t *Tx) Abort() { t.tx.Abort() }

// Snapshot returns the database version the transaction reads.
func (t *Tx) Snapshot() uint64 { return t.tx.Snapshot() }

// Errors surfaced by Commit/Exec.
var (
	// ErrConflict is a certification (or early-certification) abort:
	// retry the transaction.
	ErrConflict = errors.New("sconrep: write conflict, retry the transaction")
	// ErrUnavailable means the contacted replica crashed mid-flight.
	ErrUnavailable = errors.New("sconrep: replica unavailable, retry")
)

func mapErr(err error) error {
	switch {
	case errors.Is(err, replica.ErrCertifyConflict), errors.Is(err, replica.ErrEarlyAbort):
		return fmt.Errorf("%w: %v", ErrConflict, err)
	case errors.Is(err, replica.ErrCrashed):
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	default:
		return err
	}
}

// IsRetryable reports whether the error warrants re-running the
// transaction.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrConflict) || errors.Is(err, ErrUnavailable) ||
		errors.Is(err, replica.ErrCertifyConflict) || errors.Is(err, replica.ErrEarlyAbort) ||
		errors.Is(err, replica.ErrCrashed)
}

// CrashReplica detaches replica i (fault injection). Its durable state
// is retained.
func (db *DB) CrashReplica(i int) { db.c.Replica(i).Crash() }

// RecoverReplica reattaches a crashed replica and catches it up.
func (db *DB) RecoverReplica(i int) error { return db.c.Replica(i).Recover() }

// ReplicaVersion returns replica i's Vlocal (monitoring).
func (db *DB) ReplicaVersion(i int) uint64 { return db.c.Replica(i).Version() }

// Vacuum reclaims storage across the cluster.
func (db *DB) Vacuum() { db.c.VacuumAll() }

// Stats summarizes committed/aborted counts and latency since the
// cluster started (or since the collector was last reset).
type Stats struct {
	Committed, Aborted  int64
	ReadOnly, Updates   int64
	TPS                 float64
	MeanResponseSeconds float64
}

// Stats returns current cluster statistics.
func (db *DB) Stats() Stats {
	s := db.c.Collector().Snapshot()
	return Stats{
		Committed: s.Committed, Aborted: s.Aborted,
		ReadOnly: s.ReadOnly, Updates: s.Updates,
		TPS:                 s.TPS,
		MeanResponseSeconds: s.MeanResponse.Seconds(),
	}
}

// CheckConsistency runs the strong-consistency checker (Definition 1)
// over the recorded history. It returns a description of each
// violation (empty = consistent). Requires Config.RecordHistory.
func (db *DB) CheckConsistency() ([]string, error) {
	rec := db.c.Recorder()
	if rec == nil {
		return nil, errors.New("sconrep: RecordHistory not enabled")
	}
	var out []string
	for _, v := range history.CheckStrong(rec.Events()) {
		out = append(out, v.String())
	}
	return out, nil
}

// CheckSessionConsistency runs the session-consistency checker
// (Definition 2) over the recorded history.
func (db *DB) CheckSessionConsistency() ([]string, error) {
	rec := db.c.Recorder()
	if rec == nil {
		return nil, errors.New("sconrep: RecordHistory not enabled")
	}
	var out []string
	for _, v := range history.CheckSession(rec.Events()) {
		out = append(out, v.String())
	}
	return out, nil
}
