# sconrep build/test/bench targets.

GO ?= go

.PHONY: all build test race vet lint update-schema ci chaos recovery bench bench-hotpath fuzz-smoke sweep examples clean

# Pinned external linter versions (CI installs these; locally they run
# only when already on PATH — the build never downloads tools).
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...
	gofmt -l .

# Project-specific static analysis (sconrep-vet: FSC table-sets, lock
# discipline, chaos determinism, wire-schema compatibility, lock-order
# deadlock analysis) plus staticcheck/govulncheck when installed.
# sconrep-vet must run from the module root: its loader resolves
# module-local imports through the source importer, and the wirecompat
# analyzer reads internal/wire/schema.lock relative to it. -strict
# promotes warnings to failures, keeping the committed tree clean of
# both. After intentional wire evolution run `make update-schema`.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/sconrep-vet -strict ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI pins $(STATICCHECK_VERSION))"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (CI pins $(GOVULNCHECK_VERSION))"; fi

# Regenerate the committed wire schema lock after intentional
# protocol evolution; the diff is the review artifact (CI's
# schema-drift step fails if the lock is stale).
update-schema:
	$(GO) run ./cmd/sconrep-vet -update-schema ./...

# The same gate CI runs (.github/workflows/ci.yml): build, vet,
# sconrep-vet, formatting (fails on any unformatted file), tests, race
# tests.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/sconrep-vet -strict ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) test ./...
	$(GO) test -race ./internal/...

# Seeded chaos harness: fault-injected TPC-W over the networked
# cluster, oracle-checked in all four modes, under the race detector.
# -run TestChaos matches both the single-sequencer runs and
# TestChaosSharded (4-shard certifier, version-order oracle).
# Replay one failing seed with:
#   SCONREP_CHAOS_SEED=<s> $(GO) test -race -run 'TestChaos/<mode>' ./internal/cluster/
chaos:
	SCONREP_CHAOS_SEEDS=8 $(GO) test -race -run TestChaos -count=1 -timeout 20m ./internal/cluster/

# Crash-recovery chaos: durable replicas kill -9'd mid-apply, mid-
# checkpoint, and with a torn WAL tail, restarted from disk under
# fault-injected TPC-W, oracle-checked and byte-compared against a
# never-crashed peer in all four modes. Replay a failing seed with:
#   SCONREP_CHAOS_SEED=<s> $(GO) test -race -run TestCrashRecoveryChaos ./internal/cluster/
recovery:
	SCONREP_CHAOS_SEEDS=8 $(GO) test -race -run TestCrashRecovery -count=1 -timeout 20m ./internal/cluster/

# Smoke-sized benchmarks: one per paper table/figure, plus module
# micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmarks: group-applied refresh batches (serial, parallel
# conflict-aware, fully-conflicting fallback) vs the seed's
# per-writeset path, sharded certification throughput (1 vs 4
# sequencers over disjoint / cross-shard / single-hot-table
# workloads), the 100k-entry History lookup, refresh streaming
# over a real TCP link in both stream codecs (gob and the negotiated
# binary one), per-replica refresh bytes under partial shard
# subscriptions, and disk restart (checkpoint restore + WAL replay vs
# full history replay). Results land in BENCH_hotpath.json (committed,
# so before/after numbers travel with the code); benchjson -require
# fails the run if any expected benchmark went missing. Override
# BENCHTIME for quicker smoke runs (CI uses 100ms).
BENCHTIME ?= 1s
HOTPATH_BENCH = BenchmarkRefreshApply|BenchmarkCertifyThroughput|BenchmarkHistoryLookup|BenchmarkWireRefreshStream|BenchmarkWirePartialSubscription|BenchmarkTraceOverhead|BenchmarkRecovery
HOTPATH_REQUIRE = BenchmarkRefreshApply/batched,BenchmarkRefreshApply/parallel,BenchmarkRefreshApply/conflicting,BenchmarkRefreshApply/perwriteset,BenchmarkCertifyThroughput/1shard,BenchmarkCertifyThroughput/4shard-disjoint,BenchmarkCertifyThroughput/4shard-crossmix,BenchmarkCertifyThroughput/4shard-conflicting,BenchmarkHistoryLookup/tail,BenchmarkWireRefreshStream/gob,BenchmarkWireRefreshStream/binary,BenchmarkWirePartialSubscription/full,BenchmarkWirePartialSubscription/half,BenchmarkWirePartialSubscription/quarter,BenchmarkTraceOverhead/disabled,BenchmarkTraceOverhead/enabled,BenchmarkRecovery/restore,BenchmarkRecovery/fullhistory
bench-hotpath:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchmem -benchtime $(BENCHTIME) \
		./internal/replica/ ./internal/certifier/ ./internal/wire/ ./internal/pstore/ \
		| tee bench_output.txt
	$(GO) run ./cmd/benchjson -require '$(HOTPATH_REQUIRE)' < bench_output.txt > BENCH_hotpath.json
	@rm -f bench_output.txt
	@echo "wrote BENCH_hotpath.json"

# Fuzz smoke: the three parsers that face bytes off disk or the wire —
# the binary refresh codec, WAL frame replay (torn tails and bit rot),
# and checkpoint snapshot load — each long enough to shake out parser
# regressions without stalling CI. Override FUZZTIME for longer local
# runs.
FUZZTIME ?= 15s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRefreshCodec -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzCheckpointLoad -fuzztime $(FUZZTIME) ./internal/pstore/

# Full evaluation sweep (regenerates every figure; ~15 minutes).
sweep:
	$(GO) run ./cmd/sconrep-bench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/agents -mode SC -rounds 100
	$(GO) run ./examples/agents -mode FSC -rounds 100
	$(GO) run ./examples/bookstore -seconds 2

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
