// Package micro implements the §V-B micro-benchmark: four tables of
// 10,000 rows (integer key, integer field, 100-character text field);
// per table, one read-only transaction fetching a random row and one
// update transaction modifying a random row. The read/update mix is
// the experiment's control variable.
package micro

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/replica"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
)

// NumTables is fixed by the benchmark definition.
const NumTables = 4

// Scale controls table size; the paper uses 10,000 rows per table.
type Scale struct {
	RowsPerTable int
	Seed         int64
}

// DefaultScale matches the paper.
func DefaultScale() Scale { return Scale{RowsPerTable: 10000, Seed: 20100302} }

func tableName(i int) string { return fmt.Sprintf("micro%d", i) }

// Load creates and populates the four tables deterministically.
func Load(e *storage.Engine, s Scale) error {
	filler := strings.Repeat("x", 100)
	for t := 0; t < NumTables; t++ {
		if err := e.CreateTable(&storage.Schema{
			Table: tableName(t),
			Columns: []storage.Column{
				{Name: "id", Type: storage.TInt},
				{Name: "val", Type: storage.TInt},
				{Name: "txt", Type: storage.TString},
			},
			Key: []string{"id"},
		}); err != nil {
			return err
		}
		tx := e.Begin()
		for i := 0; i < s.RowsPerTable; i++ {
			if err := tx.Insert(tableName(t), []any{int64(i), int64(i), filler}); err != nil {
				return err
			}
		}
		if _, err := tx.CommitLocal(); err != nil {
			return fmt.Errorf("micro: loading %s: %w", tableName(t), err)
		}
	}
	return nil
}

// Statements: one read and one update per table.
var (
	readStmts   [NumTables]*sql.Prepared
	updateStmts [NumTables]*sql.Prepared
)

func init() {
	for t := 0; t < NumTables; t++ {
		var err error
		readStmts[t], err = sql.Prepare(fmt.Sprintf(`SELECT val, txt FROM %s WHERE id = ?`, tableName(t)))
		if err != nil {
			panic(err)
		}
		updateStmts[t], err = sql.Prepare(fmt.Sprintf(`UPDATE %s SET val = val + 1 WHERE id = ?`, tableName(t)))
		if err != nil {
			panic(err)
		}
	}
}

// ReadTxnName / UpdateTxnName are the registered transaction
// identifiers the fine-grained mode resolves.
func ReadTxnName(table int) string   { return fmt.Sprintf("micro.read%d", table) }
func UpdateTxnName(table int) string { return fmt.Sprintf("micro.update%d", table) }

// RegisterAll registers the eight transactions' table-sets.
func RegisterAll(c *cluster.Cluster) {
	for t := 0; t < NumTables; t++ {
		c.RegisterTxn(ReadTxnName(t), readStmts[t])
		c.RegisterTxn(UpdateTxnName(t), updateStmts[t])
	}
}

// Client is one closed-loop micro-benchmark client issuing
// back-to-back transactions (no think time, per §V-B).
type Client struct {
	Scale Scale
	// UpdatePercent ∈ [0,100] selects the transaction mix.
	UpdatePercent int
	// Retries bounds retry attempts after aborts.
	Retries int
	// UpdateTables / ReadTables restrict which tables the client
	// touches (nil = all). The granularity ablation uses a disjoint
	// split so fine-grained synchronization has read-only tables to
	// exploit.
	UpdateTables []int
	ReadTables   []int
}

// Run drives the client until stop closes; returns completed
// transactions.
func (cl *Client) Run(c *cluster.Cluster, clientID int, stop <-chan struct{}) int {
	s := c.SessionWithID(fmt.Sprintf("micro-%d", clientID))
	defer s.Close()
	rng := rand.New(rand.NewSource(int64(clientID)*6364136223846793005 + cl.Scale.Seed))
	completed := 0
	for {
		select {
		case <-stop:
			return completed
		default:
		}
		isUpdate := rng.Intn(100) < cl.UpdatePercent
		table := cl.pickTable(rng, isUpdate)
		row := int64(rng.Intn(cl.Scale.RowsPerTable))
		err := cl.runOne(s, table, row, isUpdate)
		for attempt := 0; err != nil && attempt < cl.Retries && retryable(err); attempt++ {
			err = cl.runOne(s, table, row, isUpdate)
		}
		if err == nil {
			completed++
		}
	}
}

// pickTable selects a table honoring the client's restrictions.
func (cl *Client) pickTable(rng *rand.Rand, isUpdate bool) int {
	pool := cl.ReadTables
	if isUpdate {
		pool = cl.UpdateTables
	}
	if len(pool) == 0 {
		return rng.Intn(NumTables)
	}
	return pool[rng.Intn(len(pool))]
}

func (cl *Client) runOne(s *cluster.Session, table int, row int64, isUpdate bool) error {
	if isUpdate {
		tx, err := s.Begin(UpdateTxnName(table))
		if err != nil {
			return err
		}
		if _, err := tx.Exec(updateStmts[table], row); err != nil {
			tx.Abort()
			return err
		}
		_, err = tx.Commit()
		return err
	}
	tx, err := s.Begin(ReadTxnName(table))
	if err != nil {
		return err
	}
	if _, err := tx.Exec(readStmts[table], row); err != nil {
		tx.Abort()
		return err
	}
	_, err = tx.Commit()
	return err
}

func retryable(err error) bool {
	return errors.Is(err, replica.ErrCertifyConflict) || errors.Is(err, replica.ErrEarlyAbort)
}

// RunClients launches n clients for the given duration after a warm-up
// interval, resetting the cluster's collector at the measurement
// boundary. It returns when all clients have stopped.
func RunClients(c *cluster.Cluster, n int, cl Client, warmup, measure time.Duration) {
	stop := make(chan struct{})
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(id int) {
			cl.Run(c, id, stop)
			done <- struct{}{}
		}(i)
	}
	time.Sleep(warmup)
	c.Collector().Reset()
	time.Sleep(measure)
	close(stop)
	for i := 0; i < n; i++ {
		<-done
	}
}
