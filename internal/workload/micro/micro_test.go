package micro

import (
	"testing"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/storage"
)

func smallScale() Scale { return Scale{RowsPerTable: 200, Seed: 5} }

func TestLoad(t *testing.T) {
	e := storage.NewEngine()
	if err := Load(e, smallScale()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumTables; i++ {
		if got := e.RowEstimate(tableName(i)); got != 200 {
			t.Fatalf("%s has %d rows", tableName(i), got)
		}
	}
	if e.Version() != NumTables {
		t.Fatalf("load version = %d, want %d", e.Version(), NumTables)
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, b := storage.NewEngine(), storage.NewEngine()
	_ = Load(a, smallScale())
	_ = Load(b, smallScale())
	if a.Version() != b.Version() {
		t.Fatal("versions differ")
	}
}

func newMicroCluster(t *testing.T, replicas int, mode core.Mode) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Replicas: replicas, Mode: mode, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadData(func(e *storage.Engine) error { return Load(e, smallScale()) }); err != nil {
		t.Fatal(err)
	}
	RegisterAll(c)
	t.Cleanup(c.Close)
	return c
}

func TestClientMixes(t *testing.T) {
	for _, pct := range []int{0, 50, 100} {
		c := newMicroCluster(t, 2, core.Fine)
		cl := Client{Scale: smallScale(), UpdatePercent: pct, Retries: 2}
		stop := make(chan struct{})
		res := make(chan int, 1)
		go func() { res <- cl.Run(c, 1, stop) }()
		time.Sleep(200 * time.Millisecond)
		close(stop)
		if n := <-res; n == 0 {
			t.Fatalf("pct=%d: no transactions completed", pct)
		}
		snap := c.Collector().Snapshot()
		switch pct {
		case 0:
			if snap.Updates != 0 {
				t.Fatalf("pct=0 recorded %d updates", snap.Updates)
			}
		case 100:
			if snap.ReadOnly != 0 {
				t.Fatalf("pct=100 recorded %d reads", snap.ReadOnly)
			}
		}
	}
}

func TestUpdatesReplicate(t *testing.T) {
	c := newMicroCluster(t, 3, core.Coarse)
	cl := Client{Scale: smallScale(), UpdatePercent: 100, Retries: 2}
	stop := make(chan struct{})
	res := make(chan int, 1)
	go func() { res <- cl.Run(c, 7, stop) }()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	n := <-res
	if n == 0 {
		t.Fatal("no updates committed")
	}
	// Every replica converges to the certifier version.
	final := c.Certifier().Version()
	deadline := time.After(5 * time.Second)
	for i := 0; i < c.NumReplicas(); i++ {
		for c.Replica(i).Version() < final {
			select {
			case <-deadline:
				t.Fatalf("replica %d stuck at %d < %d", i, c.Replica(i).Version(), final)
			case <-time.After(time.Millisecond):
			}
		}
	}
}

func TestRunClients(t *testing.T) {
	c := newMicroCluster(t, 2, core.Session)
	RunClients(c, 3, Client{Scale: smallScale(), UpdatePercent: 25, Retries: 2},
		50*time.Millisecond, 150*time.Millisecond)
	snap := c.Collector().Snapshot()
	if snap.Committed == 0 {
		t.Fatal("measurement interval recorded nothing")
	}
	if snap.TPS <= 0 {
		t.Fatalf("TPS = %v", snap.TPS)
	}
}
