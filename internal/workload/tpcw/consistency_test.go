package tpcw

import (
	"testing"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/history"
	"sconrep/internal/latency"
	"sconrep/internal/storage"
)

// TestTPCWStrongConsistency drives the ordering mix (the most
// update-intensive) with a slow-propagation latency model under every
// strong mode and verifies the recorded history against Definition 1.
// The FSC run also exercises the table-aware branch of the checker.
func TestTPCWStrongConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration load test")
	}
	lat := latency.Model{
		OneWay:        200 * time.Microsecond,
		ApplyWriteSet: 4 * time.Millisecond,
		LocalCommit:   500 * time.Microsecond,
		CommitIO:      1 * time.Millisecond,
		Jitter:        0.3,
		TailProb:      0.1,
		TailFactor:    6,
		Scale:         1,
	}
	for _, mode := range []core.Mode{core.Coarse, core.Fine, core.Eager} {
		t.Run(mode.String(), func(t *testing.T) {
			c, err := cluster.New(cluster.Config{
				Replicas: 3, Mode: mode, Latency: lat, Seed: 71, RecordHistory: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			sc := Scale{Items: 100, Customers: 80, Seed: 99}
			if err := c.LoadData(func(e *storage.Engine) error { return Load(e, sc) }); err != nil {
				t.Fatal(err)
			}
			RegisterAll(c)

			eb := &EB{Mix: OrderingMix(), Scale: sc, ThinkTime: 0, Retries: 3}
			stop := make(chan struct{})
			done := make(chan int, 4)
			for i := 0; i < 4; i++ {
				go func(i int) { done <- eb.Run(c, 200+i, stop) }(i)
			}
			time.Sleep(700 * time.Millisecond)
			close(stop)
			total := 0
			for i := 0; i < 4; i++ {
				total += <-done
			}
			if total < 10 {
				t.Fatalf("only %d interactions completed", total)
			}
			events := c.Recorder().Events()
			if v := history.CheckStrong(events); len(v) > 0 {
				t.Fatalf("%s: %d strong-consistency violations over %d events; first: %s",
					mode, len(v), len(events), v[0])
			}
			// Table-aware session consistency must hold for every lazy
			// strong mode.
			if v := history.CheckSession(events); len(v) > 0 {
				t.Fatalf("%s: session violations: %s", mode, v[0])
			}
			// Version-level monotonic snapshots are the scalar session
			// floor's guarantee, so only coarse promises them among the
			// strong modes. Fine synchronizes per table: its sessions
			// stay monotonic in everything they can observe (per-table
			// floors), but a transaction over a cold table may start
			// below an earlier hot-table snapshot. The paper's eager
			// mode starts transactions immediately and can transiently
			// serve a fresher-than-acknowledged snapshot, so it is
			// exempt — faithful to §III-A.
			if mode == core.Coarse {
				if v := history.CheckMonotonicSessions(events); len(v) > 0 {
					t.Fatalf("%s: session snapshots regressed: %s", mode, v[0])
				}
			}
		})
	}
}
