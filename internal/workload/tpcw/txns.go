package tpcw

import (
	"errors"
	"fmt"
	"math/rand"

	"sconrep/internal/cluster"
	"sconrep/internal/sql"
)

// Statements used by the TPC-W transactions. Each web interaction's
// database work is one transaction; the set of prepared statements per
// transaction defines its static table-set (the fine-grained mode's
// workload information).
var (
	stGetCustomerByID, _  = sql.Prepare(`SELECT c_fname, c_lname, c_discount FROM customer WHERE c_id = ?`)
	stGetCustomerUname, _ = sql.Prepare(`SELECT c_id, c_passwd, c_discount, c_addr_id FROM customer WHERE c_uname = ?`)
	stPromoItems, _       = sql.Prepare(`SELECT i_id, i_title, i_thumbnail FROM item WHERE i_id >= ? ORDER BY i_id LIMIT 5`)
	stNewProducts, _      = sql.Prepare(`SELECT i.i_id, i.i_title, a.a_fname, a.a_lname, i.i_pub_date
		FROM item i JOIN author a ON i.i_a_id = a.a_id
		WHERE i.i_subject = ?
		ORDER BY i.i_pub_date DESC, i.i_title LIMIT 50`)
	stBestSellers, _ = sql.Prepare(`SELECT i.i_id, i.i_title, SUM(ol.ol_qty) AS total_qty
		FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id
		WHERE ol.ol_o_id > ? AND i.i_subject = ?
		GROUP BY i.i_id, i.i_title
		ORDER BY total_qty DESC LIMIT 50`)
	stProductDetail, _ = sql.Prepare(`SELECT i.i_title, i.i_srp, i.i_cost, i.i_desc, i.i_stock, a.a_fname, a.a_lname
		FROM item i JOIN author a ON i.i_a_id = a.a_id
		WHERE i.i_id = ?`)
	stSearchAuthor, _ = sql.Prepare(`SELECT i.i_id, i.i_title, a.a_lname
		FROM author a JOIN item i ON i.i_a_id = a.a_id
		WHERE a.a_lname LIKE ? ORDER BY i.i_title LIMIT 50`)
	stSearchTitle, _ = sql.Prepare(`SELECT i.i_id, i.i_title
		FROM item i WHERE i.i_title LIKE ? ORDER BY i.i_title LIMIT 50`)
	stSearchSubject, _ = sql.Prepare(`SELECT i.i_id, i.i_title
		FROM item i WHERE i.i_subject = ? ORDER BY i.i_title LIMIT 50`)

	stGetCart, _     = sql.Prepare(`SELECT sc_id, sc_time FROM shopping_cart WHERE sc_id = ?`)
	stCreateCart, _  = sql.Prepare(`INSERT INTO shopping_cart (sc_id, sc_time) VALUES (?, ?)`)
	stTouchCart, _   = sql.Prepare(`UPDATE shopping_cart SET sc_time = ? WHERE sc_id = ?`)
	stGetCartLine, _ = sql.Prepare(`SELECT scl_qty FROM shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?`)
	stAddCartLine, _ = sql.Prepare(`INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?)`)
	stSetCartLine, _ = sql.Prepare(`UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_sc_id = ? AND scl_i_id = ?`)
	stDelCartLine, _ = sql.Prepare(`DELETE FROM shopping_cart_line WHERE scl_sc_id = ?`)
	stCartLines, _   = sql.Prepare(`SELECT scl.scl_i_id, scl.scl_qty, i.i_cost, i.i_title
		FROM shopping_cart_line scl JOIN item i ON scl.scl_i_id = i.i_id
		WHERE scl.scl_sc_id = ?`)

	stInsertCustomer, _ = sql.Prepare(`INSERT INTO customer
		(c_id, c_uname, c_passwd, c_fname, c_lname, c_addr_id, c_phone, c_email,
		 c_since, c_last_login, c_login, c_expiration, c_discount, c_balance, c_ytd_pmt, c_birthdate, c_data)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`)

	stMaxOrderID, _  = sql.Prepare(`SELECT MAX(o_id) FROM orders`)
	stInsertOrder, _ = sql.Prepare(`INSERT INTO orders
		(o_id, o_c_id, o_date, o_sub_total, o_tax, o_total, o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`)
	stInsertOL, _ = sql.Prepare(`INSERT INTO order_line
		(ol_o_id, ol_id, ol_i_id, ol_qty, ol_discount, ol_comments)
		VALUES (?, ?, ?, ?, ?, ?)`)
	stInsertCC, _ = sql.Prepare(`INSERT INTO cc_xacts
		(cx_o_id, cx_type, cx_num, cx_name, cx_expire, cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)`)
	stItemStock, _   = sql.Prepare(`SELECT i_stock FROM item WHERE i_id = ?`)
	stUpdateStock, _ = sql.Prepare(`UPDATE item SET i_stock = ? WHERE i_id = ?`)

	stLastOrder, _ = sql.Prepare(`SELECT o_id, o_date, o_total, o_status, o_ship_addr_id
		FROM orders WHERE o_c_id = ? ORDER BY o_id DESC LIMIT 1`)
	stOrderLines, _ = sql.Prepare(`SELECT ol.ol_i_id, i.i_title, ol.ol_qty, ol.ol_discount
		FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id
		WHERE ol.ol_o_id = ?`)
	stOrderAddress, _ = sql.Prepare(`SELECT a.addr_street1, a.addr_city, co.co_name
		FROM address a JOIN country co ON a.addr_co_id = co.co_id
		WHERE a.addr_id = ?`)

	stAdminRelated, _ = sql.Prepare(`SELECT ol.ol_i_id, SUM(ol.ol_qty) AS qty
		FROM order_line ol
		WHERE ol.ol_o_id > ?
		GROUP BY ol.ol_i_id ORDER BY qty DESC LIMIT 5`)
	stAdminUpdate, _ = sql.Prepare(`UPDATE item
		SET i_cost = ?, i_image = ?, i_thumbnail = ?, i_pub_date = ?,
		    i_related1 = ?, i_related2 = ?, i_related3 = ?, i_related4 = ?, i_related5 = ?
		WHERE i_id = ?`)
)

// TxnNames maps each transaction identifier to the prepared statements
// it may execute; RegisterAll feeds these to the cluster so the load
// balancer knows every table-set.
var TxnNames = map[string][]*sql.Prepared{
	"tpcw.home":          {stGetCustomerByID, stPromoItems},
	"tpcw.newProducts":   {stNewProducts},
	"tpcw.bestSellers":   {stBestSellers},
	"tpcw.productDetail": {stProductDetail},
	"tpcw.searchAuthor":  {stSearchAuthor},
	"tpcw.searchTitle":   {stSearchTitle},
	"tpcw.searchSubject": {stSearchSubject},
	"tpcw.orderDisplay":  {stGetCustomerUname, stLastOrder, stOrderLines, stOrderAddress},
	"tpcw.shoppingCart":  {stGetCart, stCreateCart, stTouchCart, stGetCartLine, stAddCartLine, stSetCartLine, stPromoItems},
	"tpcw.register":      {stInsertCustomer, stGetCustomerByID},
	"tpcw.buyConfirm":    {stGetCustomerByID, stCartLines, stMaxOrderID, stInsertOrder, stInsertOL, stInsertCC, stItemStock, stUpdateStock, stDelCartLine},
	"tpcw.adminConfirm":  {stAdminRelated, stAdminUpdate, stProductDetail},
}

// ShardCount is the certification shard count the TPC-W shard map below
// is laid out for.
const ShardCount = 4

// ShardMap assigns each TPC-W table to a certification shard, grouping
// tables the same transactions write so the common paths stay
// single-shard: customer data (0), the catalog (1), order history (2),
// and shopping carts (3). Feed it to cluster.Config.ShardTables or
// sconrepd -shard-tables.
var ShardMap = map[string]int{
	"customer": 0,
	"address":  0,
	"country":  0,

	"item":   1,
	"author": 1,

	"orders":     2,
	"order_line": 2,
	"cc_xacts":   2,

	"shopping_cart":      3,
	"shopping_cart_line": 3,
}

// CrossShardTxns lists the TxnNames entries whose table-sets span more
// than one shard under ShardMap; they certify through the cross-shard
// reserve/seal handshake. Every other transaction is single-shard.
// sconrep-vet checks this list against TxnNames and ShardMap.
var CrossShardTxns = []string{
	"tpcw.adminConfirm",
	"tpcw.bestSellers",
	"tpcw.buyConfirm",
	"tpcw.home",
	"tpcw.orderDisplay",
	"tpcw.shoppingCart",
}

// RegisterAll registers every TPC-W transaction's table-set with the
// cluster's load balancer.
func RegisterAll(c *cluster.Cluster) {
	// Registration into the balancer's per-name registry commutes.
	// det:order-insensitive
	for name, stmts := range TxnNames {
		c.RegisterTxn(name, stmts...)
	}
}

// Ctx carries one emulated browser's identity and private ID spaces.
type Ctx struct {
	Scale Scale
	Rng   *rand.Rand
	// CustomerID is the browser's logged-in customer.
	CustomerID int
	// cartID is the browser's current shopping cart (0 = none yet).
	cartID int64
	// nextCartID allocates collision-free cart IDs per browser.
	nextCartID int64
	// nextCustomerID allocates collision-free customer IDs for
	// registrations.
	nextCustomerID int64
	// nextOrderID allocates collision-free order IDs, emulating the
	// database sequence the original benchmark relies on.
	nextOrderID int64
	browserID   int
}

// NewCtx builds a browser context. browserID must be unique per
// concurrent browser.
func NewCtx(s Scale, browserID int, seed int64) *Ctx {
	return &Ctx{
		Scale:          s,
		Rng:            rand.New(rand.NewSource(seed)),
		CustomerID:     1 + int(seed%int64(s.Customers)),
		browserID:      browserID,
		nextCartID:     CartIDBase + int64(browserID)<<20,
		nextCustomerID: int64(s.Customers) + 1 + int64(browserID)<<20,
		nextOrderID:    OrderIDBase + int64(browserID)<<20,
	}
}

func (x *Ctx) randItem() int64     { return int64(1 + x.Rng.Intn(x.Scale.Items)) }
func (x *Ctx) randCustomer() int64 { return int64(1 + x.Rng.Intn(x.Scale.Customers)) }
func (x *Ctx) randSubject() string { return subjects[x.Rng.Intn(len(subjects))] }

// errShaped wraps a client-visible failure with the interaction name.
func errShaped(name string, err error) error {
	return fmt.Errorf("tpcw %s: %w", name, err)
}

// Home models the Home interaction: customer greeting plus promotional
// items.
func Home(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.home")
	if err != nil {
		return errShaped("home", err)
	}
	if _, err := tx.Exec(stGetCustomerByID, int64(x.CustomerID)); err != nil {
		tx.Abort()
		return errShaped("home", err)
	}
	if _, err := tx.Exec(stPromoItems, x.randItem()); err != nil {
		tx.Abort()
		return errShaped("home", err)
	}
	_, err = tx.Commit()
	return err
}

// NewProducts lists recent items in a random subject.
func NewProducts(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.newProducts")
	if err != nil {
		return errShaped("newProducts", err)
	}
	if _, err := tx.Exec(stNewProducts, x.randSubject()); err != nil {
		tx.Abort()
		return errShaped("newProducts", err)
	}
	_, err = tx.Commit()
	return err
}

// BestSellers aggregates recent order lines per item in a subject.
func BestSellers(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.bestSellers")
	if err != nil {
		return errShaped("bestSellers", err)
	}
	// "Recent" = the last ~30% of preloaded orders.
	floor := int64(x.Scale.orders() * 7 / 10)
	if _, err := tx.Exec(stBestSellers, floor, x.randSubject()); err != nil {
		tx.Abort()
		return errShaped("bestSellers", err)
	}
	_, err = tx.Commit()
	return err
}

// ProductDetail reads one item with its author.
func ProductDetail(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.productDetail")
	if err != nil {
		return errShaped("productDetail", err)
	}
	if _, err := tx.Exec(stProductDetail, x.randItem()); err != nil {
		tx.Abort()
		return errShaped("productDetail", err)
	}
	_, err = tx.Commit()
	return err
}

// SearchAuthor / SearchTitle / SearchSubject model the three search
// interactions.
func SearchAuthor(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.searchAuthor")
	if err != nil {
		return errShaped("searchAuthor", err)
	}
	prefix := AuthorLastName(1 + x.Rng.Intn(x.Scale.authors()))
	if _, err := tx.Exec(stSearchAuthor, prefix[:9]+"%"); err != nil {
		tx.Abort()
		return errShaped("searchAuthor", err)
	}
	_, err = tx.Commit()
	return err
}

// SearchTitle searches items by title prefix.
func SearchTitle(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.searchTitle")
	if err != nil {
		return errShaped("searchTitle", err)
	}
	if _, err := tx.Exec(stSearchTitle, "title_0%"); err != nil {
		tx.Abort()
		return errShaped("searchTitle", err)
	}
	_, err = tx.Commit()
	return err
}

// SearchSubject searches items by subject.
func SearchSubject(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.searchSubject")
	if err != nil {
		return errShaped("searchSubject", err)
	}
	if _, err := tx.Exec(stSearchSubject, x.randSubject()); err != nil {
		tx.Abort()
		return errShaped("searchSubject", err)
	}
	_, err = tx.Commit()
	return err
}

// OrderDisplay shows a customer's most recent order.
func OrderDisplay(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.orderDisplay")
	if err != nil {
		return errShaped("orderDisplay", err)
	}
	// The inquiry form authenticates by username first; the order
	// lookup then uses the returned c_id. (sconrep-vet's tableset
	// analyzer holds this body to the declared customer read.)
	cid := x.randCustomer()
	cust, err := tx.Exec(stGetCustomerUname, UserName(int(cid)))
	if err != nil {
		tx.Abort()
		return errShaped("orderDisplay", err)
	}
	if len(cust.Rows) == 1 {
		cid = cust.Rows[0][0].(int64)
	}
	res, err := tx.Exec(stLastOrder, cid)
	if err != nil {
		tx.Abort()
		return errShaped("orderDisplay", err)
	}
	if len(res.Rows) == 1 {
		oid := res.Rows[0][0].(int64)
		addr := res.Rows[0][4].(int64)
		if _, err := tx.Exec(stOrderLines, oid); err != nil {
			tx.Abort()
			return errShaped("orderDisplay", err)
		}
		if _, err := tx.Exec(stOrderAddress, addr); err != nil {
			tx.Abort()
			return errShaped("orderDisplay", err)
		}
	}
	_, err = tx.Commit()
	return err
}

// ShoppingCart creates or updates the browser's cart (an update
// transaction).
func ShoppingCart(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.shoppingCart")
	if err != nil {
		return errShaped("shoppingCart", err)
	}
	now := int64(13000 + x.Rng.Intn(100))
	if x.cartID == 0 {
		x.nextCartID++
		x.cartID = x.nextCartID
		if _, err := tx.Exec(stCreateCart, x.cartID, now); err != nil {
			tx.Abort()
			x.cartID = 0
			return errShaped("shoppingCart", err)
		}
	} else if _, err := tx.Exec(stTouchCart, now, x.cartID); err != nil {
		tx.Abort()
		return errShaped("shoppingCart", err)
	}
	// Add or bump 1–3 items.
	for n := 1 + x.Rng.Intn(3); n > 0; n-- {
		item := x.randItem()
		cur, err := tx.Exec(stGetCartLine, x.cartID, item)
		if err != nil {
			tx.Abort()
			return errShaped("shoppingCart", err)
		}
		if len(cur.Rows) == 0 {
			if _, err := tx.Exec(stAddCartLine, x.cartID, item, int64(1+x.Rng.Intn(4))); err != nil {
				tx.Abort()
				return errShaped("shoppingCart", err)
			}
		} else {
			q := cur.Rows[0][0].(int64) + 1
			if _, err := tx.Exec(stSetCartLine, q, x.cartID, item); err != nil {
				tx.Abort()
				return errShaped("shoppingCart", err)
			}
		}
	}
	// The cart page closes with its promotional-items strip — the
	// read that puts item in this transaction's declared table-set.
	if _, err := tx.Exec(stPromoItems, x.randItem()); err != nil {
		tx.Abort()
		return errShaped("shoppingCart", err)
	}
	_, err = tx.Commit()
	return err
}

// Register inserts a new customer (an update transaction).
func Register(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.register")
	if err != nil {
		return errShaped("register", err)
	}
	x.nextCustomerID++
	id := x.nextCustomerID
	uname := fmt.Sprintf("newuser_%d", id)
	row := []any{
		id, uname, "pwd" + uname, "New", "Customer",
		int64(1 + x.Rng.Intn(x.Scale.addresses())),
		"5550000000", uname + "@example.com",
		int64(13000), int64(13000), int64(13000), int64(13060),
		0.1, 0.0, 0.0, int64(8000), "new customer data",
	}
	if _, err := tx.Exec(stInsertCustomer, row...); err != nil {
		tx.Abort()
		return errShaped("register", err)
	}
	if _, err := tx.Exec(stGetCustomerByID, id); err != nil {
		tx.Abort()
		return errShaped("register", err)
	}
	_, err = tx.Commit()
	return err
}

// ErrEmptyCart is returned by BuyConfirm when the browser has no cart
// to purchase; callers treat it as a no-op interaction.
var ErrEmptyCart = errors.New("tpcw: empty cart")

// BuyConfirm is TPC-W's heaviest update transaction: it turns the
// browser's cart into an order (order + order lines + payment),
// decrements item stock, and empties the cart.
func BuyConfirm(s *cluster.Session, x *Ctx) error {
	if x.cartID == 0 {
		// Build a cart first so the purchase has lines.
		if err := ShoppingCart(s, x); err != nil {
			return err
		}
	}
	tx, err := s.Begin("tpcw.buyConfirm")
	if err != nil {
		return errShaped("buyConfirm", err)
	}
	lines, err := tx.Exec(stCartLines, x.cartID)
	if err != nil {
		tx.Abort()
		return errShaped("buyConfirm", err)
	}
	if len(lines.Rows) == 0 {
		tx.Abort()
		x.cartID = 0
		return ErrEmptyCart
	}
	// The original benchmark allocates o_id from a database sequence;
	// MAX(o_id) is still read (it is part of the interaction's work)
	// but the ID comes from the browser's collision-free range.
	if _, err := tx.Exec(stMaxOrderID); err != nil {
		tx.Abort()
		return errShaped("buyConfirm", err)
	}
	x.nextOrderID++
	oid := x.nextOrderID

	// TPC-W prices the order with the customer's discount; the read
	// is why customer is in this transaction's declared table-set.
	cust, err := tx.Exec(stGetCustomerByID, int64(x.CustomerID))
	if err != nil || len(cust.Rows) == 0 {
		tx.Abort()
		return errShaped("buyConfirm", fmt.Errorf("customer read: %v", err))
	}
	discount := cust.Rows[0][2].(float64)

	subTotal := 0.0
	for _, r := range lines.Rows {
		subTotal += float64(r[1].(int64)) * r[2].(float64)
	}
	subTotal *= 1 - discount
	tax := subTotal * 0.0825
	total := subTotal + tax + 3.0 + float64(len(lines.Rows))
	date := int64(13100 + x.Rng.Intn(10))

	if _, err := tx.Exec(stInsertOrder, oid, int64(x.CustomerID), date,
		subTotal, tax, total,
		shipTypes[x.Rng.Intn(len(shipTypes))], date+int64(x.Rng.Intn(7)),
		int64(1+x.Rng.Intn(x.Scale.addresses())), int64(1+x.Rng.Intn(x.Scale.addresses())),
		"PENDING"); err != nil {
		tx.Abort()
		return errShaped("buyConfirm", err)
	}
	for i, r := range lines.Rows {
		itemID := r[0].(int64)
		qty := r[1].(int64)
		if _, err := tx.Exec(stInsertOL, oid, int64(i+1), itemID, qty, 0.0, "buy"); err != nil {
			tx.Abort()
			return errShaped("buyConfirm", err)
		}
		// Decrement stock, restocking when it runs low (TPC-W rule).
		st, err := tx.Exec(stItemStock, itemID)
		if err != nil || len(st.Rows) == 0 {
			tx.Abort()
			return errShaped("buyConfirm", fmt.Errorf("stock read: %v", err))
		}
		stock := st.Rows[0][0].(int64) - qty
		if stock < 10 {
			stock += 21
		}
		if _, err := tx.Exec(stUpdateStock, stock, itemID); err != nil {
			tx.Abort()
			return errShaped("buyConfirm", err)
		}
	}
	if _, err := tx.Exec(stInsertCC, oid, "VISA", "4111111111111111", "BUYER",
		date+365, "AUTHOK", total, date, int64(1+x.Rng.Intn(x.Scale.countries()))); err != nil {
		tx.Abort()
		return errShaped("buyConfirm", err)
	}
	if _, err := tx.Exec(stDelCartLine, x.cartID); err != nil {
		tx.Abort()
		return errShaped("buyConfirm", err)
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}
	x.cartID = 0
	return nil
}

// AdminConfirm updates an item's price, images, and related items (an
// update transaction over item + order_line).
func AdminConfirm(s *cluster.Session, x *Ctx) error {
	tx, err := s.Begin("tpcw.adminConfirm")
	if err != nil {
		return errShaped("adminConfirm", err)
	}
	item := x.randItem()
	floor := int64(x.Scale.orders() * 7 / 10)
	rel, err := tx.Exec(stAdminRelated, floor)
	if err != nil {
		tx.Abort()
		return errShaped("adminConfirm", err)
	}
	related := make([]int64, 5)
	for i := range related {
		if i < len(rel.Rows) {
			related[i] = rel.Rows[i][0].(int64)
		} else {
			related[i] = x.randItem()
		}
	}
	if _, err := tx.Exec(stAdminUpdate,
		1+x.Rng.Float64()*299,
		fmt.Sprintf("img/image_%d_v2.gif", item),
		fmt.Sprintf("img/thumb_%d_v2.gif", item),
		int64(13100),
		related[0], related[1], related[2], related[3], related[4],
		item); err != nil {
		tx.Abort()
		return errShaped("adminConfirm", err)
	}
	if _, err := tx.Exec(stProductDetail, item); err != nil {
		tx.Abort()
		return errShaped("adminConfirm", err)
	}
	_, err = tx.Commit()
	return err
}
