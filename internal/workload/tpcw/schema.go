// Package tpcw implements the TPC-W bookstore benchmark at the level
// the paper evaluates it: the database schema, a deterministic scaled
// data generator, the database transactions behind the web
// interactions, and the three workload mixes (browsing ≈5% updates,
// shopping ≈20%, ordering ≈50%) driven by emulated browsers with
// exponential think times.
//
// Dates are stored as integer day numbers; monetary values as FLOAT —
// neither affects the replication behaviour under study.
package tpcw

import (
	"fmt"

	"sconrep/internal/sql"
	"sconrep/internal/storage"
)

// ddl lists the schema exactly as the transactions expect it.
var ddl = []string{
	`CREATE TABLE country (
		co_id INT PRIMARY KEY,
		co_name TEXT,
		co_exchange FLOAT,
		co_currency TEXT
	)`,
	`CREATE TABLE address (
		addr_id INT PRIMARY KEY,
		addr_street1 TEXT,
		addr_street2 TEXT,
		addr_city TEXT,
		addr_state TEXT,
		addr_zip TEXT,
		addr_co_id INT
	)`,
	`CREATE TABLE customer (
		c_id INT PRIMARY KEY,
		c_uname TEXT,
		c_passwd TEXT,
		c_fname TEXT,
		c_lname TEXT,
		c_addr_id INT,
		c_phone TEXT,
		c_email TEXT,
		c_since INT,
		c_last_login INT,
		c_login INT,
		c_expiration INT,
		c_discount FLOAT,
		c_balance FLOAT,
		c_ytd_pmt FLOAT,
		c_birthdate INT,
		c_data TEXT
	)`,
	`CREATE INDEX customer_uname ON customer (c_uname)`,
	`CREATE TABLE author (
		a_id INT PRIMARY KEY,
		a_fname TEXT,
		a_lname TEXT,
		a_mname TEXT,
		a_dob INT,
		a_bio TEXT
	)`,
	`CREATE INDEX author_lname ON author (a_lname)`,
	`CREATE TABLE item (
		i_id INT PRIMARY KEY,
		i_title TEXT,
		i_a_id INT,
		i_pub_date INT,
		i_publisher TEXT,
		i_subject TEXT,
		i_desc TEXT,
		i_related1 INT,
		i_related2 INT,
		i_related3 INT,
		i_related4 INT,
		i_related5 INT,
		i_thumbnail TEXT,
		i_image TEXT,
		i_srp FLOAT,
		i_cost FLOAT,
		i_avail INT,
		i_stock INT,
		i_isbn TEXT,
		i_page INT,
		i_backing TEXT,
		i_dimensions TEXT
	)`,
	`CREATE INDEX item_subject ON item (i_subject)`,
	`CREATE INDEX item_author ON item (i_a_id)`,
	`CREATE INDEX item_title ON item (i_title)`,
	`CREATE TABLE orders (
		o_id INT PRIMARY KEY,
		o_c_id INT,
		o_date INT,
		o_sub_total FLOAT,
		o_tax FLOAT,
		o_total FLOAT,
		o_ship_type TEXT,
		o_ship_date INT,
		o_bill_addr_id INT,
		o_ship_addr_id INT,
		o_status TEXT
	)`,
	`CREATE INDEX orders_customer ON orders (o_c_id)`,
	`CREATE TABLE order_line (
		ol_o_id INT,
		ol_id INT,
		ol_i_id INT,
		ol_qty INT,
		ol_discount FLOAT,
		ol_comments TEXT,
		PRIMARY KEY (ol_o_id, ol_id)
	)`,
	`CREATE INDEX order_line_item ON order_line (ol_i_id)`,
	`CREATE TABLE cc_xacts (
		cx_o_id INT PRIMARY KEY,
		cx_type TEXT,
		cx_num TEXT,
		cx_name TEXT,
		cx_expire INT,
		cx_auth_id TEXT,
		cx_xact_amt FLOAT,
		cx_xact_date INT,
		cx_co_id INT
	)`,
	`CREATE TABLE shopping_cart (
		sc_id INT PRIMARY KEY,
		sc_time INT
	)`,
	`CREATE TABLE shopping_cart_line (
		scl_sc_id INT,
		scl_i_id INT,
		scl_qty INT,
		PRIMARY KEY (scl_sc_id, scl_i_id)
	)`,
}

// Tables lists all TPC-W table names.
var Tables = []string{
	"country", "address", "customer", "author", "item",
	"orders", "order_line", "cc_xacts", "shopping_cart", "shopping_cart_line",
}

// createSchema applies the DDL to an engine.
func createSchema(e *storage.Engine) error {
	for _, stmt := range ddl {
		parsed, err := sql.Parse(stmt)
		if err != nil {
			return fmt.Errorf("tpcw: parsing DDL: %w", err)
		}
		tx := e.Begin()
		if _, err := sql.ExecStmt(tx, e, parsed); err != nil {
			return fmt.Errorf("tpcw: applying DDL: %w", err)
		}
		tx.Abort() // DDL is non-transactional; nothing buffered
	}
	return nil
}

// subjects is the TPC-W subject list.
var subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS",
	"COOKING", "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE",
	"MYSTERY", "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE",
	"RELIGION", "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION",
	"SPORTS", "YOUTH", "TRAVEL",
}

// backings is the TPC-W book backing list.
var backings = []string{"HARDBACK", "PAPERBACK", "USED", "AUDIO", "LIMITED-EDITION"}

// shipTypes is the TPC-W shipping list.
var shipTypes = []string{"AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL"}

// statuses is the order status list.
var statuses = []string{"PENDING", "PROCESSING", "SHIPPED", "DENIED"}
