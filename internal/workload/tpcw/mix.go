package tpcw

import (
	"errors"
	"fmt"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/replica"
)

// Interaction is one weighted entry of a mix.
type Interaction struct {
	Name   string
	Weight int
	Update bool
	Run    func(*cluster.Session, *Ctx) error
}

// Mix is a weighted set of interactions. A Mix is shared by all EBs
// of a run, so it must stay read-only while browsers are running.
type Mix struct {
	Name         string
	Interactions []Interaction
}

// UpdateFraction returns the weighted share of update interactions.
func (m *Mix) UpdateFraction() float64 {
	upd, tot := 0, 0
	for _, in := range m.Interactions {
		tot += in.Weight
		if in.Update {
			upd += in.Weight
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(upd) / float64(tot)
}

// pick selects an interaction by weight.
func (m *Mix) pick(x *Ctx) *Interaction {
	total := 0
	for _, in := range m.Interactions {
		total += in.Weight
	}
	n := x.Rng.Intn(total)
	for i := range m.Interactions {
		n -= m.Interactions[i].Weight
		if n < 0 {
			return &m.Interactions[i]
		}
	}
	return &m.Interactions[len(m.Interactions)-1]
}

// reads lists the read-only interactions with browsing-type weights.
func readInteractions(wHome, wNew, wBest, wDetail, wSearch, wOrder int) []Interaction {
	return []Interaction{
		{Name: "home", Weight: wHome, Run: Home},
		{Name: "newProducts", Weight: wNew, Run: NewProducts},
		{Name: "bestSellers", Weight: wBest, Run: BestSellers},
		{Name: "productDetail", Weight: wDetail, Run: ProductDetail},
		{Name: "searchAuthor", Weight: wSearch, Run: SearchAuthor},
		{Name: "searchTitle", Weight: wSearch, Run: SearchTitle},
		{Name: "searchSubject", Weight: wSearch, Run: SearchSubject},
		{Name: "orderDisplay", Weight: wOrder, Run: OrderDisplay},
	}
}

func updateInteractions(wCart, wBuy, wReg, wAdmin int) []Interaction {
	return []Interaction{
		{Name: "shoppingCart", Weight: wCart, Update: true, Run: ShoppingCart},
		{Name: "buyConfirm", Weight: wBuy, Update: true, Run: BuyConfirm},
		{Name: "register", Weight: wReg, Update: true, Run: Register},
		{Name: "adminConfirm", Weight: wAdmin, Update: true, Run: AdminConfirm},
	}
}

// BrowsingMix has ~5% update transactions (§V-C).
func BrowsingMix() *Mix {
	return &Mix{
		Name:         "browsing",
		Interactions: append(readInteractions(16, 15, 15, 25, 6, 6), updateInteractions(3, 1, 1, 0)...),
	}
}

// ShoppingMix has ~20% update transactions — the paper's most
// representative mix.
func ShoppingMix() *Mix {
	return &Mix{
		Name:         "shopping",
		Interactions: append(readInteractions(15, 12, 12, 22, 5, 4), updateInteractions(11, 6, 2, 1)...),
	}
}

// OrderingMix has ~50% update transactions — the paper's most
// challenging mix for replication.
func OrderingMix() *Mix {
	return &Mix{
		Name:         "ordering",
		Interactions: append(readInteractions(10, 6, 6, 14, 3, 5), updateInteractions(24, 18, 5, 3)...),
	}
}

// MixByName resolves a mix label.
func MixByName(name string) (*Mix, error) {
	switch name {
	case "browsing":
		return BrowsingMix(), nil
	case "shopping":
		return ShoppingMix(), nil
	case "ordering":
		return OrderingMix(), nil
	default:
		return nil, fmt.Errorf("tpcw: unknown mix %q", name)
	}
}

// EB is one emulated browser: a closed-loop client with exponential
// think time.
type EB struct {
	Mix       *Mix
	Scale     Scale
	ThinkTime time.Duration
	// Retries bounds per-interaction retries after certification or
	// early-certification aborts (the web tier would re-run the
	// request).
	Retries int
}

// Run drives the browser against the cluster until stop is closed.
// It returns the number of completed interactions.
func (e *EB) Run(c *cluster.Cluster, browserID int, stop <-chan struct{}) int {
	s := c.SessionWithID(fmt.Sprintf("eb-%d", browserID))
	defer s.Close()
	x := NewCtx(e.Scale, browserID, int64(browserID)*2654435761+e.Scale.Seed)
	completed := 0
	for {
		select {
		case <-stop:
			return completed
		default:
		}
		in := e.Mix.pick(x)
		err := in.Run(s, x)
		for attempt := 0; err != nil && attempt < e.Retries && retryable(err); attempt++ {
			err = in.Run(s, x)
		}
		if err == nil || errors.Is(err, ErrEmptyCart) {
			completed++
		}
		if e.ThinkTime > 0 {
			s.Think(e.ThinkTime)
		}
	}
}

// retryable reports whether the web tier would re-issue the request.
func retryable(err error) bool {
	return errors.Is(err, replica.ErrCertifyConflict) ||
		errors.Is(err, replica.ErrEarlyAbort)
}
