package tpcw

import (
	"sort"
	"sync"
	"testing"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/storage"
)

// TestDeclaredTableSetsCoverRuntime is the dynamic oracle behind
// sconrep-vet's static tableset analyzer: it runs every TPC-W
// interaction against a live cluster and asserts that the tables each
// transaction actually touched at runtime (reads and writes, observed
// at commit) are a subset of the table-set declared in TxnNames. An
// under-declared table-set is an FSC staleness hole — the load
// balancer would route a fine-grained transaction without waiting for
// that table's version — so this test is the ground-truth check that
// the static declarations the balancer routes on are sound.
func TestDeclaredTableSetsCoverRuntime(t *testing.T) {
	s := smallScale()
	c, err := cluster.New(cluster.Config{Replicas: 1, Mode: core.Fine, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadData(func(e *storage.Engine) error { return Load(e, s) }); err != nil {
		t.Fatal(err)
	}
	RegisterAll(c)

	declared := make(map[string]map[string]bool, len(TxnNames))
	for name, stmts := range TxnNames {
		set := make(map[string]bool)
		for _, p := range stmts {
			for _, tab := range p.TableSet {
				set[tab] = true
			}
		}
		declared[name] = set
	}

	var mu sync.Mutex
	observed := make(map[string]map[string]bool)
	c.ObserveCommits(func(txnName string, readTables, writtenTables []string) {
		mu.Lock()
		defer mu.Unlock()
		set := observed[txnName]
		if set == nil {
			set = make(map[string]bool)
			observed[txnName] = set
		}
		for _, tab := range readTables {
			set[tab] = true
		}
		for _, tab := range writtenTables {
			set[tab] = true
		}
	})

	sess := c.NewSession()
	defer sess.Close()
	x := NewCtx(s, 0, 42)

	interactions := []struct {
		name string
		run  func(*cluster.Session, *Ctx) error
	}{
		{"tpcw.home", Home},
		{"tpcw.newProducts", NewProducts},
		{"tpcw.bestSellers", BestSellers},
		{"tpcw.productDetail", ProductDetail},
		{"tpcw.searchAuthor", SearchAuthor},
		{"tpcw.searchTitle", SearchTitle},
		{"tpcw.searchSubject", SearchSubject},
		{"tpcw.orderDisplay", OrderDisplay},
		{"tpcw.shoppingCart", ShoppingCart},
		{"tpcw.register", Register},
		{"tpcw.buyConfirm", BuyConfirm},
		{"tpcw.adminConfirm", AdminConfirm},
	}
	// Several rounds so data-dependent branches (existing cart lines,
	// order history, restock) all execute at least once.
	for round := 0; round < 3; round++ {
		for _, it := range interactions {
			if err := it.run(sess, x); err != nil {
				t.Fatalf("round %d %s: %v", round, it.name, err)
			}
		}
	}

	mu.Lock()
	defer mu.Unlock()
	for _, it := range interactions {
		got, ok := observed[it.name]
		if !ok {
			t.Errorf("%s: no commit observed", it.name)
			continue
		}
		want := declared[it.name]
		if want == nil {
			t.Errorf("%s: not declared in TxnNames", it.name)
			continue
		}
		var extra []string
		for tab := range got {
			if !want[tab] {
				extra = append(extra, tab)
			}
		}
		if len(extra) > 0 {
			sort.Strings(extra)
			t.Errorf("%s: runtime touched undeclared tables %v (FSC staleness hole: fine-grained routing would not wait for them)", it.name, extra)
		}
	}
}
