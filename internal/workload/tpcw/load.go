package tpcw

import (
	"fmt"
	"math/rand"

	"sconrep/internal/storage"
)

// Scale controls the generated database size. The TPC-W standard
// scaling (1,000 items, 2,880 customers per EB) is shrunk to
// laptop-size defaults that keep the same table-cardinality ratios.
type Scale struct {
	Items     int
	Customers int
	// Seed makes generation deterministic; every replica must load
	// byte-identical data.
	Seed int64
}

// DefaultScale mirrors the paper's 1,000-item configuration at a
// laptop-friendly customer count.
func DefaultScale() Scale {
	return Scale{Items: 1000, Customers: 1440, Seed: 20100301}
}

// derived cardinalities per the TPC-W ratios.
func (s Scale) authors() int   { return s.Items/4 + 1 }
func (s Scale) addresses() int { return s.Customers * 2 }
func (s Scale) orders() int    { return s.Customers * 9 / 10 }
func (s Scale) countries() int { return 92 }

// CartIDBase separates preloaded shopping carts (none) from runtime
// carts: runtime cart IDs are allocated per client from this base.
const CartIDBase = 1 << 40

// OrderIDBase separates preloaded orders from runtime orders; each
// browser allocates order IDs from its own sub-range, emulating the
// database sequence the original benchmark uses.
const OrderIDBase = 1 << 41

// Load populates an engine with the full TPC-W dataset. It is
// deterministic in Scale.Seed, so loading N replicas yields identical
// states and identical final versions.
func Load(e *storage.Engine, s Scale) error {
	if err := createSchema(e); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Each table loads in one transaction: deterministic version
	// sequence, tolerable memory.
	if err := loadCountries(e, s, rng); err != nil {
		return err
	}
	if err := loadAddresses(e, s, rng); err != nil {
		return err
	}
	if err := loadCustomers(e, s, rng); err != nil {
		return err
	}
	if err := loadAuthors(e, s, rng); err != nil {
		return err
	}
	if err := loadItems(e, s, rng); err != nil {
		return err
	}
	if err := loadOrders(e, s, rng); err != nil {
		return err
	}
	return nil
}

func commit(e *storage.Engine, tx *storage.Txn, what string) error {
	if _, err := tx.CommitLocal(); err != nil {
		return fmt.Errorf("tpcw: loading %s: %w", what, err)
	}
	return nil
}

func loadCountries(e *storage.Engine, s Scale, rng *rand.Rand) error {
	tx := e.Begin()
	for i := 1; i <= s.countries(); i++ {
		row := []any{
			int64(i),
			fmt.Sprintf("COUNTRY_%02d", i),
			1 + rng.Float64()*10,
			fmt.Sprintf("CUR%02d", i),
		}
		if err := tx.Insert("country", row); err != nil {
			return err
		}
	}
	return commit(e, tx, "country")
}

func loadAddresses(e *storage.Engine, s Scale, rng *rand.Rand) error {
	tx := e.Begin()
	for i := 1; i <= s.addresses(); i++ {
		row := []any{
			int64(i),
			randomString(rng, 20, "street"),
			randomString(rng, 20, "street"),
			randomString(rng, 10, "city"),
			randomString(rng, 2, "st"),
			fmt.Sprintf("%05d", rng.Intn(99999)),
			int64(1 + rng.Intn(s.countries())),
		}
		if err := tx.Insert("address", row); err != nil {
			return err
		}
	}
	return commit(e, tx, "address")
}

func loadCustomers(e *storage.Engine, s Scale, rng *rand.Rand) error {
	tx := e.Begin()
	for i := 1; i <= s.Customers; i++ {
		row := []any{
			int64(i),
			UserName(i),
			"pwd" + UserName(i),
			randomString(rng, 8, "fname"),
			randomString(rng, 12, "lname"),
			int64(1 + rng.Intn(s.addresses())),
			fmt.Sprintf("%010d", rng.Intn(1<<31)),
			UserName(i) + "@example.com",
			int64(10000 + rng.Intn(2000)), // c_since (day number)
			int64(12000 + rng.Intn(500)),  // c_last_login
			int64(12500),                  // c_login
			int64(12600),                  // c_expiration
			float64(rng.Intn(51)) / 100,   // c_discount 0.00–0.50
			0.0,                           // c_balance
			float64(rng.Intn(100000)) / 100,
			int64(3000 + rng.Intn(20000)), // c_birthdate
			randomString(rng, 100, "data"),
		}
		if err := tx.Insert("customer", row); err != nil {
			return err
		}
	}
	return commit(e, tx, "customer")
}

func loadAuthors(e *storage.Engine, s Scale, rng *rand.Rand) error {
	tx := e.Begin()
	for i := 1; i <= s.authors(); i++ {
		row := []any{
			int64(i),
			randomString(rng, 8, "afn"),
			AuthorLastName(i),
			randomString(rng, 8, "amn"),
			int64(rng.Intn(20000)),
			randomString(rng, 200, "bio"),
		}
		if err := tx.Insert("author", row); err != nil {
			return err
		}
	}
	return commit(e, tx, "author")
}

func loadItems(e *storage.Engine, s Scale, rng *rand.Rand) error {
	tx := e.Begin()
	for i := 1; i <= s.Items; i++ {
		related := func() int64 { return int64(1 + rng.Intn(s.Items)) }
		srp := 1 + rng.Float64()*299
		row := []any{
			int64(i),
			ItemTitle(i),
			int64(1 + rng.Intn(s.authors())),
			int64(9000 + rng.Intn(4000)), // i_pub_date
			randomString(rng, 14, "pub"),
			subjects[rng.Intn(len(subjects))],
			randomString(rng, 100, "desc"),
			related(), related(), related(), related(), related(),
			fmt.Sprintf("img/thumb_%d.gif", i),
			fmt.Sprintf("img/image_%d.gif", i),
			srp,
			srp * (0.5 + rng.Float64()*0.5), // i_cost
			int64(12000 + rng.Intn(30)),     // i_avail
			int64(10 + rng.Intn(21)),        // i_stock 10–30
			fmt.Sprintf("%013d", rng.Int63n(1e13)),
			int64(20 + rng.Intn(9980)),
			backings[rng.Intn(len(backings))],
			fmt.Sprintf("%dx%dx%d", 1+rng.Intn(99), 1+rng.Intn(99), 1+rng.Intn(99)),
		}
		if err := tx.Insert("item", row); err != nil {
			return err
		}
	}
	return commit(e, tx, "item")
}

func loadOrders(e *storage.Engine, s Scale, rng *rand.Rand) error {
	// orders + order_line + cc_xacts load together: their rows are
	// correlated.
	tx := e.Begin()
	for o := 1; o <= s.orders(); o++ {
		nLines := 1 + rng.Intn(5)
		subTotal := 0.0
		date := int64(12000 + rng.Intn(400))
		for l := 1; l <= nLines; l++ {
			qty := int64(1 + rng.Intn(10))
			price := 1 + rng.Float64()*299
			subTotal += float64(qty) * price
			row := []any{
				int64(o), int64(l),
				int64(1 + rng.Intn(s.Items)),
				qty,
				float64(rng.Intn(31)) / 100,
				randomString(rng, 20, "olc"),
			}
			if err := tx.Insert("order_line", row); err != nil {
				return err
			}
		}
		tax := subTotal * 0.0825
		row := []any{
			int64(o),
			int64(1 + rng.Intn(s.Customers)),
			date,
			subTotal,
			tax,
			subTotal + tax + 3.0 + float64(nLines),
			shipTypes[rng.Intn(len(shipTypes))],
			date + int64(rng.Intn(7)),
			int64(1 + rng.Intn(s.addresses())),
			int64(1 + rng.Intn(s.addresses())),
			statuses[rng.Intn(len(statuses))],
		}
		if err := tx.Insert("orders", row); err != nil {
			return err
		}
		cc := []any{
			int64(o),
			[]string{"VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"}[rng.Intn(5)],
			fmt.Sprintf("%016d", rng.Int63n(1e16)),
			randomString(rng, 14, "ccname"),
			date + 365,
			fmt.Sprintf("AUTH%011d", rng.Int63n(1e11)),
			subTotal + tax,
			date,
			int64(1 + rng.Intn(s.countries())),
		}
		if err := tx.Insert("cc_xacts", cc); err != nil {
			return err
		}
	}
	return commit(e, tx, "orders")
}

// UserName derives the deterministic TPC-W user name for customer i.
func UserName(i int) string { return fmt.Sprintf("user_%06d", i) }

// AuthorLastName derives a deterministic author surname; searches use
// its prefix.
func AuthorLastName(i int) string { return fmt.Sprintf("lastname_%04d", i) }

// ItemTitle derives a deterministic item title; searches use its
// prefix.
func ItemTitle(i int) string { return fmt.Sprintf("title_%06d of book %d", i, i) }

// randomString generates a deterministic pseudo-random token with a
// tag prefix, roughly n bytes long.
func randomString(rng *rand.Rand, n int, tag string) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz "
	b := make([]byte, 0, n+len(tag)+1)
	b = append(b, tag...)
	b = append(b, '_')
	for len(b) < n+len(tag)+1 {
		b = append(b, alphabet[rng.Intn(len(alphabet))])
	}
	return string(b)
}
