package tpcw

import (
	"testing"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/shard"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
)

// smallScale keeps tests fast.
func smallScale() Scale { return Scale{Items: 100, Customers: 80, Seed: 99} }

func TestLoadDeterministic(t *testing.T) {
	s := smallScale()
	a, b := storage.NewEngine(), storage.NewEngine()
	if err := Load(a, s); err != nil {
		t.Fatal(err)
	}
	if err := Load(b, s); err != nil {
		t.Fatal(err)
	}
	if a.Version() != b.Version() {
		t.Fatalf("versions differ: %d vs %d", a.Version(), b.Version())
	}
	for _, table := range Tables {
		ta, tb := a.Begin(), b.Begin()
		rowsA, err := ta.ScanAll(table)
		if err != nil {
			t.Fatal(err)
		}
		rowsB, _ := tb.ScanAll(table)
		if len(rowsA) != len(rowsB) {
			t.Fatalf("%s: %d vs %d rows", table, len(rowsA), len(rowsB))
		}
		for i := range rowsA {
			if rowsA[i].Key != rowsB[i].Key {
				t.Fatalf("%s diverged at row %d", table, i)
			}
			for c := range rowsA[i].Row {
				if rowsA[i].Row[c] != rowsB[i].Row[c] {
					t.Fatalf("%s[%d] col %d: %v vs %v", table, i, c, rowsA[i].Row[c], rowsB[i].Row[c])
				}
			}
		}
	}
}

func TestLoadCardinalities(t *testing.T) {
	s := smallScale()
	e := storage.NewEngine()
	if err := Load(e, s); err != nil {
		t.Fatal(err)
	}
	checks := map[string]int{
		"item":     s.Items,
		"customer": s.Customers,
		"country":  s.countries(),
		"address":  s.addresses(),
		"orders":   s.orders(),
		"author":   s.authors(),
		"cc_xacts": s.orders(),
	}
	for table, want := range checks {
		if got := e.RowEstimate(table); got != want {
			t.Errorf("%s: %d rows, want %d", table, got, want)
		}
	}
	// Order lines: between 1 and 5 per order.
	ol := e.RowEstimate("order_line")
	if ol < s.orders() || ol > 5*s.orders() {
		t.Errorf("order_line: %d rows for %d orders", ol, s.orders())
	}
}

func TestStatementsPrepared(t *testing.T) {
	for name, stmts := range TxnNames {
		if len(stmts) == 0 {
			t.Errorf("%s: no statements", name)
		}
		for i, p := range stmts {
			if p == nil {
				t.Fatalf("%s: statement %d failed to prepare", name, i)
			}
		}
	}
}

func TestTableSets(t *testing.T) {
	// Spot-check the statically extracted table-sets that drive FSC.
	find := func(name string) []string {
		seen := map[string]bool{}
		var out []string
		for _, p := range TxnNames[name] {
			for _, tb := range p.TableSet {
				if !seen[tb] {
					seen[tb] = true
					out = append(out, tb)
				}
			}
		}
		return out
	}
	bs := find("tpcw.bestSellers")
	if len(bs) != 2 {
		t.Errorf("bestSellers table-set = %v", bs)
	}
	np := find("tpcw.newProducts")
	if len(np) != 2 {
		t.Errorf("newProducts table-set = %v", np)
	}
	sc := find("tpcw.searchSubject")
	if len(sc) != 1 || sc[0] != "item" {
		t.Errorf("searchSubject table-set = %v", sc)
	}
}

func newTPCWCluster(t *testing.T, replicas int, mode core.Mode) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Replicas: replicas, Mode: mode, Seed: 17, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	s := smallScale()
	if err := c.LoadData(func(e *storage.Engine) error { return Load(e, s) }); err != nil {
		t.Fatal(err)
	}
	RegisterAll(c)
	t.Cleanup(c.Close)
	return c
}

// TestAllInteractionsRun executes every interaction at least once per
// consistency mode on a live cluster.
func TestAllInteractionsRun(t *testing.T) {
	for _, mode := range []core.Mode{core.Coarse, core.Fine, core.Session, core.Eager} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newTPCWCluster(t, 2, mode)
			s := c.NewSession()
			defer s.Close()
			x := NewCtx(smallScale(), 1, 12345)
			interactions := append(readInteractions(1, 1, 1, 1, 1, 1), updateInteractions(1, 1, 1, 1)...)
			for _, in := range interactions {
				for attempt := 0; ; attempt++ {
					err := in.Run(s, x)
					if err == nil {
						break
					}
					if attempt >= 3 || !retryable(err) {
						t.Fatalf("%s: %v", in.Name, err)
					}
				}
			}
		})
	}
}

// TestBuyConfirmSemantics verifies the purchase pipeline end to end:
// stock decremented (or restocked), order and lines inserted, cart
// emptied, and the effects replicated.
func TestBuyConfirmSemantics(t *testing.T) {
	c := newTPCWCluster(t, 2, core.Coarse)
	s := c.NewSession()
	defer s.Close()
	x := NewCtx(smallScale(), 2, 777)

	if err := ShoppingCart(s, x); err != nil {
		t.Fatal(err)
	}
	cartID := x.cartID
	if cartID == 0 {
		t.Fatal("cart not created")
	}
	if err := BuyConfirm(s, x); err != nil {
		t.Fatal(err)
	}
	if x.cartID != 0 {
		t.Fatal("cart not cleared after purchase")
	}

	// Verify on the other replica: order exists, cart lines gone.
	ordersQ, _ := sql.Prepare(`SELECT COUNT(*) FROM orders WHERE o_c_id = ?`)
	linesQ, _ := sql.Prepare(`SELECT COUNT(*) FROM shopping_cart_line WHERE scl_sc_id = ?`)
	tx, err := s.Begin("tpcw.orderDisplay")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tx.Exec(ordersQ, int64(x.CustomerID))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) < 1 {
		t.Fatal("order not found after BuyConfirm")
	}
	res, err = tx.Exec(linesQ, cartID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 0 {
		t.Fatalf("cart lines remain: %v", res.Rows[0][0])
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestMixUpdateFractions(t *testing.T) {
	cases := []struct {
		mix  *Mix
		want float64
		tol  float64
	}{
		{BrowsingMix(), 0.05, 0.02},
		{ShoppingMix(), 0.20, 0.03},
		{OrderingMix(), 0.50, 0.03},
	}
	for _, c := range cases {
		got := c.mix.UpdateFraction()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s mix update fraction = %.3f, want %.2f±%.2f", c.mix.Name, got, c.want, c.tol)
		}
	}
	if _, err := MixByName("shopping"); err != nil {
		t.Fatal(err)
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestMixPickDistribution(t *testing.T) {
	m := ShoppingMix()
	x := NewCtx(smallScale(), 3, 1)
	counts := map[string]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[m.pick(x).Name]++
	}
	total := 0
	for _, in := range m.Interactions {
		total += in.Weight
	}
	for _, in := range m.Interactions {
		if in.Weight == 0 {
			continue
		}
		want := float64(n) * float64(in.Weight) / float64(total)
		got := float64(counts[in.Name])
		if got < want*0.6-5 || got > want*1.4+5 {
			t.Errorf("%s: picked %v times, expected ≈%.0f", in.Name, got, want)
		}
	}
}

// TestEBRunCompletes drives emulated browsers briefly under each mix.
func TestEBRunCompletes(t *testing.T) {
	c := newTPCWCluster(t, 2, core.Fine)
	for _, mix := range []*Mix{BrowsingMix(), ShoppingMix(), OrderingMix()} {
		eb := &EB{Mix: mix, Scale: smallScale(), ThinkTime: 0, Retries: 2}
		stop := make(chan struct{})
		resC := make(chan int, 2)
		for i := 0; i < 2; i++ {
			go func(i int) { resC <- eb.Run(c, 100+i, stop) }(i)
		}
		time.Sleep(300 * time.Millisecond)
		close(stop)
		total := <-resC + <-resC
		if total == 0 {
			t.Fatalf("%s: no interactions completed", mix.Name)
		}
	}
}

func TestDeterministicNames(t *testing.T) {
	if UserName(7) != UserName(7) || ItemTitle(3) != ItemTitle(3) {
		t.Fatal("deterministic names differ across calls")
	}
	if AuthorLastName(1) == AuthorLastName(2) {
		t.Fatal("author names collide")
	}
}

// TestShardMapConsistent pins ShardMap and CrossShardTxns to TxnNames:
// every table a transaction touches must be mapped, and CrossShardTxns
// must be exactly the transactions whose table-sets span shards.
func TestShardMapConsistent(t *testing.T) {
	smap, err := shard.New(ShardCount, ShardMap)
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range Tables {
		if _, ok := ShardMap[table]; !ok {
			t.Errorf("schema table %q missing from ShardMap", table)
		}
	}
	cross := map[string]bool{}
	for _, name := range CrossShardTxns {
		if _, ok := TxnNames[name]; !ok {
			t.Errorf("CrossShardTxns lists unknown transaction %q", name)
		}
		cross[name] = true
	}
	for name, stmts := range TxnNames {
		var tables []string
		for _, p := range stmts {
			for _, tab := range p.TableSet {
				if _, ok := ShardMap[tab]; !ok {
					t.Errorf("%s touches table %q missing from ShardMap", name, tab)
				}
				tables = append(tables, tab)
			}
		}
		spans := len(smap.OfTables(tables)) > 1
		if spans && !cross[name] {
			t.Errorf("%s spans multiple shards but is not in CrossShardTxns", name)
		}
		if !spans && cross[name] {
			t.Errorf("%s is single-shard but listed in CrossShardTxns", name)
		}
	}
}
