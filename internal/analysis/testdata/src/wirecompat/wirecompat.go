// Fixture for the wirecompat analyzer. The companion schema.lock was
// "committed" for an older revision of these structs, so every class
// of evolution violation appears once: hello lost its Legacy field
// (the seeded removed-certHello-field mutant), req changed a field
// type, resp grew an unlocked field, novel is a new unlocked struct,
// swap reordered fields, and envelope carries the gob-hostile field
// shapes. hello and req reach gob only through the send wrapper,
// proving sink-parameter propagation.
package wirecompat

import (
	"encoding/gob"
	"io"
)

type hello struct { // want `wire field wirecompat\.hello\.Legacy \(uint64\) was removed or renamed`
	Kind   string
	Shards []int
}

type req struct {
	Seq int64 // want `changed gob-visible type uint64 -> int64`
}

type resp struct {
	Seq   uint64
	Extra string // want `new wire field wirecompat\.resp\.Extra`
}

type novel struct { // want `reachable from a gob call site but not locked`
	N int
}

type swap struct { // want `field order differs`
	A int
	B int
}

type envelope struct {
	Done   chan int  // want `contains a chan`
	Body   io.Reader // want `non-empty interface`
	secret int       // want `unexported field`
	Blob   []byte
}

// send is a gob wrapper: its v parameter is a sink, so concrete
// arguments at its call sites are wire roots.
func send(enc *gob.Encoder, v any) error {
	return enc.Encode(v)
}

func roundTrip(w io.Writer, r io.Reader) {
	enc := gob.NewEncoder(w)
	dec := gob.NewDecoder(r)
	_ = send(enc, &hello{})
	_ = send(enc, &req{})
	_ = send(enc, &novel{})
	_ = enc.Encode(&envelope{})
	_ = enc.Encode(swap{})
	var rs resp
	_ = dec.Decode(&rs)
}

var _ = roundTrip
