// Fixture for the determinism coverage-gap check: this package is not
// in DeterminismSeeded, so a bare math/rand import warns (new seeded
// code must not dodge the analyzer silently), while the annotated
// import in annotated.go is acknowledged and stays quiet.
package detcoverage

import (
	"math/rand" // want `imports math/rand but is not in DeterminismSeeded`
)

func draw() int { return rand.Intn(10) }

var _ = draw
