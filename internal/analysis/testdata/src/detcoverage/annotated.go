package detcoverage

import (
	// det:unseeded-ok — cosmetic jitter, never replayed
	randv2 "math/rand/v2"
)

func jitter() int { return randv2.IntN(3) }

var _ = jitter
