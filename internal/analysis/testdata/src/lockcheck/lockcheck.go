// Fixture for the lockcheck analyzer: "guarded by" annotations must
// be enforced, unannotated fields must never be flagged, and the
// Locked-suffix / caller-holds escapes must work.
package lockcheck

import "sync"

type box struct {
	mu sync.Mutex
	// count is the running total.
	// guarded by mu
	count int
	// plain is lock-protected in practice but carries no annotation:
	// the analyzer must stay silent about it either way.
	plain int
	// guarded by nosuch
	bad int // want `guarded-by mutex "nosuch" is not a field of box`
}

// good locks before touching guarded state.
func (b *box) good() {
	b.mu.Lock()
	b.count++
	b.mu.Unlock()
}

// goodDeferred uses the lock/defer-unlock idiom.
func (b *box) goodDeferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// races touches guarded state with no lock anywhere in the function.
func (b *box) races() {
	b.count++ // want `box.count is guarded by mu but accessed without b.mu held in races`
}

// countLocked runs inside the caller's critical section; the suffix
// exempts it.
func (b *box) countLocked() int {
	return b.count
}

// drain is called with mu held by the flush path.
func (b *box) drain() int {
	v := b.count
	b.count = 0
	return v
}

// lockedPlain exercises the no-false-positive case: a field that is
// locked in practice but unannotated must not be reported...
func (b *box) lockedPlain() {
	b.mu.Lock()
	b.plain++
	b.mu.Unlock()
}

// ...and neither must an unlocked access to it.
func (b *box) unlockedPlain() {
	b.plain++
}

// newBox writes guarded fields on a value that has not escaped its
// constructor: exempt.
func newBox() *box {
	b := &box{}
	b.count = 1
	return b
}

// rwbox checks the RLock path on a sync.RWMutex guard.
type rwbox struct {
	rw sync.RWMutex
	// guarded by rw
	snap uint64
}

func (r *rwbox) read() uint64 {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.snap
}

func (r *rwbox) stale() uint64 {
	return r.snap // want `rwbox.snap is guarded by rw but accessed without r.rw held in stale`
}
