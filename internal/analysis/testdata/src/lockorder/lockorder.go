// Fixture for the lockorder analyzer: declared hierarchies must
// silence consistent nesting (direct or through calls), inverted
// orders must error as cycles, undeclared orders must warn, and
// same-class multi-acquire must demand the ascending-loop discipline
// (the descending reserve is the seeded mutant).
package lockorder

import "sync"

// Declared hierarchy: inner.mu is always taken under outer.mu.
type outer struct{ mu sync.Mutex }

type inner struct {
	// locks after outer.mu
	mu sync.Mutex
}

// nestOK follows the declared order: no diagnostic.
func nestOK(o *outer, i *inner) {
	o.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

// lockInner gives the call graph an acquisition to propagate.
func lockInner(i *inner) {
	i.mu.Lock()
	i.mu.Unlock()
}

// nestViaCall takes the same declared edge through a callee: silent.
func nestViaCall(o *outer, i *inner) {
	o.mu.Lock()
	lockInner(i)
	o.mu.Unlock()
}

// Undeclared but consistent order: warn so it gets declared.
type top struct{ mu sync.Mutex }

type bottom struct{ mu sync.Mutex }

func undeclared(t *top, b *bottom) {
	t.mu.Lock()
	b.mu.Lock() // want `bottom\.mu is acquired while top\.mu is held, but bottom\.mu has no "// locks after top\.mu" annotation`
	b.mu.Unlock()
	t.mu.Unlock()
}

// Two paths locking in opposite orders: a deadlock cycle.
type ping struct{ mu sync.Mutex }

type pong struct{ mu sync.Mutex }

func pingThenPong(p *ping, q *pong) {
	p.mu.Lock()
	q.mu.Lock() // want `lock classes form a cycle \(ping\.mu -> pong\.mu -> ping\.mu\)`
	q.mu.Unlock()
	p.mu.Unlock()
}

func pongThenPing(p *ping, q *pong) {
	q.mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	q.mu.Unlock()
}

// seq models the per-shard sequencer: multi-acquire is legal only as
// an ascending loop.
type seq struct {
	id int
	// locks self ascending
	mu sync.Mutex
}

// lockAllOK is the blessed cross-shard pattern: tagged ascending
// slice loop, released after the loop.
func lockAllOK(seqs []*seq) {
	// lockorder: ascending
	for _, s := range seqs {
		s.mu.Lock()
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		seqs[i].mu.Unlock()
	}
}

// reserveDescending is the seeded mutant: the reserve loop walks
// shard IDs downward, inverting the ascending discipline.
func reserveDescending(seqs []*seq) {
	// lockorder: ascending
	for i := len(seqs) - 1; i >= 0; i-- { // want `descending \(i--\) loop`
		seqs[i].mu.Lock()
	}
	for _, s := range seqs {
		s.mu.Unlock()
	}
}

// lockAllUntagged multi-acquires without asserting the order. (The
// want regexp must not quote the tag itself, or it would tag the
// loop.)
func lockAllUntagged(seqs []*seq) {
	for _, s := range seqs { // want `holds multiple seq\.mu locks across loop iterations`
		s.mu.Lock()
	}
	for _, s := range seqs {
		s.mu.Unlock()
	}
}

// lockAllMap iterates a map: the order is different every run, so two
// goroutines can deadlock even with the tag present.
func lockAllMap(m map[int]*seq) {
	// lockorder: ascending
	for _, s := range m { // want `ranging over a map`
		s.mu.Lock()
	}
	for _, s := range m {
		s.mu.Unlock()
	}
}

// useq has no self-ascending annotation, so holding two at once is an
// undeclared discipline.
type useq struct{ mu sync.Mutex }

func lockAllUnordered(us []*useq) {
	// lockorder: ascending
	for _, u := range us {
		u.mu.Lock() // want `not annotated "// locks self ascending"`
	}
	for _, u := range us {
		u.mu.Unlock()
	}
}

// sweep releases per iteration: the ordinary single-hold pattern
// needs no annotation.
func sweep(us []*useq) {
	for _, u := range us {
		u.mu.Lock()
		u.mu.Unlock()
	}
}

// pairUnordered holds two instances of an unannotated class outside
// any loop: nothing proves the acquisition order.
func pairUnordered(a, b *useq) {
	a.mu.Lock()
	b.mu.Lock() // want `same-class multi-acquire`
	b.mu.Unlock()
	a.mu.Unlock()
}

// registry is locked only after every seq.mu is released; the local
// unlock closure must be inlined at its call site for the analyzer to
// see that.
type registry struct{ mu sync.Mutex }

func reserveThenRegister(seqs []*seq, r *registry) {
	// lockorder: ascending
	for _, s := range seqs {
		s.mu.Lock()
	}
	unlock := func() {
		for _, s := range seqs {
			s.mu.Unlock()
		}
	}
	unlock()
	r.mu.Lock()
	r.mu.Unlock()
}

// orphan names a mutex that does not exist.
type orphan struct {
	// locks after ghost.mu
	mu sync.Mutex // want `names ghost\.mu, which is not a mutex field`
}
