// Fixture for the tableset analyzer's shard-map checks: a workload
// package declaring a ShardMap and CrossShardTxns alongside its
// TxnNames registry. The declared table-sets must respect the static
// shard map, and CrossShardTxns must be exactly the transactions whose
// table-sets span shards.
package tablesetshard

type Prepared struct{ SQL string }

func Prepare(src string) (*Prepared, error) { return &Prepared{SQL: src}, nil }

var (
	stReadT1, _  = Prepare(`SELECT a FROM t1 WHERE a = ?`)
	stWriteT2, _ = Prepare(`UPDATE t2 SET b = ? WHERE a = ?`)
	stReadT3, _  = Prepare(`SELECT a FROM t3 WHERE a = ?`)
	stReadT4, _  = Prepare(`SELECT a FROM t4 WHERE a = ?`)
)

var TxnNames = map[string][]*Prepared{
	// Single-shard (t1 → 0), not listed: fine.
	"fix.single": {stReadT1},
	// Cross-shard (t1 → 0, t2 → 1), listed: fine.
	"fix.cross": {stReadT1, stWriteT2},
	// Cross-shard (t1 → 0, t3 → 1) but never listed.
	"fix.unlisted": {stReadT1, stReadT3}, // want `transaction "fix.unlisted" spans 2 shards but is not listed in CrossShardTxns`
	// t4 is missing from ShardMap entirely.
	"fix.unmapped": {stReadT4}, // want `transaction "fix.unmapped" declares table "t4" \(via stReadT4\) missing from ShardMap`
	// Single-shard (t2 → 1) yet listed below.
	"fix.overlisted": {stWriteT2},
}

var ShardMap = map[string]int{
	"t1": 0,
	"t2": 1,
	"t3": 1,
}

var CrossShardTxns = []string{
	"fix.cross",
	"fix.overlisted", // want `transaction "fix.overlisted" is listed in CrossShardTxns but its table-set is single-shard`
	"fix.ghost",      // want `CrossShardTxns lists "fix.ghost", which is not declared in TxnNames`
}
