// Fixture for the tableset analyzer: a self-contained stand-in for a
// workload package. Local Prepare/Session/Tx stubs mirror the shapes
// of sconrep/internal/sql and sconrep/internal/cluster; the analyzer
// matches Begin/Exec/Prepare/TxnNames structurally, so no module
// imports are needed.
package tableset

type Prepared struct{ SQL string }

func Prepare(src string) (*Prepared, error) { return &Prepared{SQL: src}, nil }

var (
	stReadT1, _  = Prepare(`SELECT a FROM t1 WHERE a = ?`)
	stWriteT2, _ = Prepare(`UPDATE t2 SET b = ? WHERE a = ?`)
	stReadT3, _  = Prepare(`SELECT a FROM t3 WHERE a = ?`)
)

var TxnNames = map[string][]*Prepared{
	"fix.ok": {stReadT1, stWriteT2},
	// Deliberately under-declared: stWriteT2 was removed from the
	// declaration without changing underTxn's body, the exact drift
	// that silently breaks FSC.
	"fix.under": {stReadT1},
	"fix.over":  {stReadT1, stReadT3}, // want `transaction "fix.over" declares table "t3" \(via stReadT3\) that its body never touches`
}

type Tx struct{}

func (t *Tx) Exec(p *Prepared, args ...any) (int, error)   { return 0, nil }
func (t *Tx) ExecSQL(src string, args ...any) (int, error) { return 0, nil }
func (t *Tx) Commit() (int, error)                         { return 0, nil }
func (t *Tx) Abort()                                       {}

type Session struct{}

func (s *Session) Begin(name string) (*Tx, error) { return &Tx{}, nil }

// okTxn's body matches its declaration exactly: no findings.
func okTxn(s *Session) error {
	tx, _ := s.Begin("fix.ok")
	tx.Exec(stReadT1, 1)
	tx.Exec(stWriteT2, 2, 1)
	tx.Commit()
	return nil
}

// underTxn still writes t2, but the declaration above no longer says
// so: FSC would not synchronize on t2 before starting this
// transaction.
func underTxn(s *Session) error {
	tx, _ := s.Begin("fix.under")
	tx.Exec(stReadT1, 1)
	tx.Exec(stWriteT2, 2, 1) // want `transaction "fix.under" executes stWriteT2 touching table "t2" missing from its TxnNames table-set`
	tx.Commit()
	return nil
}

// overTxn only reads t1; the declared stReadT3 is pure start-delay.
func overTxn(s *Session) error {
	tx, _ := s.Begin("fix.over")
	tx.Exec(stReadT1, 1)
	tx.Commit()
	return nil
}

// unknownTxn begins a name with no TxnNames entry at all.
func unknownTxn(s *Session) error {
	tx, _ := s.Begin("fix.unknown") // want `transaction "fix.unknown" is not declared in TxnNames`
	tx.Exec(stReadT1, 1)
	tx.Commit()
	return nil
}

// dynamicTxn defeats static resolution two ways: a locally built
// statement handle and non-literal SQL.
func dynamicTxn(s *Session, src string) error {
	tx, _ := s.Begin("fix.ok")
	local := &Prepared{SQL: src}
	tx.Exec(local, 1)  // want `Exec statement local does not resolve to a package-level sql.Prepare variable`
	tx.ExecSQL(src, 1) // want `ExecSQL with a non-literal statement`
	tx.Commit()
	return nil
}
