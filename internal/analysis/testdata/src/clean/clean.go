// Fixture with none of the suite's trigger conventions: no TxnNames
// registry, no guard annotations, not a seeded package. All five
// analyzers must report nothing.
package clean

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// unguarded has no annotation, so lockcheck has nothing to say.
func (c *counter) unguarded() int { return c.n }

// now is fine here: this package is not registered as seeded.
func now() time.Time { return time.Now() }

func histogram(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
