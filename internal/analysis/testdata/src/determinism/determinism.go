// Fixture for the determinism analyzer: wall-clock reads, global
// math/rand draws, unannotated map iteration, and tracers built on
// the default wall clock are replay-breakers; seeded generators,
// time.Sleep, injected-clock tracers, and annotated or slice
// iteration are fine. The test registers this package as seeded.
package determinism

import (
	"math/rand"
	"sort"
	"time"

	"sconrep/internal/obs/dtrace"
)

func clock() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock in a seeded package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock in a seeded package`
}

func pause(d time.Duration) {
	time.Sleep(d) // ok: shapes pacing, not decisions
}

func draw() int {
	return rand.Intn(6) // want `rand.Intn draws from the process-global source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicitly seeded stream
	return r.Intn(6)
}

func sum(m map[string]int) int {
	t := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		t += v
	}
	return t
}

func keys(m map[string]int) []string {
	var out []string
	// Collecting keys then sorting makes the output order-free.
	// det:order-insensitive
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func total(xs []int) int {
	t := 0
	for _, x := range xs { // ok: slice iteration is ordered
		t += x
	}
	return t
}

func wallClockTracer(coll *dtrace.Collector) *dtrace.Tracer {
	return dtrace.New("node", coll) // want `dtrace.New without dtrace.WithClock in a seeded package`
}

func modelClockTracer(coll *dtrace.Collector, now func() time.Time) *dtrace.Tracer {
	return dtrace.New("node", coll, dtrace.WithClock(now)) // ok: injected clock
}
