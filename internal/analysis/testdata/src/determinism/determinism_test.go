package determinism

import "time"

// Test files are exempt: a wall-clock read here must produce no
// diagnostic even though the package is seeded.
func testOnlyClock() time.Time {
	return time.Now()
}
