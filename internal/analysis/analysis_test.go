package analysis_test

import (
	"path/filepath"
	"testing"

	"sconrep/internal/analysis"
	"sconrep/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// TestTableSet covers the acceptance case directly: the fixture's
// "fix.under" transaction had a statement removed from its TxnNames
// declaration with the body unchanged, and the analyzer must error.
func TestTableSet(t *testing.T) {
	analysistest.Run(t, fixture("tableset"), analysis.TableSet)
}

// TestTableSetShard covers the shard-map checks: a declared table
// missing from ShardMap, a cross-shard transaction absent from
// CrossShardTxns, a single-shard transaction listed anyway, and a
// listed name with no TxnNames entry.
func TestTableSetShard(t *testing.T) {
	analysistest.Run(t, fixture("tablesetshard"), analysis.TableSet)
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, fixture("lockcheck"), analysis.LockCheck)
}

func TestDeterminism(t *testing.T) {
	saved := analysis.DeterminismSeeded
	analysis.DeterminismSeeded = append([]string{"determinism"}, saved...)
	defer func() { analysis.DeterminismSeeded = saved }()
	analysistest.Run(t, fixture("determinism"), analysis.Determinism)
}

// TestSuiteSilentOnCleanPackage runs all three analyzers over a
// package with no TxnNames registry, no guard annotations, and no
// seeded-path registration: the suite must stay quiet rather than
// speculate.
func TestSuiteSilentOnCleanPackage(t *testing.T) {
	analysistest.Run(t, fixture("clean"), analysis.Analyzers()...)
}
