package analysis_test

import (
	"path/filepath"
	"testing"

	"sconrep/internal/analysis"
	"sconrep/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// TestTableSet covers the acceptance case directly: the fixture's
// "fix.under" transaction had a statement removed from its TxnNames
// declaration with the body unchanged, and the analyzer must error.
func TestTableSet(t *testing.T) {
	analysistest.Run(t, fixture("tableset"), analysis.TableSet)
}

// TestTableSetShard covers the shard-map checks: a declared table
// missing from ShardMap, a cross-shard transaction absent from
// CrossShardTxns, a single-shard transaction listed anyway, and a
// listed name with no TxnNames entry.
func TestTableSetShard(t *testing.T) {
	analysistest.Run(t, fixture("tablesetshard"), analysis.TableSet)
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, fixture("lockcheck"), analysis.LockCheck)
}

func TestDeterminism(t *testing.T) {
	saved := analysis.DeterminismSeeded
	analysis.DeterminismSeeded = append([]string{"determinism"}, saved...)
	defer func() { analysis.DeterminismSeeded = saved }()
	analysistest.Run(t, fixture("determinism"), analysis.Determinism)
}

// TestDetCoverage covers the seeded-list gap check: a package outside
// DeterminismSeeded importing math/rand warns unless the import
// carries the det:unseeded-ok tag.
func TestDetCoverage(t *testing.T) {
	analysistest.Run(t, fixture("detcoverage"), analysis.Determinism)
}

// TestWireCompat covers the acceptance mutants directly: the fixture
// lock was written for an older revision of the package, so the
// removed hello field, the type change, the unlocked additions, the
// reorder, and the gob-hostile field shapes must each be reported.
func TestWireCompat(t *testing.T) {
	saved := analysis.WireSchemaLockFile
	analysis.WireSchemaLockFile = fixture("wirecompat") + "/schema.lock"
	defer func() { analysis.WireSchemaLockFile = saved }()
	analysistest.Run(t, fixture("wirecompat"), analysis.WireCompat)
}

// TestLockOrder covers the lock-graph checks, including the seeded
// descending-reserve mutant and the opposite-order cycle.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, fixture("lockorder"), analysis.LockOrder)
}

// TestSchemaLockRoundTrip pins the lockfile codec: parsing a
// formatted schema reproduces it byte-for-byte.
func TestSchemaLockRoundTrip(t *testing.T) {
	s := &analysis.Schema{Structs: map[string]*analysis.SchemaStruct{
		"p.b": {Name: "p.b", Fields: []analysis.SchemaField{{Name: "X", Type: "map[string]uint64"}}},
		"p.a": {Name: "p.a", Fields: []analysis.SchemaField{
			{Name: "Seq", Type: "uint64"},
			{Name: "WS", Type: "*p.ws"},
		}},
	}}
	data := s.Format()
	parsed, err := analysis.ParseSchemaLock(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := string(parsed.Format()); got != string(data) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", got, data)
	}
}

// TestSuiteSilentOnCleanPackage runs all five analyzers over a
// package with no TxnNames registry, no guard annotations, no
// seeded-path registration, and no gob call sites: the suite must
// stay quiet rather than speculate.
func TestSuiteSilentOnCleanPackage(t *testing.T) {
	analysistest.Run(t, fixture("clean"), analysis.Analyzers()...)
}
