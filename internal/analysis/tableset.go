package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	sqlpkg "sconrep/internal/sql"
)

// TableSet verifies the paper's §III-B premise that each transaction's
// static table-set is extracted from the workload, not hand-maintained
// into drift. For every package that declares a TxnNames registry
// (`var TxnNames = map[string][]*sql.Prepared{...}`) it:
//
//  1. resolves every package-level `stX, _ = sql.Prepare(`...`)`
//     variable to its SQL string and re-extracts the statement's
//     tables with the repo's own internal/sql parser (the same code
//     RegisterTxn trusts at runtime);
//  2. traces each function containing `s.Begin("name")` and collects
//     the prepared statements passed to `tx.Exec` (and literal SQL
//     passed to `tx.ExecSQL`) in that body;
//  3. diffs the body's table-set against the declared one.
//
// An under-declared table is an Error: the fine-grained mode will not
// wait for that table's version, so the transaction can read stale
// data with no failure signal. An over-declared table is a Warning:
// FSC waits for a table the body never touches, adding start delay
// and eroding the fine-grained edge of §III-C.
//
// The analyzer is deliberately conservative: every statement handle
// reaching Exec must be a package-level sql.Prepare variable, and all
// of a transaction's Execs must live in the function that calls
// Begin. Anything it cannot resolve statically is itself an Error —
// the convention is what makes the table-sets provable.
//
// When the package also declares a certification shard map
// (`var ShardMap = map[string]int{...}`, optionally with
// `var CrossShardTxns = []string{...}`), the analyzer additionally
// proves the declared table-sets respect it: a declared table missing
// from ShardMap is an Error (it would silently hash to a shard nobody
// audited), a transaction whose table-set spans more than one shard
// but is absent from CrossShardTxns is an Error (its cross-shard
// certification cost is undeclared), and a CrossShardTxns entry that
// is single-shard — or names no transaction at all — is drift the
// other way (Warning / Error).
var TableSet = &Analyzer{
	Name: "tableset",
	Doc:  "declared FSC table-sets must match the tables transaction bodies touch",
	Run:  runTableSet,
}

// txnDecl is one TxnNames entry.
type txnDecl struct {
	pos    token.Pos
	stmts  []string        // declared statement variable names
	tables map[string]bool // union of their table-sets
	via    map[string]string
}

func runTableSet(pass *Pass) error {
	prepared, prepErr := collectPrepared(pass)
	declared := collectTxnNames(pass, prepared)
	if declared == nil {
		return nil // package has no TxnNames registry; not a workload package
	}
	if prepErr {
		return nil // already reported; table-sets would be incomplete
	}

	type use struct {
		table string
		pos   token.Pos
		via   string
	}
	used := map[string][]use{}    // txn name -> touched tables
	beginPos := map[string]bool{} // txn names whose body we saw

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name, pos, ok := beginName(pass, fn)
			if !ok {
				continue
			}
			if _, ok := declared[name]; !ok {
				pass.Reportf(pos, Error,
					"transaction %q is not declared in TxnNames: the load balancer has no table-set for it", name)
				continue
			}
			beginPos[name] = true
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				switch sel.Sel.Name {
				case "Exec":
					id, ok := call.Args[0].(*ast.Ident)
					if !ok {
						pass.Reportf(call.Pos(), Error,
							"transaction %q: Exec statement is not a package-level sql.Prepare variable; its tables cannot be proven", name)
						return true
					}
					sqlSrc, ok := prepared[id.Name]
					if !ok {
						pass.Reportf(call.Pos(), Error,
							"transaction %q: Exec statement %s does not resolve to a package-level sql.Prepare variable", name, id.Name)
						return true
					}
					for _, t := range tablesOf(sqlSrc) {
						used[name] = append(used[name], use{t, call.Pos(), id.Name})
					}
				case "ExecSQL":
					src, ok := stringLit(call.Args[0])
					if !ok {
						pass.Reportf(call.Pos(), Error,
							"transaction %q: ExecSQL with a non-literal statement; its tables cannot be proven", name)
						return true
					}
					for _, t := range tablesOf(src) {
						used[name] = append(used[name], use{t, call.Pos(), "literal SQL"})
					}
				}
				return true
			})
		}
	}

	// Diff used against declared, per transaction.
	names := make([]string, 0, len(declared))
	for n := range declared {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		d := declared[name]
		if !beginPos[name] {
			continue // body not in this package; nothing to diff against
		}
		seen := map[string]bool{}
		for _, u := range used[name] {
			if !d.tables[u.table] && !seen[u.table] {
				seen[u.table] = true
				pass.Reportf(u.pos, Error,
					"transaction %q executes %s touching table %q missing from its TxnNames table-set: FSC will not synchronize on it (stale reads, no failure signal)",
					name, u.via, u.table)
			}
			seen[u.table] = true
		}
		var over []string
		for t := range d.tables {
			if !seen[t] {
				over = append(over, t)
			}
		}
		sort.Strings(over)
		for _, t := range over {
			pass.Reportf(d.pos, Warning,
				"transaction %q declares table %q (via %s) that its body never touches: FSC waits on it for nothing (needless start delay)",
				name, t, d.via[t])
		}
	}

	checkShardMap(pass, declared)
	return nil
}

// checkShardMap diffs the declared table-sets against the package's
// shard map, if it declares one: every declared table must be mapped,
// and CrossShardTxns must be exactly the transactions whose table-sets
// span shards.
func checkShardMap(pass *Pass, declared map[string]*txnDecl) {
	smap := collectShardMap(pass)
	if smap == nil {
		return // package declares no shard map; nothing to prove
	}
	cross := collectCrossShardTxns(pass)
	for name, pos := range cross {
		if _, ok := declared[name]; !ok {
			pass.Reportf(pos, Error,
				"CrossShardTxns lists %q, which is not declared in TxnNames", name)
		}
	}

	names := make([]string, 0, len(declared))
	for n := range declared {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		d := declared[name]
		shards := map[int]bool{}
		unmapped := false
		tables := make([]string, 0, len(d.tables))
		for t := range d.tables {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			sh, ok := smap[t]
			if !ok {
				pass.Reportf(d.pos, Error,
					"transaction %q declares table %q (via %s) missing from ShardMap: it would hash to an unaudited shard",
					name, t, d.via[t])
				unmapped = true
				continue
			}
			shards[sh] = true
		}
		if unmapped {
			continue // the span below would be meaningless
		}
		pos, listed := cross[name]
		switch {
		case len(shards) > 1 && !listed:
			pass.Reportf(d.pos, Error,
				"transaction %q spans %d shards but is not listed in CrossShardTxns: its reserve/seal certification cost is undeclared",
				name, len(shards))
		case len(shards) <= 1 && listed:
			pass.Reportf(pos, Warning,
				"transaction %q is listed in CrossShardTxns but its table-set is single-shard", name)
		}
	}
}

// collectShardMap parses a package-level
// `var ShardMap = map[string]int{...}` literal. Nil if absent.
func collectShardMap(pass *Pass) map[string]int {
	var out map[string]int
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "ShardMap" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				if out == nil {
					out = map[string]int{}
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					table, ok := stringLit(kv.Key)
					if !ok {
						pass.Reportf(kv.Pos(), Error, "ShardMap key is not a string literal")
						continue
					}
					sh, ok := intLit(kv.Value)
					if !ok {
						pass.Reportf(kv.Value.Pos(), Error,
							"ShardMap[%q] value is not an integer literal; the shard assignment cannot be proven", table)
						continue
					}
					out[table] = sh
				}
			}
		}
	}
	return out
}

// collectCrossShardTxns parses a package-level
// `var CrossShardTxns = []string{...}` literal into name → position.
// Empty (not nil) if absent: with a ShardMap declared, no list means
// every transaction claims to be single-shard.
func collectCrossShardTxns(pass *Pass) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "CrossShardTxns" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					name, ok := stringLit(elt)
					if !ok {
						pass.Reportf(elt.Pos(), Error, "CrossShardTxns entry is not a string literal")
						continue
					}
					out[name] = elt.Pos()
				}
			}
		}
	}
	return out
}

func intLit(e ast.Expr) (int, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	n, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	return n, true
}

// collectPrepared maps package-level `name, _ = sql.Prepare(lit)`
// variables to their SQL source. Reports (and flags) Prepare calls
// whose statement is not a string literal.
func collectPrepared(pass *Pass) (map[string]string, bool) {
	out := map[string]string{}
	bad := false
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 || len(vs.Names) == 0 {
					continue
				}
				call, ok := vs.Values[0].(*ast.CallExpr)
				if !ok || calleeName(call) != "Prepare" || len(call.Args) == 0 {
					continue
				}
				src, ok := stringLit(call.Args[0])
				if !ok {
					pass.Reportf(call.Pos(), Error,
						"sql.Prepare argument for %s is not a string literal; its table-set cannot be proven", vs.Names[0].Name)
					bad = true
					continue
				}
				out[vs.Names[0].Name] = src
			}
		}
	}
	return out, bad
}

// collectTxnNames parses the TxnNames registry literal. Returns nil if
// the package declares none.
func collectTxnNames(pass *Pass, prepared map[string]string) map[string]*txnDecl {
	var out map[string]*txnDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "TxnNames" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				if out == nil {
					out = map[string]*txnDecl{}
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					name, ok := stringLit(kv.Key)
					if !ok {
						pass.Reportf(kv.Pos(), Error, "TxnNames key is not a string literal")
						continue
					}
					d := &txnDecl{pos: kv.Pos(), tables: map[string]bool{}, via: map[string]string{}}
					val, ok := kv.Value.(*ast.CompositeLit)
					if !ok {
						pass.Reportf(kv.Value.Pos(), Error, "TxnNames[%q] value is not a statement-list literal", name)
						continue
					}
					for _, s := range val.Elts {
						id, ok := s.(*ast.Ident)
						if !ok {
							pass.Reportf(s.Pos(), Error, "TxnNames[%q] entry is not a prepared-statement variable", name)
							continue
						}
						src, ok := prepared[id.Name]
						if !ok {
							pass.Reportf(s.Pos(), Error,
								"TxnNames[%q] entry %s does not resolve to a package-level sql.Prepare variable", name, id.Name)
							continue
						}
						d.stmts = append(d.stmts, id.Name)
						for _, t := range tablesOf(src) {
							d.tables[t] = true
							if _, dup := d.via[t]; !dup {
								d.via[t] = id.Name
							}
						}
					}
					out[name] = d
				}
			}
		}
	}
	return out
}

// beginName finds the function's s.Begin("name") call. ok is false if
// the function begins no named transaction.
func beginName(pass *Pass, fn *ast.FuncDecl) (name string, pos token.Pos, ok bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "Begin" || len(call.Args) != 1 {
			return true
		}
		lit, isLit := stringLit(call.Args[0])
		if !isLit {
			pass.Reportf(call.Pos(), Error,
				"Begin with a non-literal transaction name; its table-set cannot be resolved statically")
			return true
		}
		name, pos, ok = lit, call.Pos(), true
		return false
	})
	return name, pos, ok
}

// tablesOf re-extracts a statement's tables with the repo's own SQL
// front end — the exact code the runtime trusts via RegisterTxn.
func tablesOf(src string) []string {
	p, err := sqlpkg.Prepare(src)
	if err != nil {
		// Unparseable SQL fails at package init long before analysis;
		// treat as no tables rather than double-reporting.
		return nil
	}
	return p.TableSet
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		// Raw strings with backticks unquote fine; anything else is a
		// parser bug, not ours.
		return strings.Trim(lit.Value, "`\""), true
	}
	return s, true
}
