package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages for analysis. One Loader
// shares a FileSet and an importer cache across packages, so a whole
// `./...` run type-checks each dependency once.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader. Imports — both standard library and
// module-local — are resolved from source via go/importer's source
// compiler, which shells out to the go command for module paths, so
// the loader must run with the module root as working directory.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Load parses the named files (absolute or loader-cwd-relative) as one
// package and type-checks them. Type errors fail the load: the
// analyzers assume complete type information, and anything reachable
// by `go build ./...` type-checks by definition.
func (l *Loader) Load(path string, filenames []string) (*Package, error) {
	sort.Strings(filenames)
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Files: files, Pkg: pkg, Info: info}, nil
}

// LoadDir loads every .go file in dir as one package. includeTests
// keeps _test.go files (in-package test files only; fixture dirs do
// not use separate _test packages). Used by the fixture runner.
func (l *Loader) LoadDir(dir string, includeTests bool) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !includeTests && strings.HasSuffix(m, "_test.go") {
			continue
		}
		files = append(files, m)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return l.Load(filepath.Base(dir), files)
}

// Run applies each analyzer to the package and returns the findings
// sorted by position.
func Run(pkg *Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
