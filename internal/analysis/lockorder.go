package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockOrder proves the package's mutex acquisition order acyclic — the
// static half of the deadlock-freedom argument the sharded certifier's
// cross-shard reserve/seal path makes in comments. It builds a lock
// graph whose nodes are mutex classes (a named struct's sync.Mutex /
// sync.RWMutex field, e.g. sequencer.mu) and whose edges come from two
// sources:
//
//   - declared hierarchy: a mutex field annotated "// locks after
//     <mu>" (sibling) or "// locks after <Type>.<mu>" (another struct
//     in the package) declares that the named mutex is always
//     acquired first;
//   - observed acquisitions: an intraprocedural walk of every function
//     body (closures as separate units; calls to local closure
//     variables apply the closure's direct lock effects at the call
//     site) records each Lock/RLock taken while another class is
//     held, and calls to package functions add edges to every class
//     the callee transitively acquires.
//
// Any cycle in the combined graph is an Error: two code paths can
// interleave into a deadlock. An observed edge absent from the
// declared hierarchy is a Warning: the order exists in the code but
// not in the contract, so the next refactor can silently invert it.
//
// Same-class multi-acquire (holding several sequencer.mu at once) is
// the cross-shard case the paper's sharding relies on; it is only
// legal as a loop that provably ascends:
//
//   - the mutex field carries "// locks self ascending";
//   - the loop carries "// lockorder: ascending" on its line or the
//     line above, and iterates forward over a slice/array (a map
//     range or a descending 3-clause loop is an Error — the seeded
//     shard-ID slices are ascending by construction);
//   - the locks are released after the loop (a loop that also unlocks
//     per iteration is the ordinary single-hold pattern and needs no
//     annotation).
//
// "// lockorder: ignore" on an acquisition's line (or the line above)
// exempts it, for the rare lock whose ordering is proven elsewhere.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the inter-mutex acquisition graph must be acyclic and match the declared \"locks after\" hierarchy",
	Run:  runLockOrder,
}

const (
	lockOrderAscendTag = "lockorder: ascending"
	lockOrderIgnoreTag = "lockorder: ignore"
)

var (
	locksAfterRe = regexp.MustCompile(`locks after (?:(\w+)\.)?(\w+)`)
	locksSelfRe  = regexp.MustCompile(`locks self ascending`)
)

// lockClass identifies a mutex field within the package; every
// instance of the struct shares the class.
type lockClass struct {
	typeName string
	field    string
}

func (c lockClass) String() string { return c.typeName + "." + c.field }

// classInfo is one mutex class's declaration site and annotations.
type classInfo struct {
	pos           token.Pos
	selfAscending bool
	after         []lockClass // declared predecessors (outer locks)
	afterPos      token.Pos
}

type lockEdge struct{ from, to lockClass }

type lockOrderPkg struct {
	pass     *Pass
	classes  map[lockClass]*classInfo
	tagLines map[string]map[int]string // filename -> line -> tag
	observed map[lockEdge]token.Pos    // first witness position
	// trans maps each package function to the classes it (or anything
	// it calls inside the package) acquires.
	trans map[*types.Func]map[lockClass]bool
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrderPkg{
		pass:     pass,
		classes:  map[lockClass]*classInfo{},
		tagLines: map[string]map[int]string{},
		observed: map[lockEdge]token.Pos{},
		trans:    map[*types.Func]map[lockClass]bool{},
	}
	lo.collectClasses()
	if len(lo.classes) == 0 {
		return nil
	}
	lo.collectTags()
	lo.buildCallGraph()
	for _, u := range lo.units() {
		lo.checkUnit(u)
	}
	lo.checkGraph()
	return nil
}

// collectClasses finds every sync.Mutex / sync.RWMutex struct field
// and parses its hierarchy annotations.
func (lo *lockOrderPkg) collectClasses() {
	type pendingAfter struct {
		class lockClass
		ref   lockClass
		pos   token.Pos
	}
	var pending []pendingAfter
	for _, file := range lo.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if !isMutexType(lo.pass, f.Type) {
					continue
				}
				for _, name := range f.Names {
					c := lockClass{ts.Name.Name, name.Name}
					info := &classInfo{pos: name.Pos()}
					lo.classes[c] = info
					for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
						if cg == nil {
							continue
						}
						text := cg.Text()
						if locksSelfRe.MatchString(text) {
							info.selfAscending = true
						}
						if m := locksAfterRe.FindStringSubmatch(text); m != nil {
							refType := m[1]
							if refType == "" {
								refType = ts.Name.Name // sibling mutex
							}
							pending = append(pending, pendingAfter{c, lockClass{refType, m[2]}, name.Pos()})
						}
					}
				}
			}
			return true
		})
	}
	// Resolve "locks after" references now that every class is known.
	for _, p := range pending {
		if _, ok := lo.classes[p.ref]; !ok {
			lo.pass.Reportf(p.pos, Error,
				"%s: \"locks after\" names %s, which is not a mutex field in this package", p.class, p.ref)
			continue
		}
		info := lo.classes[p.class]
		info.after = append(info.after, p.ref)
		info.afterPos = p.pos
	}
}

// isMutexType reports whether the field type expression is sync.Mutex
// or sync.RWMutex.
func isMutexType(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// collectTags records the file lines carrying lockorder tags; a tag
// covers its own line and the line below.
func (lo *lockOrderPkg) collectTags() {
	for _, file := range lo.pass.Files {
		name := lo.pass.Fset.Position(file.Pos()).Filename
		lines := map[int]string{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, tag := range []string{lockOrderAscendTag, lockOrderIgnoreTag} {
					if strings.Contains(c.Text, tag) {
						lines[lo.pass.Fset.Position(c.End()).Line] = tag
					}
				}
			}
		}
		lo.tagLines[name] = lines
	}
}

// tagged reports whether pos's line (or the line above) carries tag.
func (lo *lockOrderPkg) tagged(pos token.Pos, tag string) bool {
	p := lo.pass.Fset.Position(pos)
	lines := lo.tagLines[p.Filename]
	return lines[p.Line] == tag || lines[p.Line-1] == tag
}

// mutexOp resolves a call to <expr>.<mu>.Lock/RLock/Unlock/RUnlock on
// a known mutex class.
func (lo *lockOrderPkg) mutexOp(call *ast.CallExpr) (class lockClass, base string, op string, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return
	}
	muSel, selOK := sel.X.(*ast.SelectorExpr)
	if !selOK {
		return
	}
	selection, selOK := lo.pass.Info.Selections[muSel]
	if !selOK || selection.Kind() != types.FieldVal {
		return
	}
	owner := namedOf(selection.Recv())
	if owner == nil || owner.Obj().Pkg() != lo.pass.Pkg {
		return
	}
	class = lockClass{owner.Obj().Name(), muSel.Sel.Name}
	if _, known := lo.classes[class]; !known {
		return
	}
	return class, types.ExprString(muSel.X), sel.Sel.Name, true
}

// buildCallGraph computes, for every package function, the set of
// mutex classes it transitively acquires through package-internal
// calls. Closure bodies are excluded — a closure runs when invoked,
// not when its enclosing function is called.
func (lo *lockOrderPkg) buildCallGraph() {
	direct := map[*types.Func]map[lockClass]bool{}
	callees := map[*types.Func]map[*types.Func]bool{}
	for _, file := range lo.pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := lo.pass.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			acq := map[lockClass]bool{}
			calls := map[*types.Func]bool{}
			skip := funcLitRanges(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && skip[lit] {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if class, _, op, ok := lo.mutexOp(call); ok {
					if (op == "Lock" || op == "RLock") && !lo.tagged(call.Pos(), lockOrderIgnoreTag) {
						acq[class] = true
					}
					return true
				}
				if callee := calleeFunc(lo.pass.Info, call); callee != nil && callee.Pkg() == lo.pass.Pkg {
					calls[callee] = true
				}
				return true
			})
			direct[obj] = acq
			callees[obj] = calls
		}
	}
	for obj, acq := range direct {
		t := map[lockClass]bool{}
		for c := range acq {
			t[c] = true
		}
		lo.trans[obj] = t
	}
	for changed := true; changed; {
		changed = false
		for obj := range lo.trans {
			for callee := range callees[obj] {
				for c := range lo.trans[callee] {
					if !lo.trans[obj][c] {
						lo.trans[obj][c] = true
						changed = true
					}
				}
			}
		}
	}
}

// funcLitRanges marks every FuncLit inside body (the separate units),
// so scans of body skip them.
func funcLitRanges(body ast.Node) map[*ast.FuncLit]bool {
	skip := map[*ast.FuncLit]bool{}
	first := true
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if first && body == lit {
				first = false
				return true
			}
			skip[lit] = true
			return false
		}
		return true
	})
	return skip
}

// lockUnit is one independently-simulated function body: a FuncDecl or
// a FuncLit (closures run on their own schedule, so their acquisitions
// must respect the order independently).
type lockUnit struct {
	name string
	body *ast.BlockStmt
}

func (lo *lockOrderPkg) units() []lockUnit {
	var units []lockUnit
	for _, file := range lo.pass.Files {
		// FuncLits invoked immediately inside a defer statement run at
		// function exit as part of teardown; their unlocks are the
		// "held to end" pattern, not an independent schedule.
		deferred := map[*ast.FuncLit]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
					deferred[lit] = true
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			units = append(units, lockUnit{fn.Name.Name, fn.Body})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && !deferred[lit] {
				units = append(units, lockUnit{"func literal", lit.Body})
			}
			return true
		})
	}
	return units
}

// lockEvent is one simulated action inside a unit, in source order.
type lockEvent struct {
	pos   token.Pos
	class lockClass
	base  string
	op    string // Lock, RLock, Unlock, RUnlock
	call  *types.Func
	loop  ast.Stmt // innermost enclosing for/range inside the unit
}

// checkUnit simulates one function body linearly: it records observed
// inter-class edges, flags unordered same-class multi-acquires, and
// structurally validates multi-acquire loops.
func (lo *lockOrderPkg) checkUnit(u lockUnit) {
	events, loops := lo.scanUnit(u)
	// Structural loop validation: a loop that acquires a class without
	// releasing it per iteration holds the whole set at once.
	multi := map[ast.Stmt]map[lockClass]bool{}
	for _, l := range loops {
		for class, positions := range l.acquires {
			if len(l.releases[class]) > 0 {
				continue // per-iteration single-hold
			}
			if multi[l.stmt] == nil {
				multi[l.stmt] = map[lockClass]bool{}
			}
			multi[l.stmt][class] = true
			lo.checkAscendingLoop(u, l.stmt, class, positions[0])
		}
	}
	// Linear simulation over position-ordered events.
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	type heldLock struct {
		class lockClass
		base  string
		loop  ast.Stmt
	}
	var held []heldLock
	release := func(class lockClass, base string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].class == class && held[i].base == base {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].class == class {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	edge := func(from, to lockClass, pos token.Pos) {
		e := lockEdge{from, to}
		if _, ok := lo.observed[e]; !ok {
			lo.observed[e] = pos
		}
	}
	for _, ev := range events {
		switch {
		case ev.call != nil:
			for _, h := range held {
				for c := range lo.trans[ev.call] {
					// Same-class reentrancy through calls is instance-
					// dependent and beyond static reach; lockcheck's
					// "caller holds" convention owns that class of bug.
					if c != h.class {
						edge(h.class, c, ev.pos)
					}
				}
			}
		case ev.op == "Lock" || ev.op == "RLock":
			if lo.tagged(ev.pos, lockOrderIgnoreTag) {
				continue
			}
			for _, h := range held {
				if h.class != ev.class {
					edge(h.class, ev.class, ev.pos)
					continue
				}
				// Same class already held: legal only as a validated
				// multi-acquire loop (both acquisitions in the same
				// tagged ascending loop are checked structurally).
				if ev.loop != nil && h.loop == ev.loop && multi[ev.loop][ev.class] {
					continue
				}
				lo.pass.Reportf(ev.pos, Error,
					"%s acquires %s (%s) while already holding %s: same-class multi-acquire is only deadlock-free as an ascending \"// lockorder: ascending\" loop over shard IDs",
					u.name, ev.class, ev.base, h.base)
			}
			held = append(held, heldLock{ev.class, ev.base, ev.loop})
		default: // Unlock, RUnlock
			release(ev.class, ev.base)
		}
	}
}

// loopInfo aggregates one loop's direct mutex activity.
type loopInfo struct {
	stmt     ast.Stmt
	acquires map[lockClass][]token.Pos
	releases map[lockClass][]token.Pos
}

// scanUnit extracts the unit's lock events (skipping nested closures
// and deferred teardown) and per-loop acquisition summaries. Calls to
// local closure variables inline the closure's direct lock effects at
// the call site.
func (lo *lockOrderPkg) scanUnit(u lockUnit) ([]lockEvent, []*loopInfo) {
	skipLits := funcLitRanges(u.body)
	// Deferred regions: anything syntactically inside a defer statement
	// is teardown — unlocks there mean "held to the end".
	var deferRanges [][2]token.Pos
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && skipLits[lit] {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			deferRanges = append(deferRanges, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	inDefer := func(pos token.Pos) bool {
		for _, r := range deferRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	// Local closures: name := func() { ... } — calling the name applies
	// the closure's direct effects (the reserve path's unlock helper).
	closures := map[types.Object]*ast.FuncLit{}
	ast.Inspect(u.body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := lo.pass.Info.Defs[id]; obj != nil {
				closures[obj] = lit
			} else if obj := lo.pass.Info.Uses[id]; obj != nil {
				closures[obj] = lit
			}
		}
		return true
	})

	var events []lockEvent
	loops := map[ast.Stmt]*loopInfo{}
	var loopOrder []*loopInfo
	loopFor := func(pos token.Pos) ast.Stmt { return innermostLoop(u.body, skipLits, pos) }
	record := func(class lockClass, base, op string, pos token.Pos) {
		l := loopFor(pos)
		events = append(events, lockEvent{pos: pos, class: class, base: base, op: op, loop: l})
		if l != nil {
			li := loops[l]
			if li == nil {
				li = &loopInfo{stmt: l, acquires: map[lockClass][]token.Pos{}, releases: map[lockClass][]token.Pos{}}
				loops[l] = li
				loopOrder = append(loopOrder, li)
			}
			if op == "Lock" || op == "RLock" {
				if !lo.tagged(pos, lockOrderIgnoreTag) {
					li.acquires[class] = append(li.acquires[class], pos)
				}
			} else {
				li.releases[class] = append(li.releases[class], pos)
			}
		}
	}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && skipLits[lit] {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inDefer(call.Pos()) {
			return true // teardown: held to end
		}
		if class, base, op, ok := lo.mutexOp(call); ok {
			record(class, base, op, call.Pos())
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if obj := lo.pass.Info.Uses[id]; obj != nil {
				if lit, isClosure := closures[obj]; isClosure {
					lo.inlineClosure(lit, call.Pos(), record)
					return true
				}
			}
		}
		if callee := calleeFunc(lo.pass.Info, call); callee != nil && callee.Pkg() == lo.pass.Pkg {
			events = append(events, lockEvent{pos: call.Pos(), call: callee})
		}
		return true
	})
	return events, loopOrder
}

// inlineClosure applies a local closure's direct lock/unlock effects
// at the call site (its own nested closures and defers excluded).
func (lo *lockOrderPkg) inlineClosure(lit *ast.FuncLit, at token.Pos, record func(lockClass, string, string, token.Pos)) {
	skip := funcLitRanges(lit.Body)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && skip[inner] {
			return false
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if class, base, op, ok := lo.mutexOp(call); ok {
				record(class, base, op, at)
			}
		}
		return true
	})
}

// innermostLoop finds the smallest for/range statement containing pos,
// ignoring loops inside nested closures.
func innermostLoop(body ast.Node, skipLits map[*ast.FuncLit]bool, pos token.Pos) ast.Stmt {
	var best ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && skipLits[lit] {
			return false
		}
		switch s := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if s.Pos() <= pos && pos < s.End() {
				if best == nil || (s.Pos() >= best.Pos() && s.End() <= best.End()) {
					best = s.(ast.Stmt)
				}
			}
		}
		return true
	})
	return best
}

// checkAscendingLoop validates one multi-acquire loop: annotated
// class, tagged loop, provably ascending iteration.
func (lo *lockOrderPkg) checkAscendingLoop(u lockUnit, loop ast.Stmt, class lockClass, acqPos token.Pos) {
	info := lo.classes[class]
	if info == nil || !info.selfAscending {
		lo.pass.Reportf(acqPos, Error,
			"%s acquires multiple %s locks in a loop, but the mutex field is not annotated \"// locks self ascending\": declare the discipline or release per iteration",
			u.name, class)
		return
	}
	if !lo.tagged(loop.Pos(), lockOrderAscendTag) {
		lo.pass.Reportf(loop.Pos(), Error,
			"%s holds multiple %s locks across loop iterations without a \"// %s\" tag: assert the iteration order is ascending or release per iteration",
			u.name, class, lockOrderAscendTag)
		return
	}
	switch l := loop.(type) {
	case *ast.RangeStmt:
		if tv, ok := lo.pass.Info.Types[l.X]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
			case *types.Map:
				lo.pass.Reportf(loop.Pos(), Error,
					"%s multi-acquires %s by ranging over a map: iteration order is unordered, so two goroutines can lock shards in opposite orders and deadlock; collect and sort the IDs first",
					u.name, class)
				return
			default:
				lo.pass.Reportf(loop.Pos(), Error,
					"%s multi-acquires %s over a non-slice range: the ascending order cannot be proven", u.name, class)
				return
			}
		}
		if call, ok := l.X.(*ast.CallExpr); ok {
			if name := calleeName(call); descendingName(name) {
				lo.pass.Reportf(loop.Pos(), Error,
					"%s multi-acquires %s over %s(...): the name suggests descending order, which inverts the lock hierarchy", u.name, class, name)
			}
		}
	case *ast.ForStmt:
		post, ok := l.Post.(*ast.IncDecStmt)
		if !ok {
			lo.pass.Reportf(loop.Pos(), Error,
				"%s multi-acquires %s in a loop whose post statement is not i++: the ascending order cannot be proven", u.name, class)
			return
		}
		if post.Tok == token.DEC {
			lo.pass.Reportf(loop.Pos(), Error,
				"%s multi-acquires %s in a descending (i--) loop: this inverts the ascending shard-ID lock order and deadlocks against any ascending path",
				u.name, class)
		}
	}
}

func descendingName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "reverse") || strings.Contains(lower, "desc")
}

// checkGraph combines declared and observed edges, errors on cycles,
// and warns on observed orders missing from the declared hierarchy.
func (lo *lockOrderPkg) checkGraph() {
	declared := map[lockEdge]token.Pos{}
	for c, info := range lo.classes {
		for _, outer := range info.after {
			declared[lockEdge{outer, c}] = info.afterPos
		}
	}
	adj := map[lockClass]map[lockClass]bool{}
	addEdge := func(e lockEdge) {
		if adj[e.from] == nil {
			adj[e.from] = map[lockClass]bool{}
		}
		adj[e.from][e.to] = true
	}
	for e := range declared {
		addEdge(e)
	}
	for e := range lo.observed {
		addEdge(e)
	}
	inCycle := lo.reportCycles(adj, declared)
	// Declared reachability: observed A->B is fine if the hierarchy
	// already orders A before B, possibly through intermediates.
	declAdj := map[lockClass][]lockClass{}
	for e := range declared {
		declAdj[e.from] = append(declAdj[e.from], e.to)
	}
	reaches := func(from, to lockClass) bool {
		seen := map[lockClass]bool{from: true}
		stack := []lockClass{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range declAdj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	var undeclared []lockEdge
	for e := range lo.observed {
		if inCycle[e.from] && inCycle[e.to] {
			continue // the cycle Error already covers it
		}
		if !reaches(e.from, e.to) {
			undeclared = append(undeclared, e)
		}
	}
	sort.Slice(undeclared, func(i, j int) bool { return lo.observed[undeclared[i]] < lo.observed[undeclared[j]] })
	for _, e := range undeclared {
		lo.pass.Reportf(lo.observed[e], Warning,
			"%s is acquired while %s is held, but %s has no \"// locks after %s\" annotation: declare the hierarchy so refactors cannot silently invert it",
			e.to, e.from, e.to, e.from)
	}
}

// reportCycles errors once per strongly connected component of size
// > 1 and returns the set of classes involved in any cycle.
func (lo *lockOrderPkg) reportCycles(adj map[lockClass]map[lockClass]bool, declared map[lockEdge]token.Pos) map[lockClass]bool {
	// Tarjan's SCC, iteratively small-scale (lock classes are few).
	var nodes []lockClass
	for n := range adj {
		nodes = append(nodes, n)
		for m := range adj[n] {
			nodes = append(nodes, m)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })
	uniq := nodes[:0]
	var last *lockClass
	for i := range nodes {
		if last == nil || nodes[i] != *last {
			uniq = append(uniq, nodes[i])
			last = &uniq[len(uniq)-1]
		}
	}
	nodes = uniq
	index := map[lockClass]int{}
	low := map[lockClass]int{}
	onStack := map[lockClass]bool{}
	var stack []lockClass
	next := 0
	inCycle := map[lockClass]bool{}
	var strongconnect func(v lockClass)
	strongconnect = func(v lockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []lockClass
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].String() < succs[j].String() })
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Slice(scc, func(i, j int) bool { return scc[i].String() < scc[j].String() })
				names := make([]string, len(scc))
				for i, c := range scc {
					names[i] = c.String()
					inCycle[c] = true
				}
				pos := lo.cycleAnchor(scc, declared)
				lo.pass.Reportf(pos, Error,
					"lock classes form a cycle (%s): two goroutines taking these mutexes in different orders deadlock; break the cycle or fix the \"locks after\" hierarchy",
					strings.Join(names, " -> ")+" -> "+names[0])
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return inCycle
}

// cycleAnchor picks a stable reporting position for a cycle: the
// earliest observed edge between its members, else a declaration.
func (lo *lockOrderPkg) cycleAnchor(scc []lockClass, declared map[lockEdge]token.Pos) token.Pos {
	member := map[lockClass]bool{}
	for _, c := range scc {
		member[c] = true
	}
	best := token.NoPos
	for e, pos := range lo.observed {
		if member[e.from] && member[e.to] && (best == token.NoPos || pos < best) {
			best = pos
		}
	}
	if best != token.NoPos {
		return best
	}
	for e, pos := range declared {
		if member[e.from] && member[e.to] && (best == token.NoPos || pos < best) {
			best = pos
		}
	}
	if best != token.NoPos {
		return best
	}
	return lo.classes[scc[0]].pos
}
