package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// WireSchemaLockFile is the committed canonical wire schema, relative
// to the working directory (the module root — sconrep-vet runs there).
// The fixture tests point it at per-fixture lock files.
var WireSchemaLockFile = "internal/wire/schema.lock"

// WireCompat locks the module's gob wire schema. Every struct
// reachable from a gob Encode/Decode call site — the protocol hellos,
// request/response envelopes, refresh batches, and WAL records, plus
// everything their fields reach (writesets, span contexts, SQL
// results, commit results) — is part of the upgrade contract: the
// paper's "bargain" survives rolling upgrades only because legacy
// peers can gob-skip fields they do not know and zero-fill fields they
// never received. The analyzer derives the canonical schema (struct,
// field order, field name, gob-visible type) from the type-checked
// tree and diffs it against the committed lockfile
// (internal/wire/schema.lock):
//
//   - a field present in the lock but not in the code was removed or
//     renamed — legacy peers still send it, and data they expect back
//     silently vanishes: Error until the lock is regenerated;
//   - a field whose gob-visible type changed decodes wrong or not at
//     all across versions: Error;
//   - a new field not yet in the lock is gob-safe mechanically (old
//     decoders skip it, new decoders zero-fill it when absent) but its
//     ZERO VALUE must be a correct "legacy peer" reading: Warning
//     until reviewed and locked;
//   - chan/func fields break gob encoding at runtime, unexported
//     fields and non-empty interface fields travel only partially or
//     not at all: flagged regardless of the lock.
//
// Intentional evolution is a reviewed diff: `sconrep-vet
// -update-schema` regenerates the lockfile.
//
// Root discovery follows the data, not a hand-kept list: direct
// gob.Encoder.Encode / gob.Decoder.Decode arguments with concrete
// struct types seed the walk, and a package-local fixpoint marks
// "sink" parameters (an `any` parameter that flows into a gob call,
// like connPool.call's req/resp or frameWriter.encode's v) so the
// concrete envelopes passed through wrappers are found too. Arguments
// whose static type never resolves to a concrete struct (e.g. a hello
// stored in an `any` field) are skipped — every such value in this
// codebase also crosses a typed call site.
var WireCompat = &Analyzer{
	Name: "wirecompat",
	Doc:  "structs reachable from gob call sites must match the committed wire schema lock",
	Run:  runWireCompat,
}

// Schema is the canonical gob-visible shape of every wire-reachable
// struct, keyed by qualified name ("sconrep/internal/wal.Record").
type Schema struct {
	Structs map[string]*SchemaStruct
}

// SchemaStruct is one struct's locked shape; Fields are in declaration
// order (gob matches by name, but order changes are still surfaced as
// reviewable diffs).
type SchemaStruct struct {
	Name   string
	Fields []SchemaField
}

// SchemaField is one exported field's locked name and gob-visible
// type string.
type SchemaField struct {
	Name string
	Type string
}

// sortedNames returns the schema's struct names in canonical order.
func (s *Schema) sortedNames() []string {
	names := make([]string, 0, len(s.Structs))
	for n := range s.Structs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds other into s, verifying that structs reachable from
// several packages (e.g. writeset.WriteSet from both wire and wal)
// derived identical schemas.
func (s *Schema) Merge(other *Schema) error {
	for name, st := range other.Structs {
		prev, ok := s.Structs[name]
		if !ok {
			s.Structs[name] = st
			continue
		}
		if len(prev.Fields) != len(st.Fields) {
			return fmt.Errorf("wire schema for %s differs between packages", name)
		}
		for i := range prev.Fields {
			if prev.Fields[i] != st.Fields[i] {
				return fmt.Errorf("wire schema for %s differs between packages", name)
			}
		}
	}
	return nil
}

// Format renders the schema in the committed lockfile format.
func (s *Schema) Format() []byte {
	var b strings.Builder
	b.WriteString("# sconrep wire schema lock — the canonical gob-visible schema of every\n")
	b.WriteString("# struct reachable from the module's gob encode/decode call sites.\n")
	b.WriteString("# Regenerate after intentional protocol evolution with:\n")
	b.WriteString("#   go run ./cmd/sconrep-vet -update-schema ./...\n")
	b.WriteString("# Reviewed by the wirecompat analyzer; see DESIGN.md \"Protocol-safety analysis\".\n")
	for _, name := range s.sortedNames() {
		st := s.Structs[name]
		fmt.Fprintf(&b, "struct %s\n", name)
		for i, f := range st.Fields {
			fmt.Fprintf(&b, "  %d %s %s\n", i, f.Name, f.Type)
		}
	}
	return []byte(b.String())
}

// ParseSchemaLock parses a lockfile produced by Format.
func ParseSchemaLock(data []byte) (*Schema, error) {
	s := &Schema{Structs: map[string]*SchemaStruct{}}
	var cur *SchemaStruct
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if name, ok := strings.CutPrefix(line, "struct "); ok {
			cur = &SchemaStruct{Name: name}
			s.Structs[name] = cur
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("schema lock line %d: field entry before any struct", ln+1)
		}
		parts := strings.SplitN(trimmed, " ", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("schema lock line %d: want \"<index> <name> <type>\", got %q", ln+1, trimmed)
		}
		cur.Fields = append(cur.Fields, SchemaField{Name: parts[1], Type: parts[2]})
	}
	return s, nil
}

// CollectSchema derives the package's wire schema without diffing it —
// the `-update-schema` path. Field-shape diagnostics (chan/func,
// non-empty interface, unexported fields) are discarded here; the next
// plain run reports them.
func CollectSchema(pkg *Package, fset *token.FileSet) (*Schema, error) {
	w := newSchemaWalker(pkg.Files, pkg.Pkg, pkg.Info, func(Diagnostic) {})
	return w.collect(), nil
}

func runWireCompat(pass *Pass) error {
	w := newSchemaWalker(pass.Files, pass.Pkg, pass.Info, pass.Report)
	schema := w.collect()
	if len(schema.Structs) == 0 {
		return nil // no gob call sites in this package
	}
	data, err := os.ReadFile(WireSchemaLockFile)
	if err != nil {
		pass.Reportf(w.firstRootPos, Error,
			"wire schema lock %s not readable (%v): run `sconrep-vet -update-schema` to create it",
			WireSchemaLockFile, err)
		return nil
	}
	lock, err := ParseSchemaLock(data)
	if err != nil {
		pass.Reportf(w.firstRootPos, Error, "wire schema lock %s: %v", WireSchemaLockFile, err)
		return nil
	}
	diffSchemas(pass, w, schema, lock)
	return nil
}

// diffSchemas reports every divergence between the derived schema and
// the lock, for the structs reachable from this package.
func diffSchemas(pass *Pass, w *schemaWalker, schema, lock *Schema) {
	for _, name := range schema.sortedNames() {
		st := schema.Structs[name]
		anchor := w.anchorFor(name)
		locked, ok := lock.Structs[name]
		if !ok {
			pass.Reportf(anchor, Warning,
				"wire struct %s is reachable from a gob call site but not locked in %s: review its fields for legacy-peer zero-value safety, then run `sconrep-vet -update-schema`",
				name, WireSchemaLockFile)
			continue
		}
		code := map[string]SchemaField{}
		for _, f := range st.Fields {
			code[f.Name] = f
		}
		lockedSet := map[string]SchemaField{}
		for _, lf := range locked.Fields {
			lockedSet[lf.Name] = lf
			cf, present := code[lf.Name]
			if !present {
				pass.Reportf(anchor, Error,
					"wire field %s.%s (%s) was removed or renamed: legacy peers still send it and silently lose what they expect back; restore it or regenerate %s to accept the evolution",
					name, lf.Name, lf.Type, WireSchemaLockFile)
				continue
			}
			if cf.Type != lf.Type {
				pass.Reportf(w.fieldPos(name, lf.Name, anchor), Error,
					"wire field %s.%s changed gob-visible type %s -> %s: legacy peers mis-decode it; revert or regenerate %s to accept the evolution",
					name, lf.Name, lf.Type, cf.Type, WireSchemaLockFile)
			}
		}
		for _, cf := range st.Fields {
			if _, present := lockedSet[cf.Name]; !present {
				pass.Reportf(w.fieldPos(name, cf.Name, anchor), Warning,
					"new wire field %s.%s (%s) is not locked in %s: legacy encoders never send it, so its zero value must read as a correct legacy peer; verify that, then run `sconrep-vet -update-schema`",
					name, cf.Name, cf.Type, WireSchemaLockFile)
			}
		}
		if orderChanged(st.Fields, locked.Fields) {
			pass.Reportf(anchor, Warning,
				"wire struct %s field order differs from %s (gob matches by name, so this is wire-compatible, but the lock records declaration order): run `sconrep-vet -update-schema`",
				name, WireSchemaLockFile)
		}
	}
}

// orderChanged reports whether the fields common to both schemas
// appear in a different relative order.
func orderChanged(code, locked []SchemaField) bool {
	in := func(fs []SchemaField, name string) bool {
		for _, f := range fs {
			if f.Name == name {
				return true
			}
		}
		return false
	}
	var a, b []string
	for _, f := range code {
		if in(locked, f.Name) {
			a = append(a, f.Name)
		}
	}
	for _, f := range locked {
		if in(code, f.Name) {
			b = append(b, f.Name)
		}
	}
	if len(a) != len(b) {
		return false // covered by add/remove diagnostics
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// schemaWalker discovers gob roots and walks the reachable type
// closure into a Schema.
type schemaWalker struct {
	files  []*ast.File
	pkg    *types.Package
	info   *types.Info
	report func(Diagnostic)

	// roots maps discovered root structs to the call site that roots
	// them (the diagnostic anchor for foreign types).
	roots        map[*types.Named]token.Pos
	firstRootPos token.Pos

	schema  *Schema
	anchors map[string]token.Pos // struct name -> pos (decl if local, else root site)
	fields  map[string]token.Pos // "struct.field" -> field decl pos (local structs)
	visited map[*types.Named]bool
	queue   []*types.Named
}

func newSchemaWalker(files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *schemaWalker {
	return &schemaWalker{
		files:   files,
		pkg:     pkg,
		info:    info,
		report:  report,
		roots:   map[*types.Named]token.Pos{},
		schema:  &Schema{Structs: map[string]*SchemaStruct{}},
		anchors: map[string]token.Pos{},
		fields:  map[string]token.Pos{},
		visited: map[*types.Named]bool{},
	}
}

func (w *schemaWalker) collect() *Schema {
	w.findRoots()
	for n, pos := range w.roots {
		if w.firstRootPos == token.NoPos || pos < w.firstRootPos {
			w.firstRootPos = pos
		}
		w.enqueue(n, pos)
	}
	for len(w.queue) > 0 {
		n := w.queue[0]
		w.queue = w.queue[1:]
		w.walkStruct(n)
	}
	return w.schema
}

func (w *schemaWalker) anchorFor(name string) token.Pos { return w.anchors[name] }

func (w *schemaWalker) fieldPos(structName, field string, fallback token.Pos) token.Pos {
	if p, ok := w.fields[structName+"."+field]; ok {
		return p
	}
	return fallback
}

// findRoots locates every concrete struct type that reaches a gob
// Encode/Decode call: direct arguments, plus arguments to "sink"
// parameters computed by a package-local fixpoint over wrappers.
func (w *schemaWalker) findRoots() {
	// Map from function object to the set of parameter indices that
	// flow into a gob call (receivers excluded from the index space).
	sinks := map[*types.Func]map[int]bool{}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range w.files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := w.info.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}
	paramIndex := func(fn *ast.FuncDecl, id *ast.Ident) int {
		obj := w.info.Uses[id]
		if obj == nil {
			return -1
		}
		i := 0
		for _, f := range fn.Type.Params.List {
			for _, n := range f.Names {
				if w.info.Defs[n] == obj {
					return i
				}
				i++
			}
		}
		return -1
	}
	// classify handles one argument that reaches a gob sink: concrete
	// struct types become roots; sink parameters propagate.
	classify := func(fn *ast.FuncDecl, obj *types.Func, arg ast.Expr) (changed bool) {
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = u.X
		}
		tv, ok := w.info.Types[arg]
		if !ok {
			return false
		}
		t := tv.Type
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if n, ok := t.(*types.Named); ok {
			if _, isStruct := n.Underlying().(*types.Struct); isStruct {
				if _, seen := w.roots[n]; !seen {
					w.roots[n] = arg.Pos()
					return true
				}
				return false
			}
		}
		if _, isIface := t.Underlying().(*types.Interface); isIface && fn != nil && obj != nil {
			if id, ok := arg.(*ast.Ident); ok {
				if idx := paramIndex(fn, id); idx >= 0 {
					if sinks[obj] == nil {
						sinks[obj] = map[int]bool{}
					}
					if !sinks[obj][idx] {
						sinks[obj][idx] = true
						return true
					}
				}
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for obj, fn := range decls {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if isGobSink(w.info, call) {
					if classify(fn, obj, call.Args[0]) {
						changed = true
					}
					return true
				}
				callee := calleeFunc(w.info, call)
				if callee == nil {
					return true
				}
				for idx := range sinks[callee] {
					if idx < len(call.Args) && classify(fn, obj, call.Args[idx]) {
						changed = true
					}
				}
				return true
			})
		}
	}
}

// isGobSink reports whether call is (*gob.Encoder).Encode or
// (*gob.Decoder).Decode.
func isGobSink(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Encode" && sel.Sel.Name != "Decode") {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "encoding/gob"
}

// calleeFunc resolves a call's static callee, if it is a declared
// function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// walkStruct records one struct's gob-visible fields and enqueues the
// named structs its fields reach.
func (w *schemaWalker) walkStruct(n *types.Named) {
	name := qualifiedName(n)
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	anchor := w.anchors[name]
	if n.Obj().Pkg() == w.pkg {
		anchor = n.Obj().Pos()
		w.anchors[name] = anchor
	}
	ss := &SchemaStruct{Name: name}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fpos := anchor
		if n.Obj().Pkg() == w.pkg {
			fpos = f.Pos()
			w.fields[name+"."+f.Name()] = fpos
		}
		if !f.Exported() {
			w.report(Diagnostic{Pos: fpos, Severity: Warning, Message: fmt.Sprintf(
				"wire struct %s has unexported field %s: gob silently drops it, so peers never see the value — export it or move it off the wire struct", name, f.Name())})
			continue
		}
		ts := w.typeString(f.Type(), fpos, name+"."+f.Name())
		ss.Fields = append(ss.Fields, SchemaField{Name: f.Name(), Type: ts})
	}
	w.schema.Structs[name] = ss
}

// enqueue schedules a named struct for walking (once).
func (w *schemaWalker) enqueue(n *types.Named, anchor token.Pos) {
	if w.visited[n] {
		return
	}
	w.visited[n] = true
	name := qualifiedName(n)
	if _, ok := w.anchors[name]; !ok {
		w.anchors[name] = anchor
	}
	w.queue = append(w.queue, n)
}

// typeString renders a field type the way gob sees it, flagging
// gob-hostile shapes and enqueueing reachable named structs.
func (w *schemaWalker) typeString(t types.Type, pos token.Pos, path string) string {
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Byte:
			return "uint8"
		case types.Rune:
			return "int32"
		}
		return t.Name()
	case *types.Pointer:
		return "*" + w.typeString(t.Elem(), pos, path)
	case *types.Slice:
		return "[]" + w.typeString(t.Elem(), pos, path)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), w.typeString(t.Elem(), pos, path))
	case *types.Map:
		return "map[" + w.typeString(t.Key(), pos, path) + "]" + w.typeString(t.Elem(), pos, path)
	case *types.Chan:
		w.report(Diagnostic{Pos: pos, Severity: Error, Message: fmt.Sprintf(
			"wire field %s contains a chan: gob cannot encode channels and the whole envelope fails at runtime", path)})
		return "chan"
	case *types.Signature:
		w.report(Diagnostic{Pos: pos, Severity: Error, Message: fmt.Sprintf(
			"wire field %s contains a func: gob cannot encode functions and the whole envelope fails at runtime", path)})
		return "func"
	case *types.Interface:
		if t.Empty() {
			return "any" // row values; concrete scalars are gob.Register'd in wire's init
		}
		w.report(Diagnostic{Pos: pos, Severity: Warning, Message: fmt.Sprintf(
			"wire field %s is a non-empty interface: it travels only via gob.Register'd concrete types — prefer a concrete field", path)})
		return "interface"
	case *types.Named:
		name := qualifiedName(t)
		if hasCustomGobCodec(t) {
			return name + "(gob:custom)"
		}
		if _, isStruct := t.Underlying().(*types.Struct); isStruct {
			w.enqueue(t, pos)
			return name
		}
		return name + "(" + w.typeString(t.Underlying(), pos, path) + ")"
	case *types.Struct:
		// Anonymous struct: render inline.
		var parts []string
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if !f.Exported() {
				continue
			}
			parts = append(parts, f.Name()+" "+w.typeString(f.Type(), pos, path+"."+f.Name()))
		}
		return "struct{" + strings.Join(parts, "; ") + "}"
	}
	return t.String()
}

func qualifiedName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// hasCustomGobCodec reports whether the type encodes itself
// (GobEncoder or BinaryMarshaler) — its fields are then not part of
// the gob schema.
func hasCustomGobCodec(n *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "GobEncode", "GobDecode", "MarshalBinary", "UnmarshalBinary":
			return true
		}
	}
	return false
}
