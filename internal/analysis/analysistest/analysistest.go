// Package analysistest runs analyzers over fixture packages and
// checks their findings against in-source expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is one directory under testdata/src containing a
// self-contained package (stdlib imports only). Expected findings are
// `// want "regexp"` comments: each declares that a diagnostic whose
// message matches the regexp must be reported on that comment's line.
// Multiple quoted regexps declare multiple expected findings. Any
// unmatched expectation and any unexpected diagnostic fails the test.
// _test.go files in the fixture are loaded too, so exemptions for
// test files are themselves testable.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sconrep/internal/analysis"
)

// expectation is one `// want` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture package rooted at dir, applies the analyzers,
// and reports mismatches between findings and want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir(dir, true)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, loader.Fset, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants := collectWants(t, loader.Fset, pkg)
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if w := match(wants, pos, d.Message); w == nil {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, d.Severity, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func match(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.met = true
			return w
		}
	}
	return nil
}

// collectWants extracts `// want "..."` expectations from every
// comment in the fixture.
func collectWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(text[len("want "):], -1) {
					pat, err := unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		if len(q) < 2 || !strings.HasSuffix(q, "`") {
			return "", fmt.Errorf("unterminated raw quote")
		}
		return q[1 : len(q)-1], nil
	}
	return strconv.Unquote(q)
}
