package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockCheck enforces the repo's lock-discipline convention in the
// mutex-heavy hot packages: a struct field carrying a
// "// guarded by <mu>" comment may only be read or written in
// functions that acquire the named sibling mutex (Lock or RLock) on
// the same receiver before the access, or that are documented as
// running with it held.
//
// The check is intraprocedural and position-based — an acquisition
// anywhere earlier in the function counts, so an unlock/re-access
// bug can slip through (the race detector owns that class); what it
// catches is the review-resistant case of a new code path touching
// guarded state with no locking at all.
//
// Escapes, in order of preference:
//   - name the function with a "Locked" suffix (it runs under the
//     caller's critical section), or
//   - say "caller holds <mu>" (or "called with <mu> held") in the
//     function's doc comment.
//
// Accesses through function-local variables are exempt: a value that
// has not escaped its constructor needs no lock.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  `fields annotated "guarded by <mu>" must be accessed with the mutex held`,
	Run:  runLockCheck,
}

var (
	guardedRe    = regexp.MustCompile(`guarded by (\w+)`)
	callerHoldRe = regexp.MustCompile(`(?i)caller(s)? (must )?hold|called with \w+ held|holding \w+`)
)

func runLockCheck(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncLocks(pass, guards, fn)
		}
	}
	return nil
}

// guardKey identifies a struct field within the package.
type guardKey struct {
	typeName string
	field    string
}

// collectGuards maps annotated fields to their guarding mutex name,
// validating that the named mutex is a sibling field.
func collectGuards(pass *Pass) map[guardKey]string {
	guards := map[guardKey]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(f.Pos(), Error,
						"%s: guarded-by mutex %q is not a field of %s", ts.Name.Name, mu, ts.Name.Name)
					continue
				}
				for _, name := range f.Names {
					guards[guardKey{ts.Name.Name, name.Name}] = mu
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "" if unannotated.
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkFuncLocks(pass *Pass, guards map[guardKey]string, fn *ast.FuncDecl) {
	if exemptFunc(fn) {
		return
	}
	// One pass to record acquisitions: base.mu.Lock() / base.mu.RLock().
	type acquire struct {
		base string
		mu   string
		pos  token.Pos
	}
	var acquires []acquire
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		acquires = append(acquires, acquire{types.ExprString(muSel.X), muSel.Sel.Name, call.Pos()})
		return true
	})
	held := func(base, mu string, at token.Pos) bool {
		for _, a := range acquires {
			if a.base == base && a.mu == mu && a.pos < at {
				return true
			}
		}
		return false
	}
	// Second pass: every selector that resolves to a guarded field.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		owner := namedOf(selection.Recv())
		if owner == nil || owner.Obj().Pkg() != pass.Pkg {
			return true
		}
		mu, ok := guards[guardKey{owner.Obj().Name(), sel.Sel.Name}]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		if held(base, mu, sel.Pos()) {
			return true
		}
		if localBase(pass, fn, sel.X) {
			return true // unescaped constructor-local value
		}
		pass.Reportf(sel.Pos(), Error,
			"%s.%s is guarded by %s but accessed without %s.%s held in %s (lock first, add a Locked suffix, or document \"caller holds %s\")",
			owner.Obj().Name(), sel.Sel.Name, mu, base, mu, fn.Name.Name, mu)
		return true
	})
}

// exemptFunc reports whether the function is documented to run inside
// the caller's critical section.
func exemptFunc(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if len(name) > 6 && name[len(name)-6:] == "Locked" {
		return true
	}
	return fn.Doc != nil && callerHoldRe.MatchString(fn.Doc.Text())
}

// namedOf unwraps pointers to the receiver's named type.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// localBase reports whether the access base is a variable declared
// inside this function body (a value still private to its creator).
func localBase(pass *Pass, fn *ast.FuncDecl, base ast.Expr) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() >= fn.Body.Pos() && obj.Pos() <= fn.Body.End()
}
