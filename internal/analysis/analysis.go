// Package analysis is sconrep's custom static-analysis suite: a small
// stdlib-only framework mirroring golang.org/x/tools/go/analysis (so
// the analyzers port to a real vettool unchanged if x/tools is ever
// vendored), plus five project-specific analyzers that turn the
// paper's conventions into machine-checked invariants:
//
//   - tableset: each workload transaction's declared static table-set
//     (the §III-B workload information the fine-grained mode
//     synchronizes on) must match the tables its body actually
//     touches. Under-declaration is a silent staleness hole — FSC
//     simply won't wait on the missing table; over-declaration adds
//     needless start delay, eroding the §III-C fine-grained edge.
//   - lockcheck: fields annotated "guarded by <mu>" must only be
//     accessed in functions that acquire the named mutex (or are
//     documented as called with it held).
//   - determinism: the seeded chaos/latency/workload packages must
//     stay replayable from SCONREP_CHAOS_SEED — no wall-clock reads,
//     no global math/rand, no unannotated map iteration — and
//     packages importing math/rand outside the seeded list are
//     flagged as coverage gaps.
//   - wirecompat: every struct reachable from a gob encode/decode
//     call site must match the committed wire schema lock
//     (internal/wire/schema.lock), so protocol evolution that breaks
//     legacy-peer interop is a reviewed diff, not an accident.
//   - lockorder: the inter-mutex acquisition graph, built from
//     "locks after" annotations plus observed acquisitions, must be
//     acyclic, and cross-shard same-class multi-acquires must be
//     provably ascending loops.
//
// The cmd/sconrep-vet driver runs the suite over the module
// (`make lint` and the CI lint job); analysistest-style fixture tests
// live under testdata/src.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Severity classifies a diagnostic. The driver always fails the run
// on an Error (a correctness hole — an FSC staleness bug, a wire
// field legacy peers can no longer decode, a lock cycle); a Warning
// (a performance or hygiene regression, an undeclared-but-consistent
// lock order, an unreviewed new wire field) fails only under
// sconrep-vet -strict, which is how CI runs.
type Severity int

const (
	Error Severity = iota
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Severity Severity
	Message  string
}

// Analyzer is one static check, run once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run performs the check, reporting findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for every file in Files.
	Fset *token.FileSet
	// Files holds the package's parsed sources, with comments. Test
	// files (_test.go) are included only by the fixture loader;
	// the driver analyzes non-test sources like `go build` sees them.
	Files []*ast.File
	// Path is the package's import path ("sconrep/internal/fault");
	// fixture packages use their directory name.
	Path string
	// Pkg and Info expose go/types results. Info always has Types,
	// Defs, Uses, and Selections filled.
	Pkg  *types.Package
	Info *types.Info

	report func(Diagnostic)
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, sev Severity, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{TableSet, LockCheck, Determinism, WireCompat, LockOrder}
}
