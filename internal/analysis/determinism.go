package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismSeeded lists the packages whose behavior must replay
// bit-identically from SCONREP_CHAOS_SEED: the fault injector, the
// latency model, the TPC-W workload generator, and the persistent
// store (its checkpoint codec is the recovery-equivalence oracle — a
// nondeterministic byte stream would make byte-identical comparison
// meaningless). Matched by import path or path suffix; the fixture
// tests and the driver's -determinism.pkgs flag can extend it.
var DeterminismSeeded = []string{
	"sconrep/internal/fault",
	"sconrep/internal/latency",
	"sconrep/internal/pstore",
	"sconrep/internal/workload/micro",
	"sconrep/internal/workload/tpcw",
}

// DeterminismOrderTag marks a map-iteration site whose downstream
// effect is genuinely order-independent (e.g. registering entries in
// an order-free registry). Place it in a comment on the range
// statement's line or the line above.
const DeterminismOrderTag = "det:order-insensitive"

// DeterminismUnseededTag acknowledges a math/rand import in a package
// deliberately left out of DeterminismSeeded (e.g. an example binary
// whose randomness is cosmetic). Place it in a comment on the import
// line or the line above.
const DeterminismUnseededTag = "det:unseeded-ok"

// Determinism forbids the three classic replay-breakers in the seeded
// packages, outside _test.go files:
//
//   - time.Now / time.Since / time.After: wall-clock reads feed values
//     into the run that no seed controls. Durations and time.Sleep
//     remain fine — they shape pacing, not decisions.
//   - math/rand's global functions (rand.Intn, rand.Float64, ...):
//     the global source is shared process-wide, so any other
//     goroutine's draw shifts the stream. Constructors (rand.New,
//     rand.NewSource, rand.NewZipf) are the approved way to build the
//     per-component seeded streams.
//   - map iteration: range order differs run to run. Sort the keys,
//     or annotate the statement with "det:order-insensitive" when the
//     loop's effect provably commutes.
//   - dtrace.New without dtrace.WithClock: the tracer's default clock
//     is time.Now, so every span start/end would smuggle wall-clock
//     reads into the seeded run. Inject the component's model clock.
//
// Packages outside DeterminismSeeded get a coverage check instead: a
// non-test math/rand import there is a Warning, because randomness is
// how new chaos/workload code dodges the seeded list by accident. Add
// the package to DeterminismSeeded (preferred) or acknowledge the
// import with a "det:unseeded-ok" comment. Wall-clock reads do not
// trigger the coverage check — time.Now is legitimately everywhere in
// the serving path (deadlines, metrics), so flagging it would bury
// the signal; randomness is the reliable marker of replayable-intent
// code.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "seeded chaos/latency/workload packages must stay replayable from SCONREP_CHAOS_SEED",
	Run:  runDeterminism,
}

// randSeedable are the math/rand package functions that construct
// explicitly seeded generators; everything else draws from the global
// source.
var randSeedable = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !seededPackage(pass.Path) {
		checkSeededCoverage(pass)
		return nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests may use wall clocks and ad-hoc randomness
		}
		tagged := orderTagLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.RangeStmt:
				t, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				line := pass.Fset.Position(n.Pos()).Line
				if tagged[line] || tagged[line-1] {
					return true
				}
				pass.Reportf(n.Pos(), Error,
					"map iteration order is nondeterministic and breaks SCONREP_CHAOS_SEED replay: sort the keys, or annotate the statement %q if its effect is order-independent",
					"// "+DeterminismOrderTag)
			}
			return true
		})
	}
	return nil
}

// checkSeededCoverage warns when a package outside DeterminismSeeded
// imports math/rand in non-test code: either the package belongs on
// the seeded list, or the import should carry the unseeded-ok tag.
func checkSeededCoverage(pass *Pass) {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		tagged := unseededTagLines(pass, file)
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			line := pass.Fset.Position(imp.Pos()).Line
			if tagged[line] || tagged[line-1] {
				continue
			}
			pass.Reportf(imp.Pos(), Warning,
				"package %s imports %s but is not in DeterminismSeeded, so the determinism analyzer never checks it: add it to the seeded list (or -determinism.pkgs), or annotate the import %q if its randomness is deliberately unseeded",
				pass.Path, path, "// "+DeterminismUnseededTag)
		}
	}
}

// unseededTagLines returns the file lines carrying the unseeded-ok tag
// (a tag covers its own line and the one below).
func unseededTagLines(pass *Pass, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, DeterminismUnseededTag) {
				lines[pass.Fset.Position(c.End()).Line] = true
			}
		}
	}
	return lines
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "After", "Tick":
			pass.Reportf(call.Pos(), Error,
				"time.%s reads the wall clock in a seeded package: the value is outside SCONREP_CHAOS_SEED's control; derive timing from the latency model or pass a clock in",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if randSeedable[sel.Sel.Name] {
			return
		}
		pass.Reportf(call.Pos(), Error,
			"rand.%s draws from the process-global source, which any goroutine can perturb: use the component's seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
			sel.Sel.Name)
	case dtracePath:
		if sel.Sel.Name != "New" {
			return
		}
		for _, arg := range call.Args {
			if opt, ok := arg.(*ast.CallExpr); ok && isDtraceWithClock(pass, opt) {
				return
			}
		}
		pass.Reportf(call.Pos(), Error,
			"dtrace.New without dtrace.WithClock in a seeded package: span timestamps default to time.Now, outside SCONREP_CHAOS_SEED's control; inject the component's model clock via dtrace.WithClock")
	}
}

// dtracePath is the tracing package whose default clock is the wall
// clock; seeded packages must override it at construction.
const dtracePath = "sconrep/internal/obs/dtrace"

// isDtraceWithClock reports whether call is dtrace.WithClock(...).
func isDtraceWithClock(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pn.Imported().Path() == dtracePath && sel.Sel.Name == "WithClock"
}

func seededPackage(path string) bool {
	for _, e := range DeterminismSeeded {
		if path == e || strings.HasSuffix(path, e) || strings.HasSuffix(e, "/"+path) {
			return true
		}
	}
	return false
}

// orderTagLines returns the file lines carrying the order-insensitive
// tag (a tag covers its own line and the one below).
func orderTagLines(pass *Pass, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, DeterminismOrderTag) {
				lines[pass.Fset.Position(c.End()).Line] = true
			}
		}
	}
	return lines
}
