// Package storage implements the in-memory multiversion storage engine
// that plays the role of the standalone DBMS inside each replica
// (SQL Server 2008 in the paper's testbed).
//
// The engine provides exactly what the replication middleware needs
// from its local DBMS:
//
//   - snapshot isolation: a transaction reads the database state as of
//     the commit version current when it began, and buffers its writes;
//   - commit-at-version: the proxy commits local and refresh
//     transactions at versions assigned by the certifier, in certifier
//     order, advancing the replica's Vlocal by one per commit;
//   - writeset extraction: a transaction's buffered writes are exported
//     as full row images for certification and refresh propagation;
//   - first-committer-wins (for standalone, unreplicated use).
//
// Tables are B+-tree ordered by an order-preserving encoding of the
// primary key; each row is a version chain. Secondary indexes are
// value-superset indexes: an entry exists while any live version of the
// row carries the indexed value, and readers re-check visibility.
//
// Concurrency model. Two write paths exist. The serial path
// (ApplyWriteSet, ApplyWriteSetBatch, CommitLocal, Vacuum) holds e.mu
// exclusively, exactly as the paper's one-commit-at-a-time proxy
// requires. The concurrent path splits install from publish:
// InstallWriteSet installs row versions under only a read lock on e.mu
// plus short per-table critical sections, and a later PublishVersion
// makes them visible by advancing the version watermark. Readers take
// the per-table lock for B-tree and index traversal and rely on
// atomically swapped chain heads plus the snapshot filter, so versions
// installed but not yet published are never observable. The caller
// (the replica's conflict-aware applier) guarantees that concurrent
// installs never share a record and that same-record installs are
// ordered by version.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sconrep/internal/btree"
	"sconrep/internal/writeset"
)

// Errors returned by the engine.
var (
	ErrNoTable      = errors.New("storage: no such table")
	ErrNoIndex      = errors.New("storage: no such index")
	ErrDuplicateKey = errors.New("storage: duplicate primary key")
	ErrNoRow        = errors.New("storage: no such row")
	ErrConflict     = errors.New("storage: write-write conflict")
	ErrTxnFinished  = errors.New("storage: transaction already finished")
	ErrBadVersion   = errors.New("storage: commit version out of order")
)

// verRow is one version of a row. deleted marks a tombstone. row and
// prev are immutable after the verRow is linked into a chain, except
// that Vacuum (under an exclusive engine lock) may cut prev.
type verRow struct {
	version uint64
	deleted bool
	row     []any
	prev    *verRow
}

// chain is the version chain of one primary key, newest first. The
// head is swapped atomically so concurrent installers (which never
// share a key) and lock-free readers agree on a fully initialised
// newest version.
type chain struct {
	head atomic.Pointer[verRow]
}

// visibleAt returns the newest version at or below snapshot, or nil.
func (c *chain) visibleAt(snapshot uint64) *verRow {
	for v := c.head.Load(); v != nil; v = v.prev {
		if v.version <= snapshot {
			if v.deleted {
				return nil
			}
			return v
		}
	}
	return nil
}

// secIndex is a secondary index: (encoded value ++ encoded pk) → refcount.
// The refcount counts live row versions carrying that value, so vacuum
// can drop entries precisely.
type secIndex struct {
	col  int
	tree *btree.Tree
}

func (ix *secIndex) entryKey(val any, pk string) string {
	return string(EncodeValue(nil, val)) + pk
}

func (ix *secIndex) add(val any, pk string) {
	if val == nil {
		return
	}
	k := ix.entryKey(val, pk)
	if n, ok := ix.tree.Get(k); ok {
		ix.tree.Set(k, n.(int)+1)
	} else {
		ix.tree.Set(k, 1)
	}
}

func (ix *secIndex) remove(val any, pk string) {
	if val == nil {
		return
	}
	k := ix.entryKey(val, pk)
	if n, ok := ix.tree.Get(k); ok {
		if n.(int) <= 1 {
			ix.tree.Delete(k)
		} else {
			ix.tree.Set(k, n.(int)-1)
		}
	}
}

// table holds one table's schema, row chains, and secondary indexes.
type table struct {
	schema *Schema
	// mu guards the B-tree structures against concurrent installers:
	// readers traverse rows/indexes under RLock, installers mutate them
	// under Lock. Serial engine paths additionally hold e.mu exclusively,
	// which keeps them mutually exclusive with every installer.
	// locks after Engine.mu
	mu sync.RWMutex
	// rows maps encoded pk → *chain.
	// guarded by mu
	rows *btree.Tree
	// indexes maps index name → index.
	// guarded by mu
	indexes map[string]*secIndex
	// lastWrite is the newest version that installed an item (write or
	// tombstone) into this table — the per-table Vt as the engine sees
	// it, including not-yet-published refreshes. Advanced by max-CAS so
	// concurrent installers racing on one table converge monotonically.
	lastWrite atomic.Uint64
}

// Engine is a multiversion storage engine instance. All methods are
// safe for concurrent use.
type Engine struct {
	mu sync.RWMutex
	// tables maps table name to its rows and indexes.
	// guarded by mu
	tables map[string]*table
	// version is the published commit version (Vlocal): the highest v
	// such that every version in [1, v] is fully installed and visible.
	// Serial commits store it directly under e.mu; concurrent appliers
	// advance it through PublishVersion's max-CAS.
	version atomic.Uint64
}

// NewEngine returns an empty engine at version 0.
func NewEngine() *Engine {
	return &Engine{tables: make(map[string]*table)}
}

// CreateTable registers a table. It is an error if the name is taken.
func (e *Engine) CreateTable(s *Schema) error {
	cp := &Schema{
		Table:   s.Table,
		Columns: append([]Column(nil), s.Columns...),
		Key:     append([]string(nil), s.Key...),
		Indexes: append([]IndexDef(nil), s.Indexes...),
	}
	if err := cp.normalize(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.tables[cp.Table]; exists {
		return fmt.Errorf("storage: table %s already exists", cp.Table)
	}
	t := &table{
		schema:  cp,
		rows:    btree.New(),
		indexes: make(map[string]*secIndex),
	}
	for _, def := range cp.Indexes {
		t.indexes[def.Name] = &secIndex{col: cp.ColIndex(def.Column), tree: btree.New()}
	}
	e.tables[cp.Table] = t
	return nil
}

// CreateIndex adds a secondary index to an existing table and
// backfills it from all live row versions.
func (e *Engine) CreateIndex(tableName string, def IndexDef) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.indexes[def.Name]; dup {
		return fmt.Errorf("storage: index %s already exists on %s", def.Name, tableName)
	}
	col := t.schema.ColIndex(def.Column)
	if col < 0 {
		return fmt.Errorf("storage: table %s: column %s does not exist", tableName, def.Column)
	}
	ix := &secIndex{col: col, tree: btree.New()}
	it := t.rows.ScanAll()
	for it.Next() {
		pk := it.Key()
		for v := it.Value().(*chain).head.Load(); v != nil; v = v.prev {
			if !v.deleted {
				ix.add(v.row[col], pk)
			}
		}
	}
	t.indexes[def.Name] = ix
	t.schema.Indexes = append(t.schema.Indexes, def)
	return nil
}

// Schema returns the schema of the named table.
func (e *Engine) Schema(tableName string) (*Schema, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[tableName]
	if !ok {
		return nil, false
	}
	return t.schema, true
}

// Tables returns the names of all tables.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for name := range e.tables {
		out = append(out, name)
	}
	return out
}

// Version returns the engine's published commit version (Vlocal).
func (e *Engine) Version() uint64 {
	return e.version.Load()
}

// TableVersionsAt returns, for each named table, the newest version
// that wrote it, capped at snapshot — an upper bound on the newest
// write a transaction reading at that snapshot can have observed.
// Unknown tables and tables never written are omitted (their bound is
// zero).
func (e *Engine) TableVersionsAt(names []string, snapshot uint64) map[string]uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		if t, ok := e.tables[n]; ok {
			if v := t.lastWrite.Load(); v > 0 {
				if v > snapshot {
					v = snapshot
				}
				out[n] = v
			}
		}
	}
	return out
}

// RowEstimate returns the number of primary keys present in a table
// (including tombstoned chains); used by the SQL planner.
func (e *Engine) RowEstimate(tableName string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if t, ok := e.tables[tableName]; ok {
		t.mu.RLock()
		n := t.rows.Len()
		t.mu.RUnlock()
		return n
	}
	return 0
}

// storeMax advances a to v unless a is already at or past v.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// installItem installs one writeset item into table t at version v.
// The B-tree and index mutations serialize under a short t.mu critical
// section; the version chain is then extended with an atomic head swap.
// Concurrent installItem calls are safe provided no two share a record
// and same-record installs are version-ordered — the conflict
// scheduling the replica's parallel applier enforces.
func installItem(t *table, it *writeset.Item, v uint64) error {
	nv := &verRow{version: v}
	if it.Op == writeset.OpDelete {
		nv.deleted = true
	} else {
		if err := t.schema.CheckRow(it.Row); err != nil {
			return err
		}
		nv.row = append([]any(nil), it.Row...)
	}
	t.mu.Lock()
	var ch *chain
	if cv, ok := t.rows.Get(it.Key); ok {
		ch = cv.(*chain)
	} else {
		ch = &chain{}
		t.rows.Set(it.Key, ch)
	}
	if !nv.deleted {
		// Index entries may precede the chain install: the index is a
		// value superset and readers re-check visibility on the chain.
		for _, ix := range t.indexes {
			ix.add(nv.row[ix.col], it.Key)
		}
	}
	t.mu.Unlock()
	nv.prev = ch.head.Load()
	ch.head.Store(nv)
	storeMax(&t.lastWrite, v)
	return nil
}

// applyItem installs one writeset item at version v. Caller holds e.mu
// (read or write); the table-level work serializes inside installItem.
func (e *Engine) applyItem(it *writeset.Item, v uint64) error {
	t, ok := e.tables[it.Table]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, it.Table)
	}
	return installItem(t, it, v)
}

// ApplyWriteSet commits a writeset at the given version. The version
// must be exactly Version()+1: the proxy is responsible for applying
// refresh and local commits in certifier order, and this check turns
// an ordering bug into a loud error instead of silent corruption.
func (e *Engine) ApplyWriteSet(ws *writeset.WriteSet, atVersion uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.version.Load(); atVersion != v+1 {
		return fmt.Errorf("%w: engine at %d, writeset at %d", ErrBadVersion, v, atVersion)
	}
	for i := range ws.Items {
		if err := e.applyItem(&ws.Items[i], atVersion); err != nil {
			return err
		}
	}
	e.version.Store(atVersion)
	return nil
}

// ApplyWriteSetBatch commits a contiguous run of writesets in version
// order under a single lock acquisition: wss[i] commits at
// startVersion+i, and startVersion must be exactly Version()+1. The
// whole batch is installed inside one critical section and only the
// tail version is published, so no reader can ever observe an
// intermediate version before its predecessors — the group-apply
// equivalent of the per-writeset ordering check.
//
// On a mid-batch failure the version counter stops at the last fully
// applied writeset (the contiguous durable prefix) and the error names
// the offending version; the failing writeset may be partially
// installed, which callers treat as state divergence (the replica
// panics), exactly as with ApplyWriteSet.
func (e *Engine) ApplyWriteSetBatch(wss []*writeset.WriteSet, startVersion uint64) error {
	if len(wss) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.version.Load(); startVersion != v+1 {
		return fmt.Errorf("%w: engine at %d, batch starts at %d", ErrBadVersion, v, startVersion)
	}
	for i, ws := range wss {
		v := startVersion + uint64(i)
		for j := range ws.Items {
			if err := e.applyItem(&ws.Items[j], v); err != nil {
				e.version.Store(v - 1) // durable prefix: everything before the failing writeset
				return fmt.Errorf("storage: batch apply at %d: %w", v, err)
			}
		}
	}
	e.version.Store(startVersion + uint64(len(wss)) - 1)
	return nil
}

// InstallWriteSet installs a writeset's row versions at atVersion
// without publishing them: readers cannot observe the new versions
// until PublishVersion raises the watermark to atVersion or beyond.
// Unlike ApplyWriteSet it holds only a read lock on the engine, so
// installs proceed concurrently. The caller must guarantee that no two
// concurrent installs share a record and that installs touching the
// same record are issued in version order with a happens-before edge
// between them — the invariants the replica's conflict-aware applier
// derives from its dependency graph. atVersion must be above the
// published version (the watermark only ever chases installs).
func (e *Engine) InstallWriteSet(ws *writeset.WriteSet, atVersion uint64) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if v := e.version.Load(); atVersion <= v {
		return fmt.Errorf("%w: install at %d behind published %d", ErrBadVersion, atVersion, v)
	}
	for i := range ws.Items {
		if err := e.applyItem(&ws.Items[i], atVersion); err != nil {
			return err
		}
	}
	return nil
}

// InstallWriteSets bulk-installs a contiguous run of writesets without
// publishing: wss[i] installs at atVersion+i. It shares
// InstallWriteSet's preconditions and adds one: the run must be
// pairwise record-disjoint (and disjoint from every other concurrent
// install), because the whole run goes in under one engine read-lock
// with each table's lock taken once per same-table item run — so this
// call provides no same-record ordering at all. The replica's parallel
// applier uses it for batches whose conflict graph has no edges, where
// per-item locking is pure overhead.
func (e *Engine) InstallWriteSets(wss []*writeset.WriteSet, atVersion uint64) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if v := e.version.Load(); atVersion <= v {
		return fmt.Errorf("%w: install at %d behind published %d", ErrBadVersion, atVersion, v)
	}
	// pend carries rows prepared outside the table lock (allocation and
	// schema checks), flushed into the B-tree one same-table run at a
	// time.
	type pend struct {
		it *writeset.Item
		nv *verRow
	}
	nitems, nelems := 0, 0
	for _, ws := range wss {
		nitems += len(ws.Items)
		for j := range ws.Items {
			if ws.Items[j].Op != writeset.OpDelete {
				nelems += len(ws.Items[j].Row)
			}
		}
	}
	// Version rows and their row copies come from two run-sized slabs:
	// two allocations per call instead of two per item, which is most of
	// what the refresh-apply hot path allocates. A slab stays reachable
	// while any one of its rows does (chains point into it), so vacuum
	// reclaims slab memory at run granularity rather than row
	// granularity — bounded amplification (a run is at most one
	// worker-stripe of one apply batch) traded for an allocation rate
	// the garbage collector no longer dominates.
	slab := make([]verRow, nitems)
	rowBuf := make([]any, nelems)
	var (
		cur    *table
		run    = make([]pend, 0, nitems)
		runMax uint64
		si     int // next free slab slot; never reset by flush
	)
	flush := func() {
		if len(run) == 0 {
			return
		}
		cur.mu.Lock()
		for _, p := range run {
			var ch *chain
			if cv, ok := cur.rows.Get(p.it.Key); ok {
				ch = cv.(*chain)
			} else {
				ch = &chain{}
				cur.rows.Set(p.it.Key, ch)
			}
			if !p.nv.deleted {
				for _, ix := range cur.indexes {
					ix.add(p.nv.row[ix.col], p.it.Key)
				}
			}
			p.nv.prev = ch.head.Load()
			ch.head.Store(p.nv)
		}
		cur.mu.Unlock()
		storeMax(&cur.lastWrite, runMax)
		run, runMax = run[:0], 0
	}
	for i, ws := range wss {
		v := atVersion + uint64(i)
		for j := range ws.Items {
			it := &ws.Items[j]
			if cur == nil || cur.schema.Table != it.Table {
				flush()
				t, ok := e.tables[it.Table]
				if !ok {
					return fmt.Errorf("%w: %s", ErrNoTable, it.Table)
				}
				cur = t
			}
			nv := &slab[si]
			si++
			nv.version = v
			if it.Op == writeset.OpDelete {
				nv.deleted = true
			} else {
				if err := cur.schema.CheckRow(it.Row); err != nil {
					return err
				}
				nv.row = rowBuf[:len(it.Row):len(it.Row)]
				copy(nv.row, it.Row)
				rowBuf = rowBuf[len(it.Row):]
			}
			run = append(run, pend{it: it, nv: nv})
			if v > runMax {
				runMax = v
			}
		}
	}
	flush()
	return nil
}

// PublishVersion advances the published version (Vlocal) to v; lower
// or equal publishes are no-ops, so out-of-order watermark
// announcements from concurrent appliers collapse into a monotonic
// sequence. The caller must have completed the install of every
// version in (Version(), v] before publishing v.
func (e *Engine) PublishVersion(v uint64) {
	storeMax(&e.version, v)
}

// AdvanceEmpty advances the version counter without modifying data.
// The proxy uses it when the certifier assigns a version to a
// transaction whose writeset is not applied locally (never the case in
// the current protocol, but required by recovery replay of aborted
// slots) and by tests.
func (e *Engine) AdvanceEmpty(atVersion uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.version.Load(); atVersion != v+1 {
		return fmt.Errorf("%w: engine at %d, advance to %d", ErrBadVersion, v, atVersion)
	}
	e.version.Store(atVersion)
	return nil
}

// Vacuum drops row versions that are no longer visible to any
// snapshot at or above keepVersion, and returns how many versions were
// reclaimed. Chains whose only remaining version is a tombstone at or
// below keepVersion are removed entirely.
func (e *Engine) Vacuum(keepVersion uint64) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	removed := 0
	for _, t := range e.tables {
		t.mu.Lock()
		var drop []string
		it := t.rows.ScanAll()
		for it.Next() {
			pk := it.Key()
			ch := it.Value().(*chain)
			// Find the newest version at or below keepVersion: it is
			// the oldest version any live snapshot can still see.
			var keep *verRow
			for v := ch.head.Load(); v != nil; v = v.prev {
				if v.version <= keepVersion {
					keep = v
					break
				}
			}
			if keep == nil {
				continue
			}
			for v := keep.prev; v != nil; v = v.prev {
				removed++
				if !v.deleted {
					for _, ix := range t.indexes {
						ix.remove(v.row[ix.col], pk)
					}
				}
			}
			keep.prev = nil
			if keep.deleted && keep == ch.head.Load() {
				removed++
				drop = append(drop, pk)
			}
		}
		for _, pk := range drop {
			t.rows.Delete(pk)
		}
		t.mu.Unlock()
	}
	return removed
}
