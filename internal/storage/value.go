package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Column values in this engine are one of: int64, float64, string,
// bool, or nil (SQL NULL). This file implements typed comparison and
// order-preserving key encoding for those values.

// ColType is the declared type of a column.
type ColType uint8

const (
	// TInt is a 64-bit signed integer column.
	TInt ColType = iota + 1
	// TFloat is a 64-bit IEEE float column.
	TFloat
	// TString is a UTF-8 string column.
	TString
	// TBool is a boolean column.
	TBool
)

// String returns the SQL name of the type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	case TBool:
		return "BOOL"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// CheckValue reports whether v is a legal value for a column of type t.
// nil (NULL) is legal for every type.
func CheckValue(t ColType, v any) error {
	if v == nil {
		return nil
	}
	ok := false
	switch t {
	case TInt:
		_, ok = v.(int64)
	case TFloat:
		_, ok = v.(float64)
	case TString:
		_, ok = v.(string)
	case TBool:
		_, ok = v.(bool)
	}
	if !ok {
		return fmt.Errorf("storage: value %v (%T) not valid for column type %s", v, v, t)
	}
	return nil
}

// CompareValues orders two non-nil values of the same dynamic type.
// NULL sorts before every value, and two NULLs compare equal (this is
// the index/ORDER BY ordering, not SQL predicate semantics — predicate
// evaluation treats NULL comparisons as unknown at the SQL layer).
func CompareValues(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		case float64:
			return CompareValues(float64(av), bv)
		}
	case float64:
		switch bv := b.(type) {
		case float64:
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		case int64:
			return CompareValues(av, float64(bv))
		}
	case string:
		if bv, ok := b.(string); ok {
			return strings.Compare(av, bv)
		}
	case bool:
		if bv, ok := b.(bool); ok {
			switch {
			case !av && bv:
				return -1
			case av && !bv:
				return 1
			}
			return 0
		}
	}
	panic(fmt.Sprintf("storage: incomparable values %T vs %T", a, b))
}

// ValuesEqual reports typed equality with numeric coercion between
// int64 and float64.
func ValuesEqual(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	defer func() { recover() }()
	return CompareValues(a, b) == 0
}

// EncodeValue appends an order-preserving encoding of v to dst:
// comparing encoded byte strings gives the same order as
// CompareValues for values of the same type. Each value is prefixed
// with a type tag so NULL (tag 0) sorts first.
func EncodeValue(dst []byte, v any) []byte {
	switch tv := v.(type) {
	case nil:
		return append(dst, 0x00)
	case bool:
		dst = append(dst, 0x01)
		if tv {
			return append(dst, 1)
		}
		return append(dst, 0)
	case int64:
		dst = append(dst, 0x02)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(tv)^(1<<63))
		return append(dst, buf[:]...)
	case float64:
		dst = append(dst, 0x03)
		bits := math.Float64bits(tv)
		if tv >= 0 || bits == 0 {
			bits |= 1 << 63
		} else {
			bits = ^bits
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	case string:
		// Escape NUL so the 0x00 0x00 terminator is unambiguous and
		// the encoding stays order-preserving.
		dst = append(dst, 0x04)
		for i := 0; i < len(tv); i++ {
			if tv[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, tv[i])
			}
		}
		return append(dst, 0x00, 0x00)
	default:
		panic(fmt.Sprintf("storage: cannot encode value of type %T", v))
	}
}

// EncodeKey encodes a composite key as a single order-preserving
// string. The result is the storage engine's row identifier.
func EncodeKey(vals ...any) string {
	var dst []byte
	for _, v := range vals {
		dst = EncodeValue(dst, v)
	}
	return string(dst)
}

// FormatValue renders a value the way the SQL shell prints it.
func FormatValue(v any) string {
	switch tv := v.(type) {
	case nil:
		return "NULL"
	case string:
		return tv
	case float64:
		return fmt.Sprintf("%g", tv)
	default:
		return fmt.Sprintf("%v", tv)
	}
}
