package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sconrep/internal/writeset"
)

func testSchema() *Schema {
	return &Schema{
		Table: "acct",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "owner", Type: TString},
			{Name: "balance", Type: TFloat},
			{Name: "open", Type: TBool},
		},
		Key:     []string{"id"},
		Indexes: []IndexDef{{Name: "acct_owner", Column: "owner"}},
	}
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	if err := e.CreateTable(testSchema()); err != nil {
		t.Fatal(err)
	}
	return e
}

func row(id int64, owner string, bal float64, open bool) []any {
	return []any{id, owner, bal, open}
}

func mustCommit(t *testing.T, tx *Txn) uint64 {
	t.Helper()
	v, err := tx.CommitLocal()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCreateTableValidation(t *testing.T) {
	e := NewEngine()
	cases := []*Schema{
		{Table: "", Columns: []Column{{Name: "a", Type: TInt}}, Key: []string{"a"}},
		{Table: "t", Key: []string{"a"}},
		{Table: "t", Columns: []Column{{Name: "a", Type: TInt}}},
		{Table: "t", Columns: []Column{{Name: "a", Type: TInt}}, Key: []string{"b"}},
		{Table: "t", Columns: []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}, Key: []string{"a"}},
		{Table: "t", Columns: []Column{{Name: "a", Type: TInt}}, Key: []string{"a"}, Indexes: []IndexDef{{Name: "i", Column: "zz"}}},
	}
	for i, s := range cases {
		if err := e.CreateTable(s); err == nil {
			t.Errorf("case %d: CreateTable accepted invalid schema", i)
		}
	}
	if err := e.CreateTable(testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable(testSchema()); err == nil {
		t.Fatal("duplicate CreateTable succeeded")
	}
}

func TestInsertGetCommit(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	if err := tx.Insert("acct", row(1, "ann", 100, true)); err != nil {
		t.Fatal(err)
	}
	// Own write is visible before commit.
	key := EncodeKey(int64(1))
	r, ok, err := tx.Get("acct", key)
	if err != nil || !ok || r[1].(string) != "ann" {
		t.Fatalf("Get own write = %v, %v, %v", r, ok, err)
	}
	// Not visible to a concurrent transaction.
	tx2 := e.Begin()
	if _, ok, _ := tx2.Get("acct", key); ok {
		t.Fatal("uncommitted insert visible to concurrent txn")
	}
	v := mustCommit(t, tx)
	if v != 1 {
		t.Fatalf("commit version = %d, want 1", v)
	}
	// Still invisible to tx2 (snapshot predates commit).
	if _, ok, _ := tx2.Get("acct", key); ok {
		t.Fatal("commit visible to older snapshot")
	}
	// Visible to a new transaction.
	tx3 := e.Begin()
	if _, ok, _ := tx3.Get("acct", key); !ok {
		t.Fatal("commit invisible to new txn")
	}
}

func TestDuplicateInsert(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	if err := tx.Insert("acct", row(1, "ann", 1, true)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("acct", row(1, "bob", 2, true)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert in txn: err = %v", err)
	}
	mustCommit(t, tx)
	tx2 := e.Begin()
	if err := tx2.Insert("acct", row(1, "bob", 2, true)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert of committed row: err = %v", err)
	}
}

func TestUpdateDelete(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	for i := int64(1); i <= 3; i++ {
		if err := tx.Insert("acct", row(i, "u", float64(i), true)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	key2 := EncodeKey(int64(2))
	tx = e.Begin()
	if err := tx.Update("acct", key2, row(2, "u2", 22, false)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("acct", EncodeKey(int64(3))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("acct", EncodeKey(int64(99))); !errors.Is(err, ErrNoRow) {
		t.Fatalf("delete missing: err = %v", err)
	}
	if err := tx.Update("acct", EncodeKey(int64(99)), row(99, "x", 0, true)); !errors.Is(err, ErrNoRow) {
		t.Fatalf("update missing: err = %v", err)
	}
	mustCommit(t, tx)

	tx = e.Begin()
	r, ok, _ := tx.Get("acct", key2)
	if !ok || r[1].(string) != "u2" || r[2].(float64) != 22 {
		t.Fatalf("updated row = %v, %v", r, ok)
	}
	if _, ok, _ := tx.Get("acct", EncodeKey(int64(3))); ok {
		t.Fatal("deleted row still visible")
	}
}

func TestInsertDeleteInsertSameTxn(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	key := EncodeKey(int64(1))
	if err := tx.Insert("acct", row(1, "a", 1, true)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("acct", key); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.Get("acct", key); ok {
		t.Fatal("row visible after in-txn insert+delete")
	}
	if !tx.ReadOnly() {
		t.Fatal("insert+delete of a fresh row should leave the txn read-only")
	}
	if err := tx.Insert("acct", row(1, "b", 2, true)); err != nil {
		t.Fatal(err)
	}
	ws := tx.WriteSet()
	if ws.Len() != 1 || ws.Items[0].Op != writeset.OpInsert {
		t.Fatalf("writeset = %v", ws)
	}
	mustCommit(t, tx)
	tx = e.Begin()
	r, ok, _ := tx.Get("acct", key)
	if !ok || r[1].(string) != "b" {
		t.Fatalf("final row = %v, %v", r, ok)
	}
}

func TestDeleteReinsertOfCommittedRowIsUpdate(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	if err := tx.Insert("acct", row(1, "a", 1, true)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tx = e.Begin()
	key := EncodeKey(int64(1))
	if err := tx.Delete("acct", key); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("acct", row(1, "b", 2, true)); err != nil {
		t.Fatal(err)
	}
	ws := tx.WriteSet()
	if ws.Len() != 1 || ws.Items[0].Op != writeset.OpUpdate {
		t.Fatalf("writeset = %v, want single UPDATE", ws)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	if err := tx.Insert("acct", row(1, "a", 1, true)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	key := EncodeKey(int64(1))
	t1 := e.Begin()
	t2 := e.Begin()
	if err := t1.Update("acct", key, row(1, "t1", 10, true)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update("acct", key, row(1, "t2", 20, true)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t1)
	if _, err := t2.CommitLocal(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer: err = %v, want ErrConflict", err)
	}
	tx = e.Begin()
	r, _, _ := tx.Get("acct", key)
	if r[1].(string) != "t1" {
		t.Fatalf("winner = %v, want t1", r[1])
	}
}

func TestReadOnlyCommitDoesNotAdvanceVersion(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "a", 1, true))
	mustCommit(t, tx)
	v0 := e.Version()

	ro := e.Begin()
	if _, _, err := ro.Get("acct", EncodeKey(int64(1))); err != nil {
		t.Fatal(err)
	}
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly = false for a read-only txn")
	}
	v, err := ro.CommitLocal()
	if err != nil || v != v0 {
		t.Fatalf("read-only commit = %d, %v; want %d, nil", v, err, v0)
	}
	if e.Version() != v0 {
		t.Fatal("read-only commit advanced the version counter")
	}
}

func TestScanRange(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	for i := int64(0); i < 20; i++ {
		_ = tx.Insert("acct", row(i, fmt.Sprintf("u%d", i), float64(i), true))
	}
	mustCommit(t, tx)

	tx = e.Begin()
	// Uncommitted overlay: update 5, delete 7, insert 100.
	_ = tx.Update("acct", EncodeKey(int64(5)), row(5, "changed", 55, true))
	_ = tx.Delete("acct", EncodeKey(int64(7)))
	_ = tx.Insert("acct", row(100, "new", 0, true))

	kvs, err := tx.ScanAll("acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 20 { // 20 - 1 deleted + 1 inserted
		t.Fatalf("ScanAll len = %d, want 20", len(kvs))
	}
	byID := map[int64][]any{}
	prevKey := ""
	for i, kv := range kvs {
		if i > 0 && kv.Key <= prevKey {
			t.Fatal("scan out of key order")
		}
		prevKey = kv.Key
		byID[kv.Row[0].(int64)] = kv.Row
	}
	if byID[5][1].(string) != "changed" {
		t.Fatal("scan missed own update")
	}
	if _, ok := byID[7]; ok {
		t.Fatal("scan returned own-deleted row")
	}
	if _, ok := byID[100]; !ok {
		t.Fatal("scan missed own insert")
	}

	// Range bounds.
	kvs, _ = tx.ScanRange("acct", EncodeKey(int64(3)), EncodeKey(int64(6)))
	if len(kvs) != 3 || kvs[0].Row[0].(int64) != 3 || kvs[2].Row[0].(int64) != 5 {
		t.Fatalf("range scan = %v rows", len(kvs))
	}
}

func TestScanIsolatedFromLaterCommits(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	for i := int64(0); i < 5; i++ {
		_ = tx.Insert("acct", row(i, "u", 0, true))
	}
	mustCommit(t, tx)

	reader := e.Begin()
	writer := e.Begin()
	_ = writer.Insert("acct", row(50, "w", 0, true))
	_ = writer.Delete("acct", EncodeKey(int64(0)))
	mustCommit(t, writer)

	kvs, _ := reader.ScanAll("acct")
	if len(kvs) != 5 {
		t.Fatalf("snapshot scan saw %d rows, want 5", len(kvs))
	}
	for _, kv := range kvs {
		if kv.Row[0].(int64) == 50 {
			t.Fatal("snapshot scan saw later insert")
		}
	}
}

func TestSecondaryIndex(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "ann", 1, true))
	_ = tx.Insert("acct", row(2, "bob", 2, true))
	_ = tx.Insert("acct", row(3, "ann", 3, true))
	mustCommit(t, tx)

	tx = e.Begin()
	kvs, err := tx.ScanIndexEq("acct", "acct_owner", "ann")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Row[0].(int64) != 1 || kvs[1].Row[0].(int64) != 3 {
		t.Fatalf("index scan = %v", kvs)
	}
	if kvs, _ := tx.ScanIndexEq("acct", "acct_owner", "zed"); len(kvs) != 0 {
		t.Fatal("index scan for absent value returned rows")
	}
	if _, err := tx.ScanIndexEq("acct", "nope", "x"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("missing index err = %v", err)
	}
}

func TestSecondaryIndexTracksUpdates(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "ann", 1, true))
	mustCommit(t, tx)

	tx = e.Begin()
	_ = tx.Update("acct", EncodeKey(int64(1)), row(1, "bob", 1, true))
	mustCommit(t, tx)

	tx = e.Begin()
	if kvs, _ := tx.ScanIndexEq("acct", "acct_owner", "ann"); len(kvs) != 0 {
		t.Fatalf("old value still matches after update: %v", kvs)
	}
	kvs, _ := tx.ScanIndexEq("acct", "acct_owner", "bob")
	if len(kvs) != 1 {
		t.Fatalf("new value matches %d rows, want 1", len(kvs))
	}

	// An old snapshot must still find the old value through the index.
	old, err := e.BeginAt(1)
	if err != nil {
		t.Fatal(err)
	}
	kvs, _ = old.ScanIndexEq("acct", "acct_owner", "ann")
	if len(kvs) != 1 {
		t.Fatalf("old snapshot index scan = %d rows, want 1", len(kvs))
	}
}

func TestSecondaryIndexOwnWrites(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "ann", 1, true))
	_ = tx.Insert("acct", row(2, "bob", 1, true))
	mustCommit(t, tx)

	tx = e.Begin()
	_ = tx.Insert("acct", row(3, "ann", 0, true))                      // new matching row
	_ = tx.Update("acct", EncodeKey(int64(1)), row(1, "zed", 1, true)) // moves away
	_ = tx.Update("acct", EncodeKey(int64(2)), row(2, "ann", 1, true)) // moves in
	kvs, _ := tx.ScanIndexEq("acct", "acct_owner", "ann")
	if len(kvs) != 2 {
		t.Fatalf("own-write index scan = %d rows, want 2", len(kvs))
	}
	for _, kv := range kvs {
		id := kv.Row[0].(int64)
		if id != 2 && id != 3 {
			t.Fatalf("unexpected row id %d", id)
		}
	}
}

func TestCreateIndexBackfill(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "ann", 7.5, true))
	_ = tx.Insert("acct", row(2, "bob", 7.5, false))
	mustCommit(t, tx)

	if err := e.CreateIndex("acct", IndexDef{Name: "acct_bal", Column: "balance"}); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	kvs, err := tx.ScanIndexEq("acct", "acct_bal", 7.5)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("backfilled index scan = %v, %v", kvs, err)
	}
}

func TestApplyWriteSetOrdering(t *testing.T) {
	e := newTestEngine(t)
	ws1 := &writeset.WriteSet{Items: []writeset.Item{
		{Table: "acct", Key: EncodeKey(int64(1)), Op: writeset.OpInsert, Row: row(1, "a", 1, true)},
	}}
	ws3 := &writeset.WriteSet{Items: []writeset.Item{
		{Table: "acct", Key: EncodeKey(int64(2)), Op: writeset.OpInsert, Row: row(2, "b", 2, true)},
	}}
	if err := e.ApplyWriteSet(ws1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyWriteSet(ws3, 3); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("gap apply err = %v, want ErrBadVersion", err)
	}
	if err := e.ApplyWriteSet(ws3, 2); err != nil {
		t.Fatal(err)
	}
	if e.Version() != 2 {
		t.Fatalf("Version = %d, want 2", e.Version())
	}
}

func TestBeginAt(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "a", 1, true))
	mustCommit(t, tx)
	if _, err := e.BeginAt(5); err == nil {
		t.Fatal("BeginAt future version succeeded")
	}
	old, err := e.BeginAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := old.Get("acct", EncodeKey(int64(1))); ok {
		t.Fatal("version-0 snapshot sees version-1 insert")
	}
}

func TestVacuum(t *testing.T) {
	e := newTestEngine(t)
	key := EncodeKey(int64(1))
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "v1", 1, true))
	mustCommit(t, tx)
	for i := 2; i <= 5; i++ {
		tx = e.Begin()
		_ = tx.Update("acct", key, row(1, fmt.Sprintf("v%d", i), float64(i), true))
		mustCommit(t, tx)
	}
	// Chain now has 5 versions; keep only those needed for snapshot ≥ 5.
	removed := e.Vacuum(5)
	if removed != 4 {
		t.Fatalf("Vacuum removed %d versions, want 4", removed)
	}
	tx = e.Begin()
	r, ok, _ := tx.Get("acct", key)
	if !ok || r[1].(string) != "v5" {
		t.Fatalf("row after vacuum = %v, %v", r, ok)
	}
	// Old values are gone from the secondary index as well.
	if kvs, _ := tx.ScanIndexEq("acct", "acct_owner", "v1"); len(kvs) != 0 {
		t.Fatal("vacuumed version still reachable via index")
	}
	if kvs, _ := tx.ScanIndexEq("acct", "acct_owner", "v5"); len(kvs) != 1 {
		t.Fatal("live version lost from index")
	}
}

func TestVacuumRemovesTombstones(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "a", 1, true))
	mustCommit(t, tx)
	tx = e.Begin()
	_ = tx.Delete("acct", EncodeKey(int64(1)))
	mustCommit(t, tx)

	if got := e.RowEstimate("acct"); got != 1 {
		t.Fatalf("RowEstimate before vacuum = %d, want 1 (tombstone)", got)
	}
	e.Vacuum(2)
	if got := e.RowEstimate("acct"); got != 0 {
		t.Fatalf("RowEstimate after vacuum = %d, want 0", got)
	}
}

func TestVacuumPreservesOlderSnapshotBoundary(t *testing.T) {
	e := newTestEngine(t)
	key := EncodeKey(int64(1))
	tx := e.Begin()
	_ = tx.Insert("acct", row(1, "v1", 1, true))
	mustCommit(t, tx) // version 1
	tx = e.Begin()
	_ = tx.Update("acct", key, row(1, "v2", 2, true))
	mustCommit(t, tx) // version 2
	tx = e.Begin()
	_ = tx.Update("acct", key, row(1, "v3", 3, true))
	mustCommit(t, tx) // version 3

	e.Vacuum(2) // snapshots at ≥2 must stay valid
	snap2, _ := e.BeginAt(2)
	r, ok, _ := snap2.Get("acct", key)
	if !ok || r[1].(string) != "v2" {
		t.Fatalf("snapshot 2 after Vacuum(2) = %v, %v; want v2", r, ok)
	}
}

func TestTxnFinishedErrors(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	tx.Abort()
	if _, _, err := tx.Get("acct", "k"); !errors.Is(err, ErrTxnFinished) {
		t.Fatalf("Get after abort err = %v", err)
	}
	if err := tx.Insert("acct", row(1, "a", 1, true)); !errors.Is(err, ErrTxnFinished) {
		t.Fatalf("Insert after abort err = %v", err)
	}
	if _, err := tx.CommitLocal(); !errors.Is(err, ErrTxnFinished) {
		t.Fatalf("Commit after abort err = %v", err)
	}
}

func TestRowTypeValidation(t *testing.T) {
	e := newTestEngine(t)
	tx := e.Begin()
	if err := tx.Insert("acct", []any{int64(1), "a", 1.0}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := tx.Insert("acct", []any{"one", "a", 1.0, true}); err == nil {
		t.Fatal("mistyped key accepted")
	}
	if err := tx.Insert("acct", []any{nil, "a", 1.0, true}); err == nil {
		t.Fatal("NULL primary key accepted")
	}
	if err := tx.Insert("acct", []any{int64(1), nil, 1.0, true}); err != nil {
		t.Fatalf("NULL non-key column rejected: %v", err)
	}
}

// TestQuickSnapshotIsolation: concurrent snapshots never observe
// partial transactions — each reader sees, for every key, the value
// written by the last transaction that committed at or before its
// snapshot version.
func TestQuickSnapshotIsolation(t *testing.T) {
	f := func(updates []uint8, probeVersion uint8) bool {
		e := NewEngine()
		_ = e.CreateTable(&Schema{
			Table:   "kv",
			Columns: []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TInt}},
			Key:     []string{"k"},
		})
		// Oracle: value of each key after each version.
		history := []map[int64]int64{{}} // history[v] = state at version v
		state := map[int64]int64{}
		for i, u := range updates {
			k := int64(u % 8)
			tx := e.Begin()
			key := EncodeKey(k)
			if _, ok, _ := tx.Get("kv", key); ok {
				_ = tx.Update("kv", key, []any{k, int64(i)})
			} else {
				_ = tx.Insert("kv", []any{k, int64(i)})
			}
			if _, err := tx.CommitLocal(); err != nil {
				return false
			}
			state[k] = int64(i)
			snap := make(map[int64]int64, len(state))
			for kk, vv := range state {
				snap[kk] = vv
			}
			history = append(history, snap)
		}
		pv := uint64(probeVersion) % uint64(len(history))
		tx, err := e.BeginAt(pv)
		if err != nil {
			return false
		}
		kvs, err := tx.ScanAll("kv")
		if err != nil {
			return false
		}
		want := history[pv]
		if len(kvs) != len(want) {
			return false
		}
		for _, kv := range kvs {
			if want[kv.Row[0].(int64)] != kv.Row[1].(int64) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWriteSetRoundTrip: applying a transaction's writeset to a
// second engine reproduces exactly the state change, for random
// operation sequences. This is the property refresh transactions rely
// on.
func TestQuickWriteSetRoundTrip(t *testing.T) {
	schema := &Schema{
		Table:   "kv",
		Columns: []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TString}},
		Key:     []string{"k"},
	}
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewEngine(), NewEngine()
		_ = a.CreateTable(schema)
		_ = b.CreateTable(schema)

		// Seed both engines identically via writeset replication.
		seedTx := a.Begin()
		for k := int64(0); k < 8; k++ {
			_ = seedTx.Insert("kv", []any{k, "seed"})
		}
		seedWS := seedTx.WriteSet()
		if _, err := seedTx.CommitLocal(); err != nil {
			return false
		}
		if err := b.ApplyWriteSet(seedWS, 1); err != nil {
			return false
		}

		// Random mutation transaction on A.
		tx := a.Begin()
		for i := 0; i < int(nOps%16); i++ {
			k := rng.Int63n(12)
			key := EncodeKey(k)
			switch rng.Intn(3) {
			case 0:
				_ = tx.Insert("kv", []any{k, fmt.Sprintf("i%d", i)})
			case 1:
				_ = tx.Update("kv", key, []any{k, fmt.Sprintf("u%d", i)})
			case 2:
				_ = tx.Delete("kv", key)
			}
		}
		ws := tx.WriteSet()
		if _, err := tx.CommitLocal(); err != nil {
			return false
		}
		if !ws.Empty() {
			if err := b.ApplyWriteSet(ws, 2); err != nil {
				return false
			}
		}

		// Both engines must now agree exactly.
		ta, tb := a.Begin(), b.Begin()
		ka, _ := ta.ScanAll("kv")
		kb, _ := tb.ScanAll("kv")
		if len(ka) != len(kb) {
			return false
		}
		for i := range ka {
			if ka[i].Key != kb[i].Key || ka[i].Row[1] != kb[i].Row[1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKeyEncodingOrder: EncodeKey preserves the value order for
// every supported type.
func TestQuickKeyEncodingOrder(t *testing.T) {
	fInt := func(a, b int64) bool {
		ka, kb := EncodeKey(a), EncodeKey(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	fStr := func(a, b string) bool {
		ka, kb := EncodeKey(a), EncodeKey(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	fFloat := func(ai, bi int32) bool {
		a, b := float64(ai)/3, float64(bi)/7
		ka, kb := EncodeKey(a), EncodeKey(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(23))}
	for i, f := range []any{fInt, fStr, fFloat} {
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestQuickCompositeKeyOrder(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		ka, kb := EncodeKey(a1, a2), EncodeKey(b1, b2)
		var want int
		switch {
		case a1 < b1:
			want = -1
		case a1 > b1:
			want = 1
		case a2 < b2:
			want = -1
		case a2 > b2:
			want = 1
		}
		switch want {
		case -1:
			return ka < kb
		case 1:
			return ka > kb
		default:
			return ka == kb
		}
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(24))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{int64(3), int64(2), 1},
		{int64(1), float64(1.5), -1},
		{float64(2.5), int64(2), 1},
		{"a", "b", -1},
		{false, true, -1},
		{nil, int64(0), -1},
		{nil, nil, 0},
		{int64(5), nil, 1},
	}
	for _, c := range cases {
		if got := CompareValues(c.a, c.b); got != c.want {
			t.Errorf("CompareValues(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkEngineInsert(b *testing.B) {
	e := NewEngine()
	_ = e.CreateTable(testSchema())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := e.Begin()
		_ = tx.Insert("acct", row(int64(i), "bench", 1.0, true))
		if _, err := tx.CommitLocal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePointRead(b *testing.B) {
	e := NewEngine()
	_ = e.CreateTable(testSchema())
	tx := e.Begin()
	const n = 10000
	for i := 0; i < n; i++ {
		_ = tx.Insert("acct", row(int64(i), "bench", 1.0, true))
	}
	if _, err := tx.CommitLocal(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := e.Begin()
		if _, ok, _ := r.Get("acct", EncodeKey(int64(i%n))); !ok {
			b.Fatal("miss")
		}
		r.Abort()
	}
}
