package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"sconrep/internal/writeset"
)

func updateWS(table string, key int64, val int64) *writeset.WriteSet {
	return &writeset.WriteSet{Items: []writeset.Item{
		{Table: table, Key: EncodeKey(key), Op: writeset.OpUpdate, Row: []any{key, val}},
	}}
}

func newKVEngine(t testing.TB, keys int64) *Engine {
	t.Helper()
	e := NewEngine()
	if err := e.CreateTable(&Schema{
		Table:   "kv",
		Columns: []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TInt}},
		Key:     []string{"k"},
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	for k := int64(0); k < keys; k++ {
		if err := tx.Insert("kv", []any{k, int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.CommitLocal(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestInstallInvisibleUntilPublish proves the split write path: an
// installed version stays unobservable to new snapshots until
// PublishVersion raises the watermark past it.
func TestInstallInvisibleUntilPublish(t *testing.T) {
	e := newKVEngine(t, 2) // version 1
	if err := e.InstallWriteSet(updateWS("kv", 0, 42), 2); err != nil {
		t.Fatal(err)
	}
	if e.Version() != 1 {
		t.Fatalf("Version after install = %d, want 1 (unpublished)", e.Version())
	}
	tx := e.Begin()
	r, ok, err := tx.Get("kv", EncodeKey(int64(0)))
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", r, ok, err)
	}
	if r[1].(int64) != 0 {
		t.Fatalf("unpublished install visible: row = %v", r)
	}
	e.PublishVersion(2)
	if e.Version() != 2 {
		t.Fatalf("Version after publish = %d, want 2", e.Version())
	}
	tx = e.Begin()
	r, _, _ = tx.Get("kv", EncodeKey(int64(0)))
	if r[1].(int64) != 42 {
		t.Fatalf("published install not visible: row = %v", r)
	}
	// The per-table last-write bound tracks installs even before publish.
	if vt := e.TableVersionsAt([]string{"kv"}, 2)["kv"]; vt != 2 {
		t.Fatalf("TableVersionsAt = %d, want 2", vt)
	}
}

// TestPublishVersionMonotonic proves stale and duplicate watermark
// announcements are no-ops.
func TestPublishVersionMonotonic(t *testing.T) {
	e := newKVEngine(t, 1) // version 1
	e.PublishVersion(0)
	e.PublishVersion(1)
	if e.Version() != 1 {
		t.Fatalf("Version regressed to %d", e.Version())
	}
	if err := e.InstallWriteSet(updateWS("kv", 0, 1), 2); err != nil {
		t.Fatal(err)
	}
	if err := e.InstallWriteSet(updateWS("kv", 0, 2), 3); err != nil {
		t.Fatal(err)
	}
	e.PublishVersion(3)
	e.PublishVersion(2) // late lower watermark from a slower worker
	if e.Version() != 3 {
		t.Fatalf("Version = %d, want 3", e.Version())
	}
}

// TestInstallBehindPublishedRejected proves the loud-failure check: an
// install at or below the watermark is an ordering bug.
func TestInstallBehindPublishedRejected(t *testing.T) {
	e := newKVEngine(t, 1) // version 1
	if err := e.InstallWriteSet(updateWS("kv", 0, 9), 1); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("install at published version: err = %v, want ErrBadVersion", err)
	}
}

// TestInstallThenSerialApplyInterleave proves the serial path picks up
// exactly where published installs left off, as the replica does when
// a local commit follows a parallel refresh batch.
func TestInstallThenSerialApplyInterleave(t *testing.T) {
	e := newKVEngine(t, 4) // version 1
	for v := uint64(2); v <= 4; v++ {
		if err := e.InstallWriteSet(updateWS("kv", int64(v%4), int64(v)), v); err != nil {
			t.Fatal(err)
		}
	}
	e.PublishVersion(4)
	if err := e.ApplyWriteSet(updateWS("kv", 1, 50), 5); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	r, _, _ := tx.Get("kv", EncodeKey(int64(1)))
	if r[1].(int64) != 50 {
		t.Fatalf("serial apply after installs: row = %v", r)
	}
}

// TestConcurrentInstallPublishReaders is the storage-level model of
// the parallel applier: K worker goroutines install disjoint keys (so
// no two concurrent installs conflict, and each key's versions are
// installed in order by its owner), a publisher advances the watermark
// over the contiguous completed prefix, and reader goroutines assert
// every snapshot shows, for each key, exactly the newest write at or
// below the snapshot. Run under -race this doubles as the
// happens-before proof for the atomic chain-head handoff.
func TestConcurrentInstallPublishReaders(t *testing.T) {
	const keys = 8
	const last = uint64(512)  // versions 2..last, version v writes key v%keys
	e := newKVEngine(t, keys) // version 1 seeds all keys with 0

	installed := make([]atomic.Bool, last+1)
	var wg sync.WaitGroup
	for g := int64(0); g < keys; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			for v := uint64(2); v <= last; v++ {
				if int64(v%keys) != g {
					continue
				}
				if err := e.InstallWriteSet(updateWS("kv", g, int64(v)), v); err != nil {
					t.Error(err)
					return
				}
				installed[v].Store(true)
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { // publisher: chase the contiguous installed prefix
		defer close(done)
		next := uint64(2)
		for next <= last {
			if installed[next].Load() {
				e.PublishVersion(next)
				next++
			}
		}
	}()

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := e.Begin()
				s := tx.Snapshot()
				kvs, err := tx.ScanAll("kv")
				tx.Abort()
				if err != nil {
					t.Error(err)
					return
				}
				for _, kv := range kvs {
					k := kv.Row[0].(int64)
					got := kv.Row[1].(int64)
					// Largest v in [2, s] with v%keys == k, or 0 if none.
					var want int64
					for v := s; v >= 2; v-- {
						if int64(v%keys) == k {
							want = int64(v)
							break
						}
					}
					if got != want {
						t.Errorf("snapshot %d key %d = %d, want %d", s, k, got, want)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	<-done
	close(stop)
	rwg.Wait()
	if e.Version() != last {
		t.Fatalf("final Version = %d, want %d", e.Version(), last)
	}
}
