package storage

import (
	"fmt"
	"strings"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// IndexDef declares a single-column secondary index.
type IndexDef struct {
	Name   string
	Column string
}

// Schema describes a table: its columns, primary key, and secondary
// indexes. Primary key columns must not be NULL and identify the row
// for versioning, replication, and conflict detection.
type Schema struct {
	Table   string
	Columns []Column
	// Key lists primary key column names, in key order.
	Key []string
	// Indexes lists secondary indexes created with the table.
	Indexes []IndexDef

	// derived, populated by normalize:
	colIdx map[string]int
	keyIdx []int
}

// normalize validates the schema and fills the derived lookup fields.
func (s *Schema) normalize() error {
	if s.Table == "" {
		return fmt.Errorf("storage: schema with empty table name")
	}
	if strings.ContainsRune(s.Table, 0) {
		return fmt.Errorf("storage: table name %q contains NUL", s.Table)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("storage: table %s has no columns", s.Table)
	}
	s.colIdx = make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("storage: table %s has an unnamed column", s.Table)
		}
		if _, dup := s.colIdx[c.Name]; dup {
			return fmt.Errorf("storage: table %s has duplicate column %s", s.Table, c.Name)
		}
		if c.Type < TInt || c.Type > TBool {
			return fmt.Errorf("storage: table %s column %s has invalid type", s.Table, c.Name)
		}
		s.colIdx[c.Name] = i
	}
	if len(s.Key) == 0 {
		return fmt.Errorf("storage: table %s has no primary key", s.Table)
	}
	s.keyIdx = make([]int, len(s.Key))
	for i, name := range s.Key {
		idx, ok := s.colIdx[name]
		if !ok {
			return fmt.Errorf("storage: table %s: key column %s does not exist", s.Table, name)
		}
		s.keyIdx[i] = idx
	}
	seen := map[string]bool{}
	for _, ix := range s.Indexes {
		if ix.Name == "" {
			return fmt.Errorf("storage: table %s has an unnamed index", s.Table)
		}
		if seen[ix.Name] {
			return fmt.Errorf("storage: table %s has duplicate index %s", s.Table, ix.Name)
		}
		seen[ix.Name] = true
		if _, ok := s.colIdx[ix.Column]; !ok {
			return fmt.Errorf("storage: table %s index %s: column %s does not exist", s.Table, ix.Name, ix.Column)
		}
	}
	return nil
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.colIdx[name]; ok {
		return i
	}
	return -1
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// KeyOf extracts and encodes the primary key of a row.
func (s *Schema) KeyOf(row []any) (string, error) {
	vals := make([]any, len(s.keyIdx))
	for i, ci := range s.keyIdx {
		v := row[ci]
		if v == nil {
			return "", fmt.Errorf("storage: table %s: NULL in primary key column %s", s.Table, s.Key[i])
		}
		vals[i] = v
	}
	return EncodeKey(vals...), nil
}

// CheckRow validates arity and column types.
func (s *Schema) CheckRow(row []any) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("storage: table %s: row has %d values, want %d", s.Table, len(row), len(s.Columns))
	}
	for i, c := range s.Columns {
		if err := CheckValue(c.Type, row[i]); err != nil {
			return fmt.Errorf("storage: table %s column %s: %w", s.Table, c.Name, err)
		}
	}
	return nil
}

// clone returns a deep copy safe to hand to another engine instance.
func (s *Schema) clone() *Schema {
	cp := &Schema{
		Table:   s.Table,
		Columns: append([]Column(nil), s.Columns...),
		Key:     append([]string(nil), s.Key...),
		Indexes: append([]IndexDef(nil), s.Indexes...),
	}
	// normalize cannot fail: the source already passed it.
	if err := cp.normalize(); err != nil {
		panic(err)
	}
	return cp
}
