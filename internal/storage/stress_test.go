package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sconrep/internal/writeset"
)

// TestConcurrentReadersWhileApplying hammers the engine with snapshot
// readers while a writer applies writesets — readers must always see a
// consistent prefix (the sum invariant holds at every snapshot).
func TestConcurrentReadersWhileApplying(t *testing.T) {
	e := NewEngine()
	if err := e.CreateTable(&Schema{
		Table:   "bal",
		Columns: []Column{{Name: "id", Type: TInt}, {Name: "amount", Type: TInt}},
		Key:     []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	const accounts = 8
	const total = int64(1000)
	tx := e.Begin()
	for i := int64(0); i < accounts; i++ {
		amt := total / accounts
		if err := tx.Insert("bal", []any{i, amt}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.CommitLocal(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rtx := e.Begin()
				kvs, err := rtx.ScanAll("bal")
				rtx.Abort()
				if err != nil {
					mu.Lock()
					readErr = err
					mu.Unlock()
					return
				}
				var sum int64
				for _, kv := range kvs {
					sum += kv.Row[1].(int64)
				}
				if sum != total {
					mu.Lock()
					readErr = fmt.Errorf("snapshot sum = %d, want %d", sum, total)
					mu.Unlock()
					return
				}
			}
		}()
	}

	// Writer: moves money between random accounts via writesets, as
	// the replication path does.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		from, to := rng.Int63n(accounts), rng.Int63n(accounts)
		if from == to {
			continue
		}
		rtx := e.Begin()
		fromRow, _, err := rtx.Get("bal", EncodeKey(from))
		if err != nil {
			t.Fatal(err)
		}
		toRow, _, _ := rtx.Get("bal", EncodeKey(to))
		amt := int64(1)
		if fromRow[1].(int64) < amt {
			rtx.Abort()
			continue
		}
		ws := &writeset.WriteSet{Items: []writeset.Item{
			{Table: "bal", Key: EncodeKey(from), Op: writeset.OpUpdate, Row: []any{from, fromRow[1].(int64) - amt}},
			{Table: "bal", Key: EncodeKey(to), Op: writeset.OpUpdate, Row: []any{to, toRow[1].(int64) + amt}},
		}}
		rtx.Abort()
		if err := e.ApplyWriteSet(ws, e.Version()+1); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
}

// TestVacuumConcurrentWithReads runs vacuum under concurrent snapshot
// readers pinned above the watermark.
func TestVacuumConcurrentWithReads(t *testing.T) {
	e := NewEngine()
	_ = e.CreateTable(&Schema{
		Table:   "kv",
		Columns: []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TInt}},
		Key:     []string{"k"},
	})
	tx := e.Begin()
	for k := int64(0); k < 32; k++ {
		_ = tx.Insert("kv", []any{k, int64(0)})
	}
	if _, err := tx.CommitLocal(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rtx := e.Begin()
				if _, err := rtx.ScanAll("kv"); err != nil {
					t.Error(err)
					rtx.Abort()
					return
				}
				rtx.Abort()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		utx := e.Begin()
		k := EncodeKey(int64(i % 32))
		row, _, _ := utx.Get("kv", k)
		_ = utx.Update("kv", k, []any{int64(i % 32), row[1].(int64) + 1})
		if _, err := utx.CommitLocal(); err != nil {
			t.Fatal(err)
		}
		if i%20 == 0 && e.Version() > 2 {
			e.Vacuum(e.Version() - 1)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkApplyWriteSet measures the replication hot path.
func BenchmarkApplyWriteSet(b *testing.B) {
	e := NewEngine()
	_ = e.CreateTable(&Schema{
		Table:   "kv",
		Columns: []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TString}},
		Key:     []string{"k"},
	})
	tx := e.Begin()
	for k := int64(0); k < 1000; k++ {
		_ = tx.Insert("kv", []any{k, "init"})
	}
	if _, err := tx.CommitLocal(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % 1000)
		ws := &writeset.WriteSet{Items: []writeset.Item{
			{Table: "kv", Key: EncodeKey(k), Op: writeset.OpUpdate, Row: []any{k, "updated"}},
		}}
		if err := e.ApplyWriteSet(ws, e.Version()+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanRange measures range-scan throughput (rows/op reported
// via custom metric).
func BenchmarkScanRange(b *testing.B) {
	e := NewEngine()
	_ = e.CreateTable(&Schema{
		Table:   "kv",
		Columns: []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TInt}},
		Key:     []string{"k"},
	})
	tx := e.Begin()
	for k := int64(0); k < 10000; k++ {
		_ = tx.Insert("kv", []any{k, k})
	}
	if _, err := tx.CommitLocal(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtx := e.Begin()
		kvs, err := rtx.ScanRange("kv", EncodeKey(int64(1000)), EncodeKey(int64(2000)))
		rtx.Abort()
		if err != nil || len(kvs) != 1000 {
			b.Fatalf("scan = %d rows, %v", len(kvs), err)
		}
	}
}
