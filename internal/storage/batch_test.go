package storage

import (
	"errors"
	"fmt"
	"testing"

	"sconrep/internal/writeset"
)

func insertWS(id int64, owner string, bal float64) *writeset.WriteSet {
	return &writeset.WriteSet{Items: []writeset.Item{
		{Table: "acct", Key: EncodeKey(id), Op: writeset.OpInsert, Row: row(id, owner, bal, true)},
	}}
}

func TestApplyWriteSetBatch(t *testing.T) {
	e := newTestEngine(t)
	batch := []*writeset.WriteSet{
		insertWS(1, "ann", 1),
		insertWS(2, "bob", 2),
		insertWS(3, "ann", 3),
	}
	if err := e.ApplyWriteSetBatch(batch, 1); err != nil {
		t.Fatal(err)
	}
	if e.Version() != 3 {
		t.Fatalf("Version = %d, want 3 (tail of batch)", e.Version())
	}
	// Every row is visible at the tail version, each stamped with its
	// own position in the batch.
	tx := e.Begin()
	for id := int64(1); id <= 3; id++ {
		r, ok, err := tx.Get("acct", EncodeKey(id))
		if err != nil || !ok {
			t.Fatalf("Get(%d) = %v, %v, %v", id, r, ok, err)
		}
	}
	// Intermediate versions are still addressable after the fact: a
	// snapshot at version 2 must see rows 1,2 but not 3.
	mid, err := e.BeginAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := mid.Get("acct", EncodeKey(int64(2))); !ok {
		t.Fatal("version-2 snapshot missing version-2 row")
	}
	if _, ok, _ := mid.Get("acct", EncodeKey(int64(3))); ok {
		t.Fatal("version-2 snapshot sees version-3 row")
	}
}

func TestApplyWriteSetBatchVersionCheck(t *testing.T) {
	e := newTestEngine(t)
	if err := e.ApplyWriteSetBatch(nil, 1); err != nil {
		t.Fatalf("empty batch err = %v", err)
	}
	batch := []*writeset.WriteSet{insertWS(1, "a", 1)}
	if err := e.ApplyWriteSetBatch(batch, 2); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("gap batch err = %v, want ErrBadVersion", err)
	}
	if err := e.ApplyWriteSetBatch(batch, 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("zero-start batch err = %v, want ErrBadVersion", err)
	}
	if err := e.ApplyWriteSetBatch(batch, 1); err != nil {
		t.Fatal(err)
	}
	if e.Version() != 1 {
		t.Fatalf("Version = %d, want 1", e.Version())
	}
}

func TestApplyWriteSetBatchMidBatchErrorKeepsPrefix(t *testing.T) {
	e := newTestEngine(t)
	bad := &writeset.WriteSet{Items: []writeset.Item{
		// Wrong arity: CheckRow rejects it mid-batch.
		{Table: "acct", Key: EncodeKey(int64(9)), Op: writeset.OpInsert, Row: []any{int64(9)}},
	}}
	batch := []*writeset.WriteSet{
		insertWS(1, "ann", 1),
		insertWS(2, "bob", 2),
		bad,
		insertWS(4, "cat", 4),
	}
	err := e.ApplyWriteSetBatch(batch, 1)
	if err == nil {
		t.Fatal("mid-batch bad row accepted")
	}
	// The version counter stops at the last fully applied writeset: the
	// durable prefix [1,2]. Nothing past the failure is visible.
	if e.Version() != 2 {
		t.Fatalf("Version after mid-batch failure = %d, want 2", e.Version())
	}
	tx := e.Begin()
	if _, ok, _ := tx.Get("acct", EncodeKey(int64(2))); !ok {
		t.Fatal("prefix row 2 missing after mid-batch failure")
	}
	if _, ok, _ := tx.Get("acct", EncodeKey(int64(4))); ok {
		t.Fatal("row past the failing writeset is visible")
	}
	// Recovery is a fresh batch starting right after the prefix.
	if err := e.ApplyWriteSetBatch([]*writeset.WriteSet{insertWS(3, "cat", 3), insertWS(4, "dan", 4)}, 3); err != nil {
		t.Fatal(err)
	}
	if e.Version() != 4 {
		t.Fatalf("Version after retry = %d, want 4", e.Version())
	}
}

func TestApplyWriteSetBatchUpdatesSecondaryIndexes(t *testing.T) {
	e := newTestEngine(t)
	batch := make([]*writeset.WriteSet, 0, 4)
	for id := int64(1); id <= 4; id++ {
		owner := "ann"
		if id%2 == 0 {
			owner = "bob"
		}
		batch = append(batch, insertWS(id, owner, float64(id)))
	}
	if err := e.ApplyWriteSetBatch(batch, 1); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	kvs, err := tx.ScanIndexEq("acct", "acct_owner", "ann")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Row[0].(int64) != 1 || kvs[1].Row[0].(int64) != 3 {
		t.Fatalf("index scan after batch = %v", kvs)
	}
}

func TestApplyWriteSetBatchMatchesPerWriteset(t *testing.T) {
	mk := func() []*writeset.WriteSet {
		var wss []*writeset.WriteSet
		for id := int64(1); id <= 8; id++ {
			wss = append(wss, insertWS(id, fmt.Sprintf("o%d", id%3), float64(id)))
		}
		// An update and a delete over earlier rows, to cover all ops.
		wss = append(wss, &writeset.WriteSet{Items: []writeset.Item{
			{Table: "acct", Key: EncodeKey(int64(1)), Op: writeset.OpUpdate, Row: row(1, "upd", 99, false)},
		}})
		wss = append(wss, &writeset.WriteSet{Items: []writeset.Item{
			{Table: "acct", Key: EncodeKey(int64(2)), Op: writeset.OpDelete},
		}})
		return wss
	}
	one, many := newTestEngine(t), newTestEngine(t)
	for i, ws := range mk() {
		if err := one.ApplyWriteSet(ws, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := many.ApplyWriteSetBatch(mk(), 1); err != nil {
		t.Fatal(err)
	}
	if one.Version() != many.Version() {
		t.Fatalf("versions diverge: %d vs %d", one.Version(), many.Version())
	}
	t1, t2 := one.Begin(), many.Begin()
	for id := int64(1); id <= 8; id++ {
		r1, ok1, _ := t1.Get("acct", EncodeKey(id))
		r2, ok2, _ := t2.Get("acct", EncodeKey(id))
		if ok1 != ok2 {
			t.Fatalf("key %d presence diverges: %v vs %v", id, ok1, ok2)
		}
		if ok1 && fmt.Sprint(r1) != fmt.Sprint(r2) {
			t.Fatalf("key %d rows diverge: %v vs %v", id, r1, r2)
		}
	}
}
