package storage

import (
	"fmt"
	"sort"

	"sconrep/internal/writeset"
)

// Txn is a snapshot-isolated transaction. Reads observe the database
// as of the snapshot version plus the transaction's own buffered
// writes; writes are buffered until commit.
//
// A Txn must be used from a single goroutine.
type Txn struct {
	e        *Engine
	snapshot uint64
	// writes buffers this transaction's modifications:
	// table → encoded pk → pending write.
	writes   map[string]map[string]*pendingWrite
	order    []writeRef
	finished bool
}

type pendingWrite struct {
	op  writeset.Op
	row []any
	// removed marks a write cancelled by a later operation in the same
	// transaction (insert followed by delete of a row that did not
	// exist at the snapshot).
	removed bool
}

type writeRef struct {
	table string
	key   string
}

// Begin starts a transaction reading the engine's latest snapshot.
func (e *Engine) Begin() *Txn {
	return e.beginAt(e.version.Load())
}

// BeginAt starts a transaction reading the snapshot at version v,
// which must not exceed the engine's current version.
func (e *Engine) BeginAt(v uint64) (*Txn, error) {
	cur := e.version.Load()
	if v > cur {
		return nil, fmt.Errorf("storage: snapshot %d ahead of engine version %d", v, cur)
	}
	return e.beginAt(v), nil
}

func (e *Engine) beginAt(v uint64) *Txn {
	return &Txn{
		e:        e,
		snapshot: v,
		writes:   make(map[string]map[string]*pendingWrite),
	}
}

// Snapshot returns the version this transaction reads.
func (t *Txn) Snapshot() uint64 { return t.snapshot }

// pending returns the live pending write for (table, key), if any.
func (t *Txn) pending(table, key string) *pendingWrite {
	if m, ok := t.writes[table]; ok {
		if pw, ok := m[key]; ok && !pw.removed {
			return pw
		}
	}
	return nil
}

func (t *Txn) setPending(table, key string, pw *pendingWrite) {
	m, ok := t.writes[table]
	if !ok {
		m = make(map[string]*pendingWrite)
		t.writes[table] = m
	}
	if _, existed := m[key]; !existed {
		t.order = append(t.order, writeRef{table, key})
	}
	m[key] = pw
}

// committedAt returns the committed row visible at the snapshot,
// ignoring the transaction's own writes.
func (t *Txn) committedAt(table, key string) ([]any, bool, error) {
	t.e.mu.RLock()
	defer t.e.mu.RUnlock()
	tb, ok := t.e.tables[table]
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	tb.mu.RLock()
	cv, ok := tb.rows.Get(key)
	tb.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	vr := cv.(*chain).visibleAt(t.snapshot)
	if vr == nil {
		return nil, false, nil
	}
	return append([]any(nil), vr.row...), true, nil
}

// Get returns a copy of the row under the encoded primary key, as
// visible to this transaction.
func (t *Txn) Get(table, key string) ([]any, bool, error) {
	if t.finished {
		return nil, false, ErrTxnFinished
	}
	if pw := t.pending(table, key); pw != nil {
		if pw.op == writeset.OpDelete {
			return nil, false, nil
		}
		return append([]any(nil), pw.row...), true, nil
	}
	return t.committedAt(table, key)
}

// Insert adds a row. It fails with ErrDuplicateKey if the key is
// visible to this transaction.
func (t *Txn) Insert(table string, row []any) error {
	if t.finished {
		return ErrTxnFinished
	}
	s, ok := t.e.Schema(table)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	if err := s.CheckRow(row); err != nil {
		return err
	}
	key, err := s.KeyOf(row)
	if err != nil {
		return err
	}
	if pw := t.pending(table, key); pw != nil {
		if pw.op != writeset.OpDelete {
			return fmt.Errorf("%w: %s[%q]", ErrDuplicateKey, table, key)
		}
		// Delete then re-insert within the transaction: the row existed
		// committed, so the net effect is an update.
		t.setPending(table, key, &pendingWrite{op: writeset.OpUpdate, row: append([]any(nil), row...)})
		return nil
	}
	_, exists, err := t.committedAt(table, key)
	if err != nil {
		return err
	}
	if exists {
		return fmt.Errorf("%w: %s[%q]", ErrDuplicateKey, table, key)
	}
	t.setPending(table, key, &pendingWrite{op: writeset.OpInsert, row: append([]any(nil), row...)})
	return nil
}

// Update replaces the row under key with the new image. The new image
// must encode the same primary key. Fails with ErrNoRow if the row is
// not visible.
func (t *Txn) Update(table, key string, row []any) error {
	if t.finished {
		return ErrTxnFinished
	}
	s, ok := t.e.Schema(table)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	if err := s.CheckRow(row); err != nil {
		return err
	}
	nk, err := s.KeyOf(row)
	if err != nil {
		return err
	}
	if nk != key {
		// A primary-key update is a delete plus an insert.
		if err := t.Delete(table, key); err != nil {
			return err
		}
		return t.Insert(table, row)
	}
	if pw := t.pending(table, key); pw != nil {
		if pw.op == writeset.OpDelete {
			return fmt.Errorf("%w: %s[%q]", ErrNoRow, table, key)
		}
		t.setPending(table, key, &pendingWrite{op: pw.op, row: append([]any(nil), row...)})
		return nil
	}
	_, exists, err := t.committedAt(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return fmt.Errorf("%w: %s[%q]", ErrNoRow, table, key)
	}
	t.setPending(table, key, &pendingWrite{op: writeset.OpUpdate, row: append([]any(nil), row...)})
	return nil
}

// Delete removes the row under key. Fails with ErrNoRow if the row is
// not visible to this transaction.
func (t *Txn) Delete(table, key string) error {
	if t.finished {
		return ErrTxnFinished
	}
	if _, ok := t.e.Schema(table); !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	if pw := t.pending(table, key); pw != nil {
		if pw.op == writeset.OpDelete {
			return fmt.Errorf("%w: %s[%q]", ErrNoRow, table, key)
		}
		if pw.op == writeset.OpInsert {
			// The row never existed outside this transaction: cancel.
			pw.removed = true
			return nil
		}
		t.setPending(table, key, &pendingWrite{op: writeset.OpDelete})
		return nil
	}
	_, exists, err := t.committedAt(table, key)
	if err != nil {
		return err
	}
	if !exists {
		return fmt.Errorf("%w: %s[%q]", ErrNoRow, table, key)
	}
	t.setPending(table, key, &pendingWrite{op: writeset.OpDelete})
	return nil
}

// KV is a scan result: the encoded primary key and a copy of the row.
type KV struct {
	Key string
	Row []any
}

// ScanRange returns the rows visible to this transaction with encoded
// primary keys in [lo, hi), in key order. Empty lo scans from the
// start; empty hi scans to the end.
func (t *Txn) ScanRange(table, lo, hi string) ([]KV, error) {
	if t.finished {
		return nil, ErrTxnFinished
	}
	var out []KV
	t.e.mu.RLock()
	tb, ok := t.e.tables[table]
	if !ok {
		t.e.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	tb.mu.RLock()
	it := tb.rows.Scan(lo, hi)
	for it.Next() {
		key := it.Key()
		if pw := t.pending(table, key); pw != nil {
			continue // own write overrides; merged below
		}
		if vr := it.Value().(*chain).visibleAt(t.snapshot); vr != nil {
			out = append(out, KV{Key: key, Row: append([]any(nil), vr.row...)})
		}
	}
	tb.mu.RUnlock()
	t.e.mu.RUnlock()

	// Overlay this transaction's own writes in the range.
	if m := t.writes[table]; len(m) > 0 {
		for key, pw := range m {
			if pw.removed || pw.op == writeset.OpDelete {
				continue
			}
			if key < lo || (hi != "" && key >= hi) {
				continue
			}
			out = append(out, KV{Key: key, Row: append([]any(nil), pw.row...)})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	}
	return out, nil
}

// ScanAll returns every row visible to this transaction, in key order.
func (t *Txn) ScanAll(table string) ([]KV, error) {
	return t.ScanRange(table, "", "")
}

// ScanIndexEq returns the visible rows whose indexed column equals
// val, using the named secondary index, in primary-key order within
// equal values.
func (t *Txn) ScanIndexEq(table, index string, val any) ([]KV, error) {
	if t.finished {
		return nil, ErrTxnFinished
	}
	if val == nil {
		return nil, nil // NULL matches nothing under equality
	}
	var out []KV
	t.e.mu.RLock()
	tb, ok := t.e.tables[table]
	if !ok {
		t.e.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	tb.mu.RLock()
	ix, ok := tb.indexes[index]
	if !ok {
		tb.mu.RUnlock()
		t.e.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s on %s", ErrNoIndex, index, table)
	}
	col := ix.col
	prefix := string(EncodeValue(nil, val))
	it := ix.tree.Scan(prefix, prefix+"\xff")
	for it.Next() {
		pk := it.Key()[len(prefix):]
		if pw := t.pending(table, pk); pw != nil {
			continue // overlaid below
		}
		cv, ok := tb.rows.Get(pk)
		if !ok {
			continue
		}
		vr := cv.(*chain).visibleAt(t.snapshot)
		// The index is a superset over versions: re-check the value.
		if vr != nil && ValuesEqual(vr.row[col], val) {
			out = append(out, KV{Key: pk, Row: append([]any(nil), vr.row...)})
		}
	}
	tb.mu.RUnlock()
	t.e.mu.RUnlock()

	if m := t.writes[table]; len(m) > 0 {
		for key, pw := range m {
			if pw.removed || pw.op == writeset.OpDelete {
				continue
			}
			if ValuesEqual(pw.row[col], val) {
				out = append(out, KV{Key: key, Row: append([]any(nil), pw.row...)})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	}
	return out, nil
}

// WriteSet exports the transaction's buffered writes as full row
// images, in first-touch order.
func (t *Txn) WriteSet() *writeset.WriteSet {
	ws := &writeset.WriteSet{}
	for _, ref := range t.order {
		pw := t.writes[ref.table][ref.key]
		if pw.removed {
			continue
		}
		item := writeset.Item{Table: ref.table, Key: ref.key, Op: pw.op}
		if pw.op != writeset.OpDelete {
			item.Row = append([]any(nil), pw.row...)
		}
		ws.Items = append(ws.Items, item)
	}
	return ws
}

// ReadOnly reports whether the transaction has buffered no writes.
func (t *Txn) ReadOnly() bool {
	for _, ref := range t.order {
		if !t.writes[ref.table][ref.key].removed {
			return false
		}
	}
	return true
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.finished = true
}

// CommitLocal commits the transaction directly against this engine
// with a first-committer-wins check — the path a standalone
// (unreplicated) database takes. Replicated deployments instead route
// the writeset through the certifier and call Engine.ApplyWriteSet at
// the assigned version.
func (t *Txn) CommitLocal() (uint64, error) {
	if t.finished {
		return 0, ErrTxnFinished
	}
	t.finished = true
	ws := t.WriteSet()
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	if ws.Empty() {
		return t.e.version.Load(), nil
	}
	// First committer wins: if any written record changed after our
	// snapshot, abort. The exclusive e.mu excludes every installer, so
	// the plain tree reads here are race-free.
	for i := range ws.Items {
		it := &ws.Items[i]
		tb, ok := t.e.tables[it.Table]
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrNoTable, it.Table)
		}
		if cv, ok := tb.rows.Get(it.Key); ok {
			if head := cv.(*chain).head.Load(); head != nil && head.version > t.snapshot {
				return 0, fmt.Errorf("%w: %s[%q]", ErrConflict, it.Table, it.Key)
			}
		}
	}
	v := t.e.version.Load() + 1
	for i := range ws.Items {
		if err := t.e.applyItem(&ws.Items[i], v); err != nil {
			return 0, err
		}
	}
	t.e.version.Store(v)
	return v, nil
}
