package storage

import "sconrep/internal/writeset"

// Backend is the pluggable storage layer behind a replica: an MVCC
// engine plus whatever durability the implementation provides. The
// replica applies refresh and local commits to Engine() exactly as
// before, and additionally reports every applied run to LogApplied so
// a durable backend can persist it.
//
// Two implementations exist: MemBackend wraps the in-memory engine
// with no-op durability (the paper's configuration — replicas run with
// log forcing disabled and rebuild from the certifier's history), and
// pstore.Store logs applied writesets to a WAL and takes asynchronous
// fuzzy checkpoints so a restarted replica backfills only the history
// suffix.
type Backend interface {
	// Engine returns the MVCC engine this backend persists. It is
	// fixed for the lifetime of the backend.
	Engine() *Engine

	// LogApplied records that wss[i] was applied at startVersion+i.
	// Runs may arrive out of version order when the applier and a
	// local commit race; the backend is responsible for sequencing
	// them. Durable backends append without forcing: losing the tail
	// is safe because the certifier backfills it on recovery. For the
	// same reason an error is advisory, not fatal — a backend that can
	// no longer log degrades to a deeper recovery, not to divergence.
	LogApplied(wss []*writeset.WriteSet, startVersion uint64) error

	// Realign tells the backend the next version the replica will
	// apply. Crash recovery may discard applied-but-unlogged versions
	// from the replica's buffers; realigning lets the backend close
	// the resulting log gap instead of waiting forever for versions
	// that will never be logged.
	Realign(nextVersion uint64)

	// Close releases the backend's resources gracefully.
	Close() error
}

// MemBackend is the no-durability backend: the engine alone.
type MemBackend struct {
	Eng *Engine
}

func (m MemBackend) Engine() *Engine { return m.Eng }

func (m MemBackend) LogApplied([]*writeset.WriteSet, uint64) error { return nil }

func (m MemBackend) Realign(uint64) {}

func (m MemBackend) Close() error { return nil }
