package storage

import (
	"fmt"
	"sort"

	"sconrep/internal/writeset"
)

// scanChunk is how many keys ScanVisible collects per table-lock
// acquisition. Small enough that concurrent installers are never
// starved for long; large enough that lock traffic is negligible.
const scanChunk = 512

// ScanVisible calls fn for every primary key with a live (non-deleted)
// version at or below snapshot, in key order, with that version's
// commit version and row image. The row slice is the engine's own
// immutable version image and must not be mutated.
//
// This is the fuzzy-checkpoint scan: it holds only the per-table read
// lock, released every scanChunk keys, so serial applies (which need
// e.mu exclusively) and concurrent installers proceed underneath it.
// The result is still a consistent snapshot at `snapshot`: versions
// installed during the scan are above it and filtered out by the
// visibility check, and Vacuum only removes versions invisible at the
// replica watermark, which the caller keeps at or below snapshot.
func (e *Engine) ScanVisible(tableName string, snapshot uint64, fn func(key string, version uint64, row []any) error) error {
	e.mu.RLock()
	t, ok := e.tables[tableName]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	type hit struct {
		key     string
		version uint64
		row     []any
	}
	chunk := make([]hit, 0, scanChunk)
	lo := ""
	for {
		chunk = chunk[:0]
		t.mu.RLock()
		it := t.rows.Scan(lo, "")
		for it.Next() {
			if v := it.Value().(*chain).visibleAt(snapshot); v != nil {
				chunk = append(chunk, hit{key: it.Key(), version: v.version, row: v.row})
			}
			lo = it.Key() + "\x00"
			if len(chunk) == scanChunk {
				break
			}
		}
		more := len(chunk) == scanChunk
		t.mu.RUnlock()
		for i := range chunk {
			if err := fn(chunk[i].key, chunk[i].version, chunk[i].row); err != nil {
				return err
			}
		}
		if !more {
			return nil
		}
	}
}

// TablesSorted returns all table names in lexical order — the
// deterministic iteration order checkpoint encoding requires.
func (e *Engine) TablesSorted() []string {
	names := e.Tables()
	sort.Strings(names)
	return names
}

// RestoreRow installs a row image at the given version, bypassing the
// commit-order check. Checkpoint restore only: the engine must not be
// serving traffic, keys must arrive at most once, and the caller must
// finish with RestoreVersion. Row images are schema-checked so a
// corrupt checkpoint cannot plant malformed rows.
func (e *Engine) RestoreRow(tableName, key string, row []any, version uint64) error {
	e.mu.RLock()
	t, ok := e.tables[tableName]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	return installItem(t, &writeset.Item{Table: tableName, Key: key, Op: writeset.OpUpdate, Row: row}, version)
}

// RestoreVersion force-sets the published version after a checkpoint
// restore. Restore only; it is not a commit and performs no ordering
// checks.
func (e *Engine) RestoreVersion(v uint64) {
	e.version.Store(v)
}
