// Package btree implements an in-memory B+ tree keyed by byte strings.
//
// It is the ordering substrate for the storage engine's primary and
// secondary indexes: values are opaque, keys are compared bytewise, and
// leaves are chained so range scans are a leaf walk. The tree is not
// safe for concurrent mutation; the storage engine serializes writers
// and uses its own MVCC machinery for readers.
package btree

import (
	"fmt"
	"strings"
)

// degree is the maximum number of children of an internal node. Leaves
// hold up to degree-1 keys. 64 keeps nodes around a cache line multiple
// without making splits expensive.
const degree = 64

const maxKeys = degree - 1
const minKeys = maxKeys / 2

// Tree is a B+ tree mapping string keys to arbitrary values.
// The zero value is not usable; call New.
type Tree struct {
	root   node
	height int
	size   int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}, height: 0}
}

// node is either *internal or *leaf.
type node interface {
	// firstKey returns the smallest key in the subtree.
	firstKey() string
}

type internal struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     []string
	children []node
}

type leaf struct {
	keys   []string
	values []any
	next   *leaf
	prev   *leaf
}

func (n *internal) firstKey() string { return n.children[0].firstKey() }
func (l *leaf) firstKey() string {
	if len(l.keys) == 0 {
		return ""
	}
	return l.keys[0]
}

// Len returns the number of keys stored in the tree.
func (t *Tree) Len() int { return t.size }

// search returns the index of the first key in keys that is >= k,
// i.e. the insertion point.
func search(keys []string, k string) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of n to descend into for key k.
func (n *internal) childIndex(k string) int {
	// keys[i] is the first key of children[i+1]; descend into the last
	// child whose separator is <= k.
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return i + 1
	}
	return i
}

// findLeaf descends to the leaf that does or would contain k.
func (t *Tree) findLeaf(k string) *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *internal:
			n = v.children[v.childIndex(k)]
		}
	}
}

// Get returns the value stored under k.
func (t *Tree) Get(k string) (any, bool) {
	l := t.findLeaf(k)
	i := search(l.keys, k)
	if i < len(l.keys) && l.keys[i] == k {
		return l.values[i], true
	}
	return nil, false
}

// Set inserts or replaces the value under k and reports whether the key
// was newly inserted.
func (t *Tree) Set(k string, v any) bool {
	inserted := t.insert(t.root, k, v)
	if inserted {
		t.size++
	}
	return inserted
}

// insert adds k/v under n, splitting the root if needed.
func (t *Tree) insert(n node, k string, v any) bool {
	newChild, sepKey, inserted := t.insertRec(n, k, v)
	if newChild != nil {
		// Root split: grow the tree by one level.
		t.root = &internal{
			keys:     []string{sepKey},
			children: []node{n, newChild},
		}
		t.height++
	}
	return inserted
}

// insertRec inserts k/v into the subtree rooted at n. If n split, it
// returns the new right sibling and the separator key.
func (t *Tree) insertRec(n node, k string, v any) (node, string, bool) {
	switch nd := n.(type) {
	case *leaf:
		i := search(nd.keys, k)
		if i < len(nd.keys) && nd.keys[i] == k {
			nd.values[i] = v
			return nil, "", false
		}
		nd.keys = append(nd.keys, "")
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = k
		nd.values = append(nd.values, nil)
		copy(nd.values[i+1:], nd.values[i:])
		nd.values[i] = v
		if len(nd.keys) > maxKeys {
			right := t.splitLeaf(nd)
			return right, right.keys[0], true
		}
		return nil, "", true

	case *internal:
		ci := nd.childIndex(k)
		newChild, sepKey, inserted := t.insertRec(nd.children[ci], k, v)
		if newChild != nil {
			nd.keys = append(nd.keys, "")
			copy(nd.keys[ci+1:], nd.keys[ci:])
			nd.keys[ci] = sepKey
			nd.children = append(nd.children, nil)
			copy(nd.children[ci+2:], nd.children[ci+1:])
			nd.children[ci+1] = newChild
			if len(nd.children) > degree {
				right, sep := t.splitInternal(nd)
				return right, sep, inserted
			}
		}
		return nil, "", inserted
	}
	panic("btree: unknown node type")
}

func (t *Tree) splitLeaf(l *leaf) *leaf {
	mid := len(l.keys) / 2
	right := &leaf{
		keys:   append([]string(nil), l.keys[mid:]...),
		values: append([]any(nil), l.values[mid:]...),
		next:   l.next,
		prev:   l,
	}
	if l.next != nil {
		l.next.prev = right
	}
	l.keys = l.keys[:mid:mid]
	l.values = l.values[:mid:mid]
	l.next = right
	return right
}

func (t *Tree) splitInternal(n *internal) (*internal, string) {
	// Children split at midC; keys[midC-1] is promoted.
	midC := len(n.children) / 2
	sep := n.keys[midC-1]
	right := &internal{
		keys:     append([]string(nil), n.keys[midC:]...),
		children: append([]node(nil), n.children[midC:]...),
	}
	n.keys = n.keys[: midC-1 : midC-1]
	n.children = n.children[:midC:midC]
	return right, sep
}

// Delete removes k and reports whether it was present.
//
// Deletion uses lazy rebalancing: underfull nodes are merged with a
// sibling only when they become empty, which keeps the implementation
// simple while preserving the search and scan invariants. Workloads in
// this system delete rarely (MVCC keeps tombstones at the storage layer),
// so the weaker occupancy bound is acceptable.
func (t *Tree) Delete(k string) bool {
	deleted := t.deleteRec(t.root, k)
	if deleted {
		t.size--
	}
	// Shrink the root when it has a single child.
	for {
		r, ok := t.root.(*internal)
		if !ok || len(r.children) != 1 {
			break
		}
		t.root = r.children[0]
		t.height--
	}
	return deleted
}

func (t *Tree) deleteRec(n node, k string) bool {
	switch nd := n.(type) {
	case *leaf:
		i := search(nd.keys, k)
		if i >= len(nd.keys) || nd.keys[i] != k {
			return false
		}
		nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
		nd.values = append(nd.values[:i], nd.values[i+1:]...)
		return true

	case *internal:
		ci := nd.childIndex(k)
		deleted := t.deleteRec(nd.children[ci], k)
		if deleted {
			t.unlinkIfEmpty(nd, ci)
		}
		return deleted
	}
	panic("btree: unknown node type")
}

// unlinkIfEmpty removes children[ci] from n if it became empty.
func (t *Tree) unlinkIfEmpty(n *internal, ci int) {
	switch c := n.children[ci].(type) {
	case *leaf:
		if len(c.keys) > 0 {
			return
		}
		if c.prev != nil {
			c.prev.next = c.next
		}
		if c.next != nil {
			c.next.prev = c.prev
		}
	case *internal:
		if len(c.children) > 0 {
			return
		}
	}
	n.children = append(n.children[:ci], n.children[ci+1:]...)
	if len(n.keys) > 0 {
		ki := ci
		if ki > 0 {
			ki--
		}
		n.keys = append(n.keys[:ki], n.keys[ki+1:]...)
	}
}

// Iter is a forward iterator over a key range.
type Iter struct {
	l    *leaf
	i    int
	hi   string // exclusive upper bound; "" means unbounded
	k    string
	v    any
	done bool
}

// Scan returns an iterator over keys in [lo, hi). An empty hi means
// "to the end". Call Next until it returns false.
func (t *Tree) Scan(lo, hi string) *Iter {
	l := t.findLeaf(lo)
	i := search(l.keys, lo)
	return &Iter{l: l, i: i, hi: hi}
}

// ScanAll returns an iterator over the whole tree.
func (t *Tree) ScanAll() *Iter { return t.Scan("", "") }

// Next advances the iterator and reports whether a pair is available
// via Key/Value.
func (it *Iter) Next() bool {
	if it.done {
		return false
	}
	for it.l != nil && it.i >= len(it.l.keys) {
		it.l = it.l.next
		it.i = 0
	}
	if it.l == nil {
		it.done = true
		return false
	}
	k := it.l.keys[it.i]
	if it.hi != "" && k >= it.hi {
		it.done = true
		return false
	}
	it.k, it.v = k, it.l.values[it.i]
	it.i++
	return true
}

// Key returns the key at the current position.
func (it *Iter) Key() string { return it.k }

// Value returns the value at the current position.
func (it *Iter) Value() any { return it.v }

// Min returns the smallest key, if any.
func (t *Tree) Min() (string, any, bool) {
	it := t.ScanAll()
	if it.Next() {
		return it.Key(), it.Value(), true
	}
	return "", nil, false
}

// Height returns the number of internal levels above the leaves.
func (t *Tree) Height() int { return t.height }

// check validates structural invariants; used by tests.
func (t *Tree) check() error {
	n := 0
	it := t.ScanAll()
	prev := ""
	first := true
	for it.Next() {
		if !first && it.Key() <= prev {
			return fmt.Errorf("btree: keys out of order: %q after %q", it.Key(), prev)
		}
		prev = it.Key()
		first = false
		n++
	}
	if n != t.size {
		return fmt.Errorf("btree: size %d but iterated %d keys", t.size, n)
	}
	return t.checkNode(t.root, t.height)
}

func (t *Tree) checkNode(n node, depth int) error {
	switch nd := n.(type) {
	case *leaf:
		if depth != 0 {
			return fmt.Errorf("btree: leaf at depth %d", depth)
		}
	case *internal:
		if len(nd.keys) != len(nd.children)-1 {
			return fmt.Errorf("btree: internal with %d keys, %d children", len(nd.keys), len(nd.children))
		}
		for _, c := range nd.children {
			if err := t.checkNode(c, depth-1); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the tree structure; for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(n node, depth int)
	rec = func(n node, depth int) {
		pad := strings.Repeat("  ", depth)
		switch nd := n.(type) {
		case *leaf:
			fmt.Fprintf(&b, "%sleaf %v\n", pad, nd.keys)
		case *internal:
			fmt.Fprintf(&b, "%sinternal %v\n", pad, nd.keys)
			for _, c := range nd.children {
				rec(c, depth+1)
			}
		}
	}
	rec(t.root, 0)
	return b.String()
}
