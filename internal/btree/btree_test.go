package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get("a"); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete("a") {
		t.Fatal("Delete on empty tree returned true")
	}
	if it := tr.ScanAll(); it.Next() {
		t.Fatal("ScanAll on empty tree yielded a key")
	}
}

func TestSetGet(t *testing.T) {
	tr := New()
	if !tr.Set("b", 2) {
		t.Fatal("first Set reported update, want insert")
	}
	if tr.Set("b", 3) {
		t.Fatal("second Set reported insert, want update")
	}
	v, ok := tr.Get("b")
	if !ok || v.(int) != 3 {
		t.Fatalf("Get(b) = %v, %v; want 3, true", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertManySorted(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Set(fmt.Sprintf("%08d", i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(fmt.Sprintf("%08d", i))
		if !ok || v.(int) != i {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	if tr.Height() == 0 {
		t.Fatal("tree with 5000 keys did not grow internal levels")
	}
}

func TestInsertManyRandomOrder(t *testing.T) {
	tr := New()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Set(fmt.Sprintf("%08d", i), i)
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	it := tr.ScanAll()
	want := 0
	for it.Next() {
		if it.Value().(int) != want {
			t.Fatalf("scan out of order: got value %v at position %d", it.Value(), want)
		}
		want++
	}
	if want != n {
		t.Fatalf("scanned %d keys, want %d", want, n)
	}
}

func TestScanRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set(fmt.Sprintf("%03d", i), i)
	}
	var got []int
	it := tr.Scan("010", "020")
	for it.Next() {
		got = append(got, it.Value().(int))
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("Scan[010,020) = %v", got)
	}
	// Range past the end.
	it = tr.Scan("099", "")
	n := 0
	for it.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("Scan[099,∞) yielded %d keys, want 1", n)
	}
	// Empty range.
	if it := tr.Scan("200", ""); it.Next() {
		t.Fatal("Scan past max key yielded a key")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Set(fmt.Sprintf("%08d", i), i)
	}
	// Delete every other key.
	for i := 0; i < n; i += 2 {
		if !tr.Delete(fmt.Sprintf("%08d", i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(fmt.Sprintf("%08d", i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Set(fmt.Sprintf("%08d", i), i)
	}
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if !tr.Delete(fmt.Sprintf("%08d", i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all, want 0", tr.Len())
	}
	if tr.Height() != 0 {
		t.Fatalf("Height = %d after deleting all, want 0", tr.Height())
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	// Tree must remain usable.
	tr.Set("x", 1)
	if v, ok := tr.Get("x"); !ok || v.(int) != 1 {
		t.Fatal("tree unusable after full drain")
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New()
	tr.Set("a", 1)
	if tr.Delete("b") {
		t.Fatal("Delete of missing key returned true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestMin(t *testing.T) {
	tr := New()
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	tr.Set("m", 1)
	tr.Set("a", 2)
	tr.Set("z", 3)
	k, v, ok := tr.Min()
	if !ok || k != "a" || v.(int) != 2 {
		t.Fatalf("Min = %q, %v, %v", k, v, ok)
	}
}

// TestQuickAgainstMap drives the tree with random operation sequences and
// compares every observable behaviour against a plain map + sort oracle.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New()
		oracle := map[string]int{}
		for i, op := range ops {
			key := fmt.Sprintf("%04d", op%512)
			switch op % 3 {
			case 0, 1:
				tr.Set(key, i)
				oracle[key] = i
			case 2:
				delTree := tr.Delete(key)
				_, inOracle := oracle[key]
				if delTree != inOracle {
					return false
				}
				delete(oracle, key)
			}
		}
		if tr.Len() != len(oracle) {
			return false
		}
		// Full scan must equal sorted oracle keys.
		var want []string
		for k := range oracle {
			want = append(want, k)
		}
		sort.Strings(want)
		it := tr.ScanAll()
		for _, k := range want {
			if !it.Next() || it.Key() != k || it.Value().(int) != oracle[k] {
				return false
			}
		}
		if it.Next() {
			return false
		}
		return tr.check() == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeScan checks that arbitrary range scans match the oracle.
func TestQuickRangeScan(t *testing.T) {
	f := func(keys []uint16, loRaw, hiRaw uint16) bool {
		tr := New()
		oracle := map[string]bool{}
		for _, k := range keys {
			s := fmt.Sprintf("%05d", k)
			tr.Set(s, nil)
			oracle[s] = true
		}
		lo := fmt.Sprintf("%05d", loRaw)
		hi := fmt.Sprintf("%05d", hiRaw)
		if hi < lo {
			lo, hi = hi, lo
		}
		var want []string
		for k := range oracle {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		it := tr.Scan(lo, hi)
		for _, k := range want {
			if !it.Next() || it.Key() != k {
				return false
			}
		}
		return !it.Next()
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Set(fmt.Sprintf("%012d", i), i)
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Set(fmt.Sprintf("%012d", i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("%012d", i%n))
	}
}
