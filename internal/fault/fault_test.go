package fault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { defer c.Close(); _, _ = io.Copy(c, c) }()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestCutSeversAndBlocksDials(t *testing.T) {
	ln := echoServer(t)
	in := New(1, Config{})
	dial := in.Dialer("link", nil)

	c, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}

	in.Cut("link")
	// The live connection is severed: reads fail promptly.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read on cut link succeeded")
	}
	// New dials fail with ErrCut.
	if _, err := dial("tcp", ln.Addr().String()); !errors.Is(err, ErrCut) {
		t.Fatalf("dial on cut link: got %v, want ErrCut", err)
	}
	// Other labels are unaffected.
	other := in.Dialer("other", nil)
	oc, err := other("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial on healthy label: %v", err)
	}
	oc.Close()

	in.Restore("link")
	c2, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after restore: %v", err)
	}
	c2.Close()
}

func TestDeterministicDecisionSequence(t *testing.T) {
	cfg := Config{DialFailProb: 0.3, DropProb: 0.2, DupProb: 0.1, HalfCloseProb: 0.1, DelayProb: 0.5, MaxDelay: time.Millisecond}
	roll := func(seed int64) []action {
		in := New(seed, cfg)
		var acts []action
		for i := 0; i < 200; i++ {
			a, _ := in.decide("l", i%2 == 0)
			acts = append(acts, a)
		}
		return acts
	}
	a, b := roll(42), roll(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
	c := roll(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func TestSetActiveSuppressesProbabilisticFaults(t *testing.T) {
	ln := echoServer(t)
	in := New(7, Config{DialFailProb: 1.0, DropProb: 1.0})
	in.SetActive(false)
	dial := in.Dialer("link", nil)
	c, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial with faults inactive: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write with faults inactive: %v", err)
	}
	// Reactivating brings the certain faults back.
	in.SetActive(true)
	if _, err := dial("tcp", ln.Addr().String()); err == nil {
		t.Fatal("dial with DialFailProb=1 succeeded")
	}
}

func TestDropTearsDownConnection(t *testing.T) {
	ln := echoServer(t)
	in := New(3, Config{DropProb: 1.0})
	dial := in.Dialer("link", nil)
	c, err := dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write with DropProb=1: got %v, want ErrInjected", err)
	}
}
