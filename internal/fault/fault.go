// Package fault is a seeded, deterministic network-fault injector for
// the wire layer. It wraps dialers and the connections they produce so
// every link in a deployment — gateway client, certifier subscription
// stream, replica peer pool — can be independently delayed, dropped,
// duplicated, half-closed, or partitioned, all driven by one
// *rand.Rand so a failing run replays from its seed.
//
// Faults come in two flavors:
//
//   - probabilistic per-operation faults (Config): each Read/Write on
//     an injected connection rolls against the configured
//     probabilities;
//   - scheduled partitions (Cut/Restore): a label — one logical link,
//     e.g. "cert/2" — is severed outright; existing connections are
//     torn down and new dials fail until Restore.
//
// Determinism caveat: the injector's random decisions replay exactly
// for a given seed, but the goroutine interleaving they land on is the
// scheduler's. A seed reproduces the same fault schedule and, in
// practice, the same class of failure — not a bit-identical execution.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Dialer matches the wire layer's dialer contract.
type Dialer func(network, addr string) (net.Conn, error)

// Injected fault errors. Cut and injected failures are ordinary
// network errors as far as the wire layer is concerned; these
// sentinels exist so tests can tell deliberate faults from real ones.
var (
	// ErrInjected is returned for probabilistic dial failures and
	// connection drops.
	ErrInjected = errors.New("fault: injected failure")
	// ErrCut is returned while a label is partitioned.
	ErrCut = errors.New("fault: link cut")
)

// Config sets the per-operation fault probabilities. All fields
// default to zero (no probabilistic faults); partitions via
// Cut/Restore work regardless.
type Config struct {
	// DialFailProb is the probability that a dial fails outright.
	DialFailProb float64
	// DelayProb is the probability that one Read/Write is delayed by a
	// uniform duration in (0, MaxDelay].
	DelayProb float64
	MaxDelay  time.Duration
	// DropProb is the probability that one Read/Write instead tears the
	// connection down (the peer sees a reset mid-exchange).
	DropProb float64
	// DupProb is the probability that a Write's bytes are sent twice —
	// duplicated frames, which corrupt a gob stream and force the
	// endpoints through their reconnect paths.
	DupProb float64
	// HalfCloseProb is the probability that an operation first shuts
	// down the write side of the connection (CloseWrite), leaving a
	// half-open link.
	HalfCloseProb float64
}

// Injector owns the seeded randomness and the registry of live
// injected connections. All methods are safe for concurrent use; the
// shared rand.Rand is serialized under the injector's mutex, so the
// decision sequence is deterministic per seed even if its assignment
// to operations depends on scheduling.
type Injector struct {
	mu sync.Mutex
	// rng is the seeded decision stream.
	// guarded by mu
	rng *rand.Rand
	cfg Config
	// active toggles probabilistic faults.
	// guarded by mu
	active bool
	// cut holds the currently partitioned labels.
	// guarded by mu
	cut map[string]bool
	// conns is the registry of live injected connections.
	// guarded by mu
	conns map[*faultConn]struct{}
}

// New returns an injector with probabilistic faults active.
func New(seed int64, cfg Config) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		cfg:    cfg,
		active: true,
		cut:    make(map[string]bool),
		conns:  make(map[*faultConn]struct{}),
	}
}

// SetActive toggles probabilistic faults (delay/drop/dup/half-close
// and dial failures). Partitions from Cut remain in force regardless —
// they are explicit schedule, not noise. Deactivate around load and
// convergence phases to keep them clean.
func (in *Injector) SetActive(v bool) {
	in.mu.Lock()
	in.active = v
	in.mu.Unlock()
}

// Dialer wraps base (nil means net.Dial) so connections dialed through
// it are subject to injection under the given label.
func (in *Injector) Dialer(label string, base Dialer) Dialer {
	if base == nil {
		base = net.Dial
	}
	return func(network, addr string) (net.Conn, error) {
		in.mu.Lock()
		cut := in.cut[label]
		fail := !cut && in.active && in.cfg.DialFailProb > 0 && in.rng.Float64() < in.cfg.DialFailProb
		in.mu.Unlock()
		if cut {
			return nil, fmt.Errorf("%w: %s", ErrCut, label)
		}
		if fail {
			return nil, fmt.Errorf("%w: dial %s", ErrInjected, label)
		}
		c, err := base(network, addr)
		if err != nil {
			return nil, err
		}
		fc := &faultConn{Conn: c, in: in, label: label}
		in.mu.Lock()
		// The label may have been cut while the dial was in flight.
		if in.cut[label] {
			in.mu.Unlock()
			c.Close()
			return nil, fmt.Errorf("%w: %s", ErrCut, label)
		}
		in.conns[fc] = struct{}{}
		in.mu.Unlock()
		return fc, nil
	}
}

// Cut partitions the given labels: live connections are severed and
// subsequent dials fail until Restore.
func (in *Injector) Cut(labels ...string) {
	in.mu.Lock()
	for _, l := range labels {
		in.cut[l] = true
	}
	var victims []*faultConn
	// No rng draws here, and severing a set of connections commutes;
	// only the decision streams must replay bit-identically.
	// det:order-insensitive
	for fc := range in.conns {
		if in.cut[fc.label] {
			victims = append(victims, fc)
		}
	}
	in.mu.Unlock()
	for _, fc := range victims {
		fc.Close()
	}
}

// Restore heals the given labels.
func (in *Injector) Restore(labels ...string) {
	in.mu.Lock()
	for _, l := range labels {
		delete(in.cut, l)
	}
	in.mu.Unlock()
}

// RestoreAll heals every partition.
func (in *Injector) RestoreAll() {
	in.mu.Lock()
	in.cut = make(map[string]bool)
	in.mu.Unlock()
}

// Agitate runs a partition schedule in the calling goroutine until
// stop closes: pick a label, cut it for a random period in (0,
// maxDown], restore it, idle for a random period in (0, maxGap],
// repeat. The schedule's randomness is forked from the injector's
// seed, so it is deterministic but independent of the per-operation
// fault stream.
func (in *Injector) Agitate(stop <-chan struct{}, labels []string, maxDown, maxGap time.Duration) {
	if len(labels) == 0 || maxDown <= 0 || maxGap <= 0 {
		return
	}
	in.mu.Lock()
	rng := rand.New(rand.NewSource(in.rng.Int63()))
	in.mu.Unlock()
	pause := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-stop:
			return false
		case <-t.C:
			return true
		}
	}
	for {
		label := labels[rng.Intn(len(labels))]
		down := time.Duration(rng.Int63n(int64(maxDown))) + 1
		gap := time.Duration(rng.Int63n(int64(maxGap))) + 1
		in.Cut(label)
		ok := pause(down)
		in.Restore(label)
		if !ok || !pause(gap) {
			return
		}
	}
}

func (in *Injector) forget(fc *faultConn) {
	in.mu.Lock()
	delete(in.conns, fc)
	in.mu.Unlock()
}

type action int

const (
	actPass action = iota
	actDrop
	actDup
	actHalfClose
)

// decide rolls the fate of one I/O operation.
func (in *Injector) decide(label string, write bool) (action, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cut[label] {
		return actDrop, 0
	}
	if !in.active {
		return actPass, 0
	}
	var delay time.Duration
	if in.cfg.DelayProb > 0 && in.cfg.MaxDelay > 0 && in.rng.Float64() < in.cfg.DelayProb {
		delay = time.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay))) + 1
	}
	switch {
	case in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb:
		return actDrop, delay
	case write && in.cfg.DupProb > 0 && in.rng.Float64() < in.cfg.DupProb:
		return actDup, delay
	case in.cfg.HalfCloseProb > 0 && in.rng.Float64() < in.cfg.HalfCloseProb:
		return actHalfClose, delay
	}
	return actPass, delay
}

// faultConn applies the injector's decisions to one connection.
type faultConn struct {
	net.Conn
	in    *Injector
	label string
	once  sync.Once
}

func (c *faultConn) Read(p []byte) (int, error) {
	act, delay := c.in.decide(c.label, false)
	if delay > 0 {
		time.Sleep(delay)
	}
	switch act {
	case actDrop:
		c.Close()
		return 0, fmt.Errorf("%w: read on %s", ErrInjected, c.label)
	case actHalfClose:
		halfClose(c.Conn)
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	act, delay := c.in.decide(c.label, true)
	if delay > 0 {
		time.Sleep(delay)
	}
	switch act {
	case actDrop:
		c.Close()
		return 0, fmt.Errorf("%w: write on %s", ErrInjected, c.label)
	case actDup:
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		return c.Conn.Write(p)
	case actHalfClose:
		halfClose(c.Conn)
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	c.once.Do(func() { c.in.forget(c) })
	return c.Conn.Close()
}

func halfClose(c net.Conn) {
	if hc, ok := c.(interface{ CloseWrite() error }); ok {
		_ = hc.CloseWrite()
	}
}
