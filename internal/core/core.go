// Package core distills the paper's contribution: the four consistency
// configurations and the rule that decides, for each new transaction,
// the minimum database version its replica must reach before the
// transaction may start (the "synchronization start delay" bound).
//
// The load balancer owns one Tracker. Replicas report the versions
// their commits produce; the tracker folds them into
//
//   - Vsystem  — the version of the latest commit acknowledged to any
//     client (coarse-grained strong consistency synchronizes on this);
//   - Vt       — per-table versions: the latest commit that wrote each
//     table (fine-grained strong consistency synchronizes on the max
//     over the transaction's table-set);
//   - Vsession — per-session versions: the latest commit acknowledged
//     to each client session (session consistency synchronizes on
//     this).
//
// Eager strong consistency needs no start version at all (every
// replica already committed everything acknowledged), paying instead
// with the global commit delay at the end of update transactions.
package core

import (
	"fmt"
	"sync"
)

// Mode selects the consistency configuration (§III and §IV).
type Mode int

const (
	// Eager — eager strong consistency (ESC): commits are acknowledged
	// only after every replica applied them; transactions start
	// immediately.
	Eager Mode = iota
	// Coarse — lazy coarse-grained strong consistency (CSC):
	// transaction start is delayed until the replica has applied every
	// writeset committed system-wide (Vlocal ≥ Vsystem).
	Coarse
	// Fine — lazy fine-grained strong consistency (FSC): transaction
	// start is delayed until the tables in its table-set are current
	// (Vlocal ≥ max{Vt}).
	Fine
	// Session — session consistency (SC), the weaker baseline: start is
	// delayed until the session's own last commit is visible.
	Session
)

// String returns the configuration label used in EXPERIMENTS.md.
func (m Mode) String() string {
	switch m {
	case Eager:
		return "ESC"
	case Coarse:
		return "CSC"
	case Fine:
		return "FSC"
	case Session:
		return "SC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Strong reports whether the mode guarantees strong consistency
// (Definition 1). Session consistency does not.
func (m Mode) Strong() bool { return m != Session }

// ParseMode maps a label (as accepted by the CLI tools) to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "ESC", "esc", "eager":
		return Eager, nil
	case "CSC", "csc", "coarse":
		return Coarse, nil
	case "FSC", "fsc", "fine":
		return Fine, nil
	case "SC", "sc", "session":
		return Session, nil
	default:
		return 0, fmt.Errorf("core: unknown consistency mode %q (want ESC, CSC, FSC, or SC)", s)
	}
}

// Tracker is the load balancer's version accounting: soft state,
// rebuilt from replica responses after a failover.
type Tracker struct {
	mu       sync.Mutex
	vsystem  uint64
	tables   map[string]uint64
	sessions map[string]uint64
	// sessTables holds per-session *per-table* floors: the newest write
	// to each table the session can have observed, as reported by the
	// replicas with each commit. The fine-grained mode synchronizes on
	// these instead of the scalar session floor — a session that read a
	// hot table at a fresh snapshot must not regress on THAT table, but
	// owes nothing to a cold table it merely shared a snapshot with.
	sessTables map[string]map[string]uint64
}

// NewTracker returns a tracker at version 0 with no known tables.
func NewTracker() *Tracker {
	return &Tracker{
		tables:     make(map[string]uint64),
		sessions:   make(map[string]uint64),
		sessTables: make(map[string]map[string]uint64),
	}
}

// ObserveCommit folds one acknowledged commit into the tracker:
// version is the certifier-assigned commit version, writtenTables the
// tables in the transaction's writeset, session the committing
// client's session ID ("" for none).
//
// Versions only move forward; replica responses may arrive out of
// order.
func (t *Tracker) ObserveCommit(version uint64, writtenTables []string, session string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if version > t.vsystem {
		t.vsystem = version
	}
	for _, tab := range writtenTables {
		if version > t.tables[tab] {
			t.tables[tab] = version
		}
	}
	if session != "" && version > t.sessions[session] {
		t.sessions[session] = version
	}
}

// ObserveReadOnly records a read-only completion for a session: the
// session must continue to see at least the snapshot it just read
// (monotonic reads within the session).
func (t *Tracker) ObserveReadOnly(snapshot uint64, session string) {
	if session == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if snapshot > t.sessions[session] {
		t.sessions[session] = snapshot
	}
}

// ObserveTableVersions folds a commit response's per-table observation
// bounds into the session's fine-grained floors (see Tracker.sessTables
// and MinStartVersion's Fine case).
func (t *Tracker) ObserveTableVersions(session string, tableVersions map[string]uint64) {
	if session == "" || len(tableVersions) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	floors := t.sessTables[session]
	if floors == nil {
		floors = make(map[string]uint64, len(tableVersions))
		t.sessTables[session] = floors
	}
	for tab, v := range tableVersions {
		if v > floors[tab] {
			floors[tab] = v
		}
	}
}

// VSystem returns the current system version.
func (t *Tracker) VSystem() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.vsystem
}

// TableVersion returns Vt for one table.
func (t *Tracker) TableVersion(table string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tables[table]
}

// SessionVersion returns the session's last acknowledged version.
func (t *Tracker) SessionVersion(session string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions[session]
}

// MinStartVersion returns the version the executing replica must reach
// before the transaction may start, per Theorems 1 and 2:
//
//	Eager   → 0            (replicas are always current for acked txns)
//	Coarse  → max(Vsystem, Vsession)
//	Fine    → max{max(Vt, Vsession,t) : t ∈ tableSet}
//	Session → Vsession
//
// For Fine, a table never written since system start has Vt = 0, so a
// transaction over read-only tables starts immediately — the behaviour
// §III-C highlights.
//
// Coarse takes the maximum with the scalar session floor so it is
// never weaker than session consistency: a session that read a
// snapshot *fresher* than Vsystem (its replica had applied a
// not-yet-acknowledged commit) must not regress on its next
// transaction. Strong consistency alone does not forbid that — the
// fresher commit was unacknowledged — but monotonic session reads do,
// and SC provides them, so CSC must too.
//
// Fine enforces the same guarantee at table granularity (Vsession,t:
// the newest write to table t the session can have observed, fed back
// by the replicas with each commit). A scalar floor would be wrong
// here, not merely loose: every read-only commit would teach the
// session its snapshot version, and the next transaction — even one
// over tables nobody ever writes — would wait out the full replication
// lag to reach a version whose extra content it cannot observe. That
// erases exactly the benefit §III-C claims for skewed workloads. The
// per-table floors keep everything a client can actually see
// monotonic: reads of a table never run below any write to it the
// session has observed, and a session's own writes (floored at their
// commit versions) stay visible.
func (t *Tracker) MinStartVersion(mode Mode, tableSet []string, session string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	floor := t.sessions[session]
	switch mode {
	case Eager:
		return 0
	case Coarse:
		return maxU64(t.vsystem, floor)
	case Fine:
		var v uint64
		sess := t.sessTables[session]
		for _, tab := range tableSet {
			if tv := t.tables[tab]; tv > v {
				v = tv
			}
			if sv := sess[tab]; sv > v {
				v = sv
			}
		}
		return v
	case Session:
		return floor
	default:
		// Unknown modes get the strongest (coarse) treatment rather
		// than silently weakening consistency.
		return maxU64(t.vsystem, floor)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ForgetSession drops a session's accounting (client disconnect).
func (t *Tracker) ForgetSession(session string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.sessions, session)
	delete(t.sessTables, session)
}

// Snapshot returns a copy of all table versions, for inspection.
func (t *Tracker) Snapshot() (vsystem uint64, tables map[string]uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tables = make(map[string]uint64, len(t.tables))
	for k, v := range t.tables {
		tables[k] = v
	}
	return t.vsystem, tables
}

// TableSetRegistry maps transaction identifiers to their statically
// extracted table-sets (§IV-B: the load balancer retrieves this
// information once and keeps it in a dictionary; clients tag requests
// with the transaction identifier).
type TableSetRegistry struct {
	mu   sync.RWMutex
	sets map[string][]string
}

// NewTableSetRegistry returns an empty registry.
func NewTableSetRegistry() *TableSetRegistry {
	return &TableSetRegistry{sets: make(map[string][]string)}
}

// Register records the table-set for a transaction identifier.
func (r *TableSetRegistry) Register(txnName string, tables []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sets[txnName] = append([]string(nil), tables...)
}

// Lookup returns the registered table-set and whether it is known.
func (r *TableSetRegistry) Lookup(txnName string) ([]string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ts, ok := r.sets[txnName]
	return ts, ok
}

// Names returns all registered transaction identifiers.
func (r *TableSetRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sets))
	for k := range r.sets {
		out = append(out, k)
	}
	return out
}
