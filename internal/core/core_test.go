package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{Eager: "ESC", Coarse: "CSC", Fine: "FSC", Session: "SC"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
		back, err := ParseMode(want)
		if err != nil || back != m {
			t.Errorf("ParseMode(%q) = %v, %v", want, back, err)
		}
	}
	if !Eager.Strong() || !Coarse.Strong() || !Fine.Strong() {
		t.Error("strong modes misreported")
	}
	if Session.Strong() {
		t.Error("session consistency reported as strong")
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus mode")
	}
}

// TestTableI reproduces Table I of the paper exactly: six update
// transactions over tables A, B, C and the resulting database and
// table versions.
func TestTableI(t *testing.T) {
	tr := NewTracker()
	steps := []struct {
		tables              []string
		wantSys             uint64
		wantA, wantB, wantC uint64
	}{
		{[]string{"a"}, 1, 1, 0, 0},      // T1 updates A
		{[]string{"b", "c"}, 2, 1, 2, 2}, // T2 updates B,C
		{[]string{"b"}, 3, 1, 3, 2},      // T3 updates B
		{[]string{"c"}, 4, 1, 3, 4},      // T4 updates C
		{[]string{"b", "c"}, 5, 1, 5, 5}, // T5 updates B,C
	}
	for i, st := range steps {
		tr.ObserveCommit(uint64(i+1), st.tables, "")
		if got := tr.VSystem(); got != st.wantSys {
			t.Fatalf("after T%d: Vsystem = %d, want %d", i+1, got, st.wantSys)
		}
		if got := tr.TableVersion("a"); got != st.wantA {
			t.Fatalf("after T%d: VA = %d, want %d", i+1, got, st.wantA)
		}
		if got := tr.TableVersion("b"); got != st.wantB {
			t.Fatalf("after T%d: VB = %d, want %d", i+1, got, st.wantB)
		}
		if got := tr.TableVersion("c"); got != st.wantC {
			t.Fatalf("after T%d: VC = %d, want %d", i+1, got, st.wantC)
		}
	}

	// T6 reads and writes table A only. The paper's point: coarse
	// requires Vlocal = 5, fine requires only Vlocal = 1.
	if got := tr.MinStartVersion(Coarse, []string{"a"}, ""); got != 5 {
		t.Fatalf("CSC start version = %d, want 5", got)
	}
	if got := tr.MinStartVersion(Fine, []string{"a"}, ""); got != 1 {
		t.Fatalf("FSC start version = %d, want 1", got)
	}
	if got := tr.MinStartVersion(Eager, []string{"a"}, ""); got != 0 {
		t.Fatalf("ESC start version = %d, want 0", got)
	}
}

func TestFineReadOnlyTablesStartImmediately(t *testing.T) {
	tr := NewTracker()
	tr.ObserveCommit(1, []string{"orders"}, "")
	tr.ObserveCommit(2, []string{"orders"}, "")
	// "country" has never been written: fine-grained needs version 0.
	if got := tr.MinStartVersion(Fine, []string{"country"}, ""); got != 0 {
		t.Fatalf("FSC on read-only table = %d, want 0", got)
	}
	if got := tr.MinStartVersion(Fine, []string{"country", "orders"}, ""); got != 2 {
		t.Fatalf("FSC on mixed set = %d, want 2", got)
	}
}

func TestSessionTracking(t *testing.T) {
	tr := NewTracker()
	tr.ObserveCommit(3, []string{"t"}, "alice")
	tr.ObserveCommit(7, []string{"t"}, "bob")
	if got := tr.MinStartVersion(Session, nil, "alice"); got != 3 {
		t.Fatalf("alice session version = %d, want 3", got)
	}
	if got := tr.MinStartVersion(Session, nil, "bob"); got != 7 {
		t.Fatalf("bob session version = %d, want 7", got)
	}
	if got := tr.MinStartVersion(Session, nil, "carol"); got != 0 {
		t.Fatalf("new session version = %d, want 0", got)
	}
	// Coarse sees every session's updates.
	if got := tr.MinStartVersion(Coarse, nil, "alice"); got != 7 {
		t.Fatalf("coarse after bob = %d, want 7", got)
	}
	tr.ForgetSession("bob")
	if got := tr.SessionVersion("bob"); got != 0 {
		t.Fatalf("forgotten session = %d", got)
	}
}

func TestObserveReadOnlyAdvancesSessionMonotonically(t *testing.T) {
	tr := NewTracker()
	tr.ObserveCommit(5, []string{"t"}, "s")
	tr.ObserveReadOnly(9, "s") // read a snapshot at 9 on a fresh replica
	if got := tr.SessionVersion("s"); got != 9 {
		t.Fatalf("session after read = %d, want 9", got)
	}
	tr.ObserveReadOnly(2, "s") // older read must not regress
	if got := tr.SessionVersion("s"); got != 9 {
		t.Fatalf("session regressed to %d", got)
	}
	tr.ObserveReadOnly(1, "") // no session: no-op, must not panic
}

// TestFinePerTableSessionFloor pins the fine-grained session rule: the
// session floor is per table, so a read-only commit at a fresh
// snapshot must not make the session's next transaction on a cold
// table wait — the §III-C benefit the scalar floor would erase — while
// tables the session actually observed writes to stay floored.
func TestFinePerTableSessionFloor(t *testing.T) {
	tr := NewTracker()
	tr.ObserveCommit(100, []string{"hot"}, "s")
	tr.ObserveTableVersions("s", map[string]uint64{"hot": 100})
	// A read on a busy replica observed snapshot 500; the scalar floor
	// advances (coarse/session semantics) but must not leak into fine.
	tr.ObserveReadOnly(500, "s")
	if got := tr.MinStartVersion(Fine, []string{"cold"}, "s"); got != 0 {
		t.Fatalf("fine(cold) = %d, want 0: scalar session floor leaked into the per-table rule", got)
	}
	if got := tr.MinStartVersion(Fine, []string{"hot"}, "s"); got != 100 {
		t.Fatalf("fine(hot) = %d, want 100", got)
	}
	if got := tr.MinStartVersion(Coarse, nil, "s"); got != 500 {
		t.Fatalf("coarse = %d, want 500 (scalar floor intact)", got)
	}
	// The replica reported the newest write to "cold" this session
	// could have observed: subsequent reads of it must not regress.
	tr.ObserveTableVersions("s", map[string]uint64{"cold": 42})
	if got := tr.MinStartVersion(Fine, []string{"cold"}, "s"); got != 42 {
		t.Fatalf("fine(cold) after observation = %d, want 42", got)
	}
	// Another session owes nothing to s's observations.
	if got := tr.MinStartVersion(Fine, []string{"cold"}, "other"); got != 0 {
		t.Fatalf("fine(cold) for fresh session = %d, want 0", got)
	}
	tr.ForgetSession("s")
	if got := tr.MinStartVersion(Fine, []string{"cold"}, "s"); got != 0 {
		t.Fatalf("fine(cold) after ForgetSession = %d, want 0", got)
	}
}

func TestOutOfOrderObservations(t *testing.T) {
	tr := NewTracker()
	tr.ObserveCommit(5, []string{"x"}, "s")
	tr.ObserveCommit(3, []string{"x", "y"}, "s")
	if tr.VSystem() != 5 {
		t.Fatalf("Vsystem = %d, want 5", tr.VSystem())
	}
	if tr.TableVersion("x") != 5 {
		t.Fatalf("Vx = %d, want 5", tr.TableVersion("x"))
	}
	if tr.TableVersion("y") != 3 {
		t.Fatalf("Vy = %d, want 3", tr.TableVersion("y"))
	}
	if tr.SessionVersion("s") != 5 {
		t.Fatalf("Vsession = %d, want 5", tr.SessionVersion("s"))
	}
}

func TestRegistry(t *testing.T) {
	r := NewTableSetRegistry()
	r.Register("getBestSellers", []string{"order_line", "item", "orders"})
	ts, ok := r.Lookup("getBestSellers")
	if !ok || len(ts) != 3 {
		t.Fatalf("lookup = %v, %v", ts, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("lookup of unregistered name succeeded")
	}
	// The registry must copy: callers mutating their slice must not
	// affect stored sets.
	src := []string{"a"}
	r.Register("t", src)
	src[0] = "mutated"
	ts, _ = r.Lookup("t")
	if ts[0] != "a" {
		t.Fatal("registry shares storage with caller")
	}
	if len(r.Names()) != 2 {
		t.Fatalf("names = %v", r.Names())
	}
}

// TestQuickInvariants checks the ordering invariants of the tracker
// under random observation sequences:
//
//  1. Vsystem = max over all observed versions.
//  2. Vt ≤ Vsystem for every table.
//  3. Fine start version ≤ Coarse start version (Theorem 2's benefit).
//  4. Session start version ≤ Coarse start version.
//  5. MinStartVersion(Fine, S) = max over tables in S of
//     max(Vt, the session's per-table floor).
func TestQuickInvariants(t *testing.T) {
	type obs struct {
		Version uint64
		Tables  []uint8
		Session uint8
	}
	f := func(observations []obs, probe []uint8, sess uint8) bool {
		tr := NewTracker()
		var maxV uint64
		// Mirror of the per-session per-table floors the tracker should
		// accumulate from the commit responses.
		floors := map[string]map[string]uint64{}
		for _, o := range observations {
			v := o.Version % 1000
			var tabs []string
			tv := map[string]uint64{}
			for _, tb := range o.Tables {
				tab := string(rune('a' + tb%6))
				tabs = append(tabs, tab)
				tv[tab] = v
			}
			session := string(rune('A' + o.Session%4))
			tr.ObserveCommit(v, tabs, session)
			tr.ObserveTableVersions(session, tv)
			m := floors[session]
			if m == nil {
				m = map[string]uint64{}
				floors[session] = m
			}
			for tab, fv := range tv {
				if fv > m[tab] {
					m[tab] = fv
				}
			}
			if v > maxV {
				maxV = v
			}
		}
		if tr.VSystem() != maxV {
			return false
		}
		var probeSet []string
		for _, tb := range probe {
			probeSet = append(probeSet, string(rune('a'+tb%6)))
		}
		session := string(rune('A' + sess%4))
		coarse := tr.MinStartVersion(Coarse, probeSet, session)
		fine := tr.MinStartVersion(Fine, probeSet, session)
		sessionV := tr.MinStartVersion(Session, probeSet, session)
		if fine > coarse || sessionV > coarse {
			return false
		}
		var wantFine uint64
		for _, tb := range probeSet {
			if v := tr.TableVersion(tb); v > wantFine {
				wantFine = v
			}
			if v := floors[session][tb]; v > wantFine {
				wantFine = v
			}
			if tr.TableVersion(tb) > tr.VSystem() {
				return false
			}
		}
		return fine == wantFine
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
