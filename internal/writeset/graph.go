package writeset

// ConflictGraph is the write-write dependency DAG over an ordered run
// of writesets: there is an edge i → j (i < j) whenever wss[i] and
// wss[j] modify a common record, meaning j's install must wait for
// i's. Non-adjacent writesets with no path between them are free to
// apply concurrently — snapshot readers cannot distinguish any
// interleaving of non-conflicting installs once versions are published
// in order, which is exactly the property C5-style parallel refresh
// appliers exploit.
//
// Only the latest prior writer of each record is recorded as a
// predecessor: conflict edges compose transitively along a record's
// version chain, so the edge to an older writer is implied.
type ConflictGraph struct {
	// Succs[i] lists the later writesets that must wait for i, in
	// ascending order. Nil when Edges is zero.
	Succs [][]int
	// Deps[i] counts i's distinct direct predecessors (its in-degree).
	// Nil when Edges is zero.
	Deps []int
	// Edges counts the direct dependency edges. Zero means every
	// writeset in the run is pairwise record-disjoint; Succs and Deps
	// are not allocated for such runs — the builder sits on the
	// refresh-apply hot path, and the common no-conflict batch should
	// cost one map and nothing else.
	Edges int
	// CriticalPath is the length of the longest dependency chain — the
	// lower bound, in writesets, on the schedule's serial fraction. A
	// value equal to len(wss) means the run is one pure chain and
	// parallel scheduling cannot help.
	CriticalPath int
}

// tableWriters tracks, for one table, each record key's most recent
// writer index. Batches touch a handful of tables, so the per-table
// maps live in a small slice scanned linearly — avoiding both a
// two-level map and the per-record key concatenation a flat
// "table\x00key" map would allocate.
type tableWriters struct {
	name string
	last map[string]int
}

// GraphBuilder builds conflict graphs while recycling the per-table
// writer maps and scratch slices between calls. Graph construction
// runs once per group-applied refresh batch on the apply hot path;
// without recycling, the writer map alone dominates the batch's
// allocation profile. A builder may be used by one goroutine at a
// time — the replica's applying window (at most one batch inside the
// engine) provides exactly that serialization.
type GraphBuilder struct {
	tabs  []tableWriters
	preds []int
}

// NewConflictGraph builds the dependency DAG for an ordered run of
// writesets (wss[i] commits before wss[i+1]) with one-shot state; hot
// paths hold a GraphBuilder and call Build instead.
func NewConflictGraph(wss []*WriteSet) *ConflictGraph {
	var b GraphBuilder
	return b.Build(wss)
}

// Build builds the dependency DAG for an ordered run of writesets,
// reusing the builder's internal state. The returned graph does not
// alias that state and stays valid across later Build calls.
func (b *GraphBuilder) Build(wss []*WriteSet) *ConflictGraph {
	n := len(wss)
	g := &ConflictGraph{}
	if n > 0 {
		g.CriticalPath = 1
	}
	// Recycle the per-table writer maps: entries beyond inUse hold maps
	// from earlier builds, cleared and renamed as tables show up.
	inUse := 0
	var levels []int // allocated with Succs/Deps on the first edge
	preds := b.preds[:0]
	for i, ws := range wss {
		preds = preds[:0]
		for j := range ws.Items {
			it := &ws.Items[j]
			var last map[string]int
			for t := 0; t < inUse; t++ {
				if b.tabs[t].name == it.Table {
					last = b.tabs[t].last
					break
				}
			}
			if last == nil {
				if inUse < len(b.tabs) {
					b.tabs[inUse].name = it.Table
					last = b.tabs[inUse].last
					clear(last)
				} else {
					last = make(map[string]int, 64)
					b.tabs = append(b.tabs, tableWriters{name: it.Table, last: last})
				}
				inUse++
			}
			if p, ok := last[it.Key]; ok && p != i {
				dup := false
				for _, q := range preds {
					if q == p {
						dup = true
						break
					}
				}
				if !dup {
					preds = append(preds, p)
				}
			}
			last[it.Key] = i
		}
		if len(preds) == 0 {
			if levels != nil {
				levels[i] = 1
			}
			continue
		}
		if g.Succs == nil {
			g.Succs = make([][]int, n)
			g.Deps = make([]int, n)
			levels = make([]int, n)
			// Every writeset before the first edge is a source.
			for k := 0; k < i; k++ {
				levels[k] = 1
			}
		}
		level := 1
		for _, p := range preds {
			g.Succs[p] = append(g.Succs[p], i)
			g.Deps[i]++
			g.Edges++
			if levels[p]+1 > level {
				level = levels[p] + 1
			}
		}
		levels[i] = level
		if level > g.CriticalPath {
			g.CriticalPath = level
		}
	}
	b.preds = preds[:0]
	return g
}
