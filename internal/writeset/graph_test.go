package writeset

import (
	"fmt"
	"reflect"
	"testing"
)

func wsk(keys ...string) *WriteSet {
	w := &WriteSet{}
	for _, k := range keys {
		w.Items = append(w.Items, Item{Table: "t", Key: k, Op: OpUpdate, Row: []any{k}})
	}
	return w
}

func TestConflictGraphIndependent(t *testing.T) {
	g := NewConflictGraph([]*WriteSet{wsk("a"), wsk("b"), wsk("c")})
	if g.CriticalPath != 1 || g.Edges != 0 {
		t.Fatalf("CriticalPath = %d, Edges = %d, want 1, 0", g.CriticalPath, g.Edges)
	}
	// Edge-free graphs don't allocate the adjacency state at all.
	if g.Deps != nil || g.Succs != nil {
		t.Fatalf("independent run allocated adjacency: Deps=%v Succs=%v", g.Deps, g.Succs)
	}
}

func TestConflictGraphPureChain(t *testing.T) {
	g := NewConflictGraph([]*WriteSet{wsk("a"), wsk("a"), wsk("a"), wsk("a")})
	if g.CriticalPath != 4 {
		t.Fatalf("CriticalPath = %d, want 4 (pure chain)", g.CriticalPath)
	}
	// Each writeset depends only on its immediate predecessor: the edge
	// to older writers is transitively implied, not materialized.
	if !reflect.DeepEqual(g.Deps, []int{0, 1, 1, 1}) {
		t.Fatalf("Deps = %v", g.Deps)
	}
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(g.Succs[i], []int{i + 1}) {
			t.Fatalf("Succs[%d] = %v, want [%d]", i, g.Succs[i], i+1)
		}
	}
}

func TestConflictGraphDiamond(t *testing.T) {
	// 0 writes a and b; 1 touches a, 2 touches b (both depend on 0 only);
	// 3 touches a and b and must wait for both 1 and 2 — but not 0,
	// whose edges are shadowed by the later writers.
	g := NewConflictGraph([]*WriteSet{wsk("a", "b"), wsk("a"), wsk("b"), wsk("a", "b")})
	if g.CriticalPath != 3 {
		t.Fatalf("CriticalPath = %d, want 3", g.CriticalPath)
	}
	if !reflect.DeepEqual(g.Deps, []int{0, 1, 1, 2}) {
		t.Fatalf("Deps = %v", g.Deps)
	}
	if !reflect.DeepEqual(g.Succs[0], []int{1, 2}) {
		t.Fatalf("Succs[0] = %v, want [1 2]", g.Succs[0])
	}
	if !reflect.DeepEqual(g.Succs[3], []int(nil)) {
		t.Fatalf("Succs[3] = %v, want empty", g.Succs[3])
	}
}

func TestConflictGraphSelfDuplicateRecord(t *testing.T) {
	// A writeset listing the same record twice must not self-edge.
	g := NewConflictGraph([]*WriteSet{wsk("a", "a")})
	if g.Edges != 0 || g.CriticalPath != 1 {
		t.Fatalf("self-edge: Edges=%d CriticalPath=%d", g.Edges, g.CriticalPath)
	}
}

func TestConflictGraphCrossTable(t *testing.T) {
	// Same key string in different tables is not a conflict.
	a := &WriteSet{Items: []Item{{Table: "x", Key: "k", Op: OpUpdate, Row: []any{1}}}}
	b := &WriteSet{Items: []Item{{Table: "y", Key: "k", Op: OpUpdate, Row: []any{2}}}}
	g := NewConflictGraph([]*WriteSet{a, b})
	if g.CriticalPath != 1 || g.Edges != 0 {
		t.Fatalf("cross-table keys conflated: Edges=%d", g.Edges)
	}
}

// TestConflictGraphMatchesConflictsWith cross-checks the graph's edge
// predicate against the reference pairwise ConflictsWith over a mixed
// run: j transitively depends on i iff some record path connects them.
func TestConflictGraphMatchesConflictsWith(t *testing.T) {
	run := []*WriteSet{
		wsk("a"), wsk("b", "c"), wsk("a", "d"), wsk("e"), wsk("c", "e"), wsk("f"),
	}
	g := NewConflictGraph(run)
	// Expand transitive reachability from the direct edges.
	n := len(run)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for i := n - 1; i >= 0; i-- {
		for _, s := range g.Succs[i] {
			reach[i][s] = true
			for k := 0; k < n; k++ {
				if reach[s][k] {
					reach[i][k] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if run[i].ConflictsWith(run[j]) && !reach[i][j] {
				t.Errorf("wss[%d] conflicts with wss[%d] but graph has no path", i, j)
			}
		}
	}
}

func BenchmarkNewConflictGraph(b *testing.B) {
	for _, shape := range []struct {
		name string
		mk   func(i int) *WriteSet
	}{
		{"independent", func(i int) *WriteSet { return wsk(fmt.Sprintf("k%d", i)) }},
		{"chain", func(i int) *WriteSet { return wsk("hot") }},
	} {
		b.Run(shape.name, func(b *testing.B) {
			run := make([]*WriteSet, 64)
			for i := range run {
				run[i] = shape.mk(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				NewConflictGraph(run)
			}
		})
	}
}
