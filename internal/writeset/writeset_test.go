package writeset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ws(items ...Item) *WriteSet { return &WriteSet{Items: items} }

func TestEmpty(t *testing.T) {
	var w WriteSet
	if !w.Empty() {
		t.Fatal("zero WriteSet not empty")
	}
	if w.ConflictsWith(ws(Item{Table: "a", Key: "k"})) {
		t.Fatal("empty writeset conflicts")
	}
	if got := w.String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestTables(t *testing.T) {
	w := ws(
		Item{Table: "b", Key: "1", Op: OpUpdate},
		Item{Table: "a", Key: "2", Op: OpInsert},
		Item{Table: "b", Key: "3", Op: OpDelete},
	)
	got := w.Tables()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Tables = %v", got)
	}
}

func TestConflicts(t *testing.T) {
	a := ws(Item{Table: "t", Key: "1"}, Item{Table: "t", Key: "2"})
	b := ws(Item{Table: "t", Key: "2"})
	c := ws(Item{Table: "t", Key: "3"})
	d := ws(Item{Table: "u", Key: "1"}) // same key, different table
	if !a.ConflictsWith(b) || !b.ConflictsWith(a) {
		t.Fatal("a/b should conflict")
	}
	if a.ConflictsWith(c) {
		t.Fatal("a/c should not conflict")
	}
	if a.ConflictsWith(d) {
		t.Fatal("same key in different tables must not conflict")
	}
}

// TestRecordKeyInjective guards the table+NUL+key encoding against
// ambiguity: distinct (table, key) pairs must never collide.
func TestRecordKeyInjective(t *testing.T) {
	a := ws(Item{Table: "ta", Key: "b\x00c"})
	b := ws(Item{Table: "ta\x00b", Key: "c"})
	// Tables may not contain NUL by contract, but even so the pairs
	// ("ta", "b\x00c") and ("tab", "\x00c") must differ:
	c := ws(Item{Table: "tab", Key: "\x00c"})
	if a.ConflictsWith(c) {
		t.Fatal("record keys collided across distinct tables")
	}
	_ = b
}

func TestClone(t *testing.T) {
	orig := ws(Item{Table: "t", Key: "1", Op: OpUpdate, Row: []any{int64(1), "x"}})
	cp := orig.Clone()
	cp.Items[0].Row[1] = "mutated"
	if orig.Items[0].Row[1] != "x" {
		t.Fatal("Clone shares row storage with original")
	}
	var nilWS *WriteSet
	if nilWS.Clone() != nil {
		t.Fatal("Clone of nil != nil")
	}
}

func TestIndexCertification(t *testing.T) {
	ix := NewIndex()
	ix.Add(ws(Item{Table: "t", Key: "a"}), 5)
	ix.Add(ws(Item{Table: "t", Key: "b"}), 8)

	probe := ws(Item{Table: "t", Key: "a"})
	if !ix.ConflictsAfter(probe, 4) {
		t.Fatal("snapshot 4 should conflict with commit at 5")
	}
	if ix.ConflictsAfter(probe, 5) {
		t.Fatal("snapshot 5 should not conflict with commit at 5")
	}
	if ix.ConflictsAfter(ws(Item{Table: "t", Key: "zzz"}), 0) {
		t.Fatal("untouched record conflicts")
	}
}

func TestIndexForget(t *testing.T) {
	ix := NewIndex()
	ix.Add(ws(Item{Table: "t", Key: "a"}), 5)
	ix.Add(ws(Item{Table: "t", Key: "b"}), 8)
	ix.Forget(5)
	if ix.Len() != 1 {
		t.Fatalf("Len after Forget = %d, want 1", ix.Len())
	}
	if ix.ConflictsAfter(ws(Item{Table: "t", Key: "a"}), 0) {
		t.Fatal("forgotten record still conflicts")
	}
	if !ix.ConflictsAfter(ws(Item{Table: "t", Key: "b"}), 0) {
		t.Fatal("retained record lost")
	}
}

func TestIndexKeepsLatestVersion(t *testing.T) {
	ix := NewIndex()
	ix.Add(ws(Item{Table: "t", Key: "a"}), 5)
	ix.Add(ws(Item{Table: "t", Key: "a"}), 9)
	if ix.ConflictsAfter(ws(Item{Table: "t", Key: "a"}), 9) {
		t.Fatal("snapshot at latest version should pass")
	}
	if !ix.ConflictsAfter(ws(Item{Table: "t", Key: "a"}), 8) {
		t.Fatal("snapshot below latest version should fail")
	}
	// Re-adding at an older version must not regress the index.
	ix.Add(ws(Item{Table: "t", Key: "a"}), 2)
	if !ix.ConflictsAfter(ws(Item{Table: "t", Key: "a"}), 8) {
		t.Fatal("older Add regressed the tracked version")
	}
}

// TestQuickConflictSymmetry: ConflictsWith is symmetric and agrees with
// a brute-force pairwise comparison.
func TestQuickConflictSymmetry(t *testing.T) {
	mk := func(keys []uint8) *WriteSet {
		w := &WriteSet{}
		for _, k := range keys {
			w.Items = append(w.Items, Item{Table: "t", Key: string(rune('a' + k%16))})
		}
		return w
	}
	f := func(ka, kb []uint8) bool {
		a, b := mk(ka), mk(kb)
		want := false
		for _, x := range a.Items {
			for _, y := range b.Items {
				if x.Table == y.Table && x.Key == y.Key {
					want = true
				}
			}
		}
		return a.ConflictsWith(b) == want && b.ConflictsWith(a) == want
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIndexMatchesNaive: the incremental conflict index gives the
// same certification answers as re-scanning the full history.
func TestQuickIndexMatchesNaive(t *testing.T) {
	type commit struct {
		Key     uint8
		Version uint64
	}
	f := func(commits []commit, probeKey uint8, snapshot uint64) bool {
		ix := NewIndex()
		snapshot %= 32
		for i := range commits {
			commits[i].Version %= 32
			ix.Add(ws(Item{Table: "t", Key: string(rune('a' + commits[i].Key%8))}), commits[i].Version)
		}
		probe := ws(Item{Table: "t", Key: string(rune('a' + probeKey%8))})
		want := false
		for _, c := range commits {
			if string(rune('a'+c.Key%8)) == probe.Items[0].Key && c.Version > snapshot {
				want = true
			}
		}
		return ix.ConflictsAfter(probe, snapshot) == want
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
