// Package writeset defines the unit of replication: the set of records a
// transaction inserted, updated, or deleted, together with full row
// images so the set can be replayed on any replica as a refresh
// transaction (§IV of the paper).
//
// Writesets are also the unit of certification: two transactions
// write-conflict iff their writesets share a (table, key) pair.
package writeset

import (
	"fmt"
	"sort"
	"strings"

	"sconrep/internal/obs/dtrace"
)

// Op is the kind of modification an Item carries.
type Op uint8

const (
	// OpInsert adds a new row.
	OpInsert Op = iota + 1
	// OpUpdate replaces an existing row with the carried image.
	OpUpdate
	// OpDelete removes the row under Key.
	OpDelete
)

// String returns the SQL-ish name of the operation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Item is one modified record. Row is the full after-image of the row
// (nil for deletes), with values aligned to the table's column order.
// Column values are int64, float64, string, bool, or nil.
type Item struct {
	Table string
	Key   string
	Op    Op
	Row   []any
}

// WriteSet is the ordered list of records a transaction modified.
// Order matters only for replay determinism; conflict checks are
// set-based.
type WriteSet struct {
	Items []Item
	// Trace is the certifying span's context, attached by the
	// certifier when tracing is enabled so each replica's refresh
	// apply parents under the certification that shipped the writeset.
	// It rides here, not on the Refresh envelope, because the cloned
	// writeset is the one allocation already shared by every replica's
	// refresh copy: the envelopes that flow through mailbox rings,
	// reorder buffers, and group-apply batches by value stay exactly
	// as small as before tracing. Nil when tracing is off; peers that
	// predate tracing leave it nil and gob skips it in both directions.
	Trace *dtrace.SpanContext
}

// Empty reports whether the transaction was read-only. A nil receiver
// is empty: partial refresh subscriptions ship version skip markers as
// refreshes with a nil writeset, and those envelopes flow through the
// same conflict and observability paths as real ones.
func (ws *WriteSet) Empty() bool { return ws == nil || len(ws.Items) == 0 }

// Len returns the number of modified records.
func (ws *WriteSet) Len() int {
	if ws == nil {
		return 0
	}
	return len(ws.Items)
}

// Tables returns the sorted set of tables the writeset touches.
func (ws *WriteSet) Tables() []string {
	if ws == nil {
		return nil
	}
	seen := make(map[string]bool, 4)
	var out []string
	for i := range ws.Items {
		t := ws.Items[i].Table
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// recordKey uniquely identifies a (table, row) pair across tables.
// Table names cannot contain NUL, so the encoding is injective.
func recordKey(table, key string) string { return table + "\x00" + key }

// Keys returns one opaque identifier per modified record, suitable for
// membership checks in conflict indexes.
func (ws *WriteSet) Keys() []string {
	if ws == nil {
		return nil
	}
	out := make([]string, len(ws.Items))
	for i := range ws.Items {
		out[i] = recordKey(ws.Items[i].Table, ws.Items[i].Key)
	}
	return out
}

// ConflictsWith reports whether the two writesets modify a common
// record. This is the write-write conflict predicate used both by the
// certifier and by the proxies' early certification.
func (ws *WriteSet) ConflictsWith(other *WriteSet) bool {
	if ws.Empty() || other.Empty() {
		return false
	}
	small, large := ws, other
	if len(small.Items) > len(large.Items) {
		small, large = large, small
	}
	set := make(map[string]struct{}, len(small.Items))
	for i := range small.Items {
		set[recordKey(small.Items[i].Table, small.Items[i].Key)] = struct{}{}
	}
	for i := range large.Items {
		if _, ok := set[recordKey(large.Items[i].Table, large.Items[i].Key)]; ok {
			return true
		}
	}
	return false
}

// Clone returns a deep copy; row slices are copied so the clone is
// safe to ship across goroutines while the source transaction may
// still mutate its buffers.
func (ws *WriteSet) Clone() *WriteSet {
	if ws == nil {
		return nil
	}
	out := &WriteSet{Items: make([]Item, len(ws.Items)), Trace: ws.Trace}
	for i, it := range ws.Items {
		cp := it
		if it.Row != nil {
			cp.Row = append([]any(nil), it.Row...)
		}
		out.Items[i] = cp
	}
	return out
}

// String renders the writeset compactly, for logs and tests.
func (ws *WriteSet) String() string {
	if ws.Empty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range ws.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s[%q]", ws.Items[i].Op, ws.Items[i].Table, ws.Items[i].Key)
	}
	b.WriteByte('}')
	return b.String()
}

// Index is a point-in-time conflict index over many writesets, keyed by
// record. The certifier maintains one covering the writesets committed
// inside its certification window.
type Index struct {
	// byRecord maps record key to the latest commit version that
	// modified the record.
	byRecord map[string]uint64
}

// NewIndex returns an empty conflict index.
func NewIndex() *Index {
	return &Index{byRecord: make(map[string]uint64)}
}

// Add registers that ws committed at version v.
func (ix *Index) Add(ws *WriteSet, v uint64) {
	for i := range ws.Items {
		k := recordKey(ws.Items[i].Table, ws.Items[i].Key)
		if cur, ok := ix.byRecord[k]; !ok || v > cur {
			ix.byRecord[k] = v
		}
	}
}

// ConflictsAfter reports whether any record in ws was modified by a
// transaction that committed at a version strictly greater than
// snapshot — the GSI certification test.
func (ix *Index) ConflictsAfter(ws *WriteSet, snapshot uint64) bool {
	for i := range ws.Items {
		k := recordKey(ws.Items[i].Table, ws.Items[i].Key)
		if v, ok := ix.byRecord[k]; ok && v > snapshot {
			return true
		}
	}
	return false
}

// Forget drops records whose last modification is at or below v,
// bounding the index to the active certification window.
func (ix *Index) Forget(v uint64) {
	for k, ver := range ix.byRecord {
		if ver <= v {
			delete(ix.byRecord, k)
		}
	}
}

// Len returns the number of records tracked.
func (ix *Index) Len() int { return len(ix.byRecord) }
