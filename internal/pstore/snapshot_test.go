package pstore

import (
	"bytes"
	"testing"

	"sconrep/internal/storage"
	"sconrep/internal/writeset"
)

// typedEngine builds an engine exercising every value type, NULLs,
// strings with NULs, multiple tables, and a composite key.
func typedEngine(t testing.TB) *storage.Engine {
	e := storage.NewEngine()
	if err := e.CreateTable(&storage.Schema{
		Table: "a_typed",
		Columns: []storage.Column{
			{Name: "id", Type: storage.TInt},
			{Name: "f", Type: storage.TFloat},
			{Name: "s", Type: storage.TString},
			{Name: "b", Type: storage.TBool},
		},
		Key:     []string{"id"},
		Indexes: []storage.IndexDef{{Name: "a_f", Column: "f"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable(&storage.Schema{
		Table: "b_pairs",
		Columns: []storage.Column{
			{Name: "x", Type: storage.TString},
			{Name: "y", Type: storage.TInt},
			{Name: "n", Type: storage.TString},
		},
		Key: []string{"x", "y"},
	}); err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		table string
		key   string
		row   []any
	}{
		{"a_typed", storage.EncodeKey(int64(1)), []any{int64(1), 3.25, "plain", true}},
		{"a_typed", storage.EncodeKey(int64(2)), []any{int64(2), -0.5, "nul\x00inside", false}},
		{"a_typed", storage.EncodeKey(int64(3)), []any{int64(3), nil, nil, nil}},
		{"b_pairs", storage.EncodeKey("k", int64(7)), []any{"k", int64(7), ""}},
	}
	v := uint64(0)
	for _, r := range rows {
		v++
		ws := &writeset.WriteSet{Items: []writeset.Item{{
			Table: r.table, Key: r.key, Op: writeset.OpInsert, Row: r.row,
		}}}
		if err := e.ApplyWriteSet(ws, v); err != nil {
			t.Fatal(err)
		}
	}
	// A delete: tombstoned rows must be absent from the snapshot.
	v++
	if err := e.ApplyWriteSet(&writeset.WriteSet{Items: []writeset.Item{{
		Table: "a_typed", Key: storage.EncodeKey(int64(3)), Op: writeset.OpDelete,
	}}}, v); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSnapshotRoundTrip(t *testing.T) {
	e := typedEngine(t)
	at := e.Version()
	img, err := SnapshotAt(e, at)
	if err != nil {
		t.Fatal(err)
	}
	e2, v, err := LoadSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if v != at {
		t.Fatalf("loaded version %d, want %d", v, at)
	}
	img2, err := SnapshotAt(e2, at)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, img2) {
		t.Fatal("snapshot not a fixed point across load/re-encode")
	}
	// Schemas and indexes survive.
	sch, ok := e2.Schema("a_typed")
	if !ok || len(sch.Indexes) != 1 || sch.Indexes[0].Name != "a_f" {
		t.Fatalf("schema lost: %+v", sch)
	}
	if e2.Version() != at {
		t.Fatalf("engine version %d, want %d", e2.Version(), at)
	}
}

// Snapshots at an older version must see through newer writes — the
// fuzzy-checkpoint visibility rule.
func TestSnapshotAtOlderVersion(t *testing.T) {
	e := typedEngine(t)
	imgOld, err := SnapshotAt(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	eOld, v, err := LoadSnapshot(imgOld)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version %d, want 2", v)
	}
	// Row 3 (inserted at version 3, deleted at 5) must be invisible;
	// rows 1-2 visible.
	img2, err := SnapshotAt(eOld, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imgOld, img2) {
		t.Fatal("older-version snapshot not a fixed point")
	}
}

func TestLoadSnapshotRejectsDamage(t *testing.T) {
	e := typedEngine(t)
	img, err := SnapshotAt(e, e.Version())
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(img) / 3, len(img) / 2, len(img) - 2} {
		bad := append([]byte(nil), img...)
		bad[pos] ^= 0xff
		if _, _, err := LoadSnapshot(bad); err == nil {
			t.Fatalf("flip at %d: corrupt snapshot loaded without error", pos)
		}
	}
	if _, _, err := LoadSnapshot(img[:len(img)/2]); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
	if _, _, err := LoadSnapshot(nil); err == nil {
		t.Fatal("empty snapshot loaded without error")
	}
}

// FuzzCheckpointLoad drives the parser (CRC gate bypassed — the fuzzer
// would never forge checksums) with arbitrary bytes: it must error or
// succeed, never panic, and success must be a canonical fixed point,
// which is exactly the "never return corrupt state" property.
func FuzzCheckpointLoad(f *testing.F) {
	e := typedEngine(f)
	img, err := SnapshotAt(e, e.Version())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img[:len(img)-4]) // parser input is the CRC-stripped body
	empty, _ := SnapshotAt(storage.NewEngine(), 0)
	f.Add(empty[:len(empty)-4])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		eng, at, err := parseSnapshot(body)
		if err != nil {
			return
		}
		re, err := SnapshotAt(eng, at)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		if !bytes.Equal(re[:len(re)-4], body) {
			t.Fatal("accepted snapshot is not canonical (re-encode differs)")
		}
	})
}
