package pstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sconrep/internal/storage"
	"sconrep/internal/writeset"
)

// kvBootstrap creates the test table: k INT primary key, v TEXT, with
// a secondary index so restore paths cover index rebuild.
func kvBootstrap(e *storage.Engine) error {
	return e.CreateTable(&storage.Schema{
		Table: "kv",
		Columns: []storage.Column{
			{Name: "k", Type: storage.TInt},
			{Name: "v", Type: storage.TString},
		},
		Key:     []string{"k"},
		Indexes: []storage.IndexDef{{Name: "kv_v", Column: "v"}},
	})
}

func kvWS(version uint64) *writeset.WriteSet {
	k := int64(version % 64)
	return &writeset.WriteSet{Items: []writeset.Item{{
		Table: "kv",
		Key:   storage.EncodeKey(k),
		Op:    writeset.OpUpdate,
		Row:   []any{k, fmt.Sprintf("val-%d", version)},
	}}}
}

// applyAndLog commits versions [from, to] on the store's engine and
// logs them, one writeset per version.
func applyAndLog(t *testing.T, st *Store, from, to uint64) {
	t.Helper()
	for v := from; v <= to; v++ {
		ws := kvWS(v)
		if err := st.Engine().ApplyWriteSet(ws, v); err != nil {
			t.Fatalf("apply %d: %v", v, err)
		}
		if err := st.LogApplied([]*writeset.WriteSet{ws}, v); err != nil {
			t.Fatalf("log %d: %v", v, err)
		}
	}
}

// referenceEngine replays versions [1, to] on a fresh engine.
func referenceEngine(t *testing.T, to uint64) *storage.Engine {
	t.Helper()
	e := storage.NewEngine()
	if err := kvBootstrap(e); err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= to; v++ {
		if err := e.ApplyWriteSet(kvWS(v), v); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func mustEqualAt(t *testing.T, a, b *storage.Engine, at uint64) {
	t.Helper()
	sa, err := SnapshotAt(a, at)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SnapshotAt(b, at)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("engine states differ at version %d (%d vs %d bytes)", at, len(sa), len(sb))
	}
}

func openKV(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Bootstrap == nil {
		opts.Bootstrap = kvBootstrap
	}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	st := openKV(t, dir, Options{})
	applyAndLog(t, st, 1, 10)
	st.Abandon()

	st2 := openKV(t, dir, Options{})
	defer st2.Close()
	if v := st2.Engine().Version(); v != 10 {
		t.Fatalf("recovered version %d, want 10", v)
	}
	mustEqualAt(t, st2.Engine(), referenceEngine(t, 10), 10)
	if s := st2.Stats(); s.RecoveredVersion != 10 || s.CheckpointVersion != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRecoverFromCheckpointPlusWAL(t *testing.T) {
	dir := t.TempDir()
	st := openKV(t, dir, Options{})
	applyAndLog(t, st, 1, 50)
	if err := st.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	applyAndLog(t, st, 51, 60)
	st.Abandon()

	st2 := openKV(t, dir, Options{})
	defer st2.Close()
	if v := st2.Engine().Version(); v != 60 {
		t.Fatalf("recovered version %d, want 60", v)
	}
	if s := st2.Stats(); s.CheckpointVersion != 50 {
		t.Fatalf("recovered from checkpoint %d, want 50", s.CheckpointVersion)
	}
	mustEqualAt(t, st2.Engine(), referenceEngine(t, 60), 60)
}

func TestTornWALTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	st := openKV(t, dir, Options{})
	applyAndLog(t, st, 1, 20)
	st.Abandon()

	// Tear the active segment's tail mid-record.
	seg := newestSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	st2 := openKV(t, dir, Options{})
	defer st2.Close()
	if v := st2.Engine().Version(); v != 19 {
		t.Fatalf("recovered version %d, want 19 (torn record discarded)", v)
	}
	mustEqualAt(t, st2.Engine(), referenceEngine(t, 19), 19)
}

func TestLogAppliedReordersRuns(t *testing.T) {
	dir := t.TempDir()
	st := openKV(t, dir, Options{})
	// Apply everything on the engine, but deliver log runs out of
	// order — the local-commit/drainer race the store must sequence.
	var runs [][]*writeset.WriteSet
	for v := uint64(1); v <= 6; v++ {
		ws := kvWS(v)
		if err := st.Engine().ApplyWriteSet(ws, v); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, []*writeset.WriteSet{ws})
	}
	_ = st.LogApplied(runs[4], 5)
	_ = st.LogApplied(runs[5], 6)
	if st.Stats().Parked != 2 {
		t.Fatalf("parked = %d, want 2", st.Stats().Parked)
	}
	// Parked runs must be copied: the replica recycles the slice it
	// passed, so clobber the originals and expect no effect.
	runs[4][0] = kvWS(999)
	runs[5][0] = kvWS(998)
	_ = st.LogApplied(runs[0], 1)
	_ = st.LogApplied(runs[1], 2)
	_ = st.LogApplied([]*writeset.WriteSet{kvWS(3), kvWS(4)}, 3)
	if p := st.Stats().Parked; p != 0 {
		t.Fatalf("parked = %d, want 0 after gap filled", p)
	}
	st.Abandon()

	st2 := openKV(t, dir, Options{})
	defer st2.Close()
	if v := st2.Engine().Version(); v != 6 {
		t.Fatalf("recovered version %d, want 6", v)
	}
	mustEqualAt(t, st2.Engine(), referenceEngine(t, 6), 6)
}

func TestStartAtAlignsLogAfterBulkLoad(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{}) // no bootstrap: fresh engine
	if err != nil {
		t.Fatal(err)
	}
	// Bulk-load outside the log (cluster.LoadData path).
	if err := kvBootstrap(st.Engine()); err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 5; v++ {
		if err := st.Engine().ApplyWriteSet(kvWS(v), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.StartAt(5); err != nil {
		t.Fatal(err)
	}
	applyAndLog(t, st, 6, 9)
	st.Abandon()

	// Recovery re-runs the deterministic load as Bootstrap, then
	// replays the logged suffix.
	st2, err := Open(dir, Options{Bootstrap: func(e *storage.Engine) error {
		if err := kvBootstrap(e); err != nil {
			return err
		}
		for v := uint64(1); v <= 5; v++ {
			if err := e.ApplyWriteSet(kvWS(v), v); err != nil {
				return err
			}
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if v := st2.Engine().Version(); v != 9 {
		t.Fatalf("recovered version %d, want 9", v)
	}
	mustEqualAt(t, st2.Engine(), referenceEngine(t, 9), 9)
}

func TestRealignSkipsLostVersions(t *testing.T) {
	dir := t.TempDir()
	st := openKV(t, dir, Options{})
	applyAndLog(t, st, 1, 3)
	// Versions 4-5 were applied but their log records lost in a crash
	// window; the replica realigns before resuming at 6.
	for v := uint64(4); v <= 5; v++ {
		if err := st.Engine().ApplyWriteSet(kvWS(v), v); err != nil {
			t.Fatal(err)
		}
	}
	st.Realign(6)
	applyAndLog(t, st, 6, 8)
	st.Abandon()

	st2 := openKV(t, dir, Options{})
	defer st2.Close()
	// Replay must stop cleanly at the gap: versions 1-3 recovered,
	// 4-8 left for certifier backfill — never a silent hole.
	if v := st2.Engine().Version(); v != 3 {
		t.Fatalf("recovered version %d, want 3 (stop at realign gap)", v)
	}
	mustEqualAt(t, st2.Engine(), referenceEngine(t, 3), 3)
}

func TestAutoCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	st := openKV(t, dir, Options{CheckpointEvery: 8})
	applyAndLog(t, st, 1, 100)
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().CheckpointVersion < 90 && time.Now().Before(deadline) {
		applyAndLog(t, st, st.Engine().Version()+1, st.Engine().Version()+1)
		time.Sleep(time.Millisecond)
	}
	if err := st.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	final := st.Engine().Version()
	if cv := st.Stats().CheckpointVersion; cv != final {
		t.Fatalf("checkpoint version %d, want %d", cv, final)
	}
	if n := st.Stats().CheckpointCount; n < 2 {
		t.Fatalf("only %d checkpoints for 100+ versions at interval 8", n)
	}
	st.Close()

	ckpts, segs := listDir(t, dir)
	if len(ckpts) > 2 {
		t.Fatalf("%d checkpoints retained, want <= 2 (%v)", len(ckpts), ckpts)
	}
	if len(segs) > 2 {
		t.Fatalf("%d segments retained after full checkpoint, want <= 2 (%v)", len(segs), segs)
	}

	st2 := openKV(t, dir, Options{})
	defer st2.Close()
	if v := st2.Engine().Version(); v != final {
		t.Fatalf("recovered version %d, want %d", v, final)
	}
	mustEqualAt(t, st2.Engine(), referenceEngine(t, final), final)
}

// TestCheckpointRecoveryEdgeCases is the table-driven edge-case suite
// from the issue: each case crashes a store in an awkward state and
// asserts recovery lands on exactly the right version and state.
func TestCheckpointRecoveryEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		// run exercises a store lifecycle in dir and returns the
		// version recovery must land on.
		run func(t *testing.T, dir string) uint64
	}{
		{
			// A checkpoint of a schema-only engine must capture the
			// schemas: recovery without Bootstrap must still serve.
			name: "checkpoint at version 0",
			run: func(t *testing.T, dir string) uint64 {
				st := openKV(t, dir, Options{})
				if err := st.CheckpointNow(); err != nil {
					t.Fatal(err)
				}
				st.Abandon()
				st2, err := Open(dir, Options{}) // no bootstrap on purpose
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := st2.Engine().Schema("kv"); !ok {
					t.Fatal("schema lost across checkpoint at version 0")
				}
				st2.Abandon()
				return 0
			},
		},
		{
			// The fuzzy part: applies keep landing while the snapshot
			// is written, and the checkpoint must still be the exact
			// state at its version.
			name: "checkpoint concurrent with in-flight applies",
			run: func(t *testing.T, dir string) uint64 {
				st := openKV(t, dir, Options{})
				applyAndLog(t, st, 1, 64)
				done := make(chan struct{})
				go func() {
					defer close(done)
					applyAndLog(t, st, 65, 512)
				}()
				if err := st.CheckpointNow(); err != nil {
					t.Fatal(err)
				}
				<-done
				ckptV := st.Stats().CheckpointVersion
				if ckptV < 64 {
					t.Fatalf("checkpoint version %d below pre-checkpoint watermark", ckptV)
				}
				// The on-disk image must equal the reference state at
				// exactly the checkpoint's version.
				data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf(ckptPattern, ckptV)))
				if err != nil {
					t.Fatal(err)
				}
				eng, v, err := LoadSnapshot(data)
				if err != nil {
					t.Fatal(err)
				}
				if v != ckptV {
					t.Fatalf("snapshot version %d, want %d", v, ckptV)
				}
				mustEqualAt(t, eng, referenceEngine(t, 512), ckptV)
				st.Abandon()
				return 512
			},
		},
		{
			// Crash, begin recovery, crash again before any progress,
			// recover for real: the second recovery must tolerate the
			// first one's artifacts (fresh empty segment, stale tmp).
			name: "two crashes during one recovery",
			run: func(t *testing.T, dir string) uint64 {
				st := openKV(t, dir, Options{})
				applyAndLog(t, st, 1, 30)
				if err := st.CheckpointNow(); err != nil {
					t.Fatal(err)
				}
				applyAndLog(t, st, 31, 40)
				st.Abandon() // crash 1
				mid, err := Open(dir, Options{Bootstrap: kvBootstrap})
				if err != nil {
					t.Fatal(err)
				}
				if v := mid.Engine().Version(); v != 40 {
					t.Fatalf("first recovery at %d, want 40", v)
				}
				mid.Abandon() // crash 2, zero progress since recovery
				return 40
			},
		},
		{
			// The newest checkpoint is damaged on disk: recovery must
			// fall back to its predecessor and the contiguous WAL
			// suffix reachable from there — never load corrupt state.
			name: "newest checkpoint corrupt falls back",
			run: func(t *testing.T, dir string) uint64 {
				st := openKV(t, dir, Options{})
				applyAndLog(t, st, 1, 20)
				if err := st.CheckpointNow(); err != nil {
					t.Fatal(err)
				}
				applyAndLog(t, st, 21, 35)
				if err := st.CheckpointNow(); err != nil {
					t.Fatal(err)
				}
				applyAndLog(t, st, 36, 40)
				st.Abandon()
				// Flip a byte in the newest checkpoint.
				path := filepath.Join(dir, fmt.Sprintf(ckptPattern, 35))
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0xff
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				// Fallback lands on checkpoint 20; the segments that
				// covered (20, 35] were pruned by checkpoint 35, so
				// replay stops at the gap and certifier backfill owns
				// the rest. 20 is the honest recovery floor.
				return 20
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want := tc.run(t, dir)
			st, err := Open(dir, Options{Bootstrap: kvBootstrap})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if v := st.Engine().Version(); v != want {
				t.Fatalf("recovered version %d, want %d", v, want)
			}
			mustEqualAt(t, st.Engine(), referenceEngine(t, want), want)
		})
	}
}

func TestAbandonMidCheckpointLeavesRecoverableState(t *testing.T) {
	dir := t.TempDir()
	st := openKV(t, dir, Options{})
	applyAndLog(t, st, 1, 2000)
	errc := make(chan error, 1)
	go func() { errc <- st.CheckpointNow() }()
	st.Abandon() // kill -9 while (possibly) mid-checkpoint
	<-errc

	st2 := openKV(t, dir, Options{})
	defer st2.Close()
	if v := st2.Engine().Version(); v != 2000 {
		t.Fatalf("recovered version %d, want 2000", v)
	}
	mustEqualAt(t, st2.Engine(), referenceEngine(t, 2000), 2000)
	// Stale tmp files from the aborted write must be gone.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stale tmp %s survived reopen", e.Name())
		}
	}
}

func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	_, segs := listDir(t, dir)
	if len(segs) == 0 {
		t.Fatal("no wal segments")
	}
	best := segs[len(segs)-1]
	return filepath.Join(dir, fmt.Sprintf(segPattern, best))
}

func listDir(t *testing.T, dir string) (ckpts, segs []uint64) {
	t.Helper()
	s := &Store{dir: dir}
	ckpts, segs, err := s.scanDir()
	if err != nil {
		t.Fatal(err)
	}
	return ckpts, segs
}
