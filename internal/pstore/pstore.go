// Package pstore is the persistent storage backend: the in-memory
// MVCC engine fronted by a replica-side WAL of applied writesets plus
// asynchronous fuzzy checkpoints.
//
// Durability model (paper §IV, Tashkent): the certifier is the
// durability authority, so the replica log is written without forcing
// and checkpoints are taken without stalling the apply pipeline. A
// crash may lose the WAL tail or a half-written checkpoint; recovery
// loads the newest checkpoint that verifies, replays the contiguous
// WAL suffix above it, and leaves the rest to certifier backfill —
// the replica resubscribes from the recovered Vlocal and receives
// exactly the missing history suffix.
//
// On-disk layout (one directory per replica):
//
//	checkpoint-<version>.ckpt  snapshot image (see snapshot.go)
//	wal-<base>.log             records with versions > base, in order
//	*.tmp                      in-flight checkpoint; ignored and
//	                           removed on open
//
// Segments rotate at every checkpoint and are pruned once wholly
// covered by one, so WAL space is bounded by the checkpoint interval.
package pstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sconrep/internal/storage"
	"sconrep/internal/wal"
	"sconrep/internal/writeset"
)

// Options configures a Store.
type Options struct {
	// CheckpointEvery is the number of logged versions between
	// automatic fuzzy checkpoints. 0 means the default (1024).
	CheckpointEvery uint64
	// KeepCheckpoints is how many checkpoint files to retain (newest
	// first); older ones are pruned after each new checkpoint. 0 means
	// the default (2) — the latest plus one fallback in case the
	// latest is damaged on disk.
	KeepCheckpoints int
	// Bootstrap populates a fresh engine (schema + initial data) when
	// no checkpoint exists. It must be deterministic: recovery re-runs
	// it and expects the same engine version the original run had when
	// StartAt was called.
	Bootstrap func(*storage.Engine) error
	// Clock is injectable for the seeded tests; nil means time.Now.
	// It feeds stats only — no durability decision depends on it.
	Clock func() time.Time
}

// Stats is a point-in-time snapshot of the store's health counters,
// exported as gauges by the cluster observability layer.
type Stats struct {
	CheckpointVersion  uint64
	CheckpointCount    uint64
	LastCheckpointAt   time.Time
	LastCheckpointTook time.Duration
	WALBytes           int64
	RecoveredVersion   uint64
	RecoveryTook       time.Duration
	// LoggedVersion is the contiguous durable log tail: every version
	// up to it is either in a checkpoint or appended to the WAL (not
	// forced). Tests wait on it before simulating a crash whose
	// recovery must be exact.
	LoggedVersion uint64
	Parked        int
	WALBroken     bool
}

// Store is a durable storage.Backend. All methods are safe for
// concurrent use.
type Store struct {
	dir   string
	opts  Options
	clock func() time.Time
	eng   *storage.Engine

	mu       sync.Mutex
	ckptIdle *sync.Cond // broadcast when ckptBusy falls
	// log appends to the current WAL segment.
	// guarded by mu
	log *wal.Log
	// segBase names the current segment: its records are > segBase.
	// guarded by mu
	segBase uint64
	// next is the version the next appended record must carry.
	// guarded by mu
	next uint64
	// parked holds runs that arrived ahead of next, keyed by start
	// version, until the gap before them is appended.
	// guarded by mu
	parked map[uint64][]*writeset.WriteSet
	// ckptV is the newest durable checkpoint version.
	// guarded by mu
	ckptV uint64
	// ckptBusy is true while a checkpoint is being written.
	// guarded by mu
	ckptBusy bool
	// walBroken is set when an append fails; logging degrades to
	// dropping records (recovery backfills) until the next checkpoint
	// rotates a fresh segment.
	// guarded by mu
	walBroken bool
	// closed stops appends and checkpoint commits.
	// guarded by mu
	closed bool
	// walBytes is the total size of live WAL segments.
	// guarded by mu
	walBytes int64
	// retained maps live segment base → file size, current excluded.
	// guarded by mu
	retained map[uint64]int64

	wg sync.WaitGroup

	// stats, guarded by mu
	ckptCount   uint64
	lastCkptAt  time.Time
	lastCkptDur time.Duration
	recoveredV  uint64
	recoveryDur time.Duration
}

const (
	defaultCheckpointEvery = 1024
	defaultKeepCheckpoints = 2
	ckptPattern            = "checkpoint-%016d.ckpt"
	segPattern             = "wal-%016d.log"
)

// Open opens (creating if needed) the store rooted at dir and runs
// recovery: load the newest checkpoint that verifies (falling back to
// older ones, then to Options.Bootstrap on a fresh or checkpoint-less
// directory), replay the contiguous WAL suffix, and discard any torn
// tail. The returned store's engine is ready to serve; its version is
// the recovered Vlocal the replica resubscribes from.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = defaultCheckpointEvery
	}
	if opts.KeepCheckpoints == 0 {
		opts.KeepCheckpoints = defaultKeepCheckpoints
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		clock:    opts.Clock,
		parked:   make(map[uint64][]*writeset.WriteSet),
		retained: make(map[uint64]int64),
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	s.ckptIdle = sync.NewCond(&s.mu)
	began := s.clock()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pstore: %w", err)
	}
	ckpts, segs, err := s.scanDir()
	if err != nil {
		return nil, err
	}

	// Newest verifying checkpoint wins; a damaged one falls back to
	// its predecessor (KeepCheckpoints retains one for exactly this).
	var firstErr error
	for i := len(ckpts) - 1; i >= 0 && s.eng == nil; i-- {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf(ckptPattern, ckpts[i])))
		if err == nil {
			var eng *storage.Engine
			var v uint64
			if eng, v, err = LoadSnapshot(data); err == nil {
				s.eng, s.ckptV = eng, v
				break
			}
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if s.eng == nil {
		if len(ckpts) > 0 {
			return nil, fmt.Errorf("pstore: no checkpoint verifies: %w", firstErr)
		}
		s.eng = storage.NewEngine()
		if opts.Bootstrap != nil {
			if err := opts.Bootstrap(s.eng); err != nil {
				return nil, fmt.Errorf("pstore: bootstrap: %w", err)
			}
		}
	}

	// Replay the contiguous WAL suffix above the recovered state. A
	// gap, a torn tail, or mid-segment corruption ends replay — the
	// replica log is not the durability authority, so whatever is
	// missing above the stop point is refetched from the certifier.
	expect := s.eng.Version() + 1
replay:
	for _, base := range segs {
		_, err := wal.ReplayFileN(filepath.Join(dir, fmt.Sprintf(segPattern, base)), func(rec *wal.Record) error {
			if rec.Version != expect {
				if rec.Version < expect {
					return nil // already covered by checkpoint or earlier segment
				}
				return errStopReplay
			}
			if err := s.eng.ApplyWriteSet(&rec.WriteSet, rec.Version); err != nil {
				return fmt.Errorf("pstore: replay apply at %d: %w", rec.Version, err)
			}
			expect++
			return nil
		})
		switch {
		case err == nil:
		case errors.Is(err, errStopReplay), errors.Is(err, wal.ErrCorrupt):
			break replay
		default:
			return nil, err
		}
	}

	s.recoveredV = s.eng.Version()
	s.recoveryDur = s.clock().Sub(began)
	s.next = s.recoveredV + 1

	// Start a fresh segment; old ones stay until a checkpoint covers
	// them. Accounting for retained segments feeds the WAL-size gauge.
	for _, base := range segs {
		if fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf(segPattern, base))); err == nil {
			s.retained[base] = fi.Size()
			s.walBytes += fi.Size()
		}
	}
	if err := s.rotateLocked(s.recoveredV); err != nil {
		return nil, err
	}
	s.pruneLocked()
	return s, nil
}

var errStopReplay = fmt.Errorf("pstore: stop replay")

// scanDir lists checkpoint versions and segment bases, both ascending,
// and removes stale temporary files.
func (s *Store) scanDir() (ckpts, segs []uint64, err error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("pstore: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if v, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, v)
		} else if v, ok := parseSeq(name, "wal-", ".log"); ok {
			segs = append(segs, v)
		} else if filepath.Ext(name) == ".tmp" {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Engine returns the recovered MVCC engine.
func (s *Store) Engine() *storage.Engine { return s.eng }

// StartAt aligns the log with an engine that was bulk-loaded after
// Open (cluster.LoadData): records follow from v+1, and the current
// (necessarily empty) segment is renamed to base v. The load itself is
// not logged — recovery re-runs Bootstrap to rebuild it.
func (s *Store) StartAt(v uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next != s.segBase+1 {
		return fmt.Errorf("pstore: StartAt(%d) after records were logged", v)
	}
	if v+1 == s.next {
		return nil
	}
	if s.log != nil {
		_ = s.log.Close()
		s.log = nil
	}
	_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf(segPattern, s.segBase)))
	s.next = v + 1
	return s.rotateLocked(v)
}

// LogApplied implements storage.Backend: append writesets applied at
// startVersion+i. Runs arriving ahead of the contiguous log tail are
// parked (copied — the caller recycles the slice) until the gap fills.
// Append failures degrade to dropping records rather than failing the
// apply pipeline: the WAL is an optimization over certifier backfill,
// not the durability authority.
func (s *Store) LogApplied(wss []*writeset.WriteSet, startVersion uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.walBroken || len(wss) == 0 {
		return nil
	}
	if startVersion+uint64(len(wss)) <= s.next {
		return nil // wholly stale re-delivery
	}
	if startVersion < s.next {
		wss = wss[s.next-startVersion:]
		startVersion = s.next
	}
	if startVersion > s.next {
		s.parked[startVersion] = append([]*writeset.WriteSet(nil), wss...)
		return nil
	}
	s.appendRunLocked(wss)
	for !s.walBroken {
		run, ok := s.parked[s.next]
		if !ok {
			break
		}
		delete(s.parked, s.next)
		s.appendRunLocked(run)
	}
	s.maybeCheckpointLocked()
	return nil
}

// appendRunLocked appends a contiguous run starting exactly at s.next.
func (s *Store) appendRunLocked(wss []*writeset.WriteSet) {
	for _, ws := range wss {
		rec := wal.Record{Version: s.next, WriteSet: *ws}
		if err := s.log.Append(&rec); err != nil {
			// Degrade: stop logging, drop parked runs; the segment
			// rotation at the next checkpoint heals the log.
			s.walBroken = true
			s.parked = make(map[uint64][]*writeset.WriteSet)
			return
		}
		s.next++
	}
}

// Realign implements storage.Backend: crash recovery may discard
// applied-but-unlogged versions, leaving a gap no future append will
// fill. Skip to the new next version; replay stops at the gap and the
// certifier backfills past it.
func (s *Store) Realign(nextVersion uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || nextVersion <= s.next {
		return
	}
	s.next = nextVersion
	for start := range s.parked { // det:order-insensitive
		if start < nextVersion {
			delete(s.parked, start)
		}
	}
}

// maybeCheckpointLocked starts an async fuzzy checkpoint when enough
// versions accumulated since the last one. Single-flight.
func (s *Store) maybeCheckpointLocked() {
	if s.ckptBusy || s.closed || s.next-1 < s.ckptV+s.opts.CheckpointEvery {
		return
	}
	s.ckptBusy = true
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.checkpoint()
	}()
}

// CheckpointNow takes a fuzzy checkpoint synchronously, waiting out
// any checkpoint already in flight.
func (s *Store) CheckpointNow() error {
	s.mu.Lock()
	for s.ckptBusy && !s.closed {
		s.ckptIdle.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("pstore: store closed")
	}
	s.ckptBusy = true
	s.mu.Unlock()
	return s.checkpoint()
}

// checkpoint writes the snapshot to a temp file, fsyncs, renames it
// into place, then rotates the WAL segment and prunes what the new
// checkpoint covers. Caller has set ckptBusy; cleared here.
func (s *Store) checkpoint() error {
	began := s.clock()
	at := s.eng.Version()
	err := s.writeCheckpointFile(at)

	s.mu.Lock()
	defer func() {
		s.ckptBusy = false
		s.ckptIdle.Broadcast()
		s.mu.Unlock()
	}()
	if err == nil && s.closed {
		err = fmt.Errorf("pstore: store closed during checkpoint")
	}
	if err != nil {
		return err
	}
	s.ckptV = at
	s.ckptCount++
	s.lastCkptAt = s.clock()
	s.lastCkptDur = s.lastCkptAt.Sub(began)
	// Rotate so records after the checkpoint land in a fresh segment;
	// this is also what heals a broken WAL. If appends were being
	// dropped, skip the drop window entirely — those versions are
	// gone from the log, and the new segment must restart contiguous
	// with what replay can actually reach.
	if s.walBroken {
		s.next = s.eng.Version() + 1
		s.walBroken = false
		s.parked = make(map[uint64][]*writeset.WriteSet)
	}
	if err := s.rotateLocked(s.next - 1); err != nil {
		return err
	}
	s.pruneLocked()
	return nil
}

// writeCheckpointFile writes checkpoint-<at>.ckpt atomically
// (tmp + fsync + rename + dir fsync).
func (s *Store) writeCheckpointFile(at uint64) error {
	final := filepath.Join(s.dir, fmt.Sprintf(ckptPattern, at))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("pstore: checkpoint: %w", err)
	}
	abort := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.closed
	}
	_, werr := WriteSnapshot(f, s.eng, at, abort)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("pstore: checkpoint: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("pstore: checkpoint: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// rotateLocked closes the current segment and opens wal-<base>.log.
// An existing file with that base can only be an empty leftover from
// an interrupted recovery (anything it validly contained was just
// replayed into the engine), so truncating is safe.
func (s *Store) rotateLocked(base uint64) error {
	if s.log != nil {
		_ = s.log.Close()
		if sz, err := segSize(filepath.Join(s.dir, fmt.Sprintf(segPattern, s.segBase))); err == nil {
			s.retained[s.segBase] = sz
		}
	}
	path := filepath.Join(s.dir, fmt.Sprintf(segPattern, base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		s.log = nil
		s.walBroken = true
		return fmt.Errorf("pstore: rotate: %w", err)
	}
	if sz, ok := s.retained[base]; ok {
		s.walBytes -= sz // truncated an empty recovery leftover with this base
		delete(s.retained, base)
	}
	s.segBase = base
	s.log = wal.NewWriter(&countingWriter{f: f, n: &s.walBytes})
	return nil
}

// pruneLocked removes checkpoints beyond KeepCheckpoints and segments
// wholly covered by the newest checkpoint.
func (s *Store) pruneLocked() {
	ckpts, segs, err := s.scanDir()
	if err != nil {
		return
	}
	for i := 0; i+s.opts.KeepCheckpoints < len(ckpts); i++ {
		_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf(ckptPattern, ckpts[i])))
	}
	// Segment segs[i] holds versions (segs[i], segs[i+1]]; it is dead
	// once the next segment's base is at or below the checkpoint.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= s.ckptV && segs[i] != s.segBase {
			path := filepath.Join(s.dir, fmt.Sprintf(segPattern, segs[i]))
			if sz, ok := s.retained[segs[i]]; ok {
				s.walBytes -= sz
				delete(s.retained, segs[i])
			}
			_ = os.Remove(path)
		}
	}
}

// Close shuts the store down gracefully: waits out an in-flight
// checkpoint, then closes the WAL segment.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.ckptIdle.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		return s.log.Close()
	}
	return nil
}

// Abandon simulates kill -9: stop everything immediately, wait for
// nothing. An in-flight checkpoint aborts mid-write (leaving a .tmp
// the next Open discards) and the WAL loses whatever was never
// written — exactly the artifacts crash recovery must tolerate.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.ckptIdle.Broadcast()
	if s.log != nil {
		_ = s.log.Close() // in-flight append errors are swallowed by the broken-WAL path
	}
}

// Stats returns current health counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		CheckpointVersion:  s.ckptV,
		CheckpointCount:    s.ckptCount,
		LastCheckpointAt:   s.lastCkptAt,
		LastCheckpointTook: s.lastCkptDur,
		WALBytes:           s.walBytes,
		RecoveredVersion:   s.recoveredV,
		RecoveryTook:       s.recoveryDur,
		LoggedVersion:      s.next - 1,
		Parked:             len(s.parked),
		WALBroken:          s.walBroken,
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func segSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// countingWriter adds written byte counts to the store's walBytes
// total. Every write happens under the store mutex (appends hold it;
// rotation and close hold it), so the bare pointer is safe.
type countingWriter struct {
	f *os.File
	n *int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	*c.n += int64(n)
	return n, err
}

func (c *countingWriter) Close() error { return c.f.Close() }

var _ storage.Backend = (*Store)(nil)
