package pstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"sconrep/internal/storage"
)

// Checkpoint snapshot format. A checkpoint is the deterministic binary
// image of everything visible at one commit version S — the consistent
// (snapshot, Vlocal) pair of the fuzzy-checkpoint protocol:
//
//	magic   "SCKP0001" (8 bytes)
//	uvarint S (snapshot version)
//	uvarint table count
//	per table, in lexical name order:
//	  str name
//	  uvarint #columns; per column: str name, 1 byte type
//	  uvarint #key columns; per: str name
//	  uvarint #indexes; per: str name, str column
//	  uvarint #rows
//	  per row, in primary-key order:
//	    str encoded-pk
//	    uvarint row commit version (≤ S)
//	    uvarint #values (= #columns); per value: tag byte + payload
//	      0 NULL · 1 false · 2 true · 3 int64 (8B LE) ·
//	      4 float64 (8B LE) · 5 str
//	crc32 (IEEE, 4 bytes LE) over everything above
//
// str is uvarint length + bytes. The encoding is canonical: one engine
// state at one version has exactly one byte image, which is what lets
// the recovery-equivalence tests compare replicas with bytes.Equal.
// Loading verifies the trailing CRC before any parsing, rejects
// unsorted or duplicate tables/keys, schema-checks every row, and
// bounds every count by the bytes that remain — arbitrary input yields
// an error, never a panic or a half-built engine.

const snapMagic = "SCKP0001"

// ErrBadSnapshot reports an unreadable or failed-verification
// checkpoint image.
var ErrBadSnapshot = errors.New("pstore: bad checkpoint snapshot")

// errAborted signals a snapshot write cancelled by the abort callback
// (store closed mid-checkpoint).
var errAborted = errors.New("pstore: snapshot aborted")

// WriteSnapshot writes the snapshot of eng at version at to w and
// returns the CRC-inclusive byte count. abort, if non-nil, is polled
// between row chunks; returning true abandons the write. The scan is
// fuzzy: it never blocks the apply pipeline (see Engine.ScanVisible),
// yet the image is exactly the state at version at.
func WriteSnapshot(w io.Writer, eng *storage.Engine, at uint64, abort func() bool) (int64, error) {
	cw := &crcWriter{w: w}
	buf := make([]byte, 0, 256)

	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, at)
	names := eng.TablesSorted()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	if err := cw.write(buf); err != nil {
		return cw.n, err
	}

	for _, name := range names {
		sch, ok := eng.Schema(name)
		if !ok {
			return cw.n, fmt.Errorf("pstore: table %s vanished during snapshot", name)
		}
		buf = buf[:0]
		buf = appendStr(buf, name)
		buf = binary.AppendUvarint(buf, uint64(len(sch.Columns)))
		for _, c := range sch.Columns {
			buf = appendStr(buf, c.Name)
			buf = append(buf, byte(c.Type))
		}
		buf = binary.AppendUvarint(buf, uint64(len(sch.Key)))
		for _, k := range sch.Key {
			buf = appendStr(buf, k)
		}
		buf = binary.AppendUvarint(buf, uint64(len(sch.Indexes)))
		for _, ix := range sch.Indexes {
			buf = appendStr(buf, ix.Name)
			buf = appendStr(buf, ix.Column)
		}
		if err := cw.write(buf); err != nil {
			return cw.n, err
		}

		// Row count prefix without a second scan: count first, then
		// emit. Both scans see the same rows — visibility at a fixed
		// version is stable no matter what installs land meanwhile.
		rows := uint64(0)
		err := eng.ScanVisible(name, at, func(string, uint64, []any) error {
			rows++
			return nil
		})
		if err != nil {
			return cw.n, err
		}
		buf = binary.AppendUvarint(buf[:0], rows)
		if err := cw.write(buf); err != nil {
			return cw.n, err
		}
		emitted := uint64(0)
		err = eng.ScanVisible(name, at, func(key string, version uint64, row []any) error {
			if emitted%512 == 0 && abort != nil && abort() {
				return errAborted
			}
			emitted++
			buf = appendStr(buf[:0], key)
			buf = binary.AppendUvarint(buf, version)
			buf = binary.AppendUvarint(buf, uint64(len(row)))
			for _, v := range row {
				var verr error
				buf, verr = appendValue(buf, v)
				if verr != nil {
					return verr
				}
			}
			return cw.write(buf)
		})
		if err != nil {
			return cw.n, err
		}
		if emitted != rows {
			return cw.n, fmt.Errorf("pstore: table %s: %d rows counted, %d emitted", name, rows, emitted)
		}
	}

	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.sum)
	if _, err := cw.w.Write(tail[:]); err != nil {
		return cw.n, err
	}
	cw.n += 4
	return cw.n, nil
}

// SnapshotAt returns the canonical snapshot image of eng at version at.
// The recovery-equivalence oracle compares these across replicas.
func SnapshotAt(eng *storage.Engine, at uint64) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, eng, at, nil); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadSnapshot verifies and decodes a snapshot image into a fresh
// engine, returning it with its snapshot version. The CRC is checked
// before parsing and the engine is built and returned only on full
// success, so a corrupt checkpoint can never leak partial state.
func LoadSnapshot(data []byte) (*storage.Engine, uint64, error) {
	if len(data) < len(snapMagic)+4 {
		return nil, 0, fmt.Errorf("%w: short image (%d bytes)", ErrBadSnapshot, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	return parseSnapshot(body)
}

// parseSnapshot decodes a CRC-stripped snapshot body. Split from
// LoadSnapshot so the fuzz target can exercise the parser directly —
// the CRC gate would otherwise shield it from nearly every input.
func parseSnapshot(body []byte) (*storage.Engine, uint64, error) {
	r := &creader{b: body}
	magic, err := r.take(len(snapMagic))
	if err != nil || string(magic) != snapMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	at, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	ntables, err := r.count()
	if err != nil {
		return nil, 0, err
	}
	eng := storage.NewEngine()
	prevTable := ""
	for ti := uint64(0); ti < ntables; ti++ {
		name, err := r.str()
		if err != nil {
			return nil, 0, err
		}
		if ti > 0 && name <= prevTable {
			return nil, 0, fmt.Errorf("%w: tables out of order at %q", ErrBadSnapshot, name)
		}
		prevTable = name
		sch := &storage.Schema{Table: name}
		ncols, err := r.count()
		if err != nil {
			return nil, 0, err
		}
		for i := uint64(0); i < ncols; i++ {
			cn, err := r.str()
			if err != nil {
				return nil, 0, err
			}
			ct, err := r.byte()
			if err != nil {
				return nil, 0, err
			}
			sch.Columns = append(sch.Columns, storage.Column{Name: cn, Type: storage.ColType(ct)})
		}
		nkey, err := r.count()
		if err != nil {
			return nil, 0, err
		}
		for i := uint64(0); i < nkey; i++ {
			kn, err := r.str()
			if err != nil {
				return nil, 0, err
			}
			sch.Key = append(sch.Key, kn)
		}
		nidx, err := r.count()
		if err != nil {
			return nil, 0, err
		}
		for i := uint64(0); i < nidx; i++ {
			in, err := r.str()
			if err != nil {
				return nil, 0, err
			}
			ic, err := r.str()
			if err != nil {
				return nil, 0, err
			}
			sch.Indexes = append(sch.Indexes, storage.IndexDef{Name: in, Column: ic})
		}
		if err := eng.CreateTable(sch); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		nrows, err := r.count()
		if err != nil {
			return nil, 0, err
		}
		prevKey := ""
		for ri := uint64(0); ri < nrows; ri++ {
			key, err := r.str()
			if err != nil {
				return nil, 0, err
			}
			if ri > 0 && key <= prevKey {
				return nil, 0, fmt.Errorf("%w: keys out of order in %s", ErrBadSnapshot, name)
			}
			prevKey = key
			rv, err := r.uvarint()
			if err != nil {
				return nil, 0, err
			}
			if rv > at {
				return nil, 0, fmt.Errorf("%w: row version %d above snapshot %d", ErrBadSnapshot, rv, at)
			}
			nvals, err := r.count()
			if err != nil {
				return nil, 0, err
			}
			if nvals != ncols {
				return nil, 0, fmt.Errorf("%w: row arity %d, want %d", ErrBadSnapshot, nvals, ncols)
			}
			row := make([]any, nvals)
			for i := range row {
				if row[i], err = r.val(); err != nil {
					return nil, 0, err
				}
			}
			if err := eng.RestoreRow(name, key, row, rv); err != nil {
				return nil, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
		}
	}
	if r.rem() != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, r.rem())
	}
	eng.RestoreVersion(at)
	return eng, at, nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendValue(dst []byte, v any) ([]byte, error) {
	switch tv := v.(type) {
	case nil:
		return append(dst, 0), nil
	case bool:
		if tv {
			return append(dst, 2), nil
		}
		return append(dst, 1), nil
	case int64:
		dst = append(dst, 3)
		return binary.LittleEndian.AppendUint64(dst, uint64(tv)), nil
	case float64:
		dst = append(dst, 4)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(tv)), nil
	case string:
		dst = append(dst, 5)
		return appendStr(dst, tv), nil
	default:
		return dst, fmt.Errorf("pstore: cannot encode value of type %T", v)
	}
}

// crcWriter tees writes through a running CRC32.
type crcWriter struct {
	w   io.Writer
	sum uint32
	n   int64
}

func (c *crcWriter) write(p []byte) error {
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p)
	n, err := c.w.Write(p)
	c.n += int64(n)
	return err
}

// creader is a bounds-checked cursor over untrusted snapshot bytes.
type creader struct {
	b []byte
}

func (r *creader) rem() int { return len(r.b) }

func (r *creader) take(n int) ([]byte, error) {
	if n < 0 || n > len(r.b) {
		return nil, fmt.Errorf("%w: truncated", ErrBadSnapshot)
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *creader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *creader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadSnapshot)
	}
	// Reject non-minimal encodings (a zero final byte adds nothing):
	// the format is canonical, one state → one byte image.
	if n > 1 && r.b[n-1] == 0 {
		return 0, fmt.Errorf("%w: non-minimal uvarint", ErrBadSnapshot)
	}
	r.b = r.b[n:]
	return v, nil
}

// count reads a uvarint bounded by the bytes remaining: every counted
// element occupies at least one byte, so anything larger is garbage
// and must not drive allocation.
func (r *creader) count() (uint64, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)) {
		return 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrBadSnapshot, v, len(r.b))
	}
	return v, nil
}

func (r *creader) str() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *creader) val() (any, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 0:
		return nil, nil
	case 1:
		return false, nil
	case 2:
		return true, nil
	case 3:
		b, err := r.take(8)
		if err != nil {
			return nil, err
		}
		return int64(binary.LittleEndian.Uint64(b)), nil
	case 4:
		b, err := r.take(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
	case 5:
		return r.str()
	default:
		return nil, fmt.Errorf("%w: unknown value tag %d", ErrBadSnapshot, tag)
	}
}
