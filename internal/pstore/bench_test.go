package pstore

import (
	"fmt"
	"testing"

	"sconrep/internal/storage"
	"sconrep/internal/writeset"
)

// BenchmarkRecovery pits the durable path (checkpoint restore + WAL
// suffix replay) against the seed's only option, a full-history
// rebuild, at 100k committed transactions over 10k keys with the
// checkpoint covering 99% of history. This ratio — not either
// absolute number — is what the persistent backend buys: restart cost
// proportional to the suffix since the last checkpoint instead of to
// the life of the database.
func BenchmarkRecovery(b *testing.B) {
	const (
		txns    = 100_000
		keys    = 10_000
		suffix  = 1_000 // versions after the last checkpoint
		runSize = 100
	)
	benchWS := func(v uint64) *writeset.WriteSet {
		k := int64(v % keys)
		return &writeset.WriteSet{Items: []writeset.Item{{
			Table: "kv",
			Key:   storage.EncodeKey(k),
			Op:    writeset.OpUpdate,
			Row:   []any{k, fmt.Sprintf("val-%d", v)},
		}}}
	}

	dir := b.TempDir()
	st, err := Open(dir, Options{Bootstrap: kvBootstrap, CheckpointEvery: 1 << 62})
	if err != nil {
		b.Fatal(err)
	}
	history := make([]*writeset.WriteSet, 0, txns)
	run := make([]*writeset.WriteSet, 0, runSize)
	for v := uint64(1); v <= txns; v++ {
		ws := benchWS(v)
		history = append(history, ws)
		if err := st.Engine().ApplyWriteSet(ws, v); err != nil {
			b.Fatal(err)
		}
		run = append(run, ws)
		if len(run) == runSize {
			if err := st.LogApplied(run, v-uint64(len(run))+1); err != nil {
				b.Fatal(err)
			}
			run = run[:0]
		}
		if v == txns-suffix {
			if err := st.CheckpointNow(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("restore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := Open(dir, Options{Bootstrap: kvBootstrap, CheckpointEvery: 1 << 62})
			if err != nil {
				b.Fatal(err)
			}
			if v := st.Engine().Version(); v != txns {
				b.Fatalf("recovered version %d, want %d", v, txns)
			}
			b.StopTimer()
			st.Abandon()
			b.StartTimer()
		}
	})

	b.Run("fullhistory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := storage.NewEngine()
			if err := kvBootstrap(eng); err != nil {
				b.Fatal(err)
			}
			for v := uint64(1); v <= txns; v++ {
				if err := eng.ApplyWriteSet(history[v-1], v); err != nil {
					b.Fatal(err)
				}
			}
			if eng.Version() != txns {
				b.Fatalf("rebuilt version %d, want %d", eng.Version(), txns)
			}
		}
	})
}
