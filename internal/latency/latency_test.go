package latency

import (
	"testing"
	"time"
)

func TestZeroModelInjectsNothing(t *testing.T) {
	s := NewSource(Model{}, 1)
	start := time.Now()
	s.NetworkHop()
	s.RoundTrip()
	s.CommitIO()
	s.Statement()
	s.ApplyWriteSet()
	s.LocalCommit()
	s.Think(0)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("zero model slept %v", elapsed)
	}
}

func TestJitterBounds(t *testing.T) {
	m := Model{OneWay: time.Second, Jitter: 0.2, Scale: 1}
	s := NewSource(m, 7)
	for i := 0; i < 1000; i++ {
		d := s.jittered(m.OneWay)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("jittered duration %v outside ±20%%", d)
		}
	}
}

func TestScaleApplied(t *testing.T) {
	m := Model{OneWay: time.Second, Scale: 0.25}
	s := NewSource(m, 7)
	d := s.jittered(m.OneWay)
	if d != 250*time.Millisecond {
		t.Fatalf("scaled duration = %v, want 250ms", d)
	}
	// Scale 0 means 1.0.
	s0 := NewSource(Model{OneWay: time.Second}, 7)
	if d := s0.jittered(time.Second); d != time.Second {
		t.Fatalf("unscaled duration = %v", d)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	m := Model{OneWay: time.Second, Jitter: 0.5, Scale: 1}
	a := NewSource(m, 42)
	b := NewSource(m, 42)
	for i := 0; i < 100; i++ {
		if a.jittered(m.OneWay) != b.jittered(m.OneWay) {
			t.Fatal("same seed, different jitter")
		}
	}
	c := NewSource(m, 43)
	same := true
	a = NewSource(m, 42)
	for i := 0; i < 10; i++ {
		if a.jittered(m.OneWay) != c.jittered(m.OneWay) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestHeavyTail(t *testing.T) {
	m := Model{ApplyWriteSet: time.Millisecond, TailProb: 0.5, TailFactor: 10, Scale: 1}
	s := NewSource(m, 9)
	tails := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if s.heavyTailed(m.ApplyWriteSet) >= 10*time.Millisecond {
			tails++
		}
	}
	if tails < n*4/10 || tails > n*6/10 {
		t.Fatalf("tail hit %d/%d times, want ≈50%%", tails, n)
	}
	// Disabled tail never stretches.
	s2 := NewSource(Model{ApplyWriteSet: time.Millisecond, Scale: 1}, 9)
	for i := 0; i < 100; i++ {
		if s2.heavyTailed(time.Millisecond) != time.Millisecond {
			t.Fatal("tail applied when disabled")
		}
	}
}

func TestThinkExponentialAndCapped(t *testing.T) {
	m := Model{Scale: 1}
	s := NewSource(m, 11)
	// With a tiny mean, Think returns quickly and never exceeds 5×mean
	// by construction; just exercise it.
	start := time.Now()
	for i := 0; i < 10; i++ {
		s.Think(time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Think stalled: %v", elapsed)
	}
}

func TestDefaultLANRatios(t *testing.T) {
	m := DefaultLAN()
	if m.ApplyWriteSet <= m.OneWay {
		t.Fatal("apply cost must exceed a network hop")
	}
	if m.CommitIO <= m.LocalCommit {
		t.Fatal("forced commit I/O must exceed a non-forced local commit")
	}
	if m.TailProb <= 0 || m.TailFactor <= 1 {
		t.Fatal("default model must model stragglers")
	}
	scaled := m.Scaled(0.5)
	if scaled.Scale != 0.5 || m.Scale != 1.0 {
		t.Fatal("Scaled must copy, not mutate")
	}
}
