// Package latency models the costs the paper's testbed imposed
// physically: LAN round trips between middleware components, commit
// I/O at the certifier, applying refresh writesets inside a replica,
// and client think time.
//
// All durations are expressed at "paper scale" (the millisecond-level
// numbers reported in §V) and multiplied by a single Scale factor at
// runtime, so a full TPC-W sweep runs on one machine in seconds while
// preserving every delay ratio — which is what the experimental shapes
// depend on.
package latency

import (
	"math/rand"
	"sync"
	"time"
)

// Model holds the simulated cost parameters. The zero value means
// "no injected delays" (pure CPU execution).
type Model struct {
	// OneWay is the one-way network latency between any two nodes
	// (client↔LB, LB↔replica, replica↔certifier).
	OneWay time.Duration
	// CommitIO is the certifier's forced-log write for an update
	// transaction's certification decision.
	CommitIO time.Duration
	// Certify is the per-decision certification work (conflict test,
	// index maintenance) charged inside the sequencer's critical
	// section. It is zero in every stock model — the real CPU work is
	// measured, not simulated — and exists for benchmarks that study
	// sequencer contention: a nonzero Certify makes the per-shard
	// serialization visible on any machine, because sleeps held under
	// different shard locks overlap exactly as independent sequencers'
	// work overlaps across cores.
	Certify time.Duration
	// StatementCPU is the per-SQL-statement execution cost inside the
	// DBMS, in addition to the engine's real CPU work.
	StatementCPU time.Duration
	// ApplyWriteSet is the cost of applying and committing one refresh
	// writeset at a replica (per writeset, on top of real CPU work).
	ApplyWriteSet time.Duration
	// LocalCommit is the cost of committing a local transaction at a
	// replica (non-forced log write; the paper turns log forcing off).
	LocalCommit time.Duration
	// Jitter is the maximum fractional jitter applied to every delay
	// (0.1 = ±10%).
	Jitter float64
	// TailProb and TailFactor model the heavy tail of real DBMS write
	// paths (checkpoints, page flushes, scheduling hiccups): with
	// probability TailProb an apply or local commit takes TailFactor
	// times longer. The slowest-of-N-replicas wait in the eager mode
	// is dominated by exactly these stragglers, while lazy modes route
	// new transactions away from them.
	TailProb   float64
	TailFactor float64
	// ApplyBatchMarginal is the fraction of ApplyWriteSet each writeset
	// after the first costs when a replica applies a contiguous run of
	// refreshes in one engine critical section. Group-applying amortizes
	// the per-commit overhead (log write, lock cycle, version publish)
	// exactly like the certifier's group commit amortizes CommitIO; the
	// per-row work still has to happen, which is what the marginal
	// fraction charges. 0 means the default of 0.4; 1 disables the
	// amortization (every writeset pays full price).
	ApplyBatchMarginal float64
	// Scale multiplies every duration. 0 is treated as 1.0.
	Scale float64
}

// DefaultLAN approximates the paper's Gigabit-Ethernet cluster at
// paper scale: ~0.5 ms one-way LAN hop, ~4 ms forced commit I/O,
// ~1.2 ms per statement, ~2.5 ms to apply a refresh writeset.
//
// The absolute values need only be plausible; the figures' shapes come
// from their ratios (apply cost ≫ network hop, forced I/O ≫ local
// commit).
func DefaultLAN() Model {
	return Model{
		OneWay:        500 * time.Microsecond,
		CommitIO:      4 * time.Millisecond,
		StatementCPU:  1200 * time.Microsecond,
		ApplyWriteSet: 2500 * time.Microsecond,
		LocalCommit:   800 * time.Microsecond,
		Jitter:        0.15,
		TailProb:      0.05,
		TailFactor:    10,
		Scale:         1.0,
	}
}

// Scaled returns a copy of m with Scale replaced, for running the same
// experiment compressed or stretched in time.
func (m Model) Scaled(scale float64) Model {
	m.Scale = scale
	return m
}

// Source produces jittered delays from a model. Each concurrent actor
// (client, proxy, applier) owns one Source so delays are deterministic
// given the seed yet uncorrelated across actors.
type Source struct {
	m  Model
	mu sync.Mutex
	// rng is the seeded jitter stream.
	// guarded by mu
	rng *rand.Rand
}

// NewSource returns a delay source with deterministic jitter.
func NewSource(m Model, seed int64) *Source {
	return &Source{m: m, rng: rand.New(rand.NewSource(seed))}
}

// Model returns the model the source draws from.
func (s *Source) Model() Model { return s.m }

func (s *Source) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	scale := s.m.Scale
	if scale == 0 {
		scale = 1.0
	}
	f := 1.0
	if s.m.Jitter > 0 {
		s.mu.Lock()
		f = 1 + s.m.Jitter*(2*s.rng.Float64()-1)
		s.mu.Unlock()
	}
	return time.Duration(float64(d) * scale * f)
}

// Sleep blocks for the jittered, scaled duration.
func (s *Source) sleep(d time.Duration) {
	if d = s.jittered(d); d > 0 {
		time.Sleep(d)
	}
}

// NetworkHop simulates one one-way message between nodes.
func (s *Source) NetworkHop() { s.sleep(s.m.OneWay) }

// RoundTrip simulates a request/response pair.
func (s *Source) RoundTrip() { s.sleep(2 * s.m.OneWay) }

// heavyTailed stretches d by TailFactor with probability TailProb —
// the write-path straggler model.
func (s *Source) heavyTailed(d time.Duration) time.Duration {
	if s.m.TailProb <= 0 || s.m.TailFactor <= 1 {
		return d
	}
	s.mu.Lock()
	hit := s.rng.Float64() < s.m.TailProb
	s.mu.Unlock()
	if hit {
		return time.Duration(float64(d) * s.m.TailFactor)
	}
	return d
}

// CommitIO simulates the certifier's forced log write.
func (s *Source) CommitIO() { s.sleep(s.m.CommitIO) }

// Certify simulates the per-decision certification work, charged while
// the certifying sequencer's lock is held.
func (s *Source) Certify() { s.sleep(s.m.Certify) }

// Statement simulates per-statement DBMS execution cost.
func (s *Source) Statement() { s.sleep(s.m.StatementCPU) }

// ApplyWriteSet simulates applying one refresh writeset (heavy-tailed).
func (s *Source) ApplyWriteSet() { s.sleep(s.heavyTailed(s.m.ApplyWriteSet)) }

// ApplyWriteSetBatch simulates group-applying n contiguous refresh
// writesets under one engine critical section: the first writeset pays
// the full apply cost, each subsequent one only the marginal fraction,
// and the heavy tail is drawn once for the whole batch — a checkpoint
// stall hits the group, not every member (the group-commit shape).
func (s *Source) ApplyWriteSetBatch(n int) {
	if n <= 0 {
		return
	}
	if n == 1 {
		s.ApplyWriteSet()
		return
	}
	marginal := s.m.ApplyBatchMarginal
	if marginal == 0 {
		marginal = 0.4
	}
	d := time.Duration(float64(s.m.ApplyWriteSet) * (1 + marginal*float64(n-1)))
	s.sleep(s.heavyTailed(d))
}

// LocalCommit simulates a local, non-forced commit (heavy-tailed).
func (s *Source) LocalCommit() { s.sleep(s.heavyTailed(s.m.LocalCommit)) }

// Think blocks for an exponentially distributed think time with the
// given mean (scaled), matching the paper's negative-exponential
// client think time.
func (s *Source) Think(mean time.Duration) {
	if mean <= 0 {
		return
	}
	scale := s.m.Scale
	if scale == 0 {
		scale = 1.0
	}
	s.mu.Lock()
	d := time.Duration(s.rng.ExpFloat64() * float64(mean) * scale)
	s.mu.Unlock()
	// Cap at 5× the mean so a single unlucky draw cannot stall a
	// closed-loop client for an entire measurement window.
	if max := time.Duration(5 * float64(mean) * scale); d > max {
		d = max
	}
	if d > 0 {
		time.Sleep(d)
	}
}
