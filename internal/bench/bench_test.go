package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sconrep/internal/core"
)

// testProfile is small enough for CI but long enough for stable means.
func testProfile() Profile {
	return Profile{Scale: 1.0, Warmup: 250 * time.Millisecond, Measure: 700 * time.Millisecond, CheckHistory: true}
}

func runPoint(t *testing.T, p Point) Result {
	t.Helper()
	res, err := Run(p, testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Committed == 0 {
		t.Fatalf("point %+v committed nothing", p)
	}
	if res.Violations != 0 {
		t.Fatalf("point %+v: %d consistency violations", p, res.Violations)
	}
	return res
}

func TestRunMicroPoint(t *testing.T) {
	res := runPoint(t, Point{
		Workload: "micro", Mode: core.Coarse,
		Replicas: 2, Clients: 4, UpdatePercent: 25,
	})
	if res.Snapshot.TPS <= 0 {
		t.Fatalf("TPS = %v", res.Snapshot.TPS)
	}
}

func TestRunTPCWPoint(t *testing.T) {
	res := runPoint(t, Point{
		Workload: "tpcw", Mode: core.Fine,
		Replicas: 2, Clients: 8, Mix: "shopping", ThinkTime: 20 * time.Millisecond,
	})
	if res.Snapshot.TPS <= 0 {
		t.Fatalf("TPS = %v", res.Snapshot.TPS)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(Point{Workload: "nope", Replicas: 1, Clients: 1}, testProfile()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestShapeEagerLosesOnUpdates is the paper's headline claim at
// miniature scale: with a substantial update fraction, ESC throughput
// falls well below CSC/FSC, which stay near SC.
func TestShapeEagerLosesOnUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs wall-clock time")
	}
	prof := testProfile()
	prof.Measure = 900 * time.Millisecond
	get := func(mode core.Mode) float64 {
		res, err := Run(Point{
			Workload: "micro", Mode: mode,
			Replicas: 4, Clients: 4, UpdatePercent: 50,
		}, prof)
		if err != nil {
			t.Fatal(err)
		}
		return res.Snapshot.TPS
	}
	esc := get(core.Eager)
	csc := get(core.Coarse)
	fsc := get(core.Fine)
	sc := get(core.Session)
	t.Logf("TPS — ESC %.0f, CSC %.0f, FSC %.0f, SC %.0f", esc, csc, fsc, sc)
	if esc >= csc {
		t.Errorf("eager (%.0f) should trail coarse (%.0f) at 50%% updates", esc, csc)
	}
	if esc >= fsc {
		t.Errorf("eager (%.0f) should trail fine (%.0f)", esc, fsc)
	}
	// Lazy strong consistency within 25% of session consistency.
	if csc < sc*0.75 {
		t.Errorf("coarse (%.0f) too far below session (%.0f)", csc, sc)
	}
}

func TestTableIOutput(t *testing.T) {
	var buf bytes.Buffer
	TableI(&buf)
	out := buf.String()
	for _, want := range []string{
		"Table I",
		"CSC start version = 5",
		"FSC start version = 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("TableI output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	prof := testProfile()
	prof.Warmup, prof.Measure = 100*time.Millisecond, 250*time.Millisecond
	var buf bytes.Buffer
	grid, err := Fig3(&buf, prof, []int{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0]) != 4 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("missing header")
	}
	// At 0% updates all modes are within noise of each other.
	base := grid[0][0].Snapshot.TPS
	for _, r := range grid[0] {
		ratio := r.Snapshot.TPS / base
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("read-only TPS spread too wide: %v vs %v", r.Snapshot.TPS, base)
		}
	}
}
