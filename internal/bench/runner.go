// Package bench is the experiment harness: it runs one (workload,
// mode, replicas, clients) point on an in-process cluster and collects
// the paper's metrics, and it exposes one experiment function per
// table/figure of §V that sweeps the corresponding parameter grid and
// renders the same rows/series the paper reports.
//
// Durations are controlled by a single Profile so the same experiments
// run as quick smoke benches (`go test -bench`) or as full sweeps
// (`sconrep-bench`).
package bench

import (
	"fmt"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/history"
	"sconrep/internal/latency"
	"sconrep/internal/metrics"
	"sconrep/internal/obs"
	"sconrep/internal/storage"
	"sconrep/internal/workload/micro"
	"sconrep/internal/workload/tpcw"
)

// Profile bundles the time parameters of a sweep.
type Profile struct {
	// Scale multiplies every simulated delay (1.0 = paper scale).
	Scale float64
	// Warmup and Measure bound each point's run.
	Warmup  time.Duration
	Measure time.Duration
	// CheckHistory runs the strong/session-consistency checkers on
	// every point and fails loudly on violations.
	CheckHistory bool
	// Obs, when non-nil, attaches every point's cluster to this live
	// metrics registry (the sweep becomes watchable over HTTP); Traces
	// additionally records per-transaction timelines. Instruments are
	// re-registered per point, so gauges always describe the cluster
	// currently running.
	Obs    *obs.Registry
	Traces *obs.TraceRecorder
	// OnCluster, when non-nil, is called with each point's cluster
	// right before clients start — the bench server uses it to expose
	// the live collector snapshot.
	OnCluster func(*cluster.Cluster)
}

// Full is the profile used by cmd/sconrep-bench. Scale is 1.0 (paper
// scale): this host's timer granularity is ~1.3 ms, so compressing
// delays below the millisecond floor would flatten the ratios
// (apply cost vs network hop) the figures' shapes depend on.
func Full() Profile {
	return Profile{Scale: 1.0, Warmup: 2 * time.Second, Measure: 4 * time.Second, CheckHistory: true}
}

// Quick is the smoke profile used by the testing.B benchmarks: same
// paper scale, shorter intervals (fewer samples, same shapes).
func Quick() Profile {
	return Profile{Scale: 1.0, Warmup: 400 * time.Millisecond, Measure: 1200 * time.Millisecond}
}

// Point is one experiment configuration.
type Point struct {
	Workload string // "micro" or "tpcw"
	Mode     core.Mode
	Replicas int
	Clients  int
	// DisableEarlyCert turns off early certification (ablation).
	DisableEarlyCert bool

	// Micro parameters.
	UpdatePercent int
	MicroScale    micro.Scale
	// MicroUpdateTables / MicroReadTables restrict which tables the
	// clients touch (nil = all four); used by the granularity ablation.
	MicroUpdateTables []int
	MicroReadTables   []int

	// TPC-W parameters.
	Mix       string
	TPCWScale tpcw.Scale
	ThinkTime time.Duration // paper-scale; scaled by Profile.Scale
}

// Result is the measured outcome of one point.
type Result struct {
	Point    Point
	Snapshot metrics.Snapshot
	// Violations counts strong-consistency violations found by the
	// checker (only populated when Profile.CheckHistory).
	Violations int
}

// Run executes one point.
func Run(p Point, prof Profile) (Result, error) {
	model := latency.DefaultLAN().Scaled(prof.Scale)
	c, err := cluster.New(cluster.Config{
		Replicas:         p.Replicas,
		Mode:             p.Mode,
		Latency:          model,
		Seed:             int64(p.Replicas)*1000 + int64(p.Mode),
		RecordHistory:    prof.CheckHistory,
		DisableEarlyCert: p.DisableEarlyCert,
	})
	if err != nil {
		return Result{}, err
	}
	defer c.Close()
	c.EnableObs(prof.Obs, prof.Traces)
	if prof.OnCluster != nil {
		prof.OnCluster(c)
	}

	switch p.Workload {
	case "micro":
		ms := p.MicroScale
		if ms.RowsPerTable == 0 {
			ms = micro.DefaultScale()
		}
		if err := c.LoadData(func(e *storage.Engine) error { return micro.Load(e, ms) }); err != nil {
			return Result{}, err
		}
		micro.RegisterAll(c)
		micro.RunClients(c, p.Clients,
			micro.Client{
				Scale: ms, UpdatePercent: p.UpdatePercent, Retries: 3,
				UpdateTables: p.MicroUpdateTables, ReadTables: p.MicroReadTables,
			},
			prof.Warmup, prof.Measure)

	case "tpcw":
		ts := p.TPCWScale
		if ts.Items == 0 {
			ts = tpcw.DefaultScale()
		}
		mix, err := tpcw.MixByName(p.Mix)
		if err != nil {
			return Result{}, err
		}
		if err := c.LoadData(func(e *storage.Engine) error { return tpcw.Load(e, ts) }); err != nil {
			return Result{}, err
		}
		tpcw.RegisterAll(c)
		// ThinkTime is paper-scale; Session.Think scales it by the
		// latency model's Scale factor.
		runEBs(c, p.Clients, &tpcw.EB{Mix: mix, Scale: ts, ThinkTime: p.ThinkTime, Retries: 3}, prof)

	default:
		return Result{}, fmt.Errorf("bench: unknown workload %q", p.Workload)
	}

	res := Result{Point: p, Snapshot: c.Collector().Snapshot()}
	if prof.CheckHistory && c.Recorder() != nil {
		events := c.Recorder().Events()
		if p.Mode.Strong() {
			res.Violations = len(history.CheckStrong(events))
		} else {
			res.Violations = len(history.CheckSession(events))
		}
	}
	return res, nil
}

// runEBs launches n emulated browsers with warm-up/measure phasing.
func runEBs(c *cluster.Cluster, n int, eb *tpcw.EB, prof Profile) {
	stop := make(chan struct{})
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(id int) {
			eb.Run(c, id, stop)
			done <- struct{}{}
		}(i)
	}
	time.Sleep(prof.Warmup)
	c.Collector().Reset()
	time.Sleep(prof.Measure)
	close(stop)
	for i := 0; i < n; i++ {
		<-done
	}
}

// Modes is the presentation order used across all experiments.
var Modes = []core.Mode{core.Eager, core.Coarse, core.Fine, core.Session}
