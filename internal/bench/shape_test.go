package bench

import (
	"testing"
	"time"

	"sconrep/internal/core"
	"sconrep/internal/metrics"
)

// TestShapeFig6SyncDelay asserts Figure 6's shape on a reduced grid:
// the eager global commit delay grows with the replica count and
// exceeds the lazy modes' synchronization start delay, which stays
// small.
func TestShapeFig6SyncDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	prof := Profile{Scale: 1.0, Warmup: 400 * time.Millisecond, Measure: 1500 * time.Millisecond}
	syncOf := func(mode core.Mode, reps int) time.Duration {
		res, err := Run(Point{
			Workload: "tpcw", Mode: mode,
			Replicas: reps, Clients: reps * 5,
			Mix: "ordering", ThinkTime: TPCWThink,
		}, prof)
		if err != nil {
			t.Fatal(err)
		}
		return res.Snapshot.MeanSync
	}

	esc2 := syncOf(core.Eager, 2)
	esc6 := syncOf(core.Eager, 6)
	csc6 := syncOf(core.Coarse, 6)
	fsc6 := syncOf(core.Fine, 6)
	t.Logf("sync delay — ESC@2=%v ESC@6=%v CSC@6=%v FSC@6=%v", esc2, esc6, csc6, fsc6)

	if esc6 <= esc2 {
		t.Errorf("eager sync delay should grow with replicas: %v at 2, %v at 6", esc2, esc6)
	}
	if esc6 <= csc6 {
		t.Errorf("eager sync delay (%v) should exceed coarse start delay (%v) at 6 replicas", esc6, csc6)
	}
	if esc6 <= fsc6 {
		t.Errorf("eager sync delay (%v) should exceed fine start delay (%v) at 6 replicas", esc6, fsc6)
	}
}

// TestShapeGranularityAblation asserts the §III-C benefit directly:
// on the skewed workload (updates on one table, reads on another), the
// fine-grained mode's start delay is far below the coarse-grained
// mode's.
func TestShapeGranularityAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	prof := Profile{Scale: 1.0, Warmup: 400 * time.Millisecond, Measure: 1500 * time.Millisecond}
	coarse, err := RunSkewedMicro(core.Coarse, prof)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := RunSkewedMicro(core.Fine, prof)
	if err != nil {
		t.Fatal(err)
	}
	cs := coarse.Snapshot.StageMeans[metrics.StageVersion]
	fs := fine.Snapshot.StageMeans[metrics.StageVersion]
	t.Logf("skewed start delay — CSC=%v FSC=%v", cs, fs)
	if fs >= cs {
		t.Errorf("fine start delay (%v) should undercut coarse (%v) on the skewed workload", fs, cs)
	}
}
