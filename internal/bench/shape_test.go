package bench

import (
	"testing"
	"time"

	"sconrep/internal/core"
	"sconrep/internal/metrics"
)

// TestShapeFig6SyncDelay asserts Figure 6's shape on a reduced grid:
// the eager global commit delay grows with the replica count and
// exceeds the lazy modes' synchronization start delay, which stays
// small.
func TestShapeFig6SyncDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	prof := Profile{Scale: 1.0, Warmup: 400 * time.Millisecond, Measure: 1500 * time.Millisecond}
	syncOf := func(mode core.Mode, reps int) time.Duration {
		res, err := Run(Point{
			Workload: "tpcw", Mode: mode,
			Replicas: reps, Clients: reps * 5,
			Mix: "ordering", ThinkTime: TPCWThink,
		}, prof)
		if err != nil {
			t.Fatal(err)
		}
		return res.Snapshot.MeanSync
	}

	esc2 := syncOf(core.Eager, 2)
	esc6 := syncOf(core.Eager, 6)
	csc6 := syncOf(core.Coarse, 6)
	fsc6 := syncOf(core.Fine, 6)
	t.Logf("sync delay — ESC@2=%v ESC@6=%v CSC@6=%v FSC@6=%v", esc2, esc6, csc6, fsc6)

	if esc6 <= esc2 {
		t.Errorf("eager sync delay should grow with replicas: %v at 2, %v at 6", esc2, esc6)
	}
	if esc6 <= csc6 {
		t.Errorf("eager sync delay (%v) should exceed coarse start delay (%v) at 6 replicas", esc6, csc6)
	}
	if esc6 <= fsc6 {
		t.Errorf("eager sync delay (%v) should exceed fine start delay (%v) at 6 replicas", esc6, fsc6)
	}
}

// TestShapeGranularityAblation asserts the §III-C benefit directly: on
// the skewed workload (updates on one table, reads on another), the
// fine-grained mode starts read-only transactions without waiting —
// their table's version never advances — while the coarse-grained mode
// makes them wait out the full replication lag.
//
// The comparison is over read-only transactions only. The clients are
// closed-loop with no think time, so the all-transaction mean is
// useless here: fine-grained readers that skip the wait speed the loop
// up, the extra updates deepen the apply backlog, and the update
// transactions' inflated waits wash out exactly the separation the
// test is after. The read-only means are immune to that feedback (the
// fine-grained readers' bound is a version the workload never
// advances) and separate the modes by an order of magnitude, which
// also guards the group-apply bound: an unbounded apply batch that
// stalled version publication would drag the coarse readers' delay up
// but can never help fine readers, so the margin below would survive —
// while a batching bug that made fine readers wait would trip it.
func TestShapeGranularityAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep")
	}
	prof := Profile{Scale: 1.0, Warmup: 400 * time.Millisecond, Measure: 1500 * time.Millisecond}
	coarse, err := RunSkewedMicro(core.Coarse, prof)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := RunSkewedMicro(core.Fine, prof)
	if err != nil {
		t.Fatal(err)
	}
	cs := coarse.Snapshot.MeanReadSync
	fs := fine.Snapshot.MeanReadSync
	t.Logf("skewed read-only start delay — CSC=%v FSC=%v (all-txn means: CSC=%v FSC=%v)",
		cs, fs,
		coarse.Snapshot.StageMeans[metrics.StageVersion],
		fine.Snapshot.StageMeans[metrics.StageVersion])
	if coarse.Snapshot.ReadOnly == 0 || fine.Snapshot.ReadOnly == 0 {
		t.Fatalf("vacuous run: read-only commits CSC=%d FSC=%d",
			coarse.Snapshot.ReadOnly, fine.Snapshot.ReadOnly)
	}
	if fs*2 >= cs {
		t.Errorf("fine read-only start delay (%v) should be well under half the coarse one (%v) on the skewed workload", fs, cs)
	}
}
