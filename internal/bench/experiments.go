package bench

import (
	"fmt"
	"io"
	"time"

	"sconrep/internal/core"
	"sconrep/internal/metrics"
	"sconrep/internal/workload/micro"
)

// Experiment parameters shared with EXPERIMENTS.md. The paper's
// testbed used 8 replicas for the micro-benchmark; client counts per
// replica for TPC-W come from §V-C (10 browsing, 8 shopping, 5
// ordering).
const (
	MicroReplicas = 8
	// MicroClients matches §V-B: "We use 8 replicas and 8 clients and
	// each client issues randomly selected transactions ... back-to-back
	// in a closed loop." The closed loop keeps the system in the
	// latency-limited regime, where the consistency modes' response-time
	// differences translate directly into throughput differences.
	MicroClients = 8
	// TPCWThink is the emulated browser think time at paper scale.
	TPCWThink = 200 * time.Millisecond
)

// clientsPerReplica returns the paper's scaled-load client counts.
func clientsPerReplica(mix string) int {
	switch mix {
	case "browsing":
		return 10
	case "shopping":
		return 8
	default: // ordering
		return 5
	}
}

// msOf renders a duration as paper-style milliseconds.
func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// seriesRow is one replicas-count row of a Figure 5/6/7 table, with
// one Result per mode (in Modes order).
type seriesRow struct {
	reps int
	res  []Result
}

// printSeries renders one replicas-vs-modes table.
func printSeries(w io.Writer, rows []seriesRow, metric func(Result) float64, cellFmt string) {
	fmt.Fprintf(w, "%-9s", "replicas")
	for _, m := range Modes {
		fmt.Fprintf(w, "%10s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-9d", r.reps)
		for j := range Modes {
			fmt.Fprintf(w, cellFmt, metric(r.res[j]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Fig3 regenerates Figure 3: micro-benchmark throughput vs update
// ratio at MicroReplicas replicas, all four modes. It returns the
// results grid [ratioIdx][modeIdx] and prints the table.
func Fig3(w io.Writer, prof Profile, ratios []int) ([][]Result, error) {
	if len(ratios) == 0 {
		ratios = []int{0, 10, 25, 50, 75, 100}
	}
	fmt.Fprintf(w, "Figure 3 — micro-benchmark throughput (TPS), %d replicas, %d clients\n", MicroReplicas, MicroClients)
	fmt.Fprintf(w, "%-9s", "update%")
	for _, m := range Modes {
		fmt.Fprintf(w, "%10s", m)
	}
	fmt.Fprintln(w)

	grid := make([][]Result, len(ratios))
	for i, ratio := range ratios {
		grid[i] = make([]Result, len(Modes))
		fmt.Fprintf(w, "%-9d", ratio)
		for j, mode := range Modes {
			res, err := Run(Point{
				Workload: "micro", Mode: mode,
				Replicas: MicroReplicas, Clients: MicroClients,
				UpdatePercent: ratio,
			}, prof)
			if err != nil {
				return nil, err
			}
			grid[i][j] = res
			fmt.Fprintf(w, "%10.1f", res.Snapshot.TPS)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return grid, nil
}

// Fig4 regenerates Figure 4: the per-stage latency breakdown at the
// 25% (a) and 100% (b) update mixes.
func Fig4(w io.Writer, prof Profile) error {
	for _, ratio := range []int{25, 100} {
		sub := "a"
		if ratio == 100 {
			sub = "b"
		}
		fmt.Fprintf(w, "Figure 4(%s) — latency breakdown (ms/txn at paper scale), %d%% update mix, %d replicas\n",
			sub, ratio, MicroReplicas)
		fmt.Fprintf(w, "%-6s", "mode")
		for _, st := range metrics.Stages {
			fmt.Fprintf(w, "%9s", st)
		}
		fmt.Fprintf(w, "%9s\n", "total")
		for _, mode := range Modes {
			res, err := Run(Point{
				Workload: "micro", Mode: mode,
				Replicas: MicroReplicas, Clients: MicroClients,
				UpdatePercent: ratio,
			}, prof)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-6s", mode)
			var total time.Duration
			for _, st := range metrics.Stages {
				d := res.Snapshot.StageMeans[st]
				total += d
				fmt.Fprintf(w, "%9.2f", msOf(d)/prof.Scale)
			}
			fmt.Fprintf(w, "%9.2f\n", msOf(total)/prof.Scale)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// tpcwSweep runs one mix over the replica counts for all modes.
func tpcwSweep(mix string, replicaCounts []int, clients func(reps int) int, prof Profile) ([]seriesRow, error) {
	var rows []seriesRow
	for _, n := range replicaCounts {
		r := seriesRow{reps: n}
		for _, mode := range Modes {
			res, err := Run(Point{
				Workload: "tpcw", Mode: mode,
				Replicas: n, Clients: clients(n),
				Mix: mix, ThinkTime: TPCWThink,
			}, prof)
			if err != nil {
				return nil, err
			}
			r.res = append(r.res, res)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// TPCWScaled regenerates Figures 5 and 6 in one sweep: throughput and
// response time under scaled load (clients grow with replicas), plus
// the synchronization delay series for the shopping and ordering
// mixes.
func TPCWScaled(w io.Writer, prof Profile, mixes []string, replicaCounts []int) error {
	if len(mixes) == 0 {
		mixes = []string{"browsing", "shopping", "ordering"}
	}
	if len(replicaCounts) == 0 {
		replicaCounts = []int{1, 2, 4, 6, 8}
	}
	for _, mix := range mixes {
		cpr := clientsPerReplica(mix)
		rows, err := tpcwSweep(mix, replicaCounts, func(n int) int { return n * cpr }, prof)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Figure 5 — TPC-W %s mix, scaled load (%d clients/replica): throughput (TPS)\n", mix, cpr)
		printSeries(w, rows, func(r Result) float64 { return r.Snapshot.TPS }, "%10.1f")
		fmt.Fprintf(w, "Figure 5 — TPC-W %s mix, scaled load: response time (ms at paper scale)\n", mix)
		printSeries(w, rows, func(r Result) float64 { return msOf(r.Snapshot.MeanResponse) / prof.Scale }, "%10.2f")
		if mix != "browsing" {
			fmt.Fprintf(w, "Figure 6 — TPC-W %s mix: synchronization delay (ms at paper scale)\n", mix)
			printSeries(w, rows, func(r Result) float64 { return msOf(r.Snapshot.MeanSync) / prof.Scale }, "%10.2f")
		}
	}
	return nil
}

// TPCWFixed regenerates Figure 7: response time under fixed total load
// (the single-replica client count held constant as replicas grow).
func TPCWFixed(w io.Writer, prof Profile, mixes []string, replicaCounts []int) error {
	if len(mixes) == 0 {
		mixes = []string{"shopping", "ordering"}
	}
	if len(replicaCounts) == 0 {
		replicaCounts = []int{1, 2, 4, 6, 8}
	}
	for _, mix := range mixes {
		clients := clientsPerReplica(mix) * 2 // fixed at the 2-replica scaled load
		rows, err := tpcwSweep(mix, replicaCounts, func(int) int { return clients }, prof)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Figure 7 — TPC-W %s mix, fixed load (%d clients): response time (ms at paper scale)\n", mix, clients)
		printSeries(w, rows, func(r Result) float64 { return msOf(r.Snapshot.MeanResponse) / prof.Scale }, "%10.2f")
	}
	return nil
}

// TableI regenerates Table I deterministically from the version
// tracker (no measurement involved).
func TableI(w io.Writer) {
	tr := core.NewTracker()
	type step struct {
		name   string
		tables []string
	}
	steps := []step{
		{"T1", []string{"A"}},
		{"T2", []string{"B", "C"}},
		{"T3", []string{"B"}},
		{"T4", []string{"C"}},
		{"T5", []string{"B", "C"}},
	}
	fmt.Fprintln(w, "Table I — database and table versions")
	fmt.Fprintf(w, "%-5s %-14s %8s %4s %4s %4s\n", "txn", "updates", "Vsystem", "VA", "VB", "VC")
	for i, st := range steps {
		tr.ObserveCommit(uint64(i+1), st.tables, "")
		fmt.Fprintf(w, "%-5s %-14v %8d %4d %4d %4d\n",
			st.name, st.tables, tr.VSystem(),
			tr.TableVersion("A"), tr.TableVersion("B"), tr.TableVersion("C"))
	}
	fmt.Fprintf(w, "T6 accesses table A only: CSC start version = %d, FSC start version = %d\n\n",
		tr.MinStartVersion(core.Coarse, []string{"A"}, ""),
		tr.MinStartVersion(core.Fine, []string{"A"}, ""))
}

// AblationGranularity compares CSC against FSC on a skewed micro
// workload where updates hammer one table while reads target another —
// the case where table-level synchronization shines (§III-C).
func AblationGranularity(w io.Writer, prof Profile) error {
	fmt.Fprintln(w, "Ablation — synchronization granularity (micro, updates on table 0, reads on table 3)")
	fmt.Fprintf(w, "%-6s%12s%18s%22s\n", "mode", "TPS", "startDelay(ms)", "readStartDelay(ms)")
	for _, mode := range []core.Mode{core.Coarse, core.Fine} {
		res, err := RunSkewedMicro(mode, prof)
		if err != nil {
			return err
		}
		// The read-only column is the discriminating number: the
		// clients are closed-loop, so FSC's non-waiting readers speed
		// the loop up and the extra updates' waits blur the
		// all-transaction mean; the readers' own delay is immune.
		fmt.Fprintf(w, "%-6s%12.1f%18.3f%22.4f\n", mode, res.Snapshot.TPS,
			msOf(res.Snapshot.StageMeans[metrics.StageVersion])/prof.Scale,
			msOf(res.Snapshot.MeanReadSync)/prof.Scale)
	}
	fmt.Fprintln(w)
	return nil
}

// AblationEarlyCert measures early certification's effect on a
// high-conflict micro mix (wasted certification round trips saved vs
// the cost of the extra checks).
func AblationEarlyCert(w io.Writer, prof Profile) error {
	fmt.Fprintln(w, "Ablation — early certification (micro, 100% updates on a small table, CSC, 8 replicas)")
	fmt.Fprintf(w, "%-10s%12s%12s\n", "earlyCert", "TPS", "abortRate")
	for _, disable := range []bool{false, true} {
		res, err := RunEarlyCertPoint(disable, prof)
		if err != nil {
			return err
		}
		label := "on"
		if disable {
			label = "off"
		}
		fmt.Fprintf(w, "%-10s%12.1f%12.4f\n", label, res.Snapshot.TPS, res.Snapshot.AbortRate())
	}
	fmt.Fprintln(w)
	return nil
}

// RunSkewedMicro runs the granularity-ablation point: all updates on
// table 0, all reads on table 3, so FSC's reads never wait while CSC's
// reads wait for every update.
func RunSkewedMicro(mode core.Mode, prof Profile) (Result, error) {
	return Run(Point{
		Workload: "micro", Mode: mode,
		Replicas: 4, Clients: 32, UpdatePercent: 50,
		MicroScale:        micro.Scale{RowsPerTable: 2000, Seed: 77},
		MicroUpdateTables: []int{0},
		MicroReadTables:   []int{3},
	}, prof)
}

// RunEarlyCertPoint runs the early-certification ablation point with a
// deliberately tiny table to provoke conflicts.
func RunEarlyCertPoint(disableEarlyCert bool, prof Profile) (Result, error) {
	return Run(Point{
		Workload: "micro", Mode: core.Coarse,
		Replicas: MicroReplicas, Clients: MicroClients,
		UpdatePercent:    100,
		MicroScale:       micro.Scale{RowsPerTable: 64, Seed: 88},
		DisableEarlyCert: disableEarlyCert,
	}, prof)
}
