package certifier

import (
	"sync"

	"sconrep/internal/latency"
	"sconrep/internal/wal"
)

// groupLog forces one shard's certification decisions to the log in
// that shard's sequence order with group commit: concurrent committers
// enqueue their records, one of them becomes the flush leader, pays a
// single forced-I/O cost for the whole contiguous batch, and wakes the
// rest.
//
// This reproduces the real certifier's behaviour: decision durability
// is strictly ordered within the shard (no decision is acknowledged
// before its shard predecessors are durable) without limiting
// throughput to one forced write per transaction. Each sequencer owns
// one groupLog keyed by its dense per-shard sequence number; the
// single-shard configuration therefore keeps the original global
// ordering.
type groupLog struct {
	mu   sync.Mutex
	cond *sync.Cond
	// pending holds records awaiting the group flush, keyed by shard
	// sequence number.
	// guarded by mu
	pending map[uint64]*wal.Record
	// logged: all sequence numbers <= logged are durable.
	// guarded by mu
	logged uint64
	// next is the next sequence number to write (logged+1).
	// guarded by mu
	next uint64
	// flushing marks an in-flight leader flush.
	// guarded by mu
	flushing bool
	log      *wal.Log
	lat      *latency.Source
	// err is the first durable-write failure; fatal for the log.
	// guarded by mu
	err error
}

// pendingLen reports how many records await the group-commit flush —
// the observability layer's group-log backlog gauge.
func (g *groupLog) pendingLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// startAt moves the log cursor for a shard restored with v records
// already durable.
func (g *groupLog) startAt(v uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.logged = v
	g.next = v + 1
}

func newGroupLog(l *wal.Log, lat *latency.Source) *groupLog {
	g := &groupLog{
		pending: make(map[uint64]*wal.Record),
		next:    1,
		log:     l,
		lat:     lat,
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// commit makes the record for shard sequence number v durable and
// returns once every sequence number up to and including v is durable.
func (g *groupLog) commit(v uint64, rec *wal.Record) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pending[v] = rec

	for g.logged < v && g.err == nil {
		if g.flushing {
			g.cond.Wait()
			continue
		}
		if _, ready := g.pending[g.next]; !ready {
			// A predecessor has not arrived yet; its committer will
			// lead the flush.
			g.cond.Wait()
			continue
		}
		// Become the flush leader: take the longest contiguous prefix.
		var batch []*wal.Record
		first := g.next
		for {
			rec, ok := g.pending[g.next]
			if !ok {
				break
			}
			batch = append(batch, rec)
			delete(g.pending, g.next)
			g.next++
		}
		g.flushing = true
		g.mu.Unlock()

		// One forced write for the whole batch.
		if g.lat != nil {
			g.lat.CommitIO()
		}
		var err error
		if g.log != nil {
			for _, r := range batch {
				if err = g.log.Append(r); err != nil {
					break
				}
			}
		}

		g.mu.Lock()
		g.flushing = false
		if err != nil {
			g.err = err
		} else {
			g.logged = first + uint64(len(batch)) - 1
		}
		g.cond.Broadcast()
	}
	return g.err
}
