package certifier

import (
	"fmt"
	"testing"
	"time"
)

// TestCertifyRetryIsIdempotent: a certify request retried after a lost
// response (same origin, txn ID, and snapshot) must return the
// original decision without assigning a second version.
func TestCertifyRetryIsIdempotent(t *testing.T) {
	c := New()
	d1, err := c.Certify(0, 7, 0, ws("a"))
	if err != nil || !d1.Commit {
		t.Fatalf("d1 = %+v, %v", d1, err)
	}
	d2, err := c.Certify(0, 7, 0, ws("a"))
	if err != nil || d2 != d1 {
		t.Fatalf("retry = %+v, %v; want memoized %+v", d2, err, d1)
	}
	if c.Version() != d1.Version {
		t.Fatalf("version advanced to %d on a retry", c.Version())
	}
	// A different snapshot under the same IDs is NOT a retry (txn ID
	// reuse after a replica restart): it certifies fresh.
	d3, err := c.Certify(0, 7, d1.Version, ws("a"))
	if err != nil || !d3.Commit || d3.Version == d1.Version {
		t.Fatalf("fresh certify = %+v, %v", d3, err)
	}
}

// TestCertifyMemoSkipsAborts: abort decisions are not memoized — the
// conflict index only grows, so re-certifying is safe and lets a
// genuinely new attempt with the same ID proceed.
func TestCertifyMemoSkipsAborts(t *testing.T) {
	c := New()
	if d, err := c.Certify(0, 1, 0, ws("a")); err != nil || !d.Commit {
		t.Fatalf("setup: %+v, %v", d, err)
	}
	// Conflicting certify aborts.
	if d, err := c.Certify(1, 2, 0, ws("a")); err != nil || d.Commit {
		t.Fatalf("conflict not aborted: %+v, %v", d, err)
	}
	// The same request with a fresh snapshot commits — no stale abort
	// memo in the way.
	if d, err := c.Certify(1, 2, c.Version(), ws("a")); err != nil || !d.Commit {
		t.Fatalf("re-certify after refresh: %+v, %v", d, err)
	}
}

// TestCertifyMemoEviction: the memo is bounded; old entries fall out
// FIFO and the certifier keeps working past the cap. The run goes well
// past 2×memoCap because the previous implementation kept len(memo)
// bounded while leaking the eviction queue's backing array
// (memoOrder = memoOrder[1:] pins one key per certification ever
// made); the ring buffer must keep every structure at exactly memoCap.
func TestCertifyMemoEviction(t *testing.T) {
	c := New()
	const n = 2*memoCap + memoCap/2
	for i := 0; i < n; i++ {
		snap := c.Version()
		d, err := c.Certify(0, uint64(i+1), snap, ws(fmt.Sprintf("k%d", i%64)))
		if err != nil || !d.Commit {
			t.Fatalf("certify %d: %+v, %v", i, d, err)
		}
	}
	s := c.seqs[0]
	if len(s.memo) != memoCap {
		t.Fatalf("memo has %d entries, want exactly cap %d", len(s.memo), memoCap)
	}
	if len(s.memoRing) != memoCap || cap(s.memoRing) > 2*memoCap {
		t.Fatalf("eviction ring len=%d cap=%d after %d certifications; the ring must stay at memoCap=%d",
			len(s.memoRing), cap(s.memoRing), n, memoCap)
	}
	// FIFO correctness: exactly the newest memoCap keys survive.
	if _, ok := s.memo[memoKey{0, n}]; !ok {
		t.Fatal("newest decision evicted")
	}
	if _, ok := s.memo[memoKey{0, n - memoCap}]; ok {
		t.Fatalf("key %d should have been evicted", n-memoCap)
	}
	if _, ok := s.memo[memoKey{0, n - memoCap + 1}]; !ok {
		t.Fatalf("key %d should still be memoized", n-memoCap+1)
	}
}

// TestAppliedIsCumulative: acknowledging version v clears the replica
// from every eager wait at or below v, so coalesced acks (ship only
// the max) release all earlier global-commit waiters.
func TestAppliedIsCumulative(t *testing.T) {
	c := New(WithEager())
	c.Subscribe(0)
	c.Subscribe(1)
	defer c.Unsubscribe(0)
	defer c.Unsubscribe(1)

	var versions []uint64
	for i := 0; i < 3; i++ {
		d, err := c.Certify(0, uint64(i+1), c.Version(), ws(fmt.Sprintf("k%d", i)))
		if err != nil || !d.Commit {
			t.Fatalf("certify %d: %+v, %v", i, d, err)
		}
		versions = append(versions, d.Version)
	}
	done1 := c.GlobalCommitted(versions[0])
	done3 := c.GlobalCommitted(versions[2])
	select {
	case <-done1:
		t.Fatal("global commit before any ack")
	default:
	}
	// Each replica acks only the HIGHEST version, as the coalescing
	// wire client does.
	c.Applied(0, versions[2])
	c.Applied(1, versions[2])
	for i, ch := range []<-chan struct{}{done1, done3} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("wait %d not released by cumulative ack", i)
		}
	}
}

// TestSubscriptionCancelRespectsReplacement: Cancel on a superseded
// subscription (the lease timer of a dead stream firing after the
// replica already resubscribed) must not tear down the live one.
func TestSubscriptionCancelRespectsReplacement(t *testing.T) {
	c := New()
	old := c.Subscribe(0)
	replacement := c.Subscribe(0) // replica reconnected
	old.Cancel()                  // stale lease fires afterwards

	if d, err := c.Certify(1, 1, 0, ws("a")); err != nil || !d.Commit {
		t.Fatalf("certify: %+v, %v", d, err)
	}
	got, ok := replacement.Take()
	if !ok || len(got) != 1 {
		t.Fatalf("live subscription lost its stream: %v, %v", got, ok)
	}
	// Cancel on the current subscription does unsubscribe.
	replacement.Cancel()
	if replicas := c.Replicas(); len(replicas) != 0 {
		t.Fatalf("replicas after cancel = %v", replicas)
	}
}
