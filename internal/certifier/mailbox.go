package certifier

import (
	"runtime"
	"sync"
)

// mailbox is an unbounded FIFO queue connecting the certifier to one
// replica's refresh applier. The certifier must never block on a slow
// replica (that is exactly the coupling the lazy design removes), so
// sends always succeed; the applier drains at its own pace.
type mailbox struct {
	// mu guards the queue; the certifier fans refreshes out to every
	// subscriber's mailbox while holding its own registry lock.
	// locks after Certifier.mu
	mu sync.Mutex
	// items is the queued refresh backlog.
	// guarded by mu
	items  []Refresh
	notify chan struct{} // 1-buffered wakeup
	// closed drops further puts.
	// guarded by mu
	closed bool
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

// put enqueues one refresh. It is a no-op after close.
func (m *mailbox) put(r Refresh) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.items = append(m.items, r)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// coalesceRounds bounds take's burst coalescing: after the first
// refresh lands, take yields to the scheduler at most this many times
// while the queue keeps growing, so a burst of concurrent committers
// collapses into one larger batch (one wire frame, one group-apply)
// without adding measurable latency when the queue is quiet.
const coalesceRounds = 2

// take removes and returns all queued refreshes, blocking until at
// least one is available or the mailbox is closed. ok is false once
// the mailbox is closed and drained. Under load it coalesces: having
// seen a non-empty queue, it briefly yields and re-drains while
// concurrent committers are still appending.
func (m *mailbox) take() (batch []Refresh, ok bool) {
	for {
		m.mu.Lock()
		if len(m.items) > 0 {
			for round := 0; round < coalesceRounds && !m.closed; round++ {
				n := len(m.items)
				m.mu.Unlock()
				runtime.Gosched()
				m.mu.Lock()
				if len(m.items) == n {
					break // the burst has drained; ship what we have
				}
			}
			batch = m.items
			m.items = nil
			m.mu.Unlock()
			return batch, true
		}
		if m.closed {
			m.mu.Unlock()
			return nil, false
		}
		m.mu.Unlock()
		<-m.notify
	}
}

// tryTake is take without blocking.
func (m *mailbox) tryTake() []Refresh {
	m.mu.Lock()
	defer m.mu.Unlock()
	batch := m.items
	m.items = nil
	return batch
}

// peekPending returns a snapshot of the queued refreshes without
// removing them — the proxy's early certification scans these.
func (m *mailbox) peekPending() []Refresh {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Refresh(nil), m.items...)
}

// len returns the number of queued refreshes.
func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// close wakes any blocked take; subsequent puts are dropped.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}
