package certifier

import (
	"sort"
	"sync"

	"sconrep/internal/latency"
	"sconrep/internal/wal"
	"sconrep/internal/writeset"
)

// sequencer is one shard's certification state: its own conflict
// index, history suffix, decision memo, and group-commit log stream.
// Single-shard transactions touch exactly one sequencer's lock;
// cross-shard transactions lock every involved sequencer in ascending
// shard-ID order (the reserve step), so two conflicting transactions —
// which necessarily share a table, hence a shard — always serialize on
// that shard's lock, while disjoint-shard commits never contend.
type sequencer struct {
	id int
	// mu serializes this shard's certification state. Cross-shard
	// paths hold several sequencer locks at once, always taken in
	// ascending shard-ID order (sconrep-vet lockorder enforces the
	// tagged loops).
	// locks self ascending
	mu sync.Mutex
	// index is the shard's conflict index over the certification
	// window. Cross-shard writesets are indexed in full on every
	// involved shard: redundant entries cannot produce false positives
	// (a record collision implies a table collision implies this
	// shard), and they make each shard's FCW test self-contained.
	// guarded by mu
	index *writeset.Index
	// history is the shard's slice of the refresh log, version-sorted
	// by construction (versions are drawn from the global counter while
	// this lock is held). Cross-shard decisions live only in their home
	// shard (lowest involved ID). A nil writeset marks a version whose
	// record was lost with the certifier (crash before the group flush;
	// the transaction was never acknowledged or fanned out) — replicas
	// advance past it without applying anything.
	// guarded by mu
	history []historyEntry
	// tableVers is the latest commit version per table owned by this
	// shard.
	// guarded by mu
	tableVers map[string]uint64
	// memo holds recent commit decisions for retried certification
	// requests, keyed by the transaction's home shard.
	// guarded by mu
	memo map[memoKey]memoEntry
	// memoRing is the memo's FIFO eviction ring: a fixed-capacity
	// buffer reused circularly. (The previous implementation re-sliced
	// an append-only queue — memoOrder = memoOrder[1:] — which pinned
	// the ever-growing backing array and every evicted key in it.)
	// guarded by mu
	memoRing []memoKey
	// memoHead indexes the oldest ring slot once the ring is full.
	// guarded by mu
	memoHead int
	// seq is the shard's durable log sequence: the number of decisions
	// this shard has handed to its group log. The group log orders and
	// batches by seq, so each shard's durability pipeline is
	// independent of every other shard's.
	// guarded by mu
	seq  uint64
	glog *groupLog
}

func newSequencer(id int, log *wal.Log, lat *latency.Source) *sequencer {
	return &sequencer{
		id:        id,
		index:     writeset.NewIndex(),
		tableVers: make(map[string]uint64),
		memo:      make(map[memoKey]memoEntry),
		glog:      newGroupLog(log, lat),
	}
}

// memoPut records a commit decision, evicting the oldest memo entry
// once the ring is at capacity. Caller holds s.mu.
func (s *sequencer) memoPut(k memoKey, e memoEntry) {
	if len(s.memoRing) < memoCap {
		s.memoRing = append(s.memoRing, k)
	} else {
		delete(s.memo, s.memoRing[s.memoHead])
		s.memoRing[s.memoHead] = k
		s.memoHead++
		if s.memoHead == memoCap {
			s.memoHead = 0
		}
	}
	s.memo[k] = e
}

// historyAfter returns up to MaxHistoryBatch of the shard's history
// entries with versions above after. Caller holds s.mu; the returned
// slice is a copy.
func (s *sequencer) historyAfter(after uint64) []historyEntry {
	i := sort.Search(len(s.history), func(i int) bool { return s.history[i].version > after })
	if i == len(s.history) {
		return nil
	}
	n := len(s.history) - i
	if n > MaxHistoryBatch {
		n = MaxHistoryBatch
	}
	return append([]historyEntry(nil), s.history[i:i+n]...)
}
