// Package certifier implements the certification service of §IV: it
// decides whether update transactions commit, assigns the global
// commit order, makes decisions durable, and forwards refresh
// writesets to the other replicas.
//
// The certifier is the only component that orders commits, which is
// what lets replicas run with non-forced logs (Tashkent-style
// durability) and lets the load balancer track versions without
// coordination.
//
// Beyond the paper's single sequencer, the certifier can be
// partitioned into per-shard sequencers keyed by table groups
// (WithShards): transactions whose writesets fall in one shard certify
// with zero shared locking against other shards, cross-shard
// transactions lock their involved sequencers in ascending shard-ID
// order, and versions are drawn from one global dense counter so every
// replica still applies one contiguous version order.
package certifier

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sconrep/internal/latency"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/shard"
	"sconrep/internal/wal"
	"sconrep/internal/writeset"
)

// Refresh is one committed update transaction shipped to a replica
// that did not originate it.
type Refresh struct {
	TxnID   uint64
	Version uint64
	Origin  int // originating replica ID (-1 for recovery replays)
	// WS also carries the certifying span's context (WriteSet.Trace)
	// when tracing is enabled: trace baggage rides the shared writeset
	// clone so this envelope — copied by value through mailbox rings,
	// reorder buffers, and group-apply batches — stays exactly as small
	// as before tracing.
	//
	// WS is nil for a version skip marker: the version was certified on
	// a shard the receiving replica does not subscribe to (or its
	// record was lost with a crashed certifier before anyone saw it),
	// so the replica advances its version counter without applying
	// anything.
	WS *writeset.WriteSet
}

// Decision is the certifier's answer for one update transaction.
type Decision struct {
	Commit  bool
	Version uint64 // assigned commit version when Commit
}

// ErrSnapshotTooOld is returned when a transaction's snapshot predates
// the certifier's trimmed conflict window; the transaction must abort
// conservatively.
var ErrSnapshotTooOld = errors.New("certifier: snapshot below certification window")

// MaxHistoryBatch caps how many refreshes one History call returns. A
// recovering replica that is far behind loops over pages instead of
// receiving (and allocating, and framing onto the wire) its entire
// missed suffix in one response.
const MaxHistoryBatch = 4096

type historyEntry struct {
	txnID   uint64
	version uint64
	origin  int
	ws      *writeset.WriteSet
}

type eagerWait struct {
	// waiting tracks the replica IDs that have not yet applied.
	waiting map[int]bool
	done    chan struct{}
}

// memoKey identifies one certification request for idempotency.
type memoKey struct {
	origin int
	txnID  uint64
}

// memoEntry is a memoized commit decision. snapshot distinguishes a
// retried request from an unrelated reuse of the same txn ID (e.g.
// after a replica restart).
type memoEntry struct {
	snapshot uint64
	dec      Decision
}

// memoCap bounds each shard's decision memo (FIFO ring eviction). It
// only needs to cover the window between a lost certify response and
// its retry, so a few thousand decisions is plenty.
const memoCap = 8192

// subscriber is one replica's refresh attachment: its mailbox plus the
// set of shards it serves (nil = all shards). Versions certified
// entirely on unserved shards are delivered as skip markers (nil
// writeset) so the replica's contiguous version order survives partial
// subscription.
type subscriber struct {
	mb *mailbox
	// serves[shard] reports subscription to that shard; nil serves all.
	serves []bool
}

func (s *subscriber) servesAny(shards []int) bool {
	if s.serves == nil {
		return true
	}
	for _, id := range shards {
		if id < len(s.serves) && s.serves[id] {
			return true
		}
	}
	return false
}

// Certifier orders and certifies update transactions. All methods are
// safe for concurrent use.
type Certifier struct {
	// smap keys tables to sequencers; immutable after New.
	smap *shard.Map
	// seqs holds one sequencer per shard; immutable after New.
	seqs []*sequencer
	// version is the latest assigned commit version — one global dense
	// counter, advanced while holding the assigning transaction's
	// shard locks so each shard's history stays version-sorted.
	version atomic.Uint64
	// floor: snapshots below floor cannot be certified.
	floor atomic.Uint64

	mu sync.Mutex
	// subs maps replica ID to its refresh subscriber.
	// guarded by mu
	subs map[int]*subscriber
	log  *wal.Log
	lat  *latency.Source

	// eager mode bookkeeping: per-version apply counters.
	eager bool
	// waits tracks outstanding eager global-commit waits.
	// guarded by mu
	waits map[uint64]*eagerWait

	// Live-observability counters (nil-safe no-ops until EnableObs).
	obsCommits *obs.Counter
	obsAborts  *obs.Counter
	obsTooOld  *obs.Counter

	// tracer mints certification spans; nil (one atomic load) until
	// EnableTracing.
	tracer atomic.Pointer[dtrace.Tracer]
}

// Option configures a Certifier.
type Option func(*Certifier)

// WithWAL makes decisions durable in the given log. With shards, every
// sequencer's group-commit stream appends to this one log (Append is
// thread-safe); records from different shards interleave, each shard's
// records in its own order, and recovery re-sorts by version.
func WithWAL(l *wal.Log) Option { return func(c *Certifier) { c.log = l } }

// WithLatency injects the simulated certification costs.
func WithLatency(s *latency.Source) Option { return func(c *Certifier) { c.lat = s } }

// WithEager enables global-commit tracking for eager strong
// consistency.
func WithEager() Option { return func(c *Certifier) { c.eager = true } }

// WithShards partitions certification by the given table→shard map.
// Nil (or a single-shard map) keeps the paper's single sequencer.
func WithShards(m *shard.Map) Option { return func(c *Certifier) { c.smap = m } }

// New returns a certifier at version 0.
func New(opts ...Option) *Certifier {
	c := &Certifier{
		subs:  make(map[int]*subscriber),
		waits: make(map[uint64]*eagerWait),
	}
	for _, o := range opts {
		o(c)
	}
	if c.smap == nil {
		c.smap = shard.Single()
	}
	c.seqs = make([]*sequencer, c.smap.N())
	for i := range c.seqs {
		c.seqs[i] = newSequencer(i, c.log, c.lat)
	}
	return c
}

// Shards returns the number of certification shards.
func (c *Certifier) Shards() int { return len(c.seqs) }

// ShardMap returns the table→shard assignment.
func (c *Certifier) ShardMap() *shard.Map { return c.smap }

// lockAll acquires every sequencer lock in shard-ID order.
func (c *Certifier) lockAll() {
	// lockorder: ascending
	for _, s := range c.seqs {
		s.mu.Lock()
	}
}

func (c *Certifier) unlockAll() {
	for i := len(c.seqs) - 1; i >= 0; i-- {
		c.seqs[i].mu.Unlock()
	}
}

// StartAt initializes the version counter of a fresh certifier to v —
// used when replicas are bootstrapped with identical preloaded data at
// version v outside the replication protocol. Until the first decision
// is certified the counter may be re-raised (never lowered): wire
// hellos adopt each replica's live Vlocal, and a hello racing an
// in-progress bootstrap can land a partial version that a later
// StartAt must supersede. Once any decision exists the counter is
// locked — moving it would re-assign versions already applied.
func (c *Certifier) StartAt(v uint64) error {
	c.lockAll()
	defer c.unlockAll()
	for _, s := range c.seqs {
		if len(s.history) != 0 {
			return errors.New("certifier: StartAt after decisions were certified")
		}
	}
	if v < c.version.Load() {
		return errors.New("certifier: StartAt below current version")
	}
	c.version.Store(v)
	return nil
}

// Version returns the latest assigned commit version.
func (c *Certifier) Version() uint64 {
	return c.version.Load()
}

// Subscribe registers a replica to receive every shard's refresh
// stream and returns its mailbox handle. Re-subscribing (recovery)
// replaces the previous mailbox.
func (c *Certifier) Subscribe(replicaID int) *Subscription {
	return c.SubscribeShards(replicaID, nil)
}

// SubscribeShards registers a replica for the refresh streams of the
// given shards only (nil or empty = all shards). Versions certified
// entirely on other shards arrive as skip markers — refreshes with a
// nil writeset — so the replica's version order stays contiguous while
// it receives only the row data it serves.
func (c *Certifier) SubscribeShards(replicaID int, shards []int) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.subs[replicaID]; ok {
		old.mb.close()
	}
	sub := &subscriber{mb: newMailbox()}
	if len(shards) > 0 && len(c.seqs) > 1 {
		serves := make([]bool, len(c.seqs))
		for _, id := range shards {
			if id >= 0 && id < len(serves) {
				serves[id] = true
			}
		}
		sub.serves = serves
	}
	c.subs[replicaID] = sub
	return &Subscription{c: c, replicaID: replicaID, mb: sub.mb}
}

// Unsubscribe detaches a replica (crash). Pending eager waits stop
// counting it.
func (c *Certifier) Unsubscribe(replicaID int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unsubscribeLocked(replicaID)
}

func (c *Certifier) unsubscribeLocked(replicaID int) {
	if sub, ok := c.subs[replicaID]; ok {
		sub.mb.close()
		delete(c.subs, replicaID)
	}
	// A crashed replica will never ack: stop waiting for it.
	for v, w := range c.waits {
		if w.waiting[replicaID] {
			delete(w.waiting, replicaID)
			if len(w.waiting) == 0 {
				close(w.done)
				delete(c.waits, v)
			}
		}
	}
}

// Subscription is one replica's attachment to the certifier.
type Subscription struct {
	c         *Certifier
	replicaID int
	mb        *mailbox
}

// Cancel unsubscribes the replica only if this subscription is still
// its current one. A stale stream handler (the replica already
// resubscribed, perhaps through a restarted server) must not detach
// the live subscription; its dead mailbox is simply closed.
func (s *Subscription) Cancel() {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if cur, ok := s.c.subs[s.replicaID]; ok && cur.mb == s.mb {
		s.c.unsubscribeLocked(s.replicaID)
		return
	}
	s.mb.close()
}

// Take blocks for the next batch of refresh writesets; ok is false
// after Unsubscribe/Close.
func (s *Subscription) Take() ([]Refresh, bool) { return s.mb.take() }

// Pending returns the refreshes queued but not yet taken — the
// proxy's early certification scans these.
func (s *Subscription) Pending() []Refresh { return s.mb.peekPending() }

// QueueLen returns the number of queued refreshes.
func (s *Subscription) QueueLen() int { return s.mb.len() }

// EnableObs registers the certifier's live metrics with reg: the
// version counter (Vsystem as the certifier sees it), certification
// and conflict rates, group-log backlog, per-replica mailbox depth,
// and outstanding eager global-commit waits. Call once, before
// serving traffic.
func (c *Certifier) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	c.obsCommits = reg.Counter("sconrep_certifier_commits_total",
		"Update transactions certified and committed.")
	c.obsAborts = reg.Counter("sconrep_certifier_conflicts_total",
		"Update transactions rejected by the first-committer-wins test.")
	c.obsTooOld = reg.Counter("sconrep_certifier_snapshot_too_old_total",
		"Transactions rejected because their snapshot predates the trimmed conflict window.")
	c.mu.Unlock()
	reg.GaugeFunc("sconrep_certifier_version",
		"Latest assigned commit version (the system-wide Vsystem source).",
		func() float64 { return float64(c.Version()) })
	reg.GaugeFunc("sconrep_certifier_group_log_pending",
		"Decision-log records enqueued for the group-commit flush but not yet durable, across shards.",
		func() float64 {
			n := 0
			for _, s := range c.seqs {
				n += s.glog.pendingLen()
			}
			return float64(n)
		})
	reg.GaugeFunc("sconrep_certifier_eager_outstanding",
		"Committed versions still waiting for every replica's apply acknowledgment (eager mode).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.waits))
		})
	reg.GaugeFunc("sconrep_certifier_history_len",
		"Refresh history entries retained for recovery catch-up (trimmed by TrimBelow), across shards.",
		func() float64 {
			n := 0
			for _, s := range c.seqs {
				s.mu.Lock()
				n += len(s.history)
				s.mu.Unlock()
			}
			return float64(n)
		})
	reg.GaugeFunc("sconrep_certifier_subscribed_replicas",
		"Replicas currently attached to the refresh stream.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.subs))
		})
	reg.GaugeVecFunc("sconrep_certifier_mailbox_depth",
		"Refresh writesets queued per replica mailbox, not yet taken by its applier.",
		"replica", func() map[string]float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			out := make(map[string]float64, len(c.subs))
			for id, sub := range c.subs {
				out[strconv.Itoa(id)] = float64(sub.mb.len())
			}
			return out
		})
}

// EnableTracing attaches the distributed tracer; certifications then
// record certifier.certify spans (with the group-log append as a child
// span) parented under the caller's wire-propagated context. Call
// before traffic.
func (c *Certifier) EnableTracing(tr *dtrace.Tracer) { c.tracer.Store(tr) }

// TableVersions returns the latest commit version that wrote each
// table — the authoritative side of per-table replication lag. Tables
// never written do not appear.
func (c *Certifier) TableVersions() map[string]uint64 {
	out := make(map[string]uint64)
	for _, s := range c.seqs {
		s.mu.Lock()
		for t, v := range s.tableVers {
			out[t] = v
		}
		s.mu.Unlock()
	}
	return out
}

// Certify decides one update transaction: it commits iff its writeset
// does not conflict with any writeset committed after the
// transaction's snapshot (the GSI first-committer-wins test, §IV).
// On commit the decision is logged, the conflict index updated, and
// the refresh fanned out to every replica except the origin.
func (c *Certifier) Certify(origin int, txnID, snapshot uint64, ws *writeset.WriteSet) (Decision, error) {
	return c.CertifyCtx(origin, txnID, snapshot, ws, dtrace.SpanContext{})
}

// CertifyCtx is Certify with the caller's span context: the decision
// is recorded as a certifier.certify span parented under sc, and the
// fanned-out refreshes carry the certify span so remote applies join
// the same trace.
//
// Sharded certification runs in two steps. Reserve: lock every
// involved sequencer in ascending shard-ID order (deadlock-free; two
// conflicting transactions share a table and therefore a shard, so
// first-committer-wins serialization is preserved), run the conflict
// test against each involved shard's index, and draw the next global
// version. Seal: install the writeset in each involved index, record
// the decision in the home shard (lowest involved ID), and release the
// locks; durability and fan-out then proceed through the home shard's
// group log without blocking other shards.
func (c *Certifier) CertifyCtx(origin int, txnID, snapshot uint64, ws *writeset.WriteSet, sc dtrace.SpanContext) (Decision, error) {
	if ws.Empty() {
		return Decision{}, fmt.Errorf("certifier: empty writeset for txn %d (read-only transactions commit locally)", txnID)
	}
	span := c.tracer.Load().StartSpan("certifier.certify", sc)
	defer span.End()
	span.SetAttr("origin", strconv.Itoa(origin))
	shardIDs := c.smap.OfTables(ws.Tables())
	home := c.seqs[shardIDs[0]]

	// Reserve: involved shard locks, ascending (OfTables returns
	// sorted unique IDs).
	// lockorder: ascending
	for _, id := range shardIDs {
		c.seqs[id].mu.Lock()
	}
	unlock := func() {
		for i := len(shardIDs) - 1; i >= 0; i-- {
			c.seqs[shardIDs[i]].mu.Unlock()
		}
	}
	// Retried request (the response was lost in transit): return the
	// original commit decision instead of assigning a second version.
	// Only commits are memoized — re-certifying an aborted transaction
	// re-aborts it, since the conflict index only grows. The memo lives
	// in the home shard, which a retry recomputes identically from the
	// same writeset.
	if m, ok := home.memo[memoKey{origin, txnID}]; ok && m.snapshot == snapshot {
		unlock()
		span.SetAttr("decision", "memoized")
		return m.dec, nil
	}
	if snapshot < c.floor.Load() {
		c.obsTooOld.Inc()
		unlock()
		span.SetAttr("decision", "snapshot_too_old")
		return Decision{}, ErrSnapshotTooOld
	}
	if c.lat != nil {
		c.lat.Certify()
	}
	for _, id := range shardIDs {
		if c.seqs[id].index.ConflictsAfter(ws, snapshot) {
			c.obsAborts.Inc()
			unlock()
			span.SetAttr("decision", "conflict")
			return Decision{Commit: false}, nil
		}
	}
	c.obsCommits.Inc()
	// Seal: draw the global version while the involved locks are held
	// (per-shard histories stay version-sorted), install, record.
	v := c.version.Add(1)
	cp := ws.Clone()
	if span != nil {
		sc := span.Context()
		cp.Trace = &sc
	}
	for _, id := range shardIDs {
		c.seqs[id].index.Add(cp, v)
	}
	for _, t := range cp.Tables() {
		s := c.seqs[c.smap.Of(t)]
		s.tableVers[t] = v
	}
	home.history = append(home.history, historyEntry{txnID: txnID, version: v, origin: origin, ws: cp})
	home.memoPut(memoKey{origin, txnID}, memoEntry{snapshot: snapshot, dec: Decision{Commit: true, Version: v}})
	home.seq++
	seqNo := home.seq
	unlock()

	if c.eager {
		// Every subscribed replica other than the origin must apply
		// before the global commit completes.
		c.mu.Lock()
		waiting := make(map[int]bool, len(c.subs))
		for id := range c.subs {
			if id != origin {
				waiting[id] = true
			}
		}
		if len(waiting) > 0 {
			c.waits[v] = &eagerWait{waiting: waiting, done: make(chan struct{})}
		}
		c.mu.Unlock()
	}

	span.SetAttr("decision", "commit")
	span.SetAttr("version", strconv.FormatUint(v, 10))

	// Durability before propagation, via the home shard's group commit:
	// records reach the log in per-shard order, one forced write
	// amortized over each shard's contiguous batch of concurrent
	// committers. (Durability ordering is per shard, not global — see
	// DESIGN.md: a version whose record is lost with a crashed
	// certifier was never acknowledged or fanned out, and recovery
	// replays it as a skip marker.)
	logSpan := c.tracer.Load().StartSpan("certifier.log_append", span.Context())
	err := home.glog.commit(seqNo, &wal.Record{Version: v, TxnID: txnID, WriteSet: *cp})
	logSpan.End()
	if err != nil {
		return Decision{}, fmt.Errorf("certifier: durability: %w", err)
	}

	// Fan out the refresh writeset, each refresh carrying the certify
	// span so remote applies parent under this certification. Replicas
	// not subscribed to any involved shard get a skip marker (nil
	// writeset) so their version order stays contiguous. Mailbox
	// arrival order is not guaranteed to be version order across
	// concurrent commits; the replica applier reorders by version.
	c.mu.Lock()
	for id, sub := range c.subs {
		if id == origin {
			continue
		}
		r := Refresh{TxnID: txnID, Version: v, Origin: origin, WS: cp}
		if !sub.servesAny(shardIDs) {
			r.WS = nil
		}
		sub.mb.put(r)
	}
	c.mu.Unlock()
	return Decision{Commit: true, Version: v}, nil
}

// Applied records that a replica other than the origin has applied and
// committed version v — the eager mode's global-commit accounting.
// Acks are cumulative: replicas apply in strict version order, so an
// ack for v also clears the replica from every wait below v. That
// makes coalesced and retried acks (the wire client ships only the
// highest version) sound.
func (c *Certifier) Applied(replicaID int, v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for ver, w := range c.waits {
		if ver > v || !w.waiting[replicaID] {
			continue
		}
		delete(w.waiting, replicaID)
		if len(w.waiting) == 0 {
			close(w.done)
			delete(c.waits, ver)
		}
	}
}

// GlobalCommitted returns a channel closed once every replica has
// applied version v. A nil channel (already satisfied) is returned
// when no wait is registered.
func (c *Certifier) GlobalCommitted(v uint64) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.waits[v]; ok {
		return w.done
	}
	closed := make(chan struct{})
	close(closed)
	return closed
}

// History returns one version-ordered page (at most MaxHistoryBatch
// entries) of the refresh stream with versions above after, for a
// recovering replica to catch up from its durable state. Callers loop
// until an empty page; pages are contiguous, so together with the
// caller's live subscription (established before the first History
// call) every version is delivered exactly by one of the two paths —
// the reorder buffer deduplicates overlap. Each shard's history is
// version-sorted by construction, so the per-shard cut is a binary
// search and the page a bounded k-way merge — no call scans or copies
// the whole retained history.
//
// Contiguity across shards is load-bearing: a version reserved by a
// concurrent certification that has not sealed into its shard's
// history yet must not be skipped — a higher version on another shard
// may have been fanned out before the caller subscribed, so truncating
// at the gap and relying on the stream would lose it forever. History
// therefore waits out in-flight seals (they last one certification
// critical section) instead of returning a page with a hole.
func (c *Certifier) History(after uint64) []Refresh {
	for {
		out, ok := c.historyPage(after)
		if ok {
			return out
		}
		// The version right above after is assigned but mid-seal on its
		// shard; it lands as soon as the writer leaves its critical
		// section.
		time.Sleep(20 * time.Microsecond)
	}
}

// historyPage builds one page; ok is false when the page would start
// at an assigned-but-not-yet-sealed version and the caller must retry.
func (c *Certifier) historyPage(after uint64) ([]Refresh, bool) {
	// Per-shard pages, each cut by binary search under that shard's
	// lock only.
	pages := make([][]historyEntry, 0, len(c.seqs))
	for _, s := range c.seqs {
		s.mu.Lock()
		if p := s.historyAfter(after); len(p) > 0 {
			pages = append(pages, p)
		}
		s.mu.Unlock()
	}
	if len(pages) == 0 {
		// Nothing recorded above after. Versions in (after, Version()]
		// that are still mid-seal will fan out after the caller's
		// subscription, so an empty page is a safe "caught up".
		return nil, true
	}
	if len(pages) == 1 && c.contiguous(pages[0], after) {
		return refreshPage(pages[0]), true
	}
	// K-way merge by version. A gap at the front of the page means the
	// missing version is assigned but mid-seal — retry. A gap after some
	// progress truncates the page (the next call resumes at the gap). A
	// front jump below the trim floor is a trimmed prefix the caller
	// detects and resynchronizes on.
	out := make([]Refresh, 0, MaxHistoryBatch)
	next := after + 1
	for len(out) < MaxHistoryBatch {
		best := -1
		for i, p := range pages {
			if len(p) == 0 {
				continue
			}
			if best == -1 || p[0].version < pages[best][0].version {
				best = i
			}
		}
		if best == -1 {
			break
		}
		h := pages[best][0]
		if h.version != next {
			if len(out) != 0 {
				break
			}
			if after >= c.floor.Load() {
				return nil, false
			}
			// Trimmed region: the page legitimately starts above
			// after+1; the caller sees the jump and resynchronizes.
			next = h.version
		}
		out = append(out, Refresh{TxnID: h.txnID, Version: h.version, Origin: -1, WS: h.ws})
		next = h.version + 1
		pages[best] = pages[best][1:]
	}
	return out, true
}

// FilterUnserved replaces the writeset of every refresh certified
// entirely outside the given shard set with a skip marker (nil
// writeset), in place — the history-backfill counterpart of a partial
// refresh subscription. A nil or empty shard set serves everything and
// returns refs untouched.
func (c *Certifier) FilterUnserved(refs []Refresh, shards []int) []Refresh {
	if len(shards) == 0 || len(c.seqs) == 1 {
		return refs
	}
	serves := make([]bool, len(c.seqs))
	for _, id := range shards {
		if id >= 0 && id < len(serves) {
			serves[id] = true
		}
	}
	for i := range refs {
		if refs[i].WS == nil {
			continue
		}
		served := false
		for _, id := range c.smap.OfTables(refs[i].WS.Tables()) {
			if serves[id] {
				served = true
				break
			}
		}
		if !served {
			refs[i].WS = nil
		}
	}
	return refs
}

// contiguous reports whether the page starts at after+1 (or inside the
// trimmed region) and has no version gaps — the single-shard fast path
// that skips the merge loop.
func (c *Certifier) contiguous(page []historyEntry, after uint64) bool {
	if page[0].version != after+1 && after >= c.floor.Load() {
		return false
	}
	for i := 1; i < len(page); i++ {
		if page[i].version != page[i-1].version+1 {
			return false
		}
	}
	return true
}

func refreshPage(page []historyEntry) []Refresh {
	out := make([]Refresh, 0, len(page))
	for i := range page {
		h := &page[i]
		out = append(out, Refresh{TxnID: h.txnID, Version: h.version, Origin: -1, WS: h.ws})
	}
	return out
}

// TrimBelow discards conflict-index entries and history at or below
// watermark. Transactions with older snapshots are subsequently
// rejected with ErrSnapshotTooOld, so the watermark must not exceed
// the oldest version any replica could still begin a transaction at.
func (c *Certifier) TrimBelow(watermark uint64) {
	for {
		old := c.floor.Load()
		if watermark <= old {
			return
		}
		if c.floor.CompareAndSwap(old, watermark) {
			break
		}
	}
	for _, s := range c.seqs {
		s.mu.Lock()
		s.index.Forget(watermark)
		keep := s.history[:0]
		for _, h := range s.history {
			if h.version > watermark {
				keep = append(keep, h)
			}
		}
		s.history = keep
		s.mu.Unlock()
	}
}

// Replicas returns the IDs of currently subscribed replicas.
func (c *Certifier) Replicas() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.subs))
	for id := range c.subs {
		out = append(out, id)
	}
	return out
}

// RestoreFromWAL rebuilds certifier state (version counter, conflict
// indexes, history) by replaying a decision log — certifier crash
// recovery.
//
// Single-shard logs are strictly version-ordered, so a gap is
// corruption. With shards, records interleave in per-shard order: the
// replay is sorted by version, a duplicate version is corruption, and
// a missing version — assigned by a sequencer whose record did not
// reach the log before the crash — is replayed as a skip marker (nil
// writeset): such a transaction was never acknowledged or fanned out,
// so no replica and no client ever observed it.
func (c *Certifier) RestoreFromWAL(records func(fn func(*wal.Record) error) error) error {
	c.lockAll()
	defer c.unlockAll()
	if c.version.Load() != 0 {
		return errors.New("certifier: RestoreFromWAL on non-empty certifier")
	}
	for _, s := range c.seqs {
		if len(s.history) != 0 {
			return errors.New("certifier: RestoreFromWAL on non-empty certifier")
		}
	}
	if len(c.seqs) == 1 {
		if err := c.restoreSingleLocked(records); err != nil {
			return err
		}
	} else if err := c.restoreShardedLocked(records); err != nil {
		return err
	}
	// Continue each shard's durable log exactly where its replay ended.
	for _, s := range c.seqs {
		s.glog.startAt(s.seq)
	}
	return nil
}

// restoreSingleLocked is the legacy strict replay: one sequencer, one
// version-ordered log stream. Caller holds every sequencer lock.
func (c *Certifier) restoreSingleLocked(records func(fn func(*wal.Record) error) error) error {
	s := c.seqs[0]
	first := true
	return records(func(r *wal.Record) error {
		if first {
			// The first record sets the baseline: data bootstrapped at
			// StartAt(v) makes the log begin at v+1.
			first = false
		} else if r.Version != c.version.Load()+1 {
			return fmt.Errorf("certifier: wal gap: have %d, next record %d", c.version.Load(), r.Version)
		}
		c.version.Store(r.Version)
		ws := r.WriteSet.Clone()
		s.index.Add(ws, r.Version)
		for _, t := range ws.Tables() {
			s.tableVers[t] = r.Version
		}
		s.history = append(s.history, historyEntry{txnID: r.TxnID, version: r.Version, origin: -1, ws: ws})
		s.seq++
		return nil
	})
}

// restoreShardedLocked sorts the replay by version, distributes
// records to their shards, and fills lost versions with skip markers.
// Caller holds every sequencer lock.
func (c *Certifier) restoreShardedLocked(records func(fn func(*wal.Record) error) error) error {
	type rec struct {
		version uint64
		txnID   uint64
		ws      *writeset.WriteSet
	}
	var recs []rec
	err := records(func(r *wal.Record) error {
		recs = append(recs, rec{version: r.Version, txnID: r.TxnID, ws: r.WriteSet.Clone()})
		return nil
	})
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].version < recs[j].version })
	prev := recs[0].version - 1
	for _, r := range recs {
		if r.version == prev {
			return fmt.Errorf("certifier: wal corrupt: version %d recorded twice", r.version)
		}
		// Versions lost between durable records: reserved by a shard
		// whose group flush never completed. Nobody observed them;
		// replicas advance past them without applying.
		for v := prev + 1; v < r.version; v++ {
			c.seqs[0].history = append(c.seqs[0].history, historyEntry{version: v, origin: -1, ws: nil})
		}
		ids := c.smap.OfTables(r.ws.Tables())
		home := c.seqs[ids[0]]
		for _, id := range ids {
			c.seqs[id].index.Add(r.ws, r.version)
		}
		for _, t := range r.ws.Tables() {
			c.seqs[c.smap.Of(t)].tableVers[t] = r.version
		}
		home.history = append(home.history, historyEntry{txnID: r.txnID, version: r.version, origin: -1, ws: r.ws})
		home.seq++
		prev = r.version
	}
	c.version.Store(prev)
	return nil
}
