// Package certifier implements the certification service of §IV: it
// decides whether update transactions commit, assigns the global
// commit order, makes decisions durable, and forwards refresh
// writesets to the other replicas.
//
// The certifier is the only component that orders commits, which is
// what lets replicas run with non-forced logs (Tashkent-style
// durability) and lets the load balancer track versions without
// coordination.
package certifier

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"sconrep/internal/latency"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/wal"
	"sconrep/internal/writeset"
)

// Refresh is one committed update transaction shipped to a replica
// that did not originate it.
type Refresh struct {
	TxnID   uint64
	Version uint64
	Origin  int // originating replica ID (-1 for recovery replays)
	// WS also carries the certifying span's context (WriteSet.Trace)
	// when tracing is enabled: trace baggage rides the shared writeset
	// clone so this envelope — copied by value through mailbox rings,
	// reorder buffers, and group-apply batches — stays exactly as small
	// as before tracing.
	WS *writeset.WriteSet
}

// Decision is the certifier's answer for one update transaction.
type Decision struct {
	Commit  bool
	Version uint64 // assigned commit version when Commit
}

// ErrSnapshotTooOld is returned when a transaction's snapshot predates
// the certifier's trimmed conflict window; the transaction must abort
// conservatively.
var ErrSnapshotTooOld = errors.New("certifier: snapshot below certification window")

type historyEntry struct {
	txnID   uint64
	version uint64
	origin  int
	ws      *writeset.WriteSet
}

type eagerWait struct {
	// waiting tracks the replica IDs that have not yet applied.
	waiting map[int]bool
	done    chan struct{}
}

// memoKey identifies one certification request for idempotency.
type memoKey struct {
	origin int
	txnID  uint64
}

// memoEntry is a memoized commit decision. snapshot distinguishes a
// retried request from an unrelated reuse of the same txn ID (e.g.
// after a replica restart).
type memoEntry struct {
	snapshot uint64
	dec      Decision
}

// memoCap bounds the decision memo (FIFO eviction). It only needs to
// cover the window between a lost certify response and its retry, so a
// few thousand decisions is plenty.
const memoCap = 8192

// Certifier orders and certifies update transactions. All methods are
// safe for concurrent use.
type Certifier struct {
	mu sync.Mutex
	// version is the latest assigned commit version.
	// guarded by mu
	version uint64
	// index is the conflict index over the certification window.
	// guarded by mu
	index *writeset.Index
	// floor: snapshots below floor cannot be certified.
	// guarded by mu
	floor uint64
	// history is the refresh log over the certification window.
	// guarded by mu
	history []historyEntry
	// subs maps replica ID to its refresh mailbox.
	// guarded by mu
	subs map[int]*mailbox
	log  *wal.Log
	lat  *latency.Source
	glog *groupLog

	// eager mode bookkeeping: per-version apply counters.
	eager bool
	// waits tracks outstanding eager global-commit waits.
	// guarded by mu
	waits map[uint64]*eagerWait

	// Commit-decision memo for retried certification requests (a lost
	// response must not turn into a duplicate version).
	// guarded by mu
	memo map[memoKey]memoEntry
	// guarded by mu
	memoOrder []memoKey

	// tableVers is the latest commit version that wrote each table —
	// the certifier side of the per-table replication-lag gauges.
	// guarded by mu
	tableVers map[string]uint64

	// Live-observability counters (nil-safe no-ops until EnableObs).
	obsCommits *obs.Counter
	obsAborts  *obs.Counter
	obsTooOld  *obs.Counter

	// tracer mints certification spans; nil (one atomic load) until
	// EnableTracing.
	tracer atomic.Pointer[dtrace.Tracer]
}

// Option configures a Certifier.
type Option func(*Certifier)

// WithWAL makes decisions durable in the given log.
func WithWAL(l *wal.Log) Option { return func(c *Certifier) { c.log = l } }

// WithLatency injects the simulated certification costs.
func WithLatency(s *latency.Source) Option { return func(c *Certifier) { c.lat = s } }

// WithEager enables global-commit tracking for eager strong
// consistency.
func WithEager() Option { return func(c *Certifier) { c.eager = true } }

// New returns a certifier at version 0.
func New(opts ...Option) *Certifier {
	c := &Certifier{
		index:     writeset.NewIndex(),
		subs:      make(map[int]*mailbox),
		waits:     make(map[uint64]*eagerWait),
		memo:      make(map[memoKey]memoEntry),
		tableVers: make(map[string]uint64),
	}
	for _, o := range opts {
		o(c)
	}
	c.glog = newGroupLog(c.log, c.lat)
	return c
}

// StartAt initializes the version counter of a fresh certifier to v —
// used when replicas are bootstrapped with identical preloaded data at
// version v outside the replication protocol. Until the first decision
// is certified the counter may be re-raised (never lowered): wire
// hellos adopt each replica's live Vlocal, and a hello racing an
// in-progress bootstrap can land a partial version that a later
// StartAt must supersede. Once any decision exists the counter is
// locked — moving it would re-assign versions already applied.
func (c *Certifier) StartAt(v uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.history) != 0 {
		return errors.New("certifier: StartAt after decisions were certified")
	}
	if v < c.version {
		return errors.New("certifier: StartAt below current version")
	}
	c.version = v
	c.glog.startAt(v)
	return nil
}

// Version returns the latest assigned commit version.
func (c *Certifier) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Subscribe registers a replica to receive refresh writesets and
// returns its mailbox handle. Re-subscribing (recovery) replaces the
// previous mailbox.
func (c *Certifier) Subscribe(replicaID int) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.subs[replicaID]; ok {
		old.close()
	}
	mb := newMailbox()
	c.subs[replicaID] = mb
	return &Subscription{c: c, replicaID: replicaID, mb: mb}
}

// Unsubscribe detaches a replica (crash). Pending eager waits stop
// counting it.
func (c *Certifier) Unsubscribe(replicaID int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unsubscribeLocked(replicaID)
}

func (c *Certifier) unsubscribeLocked(replicaID int) {
	if mb, ok := c.subs[replicaID]; ok {
		mb.close()
		delete(c.subs, replicaID)
	}
	// A crashed replica will never ack: stop waiting for it.
	for v, w := range c.waits {
		if w.waiting[replicaID] {
			delete(w.waiting, replicaID)
			if len(w.waiting) == 0 {
				close(w.done)
				delete(c.waits, v)
			}
		}
	}
}

// Subscription is one replica's attachment to the certifier.
type Subscription struct {
	c         *Certifier
	replicaID int
	mb        *mailbox
}

// Cancel unsubscribes the replica only if this subscription is still
// its current one. A stale stream handler (the replica already
// resubscribed, perhaps through a restarted server) must not detach
// the live subscription; its dead mailbox is simply closed.
func (s *Subscription) Cancel() {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.c.subs[s.replicaID] == s.mb {
		s.c.unsubscribeLocked(s.replicaID)
		return
	}
	s.mb.close()
}

// Take blocks for the next batch of refresh writesets; ok is false
// after Unsubscribe/Close.
func (s *Subscription) Take() ([]Refresh, bool) { return s.mb.take() }

// Pending returns the refreshes queued but not yet taken — the
// proxy's early certification scans these.
func (s *Subscription) Pending() []Refresh { return s.mb.peekPending() }

// QueueLen returns the number of queued refreshes.
func (s *Subscription) QueueLen() int { return s.mb.len() }

// EnableObs registers the certifier's live metrics with reg: the
// version counter (Vsystem as the certifier sees it), certification
// and conflict rates, group-log backlog, per-replica mailbox depth,
// and outstanding eager global-commit waits. Call once, before
// serving traffic.
func (c *Certifier) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	c.obsCommits = reg.Counter("sconrep_certifier_commits_total",
		"Update transactions certified and committed.")
	c.obsAborts = reg.Counter("sconrep_certifier_conflicts_total",
		"Update transactions rejected by the first-committer-wins test.")
	c.obsTooOld = reg.Counter("sconrep_certifier_snapshot_too_old_total",
		"Transactions rejected because their snapshot predates the trimmed conflict window.")
	c.mu.Unlock()
	reg.GaugeFunc("sconrep_certifier_version",
		"Latest assigned commit version (the system-wide Vsystem source).",
		func() float64 { return float64(c.Version()) })
	reg.GaugeFunc("sconrep_certifier_group_log_pending",
		"Decision-log records enqueued for the group-commit flush but not yet durable.",
		func() float64 { return float64(c.glog.pendingLen()) })
	reg.GaugeFunc("sconrep_certifier_eager_outstanding",
		"Committed versions still waiting for every replica's apply acknowledgment (eager mode).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.waits))
		})
	reg.GaugeFunc("sconrep_certifier_history_len",
		"Refresh history entries retained for recovery catch-up (trimmed by TrimBelow).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.history))
		})
	reg.GaugeFunc("sconrep_certifier_subscribed_replicas",
		"Replicas currently attached to the refresh stream.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.subs))
		})
	reg.GaugeVecFunc("sconrep_certifier_mailbox_depth",
		"Refresh writesets queued per replica mailbox, not yet taken by its applier.",
		"replica", func() map[string]float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			out := make(map[string]float64, len(c.subs))
			for id, mb := range c.subs {
				out[strconv.Itoa(id)] = float64(mb.len())
			}
			return out
		})
}

// EnableTracing attaches the distributed tracer; certifications then
// record certifier.certify spans (with the group-log append as a child
// span) parented under the caller's wire-propagated context. Call
// before traffic.
func (c *Certifier) EnableTracing(tr *dtrace.Tracer) { c.tracer.Store(tr) }

// TableVersions returns the latest commit version that wrote each
// table — the authoritative side of per-table replication lag. Tables
// never written do not appear.
func (c *Certifier) TableVersions() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.tableVers))
	for t, v := range c.tableVers {
		out[t] = v
	}
	return out
}

// Certify decides one update transaction: it commits iff its writeset
// does not conflict with any writeset committed after the
// transaction's snapshot (the GSI first-committer-wins test, §IV).
// On commit the decision is logged, the conflict index updated, and
// the refresh fanned out to every replica except the origin.
func (c *Certifier) Certify(origin int, txnID, snapshot uint64, ws *writeset.WriteSet) (Decision, error) {
	return c.CertifyCtx(origin, txnID, snapshot, ws, dtrace.SpanContext{})
}

// CertifyCtx is Certify with the caller's span context: the decision
// is recorded as a certifier.certify span parented under sc, and the
// fanned-out refreshes carry the certify span so remote applies join
// the same trace.
func (c *Certifier) CertifyCtx(origin int, txnID, snapshot uint64, ws *writeset.WriteSet, sc dtrace.SpanContext) (Decision, error) {
	if ws.Empty() {
		return Decision{}, fmt.Errorf("certifier: empty writeset for txn %d (read-only transactions commit locally)", txnID)
	}
	span := c.tracer.Load().StartSpan("certifier.certify", sc)
	defer span.End()
	span.SetAttr("origin", strconv.Itoa(origin))
	c.mu.Lock()
	// Retried request (the response was lost in transit): return the
	// original commit decision instead of assigning a second version.
	// Only commits are memoized — re-certifying an aborted transaction
	// re-aborts it, since the conflict index only grows.
	if m, ok := c.memo[memoKey{origin, txnID}]; ok && m.snapshot == snapshot {
		c.mu.Unlock()
		span.SetAttr("decision", "memoized")
		return m.dec, nil
	}
	if snapshot < c.floor {
		c.obsTooOld.Inc()
		c.mu.Unlock()
		span.SetAttr("decision", "snapshot_too_old")
		return Decision{}, ErrSnapshotTooOld
	}
	if c.index.ConflictsAfter(ws, snapshot) {
		c.obsAborts.Inc()
		c.mu.Unlock()
		span.SetAttr("decision", "conflict")
		return Decision{Commit: false}, nil
	}
	c.obsCommits.Inc()
	c.version++
	v := c.version
	cp := ws.Clone()
	if span != nil {
		sc := span.Context()
		cp.Trace = &sc
	}
	c.index.Add(cp, v)
	for _, t := range cp.Tables() {
		c.tableVers[t] = v
	}
	c.history = append(c.history, historyEntry{txnID: txnID, version: v, origin: origin, ws: cp})
	k := memoKey{origin, txnID}
	c.memo[k] = memoEntry{snapshot: snapshot, dec: Decision{Commit: true, Version: v}}
	c.memoOrder = append(c.memoOrder, k)
	if len(c.memoOrder) > memoCap {
		delete(c.memo, c.memoOrder[0])
		c.memoOrder = c.memoOrder[1:]
	}
	if c.eager {
		// Every subscribed replica other than the origin must apply
		// before the global commit completes.
		waiting := make(map[int]bool, len(c.subs))
		for id := range c.subs {
			if id != origin {
				waiting[id] = true
			}
		}
		if len(waiting) > 0 {
			c.waits[v] = &eagerWait{waiting: waiting, done: make(chan struct{})}
		}
	}
	c.mu.Unlock()

	span.SetAttr("decision", "commit")
	span.SetAttr("version", strconv.FormatUint(v, 10))

	// Durability before propagation, via group commit: records reach
	// the log in strict version order, with one forced write amortized
	// over each contiguous batch of concurrent committers.
	logSpan := c.tracer.Load().StartSpan("certifier.log_append", span.Context())
	err := c.glog.commit(v, &wal.Record{Version: v, TxnID: txnID, WriteSet: *cp})
	logSpan.End()
	if err != nil {
		return Decision{}, fmt.Errorf("certifier: durability: %w", err)
	}

	// Fan out the refresh writeset, each refresh carrying the certify
	// span so remote applies parent under this certification. Mailbox
	// arrival order is not guaranteed to be version order across
	// concurrent commits; the replica applier reorders by version.
	c.mu.Lock()
	for id, mb := range c.subs {
		if id == origin {
			continue
		}
		mb.put(Refresh{TxnID: txnID, Version: v, Origin: origin, WS: cp})
	}
	c.mu.Unlock()
	return Decision{Commit: true, Version: v}, nil
}

// Applied records that a replica other than the origin has applied and
// committed version v — the eager mode's global-commit accounting.
// Acks are cumulative: replicas apply in strict version order, so an
// ack for v also clears the replica from every wait below v. That
// makes coalesced and retried acks (the wire client ships only the
// highest version) sound.
func (c *Certifier) Applied(replicaID int, v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for ver, w := range c.waits {
		if ver > v || !w.waiting[replicaID] {
			continue
		}
		delete(w.waiting, replicaID)
		if len(w.waiting) == 0 {
			close(w.done)
			delete(c.waits, ver)
		}
	}
}

// GlobalCommitted returns a channel closed once every replica has
// applied version v. A nil channel (already satisfied) is returned
// when no wait is registered.
func (c *Certifier) GlobalCommitted(v uint64) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.waits[v]; ok {
		return w.done
	}
	closed := make(chan struct{})
	close(closed)
	return closed
}

// History returns the refresh stream with versions in (after, through],
// for a recovering replica to catch up from its durable state. The
// history is version-ordered by construction (entries are appended
// under c.mu with a strictly increasing version counter, and WAL
// replay enforces contiguity), so the cut point is found by binary
// search — O(log n) instead of scanning the whole retained history on
// every recovery and every wire-level resubscribe.
func (c *Certifier) History(after uint64) []Refresh {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := sort.Search(len(c.history), func(i int) bool { return c.history[i].version > after })
	if i == len(c.history) {
		return nil
	}
	out := make([]Refresh, 0, len(c.history)-i)
	for ; i < len(c.history); i++ {
		h := &c.history[i]
		out = append(out, Refresh{TxnID: h.txnID, Version: h.version, Origin: -1, WS: h.ws})
	}
	return out
}

// TrimBelow discards conflict-index entries and history at or below
// watermark. Transactions with older snapshots are subsequently
// rejected with ErrSnapshotTooOld, so the watermark must not exceed
// the oldest version any replica could still begin a transaction at.
func (c *Certifier) TrimBelow(watermark uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if watermark <= c.floor {
		return
	}
	c.floor = watermark
	c.index.Forget(watermark)
	keep := c.history[:0]
	for _, h := range c.history {
		if h.version > watermark {
			keep = append(keep, h)
		}
	}
	c.history = keep
}

// Replicas returns the IDs of currently subscribed replicas.
func (c *Certifier) Replicas() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.subs))
	for id := range c.subs {
		out = append(out, id)
	}
	return out
}

// RestoreFromWAL rebuilds certifier state (version counter, conflict
// index, history) by replaying a decision log — certifier crash
// recovery.
func (c *Certifier) RestoreFromWAL(records func(fn func(*wal.Record) error) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != 0 || len(c.history) != 0 {
		return errors.New("certifier: RestoreFromWAL on non-empty certifier")
	}
	first := true
	err := records(func(r *wal.Record) error {
		if first {
			// The first record sets the baseline: data bootstrapped at
			// StartAt(v) makes the log begin at v+1.
			first = false
		} else if r.Version != c.version+1 {
			return fmt.Errorf("certifier: wal gap: have %d, next record %d", c.version, r.Version)
		}
		c.version = r.Version
		ws := r.WriteSet.Clone()
		c.index.Add(ws, r.Version)
		for _, t := range ws.Tables() {
			c.tableVers[t] = r.Version
		}
		c.history = append(c.history, historyEntry{txnID: r.TxnID, version: r.Version, origin: -1, ws: ws})
		return nil
	})
	if err != nil {
		return err
	}
	// Continue the durable log exactly where the replay ended.
	c.glog.startAt(c.version)
	return nil
}
