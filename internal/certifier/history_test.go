package certifier

import (
	"fmt"
	"testing"
)

// TestHistoryBinarySearchEdges pins the History cut point against the
// full range of `after` values: below the oldest entry, every interior
// boundary, at the newest, and past it. History is version-ordered, so
// the binary-searched suffix must equal the brute-force filter.
func TestHistoryBinarySearchEdges(t *testing.T) {
	c := New()
	const n = 64
	for i := uint64(1); i <= n; i++ {
		if _, err := c.Certify(0, i, i-1, ws(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for after := uint64(0); after <= n+2; after++ {
		got := c.History(after)
		wantLen := 0
		if after < n {
			wantLen = int(n - after)
		}
		if len(got) != wantLen {
			t.Fatalf("History(%d) len = %d, want %d", after, len(got), wantLen)
		}
		for j, ref := range got {
			if want := after + uint64(j) + 1; ref.Version != want {
				t.Fatalf("History(%d)[%d].Version = %d, want %d", after, j, ref.Version, want)
			}
			if ref.WS == nil {
				t.Fatalf("History(%d)[%d] lost its writeset", after, j)
			}
		}
	}
}

// TestHistoryAfterTrim verifies the search still lands correctly when
// the history slice no longer starts at version 1: an `after` below
// the trim floor returns the whole retained suffix, and interior cuts
// stay exact.
func TestHistoryAfterTrim(t *testing.T) {
	c := New()
	for i := uint64(1); i <= 10; i++ {
		if _, err := c.Certify(0, i, i-1, ws(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.TrimBelow(6) // retained history: versions 7..10

	cases := []struct {
		after uint64
		first uint64
		n     int
	}{
		{0, 7, 4},  // below the floor: everything retained
		{6, 7, 4},  // exactly the floor
		{8, 9, 2},  // interior cut
		{10, 0, 0}, // at the newest
		{99, 0, 0}, // past the newest
	}
	for _, tc := range cases {
		got := c.History(tc.after)
		if len(got) != tc.n {
			t.Fatalf("History(%d) len = %d, want %d", tc.after, len(got), tc.n)
		}
		if tc.n > 0 && got[0].Version != tc.first {
			t.Fatalf("History(%d)[0].Version = %d, want %d", tc.after, got[0].Version, tc.first)
		}
	}
}
