package certifier

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sconrep/internal/wal"
	"sconrep/internal/writeset"
)

func ws(keys ...string) *writeset.WriteSet {
	w := &writeset.WriteSet{}
	for _, k := range keys {
		w.Items = append(w.Items, writeset.Item{
			Table: "t", Key: k, Op: writeset.OpUpdate, Row: []any{k},
		})
	}
	return w
}

func TestCertifyCommitAndConflict(t *testing.T) {
	c := New()
	d1, err := c.Certify(0, 1, 0, ws("a"))
	if err != nil || !d1.Commit || d1.Version != 1 {
		t.Fatalf("d1 = %+v, %v", d1, err)
	}
	// Same snapshot, conflicting key: abort.
	d2, err := c.Certify(1, 2, 0, ws("a"))
	if err != nil || d2.Commit {
		t.Fatalf("d2 = %+v, %v; want abort", d2, err)
	}
	// Same snapshot, disjoint key: commit.
	d3, err := c.Certify(1, 3, 0, ws("b"))
	if err != nil || !d3.Commit || d3.Version != 2 {
		t.Fatalf("d3 = %+v, %v", d3, err)
	}
	// Fresh snapshot over the conflicting key: commit.
	d4, err := c.Certify(0, 4, 2, ws("a"))
	if err != nil || !d4.Commit || d4.Version != 3 {
		t.Fatalf("d4 = %+v, %v", d4, err)
	}
	if c.Version() != 3 {
		t.Fatalf("Version = %d, want 3", c.Version())
	}
}

func TestCertifyRejectsEmptyWriteset(t *testing.T) {
	c := New()
	if _, err := c.Certify(0, 1, 0, &writeset.WriteSet{}); err == nil {
		t.Fatal("empty writeset accepted")
	}
}

func TestRefreshFanOutSkipsOrigin(t *testing.T) {
	c := New()
	s0 := c.Subscribe(0)
	s1 := c.Subscribe(1)
	s2 := c.Subscribe(2)

	if _, err := c.Certify(1, 10, 0, ws("x")); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []*Subscription{s0, s2} {
		batch, ok := sub.Take()
		if !ok || len(batch) != 1 || batch[0].Version != 1 || batch[0].TxnID != 10 {
			t.Fatalf("replica %d batch = %v, %v", sub.replicaID, batch, ok)
		}
	}
	if n := s1.QueueLen(); n != 0 {
		t.Fatalf("origin received %d refreshes", n)
	}
}

func TestPendingVisibleForEarlyCertification(t *testing.T) {
	c := New()
	s0 := c.Subscribe(0)
	_, _ = c.Certify(1, 1, 0, ws("k1"))
	_, _ = c.Certify(1, 2, 1, ws("k2"))
	pending := s0.Pending()
	if len(pending) != 2 {
		t.Fatalf("pending = %d, want 2", len(pending))
	}
	if !pending[0].WS.ConflictsWith(ws("k1")) {
		t.Fatal("pending writeset content lost")
	}
	// Pending peek must not consume.
	batch, ok := s0.Take()
	if !ok || len(batch) != 2 {
		t.Fatalf("take after peek = %d, %v", len(batch), ok)
	}
}

func TestUnsubscribeClosesMailbox(t *testing.T) {
	c := New()
	s := c.Subscribe(3)
	done := make(chan bool)
	go func() {
		_, ok := s.Take()
		done <- ok
	}()
	c.Unsubscribe(3)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Take returned ok after Unsubscribe")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Take did not unblock on Unsubscribe")
	}
	// Certifying after unsubscribe must not deliver to the dead mailbox.
	if _, err := c.Certify(0, 9, 0, ws("z")); err != nil {
		t.Fatal(err)
	}
}

func TestEagerGlobalCommit(t *testing.T) {
	c := New(WithEager())
	c.Subscribe(0)
	c.Subscribe(1)
	c.Subscribe(2)

	d, err := c.Certify(0, 1, 0, ws("a"))
	if err != nil || !d.Commit {
		t.Fatal(err)
	}
	done := c.GlobalCommitted(d.Version)
	select {
	case <-done:
		t.Fatal("global commit before any ack")
	default:
	}
	c.Applied(1, d.Version)
	select {
	case <-done:
		t.Fatal("global commit after one of two acks")
	default:
	}
	c.Applied(2, d.Version)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("global commit never completed")
	}
	// A second wait on a completed version returns a closed channel.
	select {
	case <-c.GlobalCommitted(d.Version):
	default:
		t.Fatal("completed version not reported closed")
	}
}

func TestEagerSingleReplicaNeedsNoWait(t *testing.T) {
	c := New(WithEager())
	c.Subscribe(0)
	d, _ := c.Certify(0, 1, 0, ws("a"))
	select {
	case <-c.GlobalCommitted(d.Version):
	default:
		t.Fatal("single-replica eager commit should complete immediately")
	}
}

func TestEagerReleasedOnReplicaCrash(t *testing.T) {
	c := New(WithEager())
	c.Subscribe(0)
	c.Subscribe(1)
	d, _ := c.Certify(0, 1, 0, ws("a"))
	done := c.GlobalCommitted(d.Version)
	c.Unsubscribe(1) // crash: the waiter must not block forever
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("eager wait not released by crash")
	}
}

func TestHistoryCatchUp(t *testing.T) {
	c := New()
	for i := uint64(1); i <= 5; i++ {
		if _, err := c.Certify(0, i, i-1, ws(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h := c.History(2)
	if len(h) != 3 || h[0].Version != 3 || h[2].Version != 5 {
		t.Fatalf("History(2) = %v", h)
	}
	if h := c.History(5); len(h) != 0 {
		t.Fatalf("History(5) = %v", h)
	}
}

func TestTrimBelow(t *testing.T) {
	c := New()
	for i := uint64(1); i <= 5; i++ {
		_, _ = c.Certify(0, i, i-1, ws(fmt.Sprintf("k%d", i)))
	}
	c.TrimBelow(3)
	if h := c.History(0); len(h) != 2 {
		t.Fatalf("history after trim = %v", h)
	}
	// A snapshot below the floor must be rejected, not silently passed.
	if _, err := c.Certify(0, 99, 2, ws("k9")); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("old snapshot err = %v", err)
	}
	// At or above the floor still works.
	if d, err := c.Certify(0, 100, 3, ws("k9")); err != nil || !d.Commit {
		t.Fatalf("at-floor certify = %+v, %v", d, err)
	}
}

func TestDurabilityOrderAndRestore(t *testing.T) {
	log := wal.NewMemory()
	c := New(WithWAL(log))
	// Concurrent certifications: the log must come out in version order.
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct keys so everything commits; snapshot 0 is fine
			// because there are no conflicts.
			if _, err := c.Certify(0, uint64(i), 0, ws(fmt.Sprintf("key-%d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	var versions []uint64
	if err := wal.Replay(bytes.NewReader(log.MemoryBytes()), func(r *wal.Record) error {
		versions = append(versions, r.Version)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(versions) != 50 {
		t.Fatalf("logged %d records, want 50", len(versions))
	}
	for i, v := range versions {
		if v != uint64(i+1) {
			t.Fatalf("log out of order at %d: %v", i, versions[:i+1])
		}
	}

	// Restore a fresh certifier from the log.
	c2 := New()
	err := c2.RestoreFromWAL(func(fn func(*wal.Record) error) error {
		return wal.Replay(bytes.NewReader(log.MemoryBytes()), fn)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Version() != 50 {
		t.Fatalf("restored version = %d, want 50", c2.Version())
	}
	// The restored conflict index must still detect conflicts.
	if d, err := c2.Certify(0, 999, 10, ws("key-20")); err != nil || d.Commit {
		t.Fatalf("restored certifier allowed a conflicting commit: %+v, %v", d, err)
	}
	if h := c2.History(49); len(h) != 1 || h[0].Version != 50 {
		t.Fatalf("restored history = %v", h)
	}
}

func TestRestoreRejectsGaps(t *testing.T) {
	c := New()
	recs := []*wal.Record{
		{Version: 1, TxnID: 1, WriteSet: *ws("a")},
		{Version: 3, TxnID: 3, WriteSet: *ws("b")}, // gap
	}
	err := c.RestoreFromWAL(func(fn func(*wal.Record) error) error {
		for _, r := range recs {
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("gap in WAL accepted")
	}
}

func TestConcurrentCertifyAssignsDistinctVersions(t *testing.T) {
	c := New()
	const n = 200
	versions := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := c.Certify(i%4, uint64(i), 0, ws(fmt.Sprintf("k%d", i)))
			if err != nil || !d.Commit {
				t.Errorf("certify %d: %+v, %v", i, d, err)
				return
			}
			versions[i] = d.Version
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, v := range versions {
		if v == 0 || v > n || seen[v] {
			t.Fatalf("bad version assignment: %v", versions)
		}
		seen[v] = true
	}
}

func TestMailboxOrderIndependence(t *testing.T) {
	// The contract is that subscribers may receive refreshes out of
	// version order; verify Take returns everything that was put.
	mb := newMailbox()
	for i := 0; i < 10; i++ {
		mb.put(Refresh{Version: uint64(10 - i)})
	}
	batch, ok := mb.take()
	if !ok || len(batch) != 10 {
		t.Fatalf("take = %d, %v", len(batch), ok)
	}
	if got := mb.tryTake(); len(got) != 0 {
		t.Fatalf("tryTake after drain = %v", got)
	}
}
