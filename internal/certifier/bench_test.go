package certifier

import (
	"fmt"
	"testing"

	"sconrep/internal/wal"
	"sconrep/internal/writeset"
)

// benchHistory builds a certifier holding n history entries by
// replaying a synthetic decision log — the cheap way to a 100k-entry
// history without 100k full certifications.
func benchHistory(b *testing.B, n uint64) *Certifier {
	b.Helper()
	c := New()
	err := c.RestoreFromWAL(func(fn func(*wal.Record) error) error {
		for v := uint64(1); v <= n; v++ {
			rec := &wal.Record{Version: v, TxnID: v, WriteSet: writeset.WriteSet{
				Items: []writeset.Item{{Table: "t", Key: fmt.Sprintf("k%d", v%512), Op: writeset.OpUpdate, Row: []any{"x"}}},
			}}
			if err := fn(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkHistoryLookup measures History(after) against a 100k-entry
// history. The common catch-up calls land near the tail (a replica is
// rarely more than a burst behind) or miss entirely (steady-state
// probes); with the binary-searched cut both are logarithmic in the
// history length instead of a full scan.
func BenchmarkHistoryLookup(b *testing.B) {
	const n = 100_000
	c := benchHistory(b, n)
	b.Run("tail", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if h := c.History(n - 8); len(h) != 8 {
				b.Fatalf("History(tail) = %d entries", len(h))
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if h := c.History(n); h != nil {
				b.Fatalf("History(miss) = %d entries", len(h))
			}
		}
	})
	b.Run("mid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if h := c.History(n / 2); len(h) != n/2 {
				b.Fatalf("History(mid) = %d entries", len(h))
			}
		}
	})
}
