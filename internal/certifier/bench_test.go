package certifier

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sconrep/internal/latency"
	"sconrep/internal/shard"
	"sconrep/internal/wal"
	"sconrep/internal/writeset"
)

// benchHistory builds a certifier holding n history entries by
// replaying a synthetic decision log — the cheap way to a 100k-entry
// history without 100k full certifications.
func benchHistory(b *testing.B, n uint64) *Certifier {
	b.Helper()
	c := New()
	err := c.RestoreFromWAL(func(fn func(*wal.Record) error) error {
		for v := uint64(1); v <= n; v++ {
			rec := &wal.Record{Version: v, TxnID: v, WriteSet: writeset.WriteSet{
				Items: []writeset.Item{{Table: "t", Key: fmt.Sprintf("k%d", v%512), Op: writeset.OpUpdate, Row: []any{"x"}}},
			}}
			if err := fn(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkHistoryLookup measures History(after) against a 100k-entry
// history. The common catch-up calls land near the tail (a replica is
// rarely more than a burst behind) or miss entirely (steady-state
// probes); with the binary-searched cut both are logarithmic in the
// history length instead of a full scan.
func BenchmarkHistoryLookup(b *testing.B) {
	const n = 100_000
	c := benchHistory(b, n)
	b.Run("tail", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if h := c.History(n - 8); len(h) != 8 {
				b.Fatalf("History(tail) = %d entries", len(h))
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if h := c.History(n); h != nil {
				b.Fatalf("History(miss) = %d entries", len(h))
			}
		}
	})
	b.Run("mid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A deep backfill returns one MaxHistoryBatch page, not the
			// whole 50k-entry suffix; the caller pages.
			if h := c.History(n / 2); len(h) != MaxHistoryBatch {
				b.Fatalf("History(mid) = %d entries, want %d", len(h), MaxHistoryBatch)
			}
		}
	})
}

// benchLat builds the simulated certification cost model the
// throughput benchmark runs under: a 50µs conflict-test charge inside
// the sequencer critical section and a 200µs forced write amortized by
// group commit. The Certify charge is what makes the single-sequencer
// ceiling visible on any machine (including single-core CI): sleeps
// held under one lock serialize, sleeps held under different shard
// locks overlap exactly as independent sequencers' CPU work overlaps
// across cores.
func benchLat() *latency.Source {
	return latency.NewSource(latency.Model{
		Certify:  50 * time.Microsecond,
		CommitIO: 200 * time.Microsecond,
	}, 1)
}

// benchShardMap pins tables t0..t3 to shards 0..3.
func benchShardMap(b *testing.B) *shard.Map {
	b.Helper()
	smap, err := shard.New(4, map[string]int{"t0": 0, "t1": 1, "t2": 2, "t3": 3})
	if err != nil {
		b.Fatal(err)
	}
	return smap
}

// BenchmarkCertifyThroughput is the tentpole headline: 16 concurrent
// committers against one certifier, single-sequencer versus 4-shard.
//
//	1shard             all four tables through one sequencer (the ceiling)
//	4shard-disjoint    each transaction stays on one shard — the win case
//	4shard-crossmix    10% of transactions span two shards (reserve/seal)
//	4shard-conflicting every transaction on one table: one shard does all
//	                   the work, so sharding must not regress it
//
// Writesets use unique keys so every certification commits; the
// benchmark measures sequencer serialization, not abort handling.
func BenchmarkCertifyThroughput(b *testing.B) {
	disjoint := func(id uint64) []string { return []string{fmt.Sprintf("t%d", id%4)} }
	crossmix := func(id uint64) []string {
		if id%10 == 0 {
			return []string{fmt.Sprintf("t%d", id%4), fmt.Sprintf("t%d", (id+1)%4)}
		}
		return disjoint(id)
	}
	hot := func(id uint64) []string { return []string{"t0"} }

	b.Run("1shard", func(b *testing.B) {
		benchCertifyThroughput(b, New(WithLatency(benchLat())), disjoint)
	})
	b.Run("4shard-disjoint", func(b *testing.B) {
		benchCertifyThroughput(b, New(WithShards(benchShardMap(b)), WithLatency(benchLat())), disjoint)
	})
	b.Run("4shard-crossmix", func(b *testing.B) {
		benchCertifyThroughput(b, New(WithShards(benchShardMap(b)), WithLatency(benchLat())), crossmix)
	})
	b.Run("4shard-conflicting", func(b *testing.B) {
		benchCertifyThroughput(b, New(WithShards(benchShardMap(b)), WithLatency(benchLat())), hot)
	})
}

func benchCertifyThroughput(b *testing.B, c *Certifier, tablesFor func(uint64) []string) {
	const workers = 16
	var ctr atomic.Uint64
	errc := make(chan error, workers)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				id := ctr.Add(1)
				if id > uint64(b.N) {
					return
				}
				items := make([]writeset.Item, 0, 2)
				for _, t := range tablesFor(id) {
					items = append(items, writeset.Item{
						Table: t, Key: fmt.Sprintf("k%d", id), Op: writeset.OpUpdate, Row: []any{"x"},
					})
				}
				d, err := c.Certify(0, id, c.Version(), &writeset.WriteSet{Items: items})
				if err != nil {
					errc <- err
					return
				}
				if !d.Commit {
					errc <- fmt.Errorf("certify %d aborted on unique keys", id)
					return
				}
				// Trim with generous slack so history stays bounded without
				// ever racing a concurrent committer's snapshot below the
				// floor.
				if id%4096 == 0 {
					if v := c.Version(); v > 16384 {
						c.TrimBelow(v - 16384)
					}
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "commits/s")
}
