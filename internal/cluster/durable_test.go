package cluster

import (
	"bytes"
	"testing"
	"time"

	"sconrep/internal/core"
	"sconrep/internal/pstore"
)

// newDurableCluster builds an in-process cluster whose replicas run on
// persistent backends under dir.
func newDurableCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadData(loadCounter); err != nil {
		t.Fatal(err)
	}
	c.RegisterTxn("readCounter", readCounter)
	c.RegisterTxn("bumpCounter", bumpCounter)
	t.Cleanup(c.Close)
	return c
}

// bumpN commits n counter increments through the session, retrying
// transient routing errors (a just-killed replica can eat a dispatch).
func bumpN(t *testing.T, s *Session, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for attempt := 0; ; attempt++ {
			tx, err := s.Begin("bumpCounter")
			if err == nil {
				if _, err = tx.Exec(bumpCounter, int64(i%16)); err == nil {
					if _, err = tx.Commit(); err == nil {
						break
					}
				} else {
					tx.Abort()
				}
			}
			if attempt >= 5 {
				t.Fatalf("commit %d failed after retries: %v", i, err)
			}
		}
	}
}

// waitAllAt blocks until every replica has applied version v.
func waitAllAt(t *testing.T, c *Cluster, v uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		behind := -1
		for i := 0; i < c.NumReplicas(); i++ {
			if c.Replica(i).Version() < v {
				behind = i
				break
			}
		}
		if behind < 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d stuck at %d, want %d", behind, c.Replica(behind).Version(), v)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRecoveryEquivalenceModes is the recovery-equivalence acceptance
// check across all four consistency modes: a durable replica is killed
// without warning, the cluster makes progress, the replica comes back
// through the disk-restart path (checkpoint + WAL suffix + certifier
// backfill), and once converged its state must be byte-identical to a
// peer that never crashed.
func TestRecoveryEquivalenceModes(t *testing.T) {
	for _, mode := range []core.Mode{core.Eager, core.Coarse, core.Fine, core.Session} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newDurableCluster(t, Config{
				Replicas: 3, Mode: mode, Seed: 11,
				DataDir: t.TempDir(), CheckpointEvery: 8,
			})
			s := c.NewSession()
			defer s.Close()
			const victim = 2

			// Traffic, then a forced fuzzy checkpoint on the victim so
			// restart has a snapshot to restore from.
			bumpN(t, s, 10)
			waitAllAt(t, c, c.Certifier().Version())
			if err := c.Store(victim).CheckpointNow(); err != nil {
				t.Fatal(err)
			}
			ckptV := c.Store(victim).Stats().CheckpointVersion
			if ckptV == 0 {
				t.Fatal("checkpoint did not advance")
			}
			bumpN(t, s, 6)

			// Kill -9 and keep committing while the victim is down.
			c.KillReplica(victim)
			bumpN(t, s, 8)

			if err := c.RestartReplica(victim); err != nil {
				t.Fatal(err)
			}
			if got := c.Store(victim).Stats().RecoveredVersion; got < ckptV {
				t.Fatalf("restart recovered to %d, below checkpoint %d — snapshot not used", got, ckptV)
			}

			// The restarted replica serves again.
			bumpN(t, s, 4)
			final := c.Certifier().Version()
			waitAllAt(t, c, final)

			want, err := pstore.SnapshotAt(c.Replica(0).Engine(), final)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < c.NumReplicas(); i++ {
				got, err := pstore.SnapshotAt(c.Replica(i).Engine(), final)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("replica %d state differs from never-crashed replica 0 at version %d", i, final)
				}
			}
		})
	}
}

// TestRestartFailsLoudlyOnTrimmedHistory: when the certifier's history
// was trimmed above a killed replica's restore point, the disk restart
// cannot be backfilled. RestartReplica must fail loudly and leave the
// replica detached — never serve silently diverged data.
func TestRestartFailsLoudlyOnTrimmedHistory(t *testing.T) {
	c := newDurableCluster(t, Config{
		Replicas: 2, Mode: core.Coarse, Seed: 3,
		DataDir: t.TempDir(), CheckpointEvery: 64,
	})
	s := c.NewSession()
	defer s.Close()

	bumpN(t, s, 2)
	waitAllAt(t, c, c.Certifier().Version())
	c.KillReplica(1)
	bumpN(t, s, 6)

	// Trim everything but the newest version: the killed replica's
	// missing suffix is gone.
	c.Certifier().TrimBelow(c.Certifier().Version() - 1)

	if err := c.RestartReplica(1); err == nil {
		t.Fatal("RestartReplica succeeded over a trimmed history gap")
	}
	if !c.Replica(1).Crashed() {
		t.Fatal("replica serving after a failed restart")
	}
}
