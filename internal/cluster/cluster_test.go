package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sconrep/internal/core"
	"sconrep/internal/history"
	"sconrep/internal/latency"
	"sconrep/internal/replica"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
)

// loadCounter loads a tiny schema: one counter table plus a read-only
// reference table.
func loadCounter(e *storage.Engine) error {
	if err := e.CreateTable(&storage.Schema{
		Table:   "counter",
		Columns: []storage.Column{{Name: "id", Type: storage.TInt}, {Name: "n", Type: storage.TInt}},
		Key:     []string{"id"},
	}); err != nil {
		return err
	}
	if err := e.CreateTable(&storage.Schema{
		Table:   "ref",
		Columns: []storage.Column{{Name: "id", Type: storage.TInt}, {Name: "s", Type: storage.TString}},
		Key:     []string{"id"},
	}); err != nil {
		return err
	}
	tx := e.Begin()
	for i := int64(0); i < 16; i++ {
		if err := tx.Insert("counter", []any{i, int64(0)}); err != nil {
			return err
		}
		if err := tx.Insert("ref", []any{i, "ref"}); err != nil {
			return err
		}
	}
	_, err := tx.CommitLocal()
	return err
}

var (
	readCounter, _  = sql.Prepare(`SELECT n FROM counter WHERE id = ?`)
	bumpCounter, _  = sql.Prepare(`UPDATE counter SET n = n + 1 WHERE id = ?`)
	readRef, _      = sql.Prepare(`SELECT s FROM ref WHERE id = ?`)
	writeCounter, _ = sql.Prepare(`UPDATE counter SET n = ? WHERE id = ?`)
)

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadData(loadCounter); err != nil {
		t.Fatal(err)
	}
	c.RegisterTxn("readCounter", readCounter)
	c.RegisterTxn("bumpCounter", bumpCounter)
	c.RegisterTxn("readRef", readRef)
	c.RegisterTxn("writeCounter", writeCounter)
	t.Cleanup(c.Close)
	return c
}

func TestClusterBasicFlow(t *testing.T) {
	for _, mode := range []core.Mode{core.Eager, core.Coarse, core.Fine, core.Session} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, Config{Replicas: 3, Mode: mode, Seed: 1})
			s := c.NewSession()
			defer s.Close()

			tx, err := s.Begin("bumpCounter")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Exec(bumpCounter, int64(1)); err != nil {
				t.Fatal(err)
			}
			res, err := tx.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if res.ReadOnly {
				t.Fatal("update marked read-only")
			}

			// The same session must see its own update on any replica.
			for i := 0; i < 6; i++ {
				tx, err := s.Begin("readCounter")
				if err != nil {
					t.Fatal(err)
				}
				r, err := tx.Exec(readCounter, int64(1))
				if err != nil {
					t.Fatal(err)
				}
				if r.Rows[0][0].(int64) != 1 {
					t.Fatalf("iteration %d: read %v, want 1", i, r.Rows[0][0])
				}
				if _, err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{Replicas: 0}); err == nil {
		t.Fatal("0 replicas accepted")
	}
	if _, err := New(Config{Replicas: 65}); err == nil {
		t.Fatal("65 replicas accepted")
	}
}

func TestLoadDataTwiceFails(t *testing.T) {
	c := newCluster(t, Config{Replicas: 1, Mode: core.Coarse})
	if err := c.LoadData(loadCounter); err == nil {
		t.Fatal("second LoadData succeeded")
	}
}

// TestStrongConsistencyUnderConcurrency is the core correctness test:
// with a latency model that makes refresh application slow, many
// concurrent sessions hammer the cluster. The strong modes must show
// zero strong-consistency violations in the recorded history; session
// mode must at least keep its own (weaker) guarantee.
func TestStrongConsistencyUnderConcurrency(t *testing.T) {
	lat := latency.Model{
		OneWay:        200 * time.Microsecond,
		ApplyWriteSet: 3 * time.Millisecond, // slow refresh: stale replicas
		LocalCommit:   100 * time.Microsecond,
		CommitIO:      300 * time.Microsecond,
		Jitter:        0.3,
		Scale:         1,
	}
	for _, mode := range []core.Mode{core.Eager, core.Coarse, core.Fine} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, Config{
				Replicas: 4, Mode: mode, Latency: lat, Seed: 42, RecordHistory: true,
			})
			runMixedLoad(t, c, 8, 15)

			events := c.Recorder().Events()
			if len(events) < 50 {
				t.Fatalf("only %d events recorded", len(events))
			}
			if v := history.CheckStrong(events); len(v) > 0 {
				t.Fatalf("%s: %d strong-consistency violations; first: %s", mode, len(v), v[0])
			}
		})
	}

	t.Run("SC-keeps-session-guarantee", func(t *testing.T) {
		c := newCluster(t, Config{
			Replicas: 4, Mode: core.Session, Latency: lat, Seed: 43, RecordHistory: true,
		})
		runMixedLoad(t, c, 8, 15)
		events := c.Recorder().Events()
		if v := history.CheckSession(events); len(v) > 0 {
			t.Fatalf("session violations under SC: %s", v[0])
		}
		if v := history.CheckMonotonicSessions(events); len(v) > 0 {
			t.Fatalf("session snapshots regressed: %s", v[0])
		}
	})
}

// TestSessionModeViolatesStrongConsistency demonstrates the gap the
// paper closes: under SC with slow refresh, cross-session reads observe
// stale data (history H1 of §II).
func TestSessionModeViolatesStrongConsistency(t *testing.T) {
	lat := latency.Model{
		ApplyWriteSet: 20 * time.Millisecond, // very slow propagation
		Scale:         1,
	}
	c := newCluster(t, Config{
		Replicas: 2, Mode: core.Session, Latency: lat, Seed: 7, RecordHistory: true,
	})

	writer := c.SessionWithID("writer")
	reader := c.SessionWithID("reader")
	violated := false
	for round := 0; round < 40 && !violated; round++ {
		tx, err := writer.Begin("writeCounter")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(writeCounter, int64(round+1), int64(3)); err != nil {
			tx.Abort()
			continue
		}
		if _, err := tx.Commit(); err != nil {
			continue
		}
		// Immediately read from the other session: under SC the begin
		// is not delayed, so a stale replica serves old data.
		rtx, err := reader.Begin("readCounter")
		if err != nil {
			t.Fatal(err)
		}
		res, err := rtx.Exec(readCounter, int64(3))
		if err != nil {
			rtx.Abort()
			continue
		}
		if _, err := rtx.Commit(); err != nil {
			continue
		}
		if res.Rows[0][0].(int64) != int64(round+1) {
			violated = true
		}
	}
	if !violated {
		t.Skip("stale read not observed (scheduling); the history checker covers this probabilistically elsewhere")
	}
	if v := history.CheckStrong(c.Recorder().Events()); len(v) == 0 {
		t.Fatal("stale read observed but checker found no violation")
	}
}

// runMixedLoad drives sessions×rounds transactions (70% reads).
func runMixedLoad(t *testing.T, c *Cluster, sessions, rounds int) {
	t.Helper()
	var wg sync.WaitGroup
	for sid := 0; sid < sessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			s := c.SessionWithID(fmt.Sprintf("load-%d", sid))
			defer s.Close()
			for i := 0; i < rounds; i++ {
				if (sid+i)%10 < 7 {
					tx, err := s.Begin("readCounter")
					if err != nil {
						continue
					}
					if _, err := tx.Exec(readCounter, int64((sid+i)%16)); err != nil {
						tx.Abort()
						continue
					}
					_, _ = tx.Commit()
				} else {
					tx, err := s.Begin("bumpCounter")
					if err != nil {
						continue
					}
					if _, err := tx.Exec(bumpCounter, int64((sid*3+i)%16)); err != nil {
						tx.Abort()
						continue
					}
					_, _ = tx.Commit()
				}
			}
		}(sid)
	}
	wg.Wait()
}

// TestLostUpdatePrevention: concurrent increments to one counter from
// many sessions; certification must serialize them so the final value
// equals the number of successful commits.
func TestLostUpdatePrevention(t *testing.T) {
	c := newCluster(t, Config{Replicas: 3, Mode: core.Coarse, Seed: 3})
	var mu sync.Mutex
	committed := 0
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.SessionWithID(fmt.Sprintf("w%d", w))
			for i := 0; i < 20; i++ {
				tx, err := s.Begin("bumpCounter")
				if err != nil {
					continue
				}
				if _, err := tx.Exec(bumpCounter, int64(0)); err != nil {
					tx.Abort()
					continue
				}
				if _, err := tx.Commit(); err == nil {
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("no increments committed")
	}
	// Read back through a fresh session under coarse consistency.
	s := c.NewSession()
	tx, err := s.Begin("readCounter")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tx.Exec(readCounter, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != int64(committed) {
		t.Fatalf("counter = %d, committed = %d (lost or phantom updates)", got, committed)
	}
}

func TestAbortedTxnLeavesNoTrace(t *testing.T) {
	c := newCluster(t, Config{Replicas: 2, Mode: core.Coarse})
	s := c.NewSession()
	tx, err := s.Begin("bumpCounter")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(bumpCounter, int64(5)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if _, err := tx.Commit(); !errors.Is(err, replica.ErrTxnDone) {
		t.Fatalf("commit after abort: %v", err)
	}

	rtx, _ := s.Begin("readCounter")
	res, err := rtx.Exec(readCounter, int64(5))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = rtx.Commit()
	if res.Rows[0][0].(int64) != 0 {
		t.Fatalf("aborted write visible: %v", res.Rows[0][0])
	}
	snap := c.Collector().Snapshot()
	if snap.Aborted < 1 {
		t.Fatalf("abort not recorded: %+v", snap)
	}
}

func TestClusterCrashFailover(t *testing.T) {
	c := newCluster(t, Config{Replicas: 3, Mode: core.Coarse, Seed: 5})
	s := c.NewSession()

	// Crash one replica; the balancer must route around it.
	c.Replica(1).Crash()
	for i := 0; i < 10; i++ {
		tx, err := s.Begin("bumpCounter")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(bumpCounter, int64(2)); err != nil {
			tx.Abort()
			continue
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Recover and verify the replica catches up and serves consistent
	// reads under coarse mode.
	if err := c.Replica(1).Recover(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for c.Replica(1).Version() < c.Certifier().Version() {
		select {
		case <-deadline:
			t.Fatalf("replica 1 stuck at %d, certifier at %d", c.Replica(1).Version(), c.Certifier().Version())
		case <-time.After(time.Millisecond):
		}
	}
	tx := mustBegin(t, s, "readCounter")
	res, err := tx.Exec(readCounter, int64(2))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = tx.Commit()
	if res.Rows[0][0].(int64) != 10 {
		t.Fatalf("post-recovery read = %v, want 10", res.Rows[0][0])
	}
}

func mustBegin(t *testing.T, s *Session, name string) *Tx {
	t.Helper()
	tx, err := s.Begin(name)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestVacuumAllKeepsClusterServing(t *testing.T) {
	c := newCluster(t, Config{Replicas: 2, Mode: core.Fine, Seed: 9})
	s := c.NewSession()
	for i := 0; i < 20; i++ {
		tx := mustBegin(t, s, "bumpCounter")
		if _, err := tx.Exec(bumpCounter, int64(i%4)); err != nil {
			tx.Abort()
			continue
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if i == 10 {
			c.VacuumAll()
		}
	}
	c.VacuumAll()
	tx := mustBegin(t, s, "readCounter")
	if _, err := tx.Exec(readCounter, int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestFineModeSkipsWaitOnReadOnlyTables: with fine-grained consistency
// a transaction over a never-written table must not wait even when
// other tables are badly lagged.
func TestFineModeSkipsWaitOnReadOnlyTables(t *testing.T) {
	lat := latency.Model{ApplyWriteSet: 30 * time.Millisecond, Scale: 1}
	c := newCluster(t, Config{Replicas: 2, Mode: core.Fine, Latency: lat, Seed: 11})
	s := c.NewSession()

	// Lag the cluster: a burst of counter updates.
	for i := 0; i < 5; i++ {
		tx := mustBegin(t, s, "bumpCounter")
		if _, err := tx.Exec(bumpCounter, int64(i)); err != nil {
			tx.Abort()
			continue
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// A read of the untouched ref table from a NEW session (no session
	// baggage) must start with zero version wait.
	fresh := c.SessionWithID("fresh-reader")
	tx := mustBegin(t, fresh, "readRef")
	if _, err := tx.Exec(readRef, int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Under coarse the same read would wait for the counter updates.
	route, err := c.Balancer().Dispatch("probe", "readRef")
	if err != nil {
		t.Fatal(err)
	}
	if route.MinVersion != 0 {
		t.Fatalf("fine-grained min version for read-only table = %d, want 0", route.MinVersion)
	}
}

func TestCollectorSnapshot(t *testing.T) {
	c := newCluster(t, Config{Replicas: 2, Mode: core.Coarse, Seed: 13})
	c.Collector().Reset()
	s := c.NewSession()
	for i := 0; i < 10; i++ {
		tx := mustBegin(t, s, "bumpCounter")
		if _, err := tx.Exec(bumpCounter, int64(i)); err != nil {
			tx.Abort()
			continue
		}
		_, _ = tx.Commit()
	}
	snap := c.Collector().Snapshot()
	if snap.Committed != 10 || snap.Updates != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.TPS <= 0 || snap.MeanResponse <= 0 {
		t.Fatalf("degenerate snapshot: %+v", snap)
	}
}
