package cluster

import (
	"testing"
	"time"

	"sconrep/internal/core"
	"sconrep/internal/history"
	"sconrep/internal/storage"
	"sconrep/internal/wire"
)

func loadNetKV(e *storage.Engine) error {
	err := e.CreateTable(&storage.Schema{
		Table:   "kv",
		Columns: []storage.Column{{Name: "k", Type: storage.TInt}, {Name: "v", Type: storage.TString}},
		Key:     []string{"k"},
	})
	if err != nil {
		return err
	}
	tx := e.Begin()
	for k := int64(0); k < 8; k++ {
		if err := tx.Insert("kv", []any{k, "init"}); err != nil {
			return err
		}
	}
	_, err = tx.CommitLocal()
	return err
}

func newNetCluster(t *testing.T, mode core.Mode) *Cluster {
	t.Helper()
	c, err := NewNetworked(Config{
		Replicas:      3,
		Mode:          mode,
		Seed:          1,
		RecordHistory: true,
	}, NetConfig{
		Timeouts: wire.Timeouts{Call: 5 * time.Second, LongPoll: 5 * time.Second, Idle: 2 * time.Second},
		Backoff:  wire.Backoff{Min: 5 * time.Millisecond, Max: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadData(loadNetKV); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestNetworkedSmoke drives the wire-backed session path end to end:
// update via one session, strong read via another, history recorded.
func TestNetworkedSmoke(t *testing.T) {
	for _, mode := range []core.Mode{core.Eager, core.Coarse, core.Fine, core.Session} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newNetCluster(t, mode)
			s := c.SessionWithID("writer")
			defer s.Close()

			tx, err := s.Begin("")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.ExecSQL(`UPDATE kv SET v = 'networked' WHERE k = 1`); err != nil {
				t.Fatal(err)
			}
			res, err := tx.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if res.ReadOnly || res.Version == 0 {
				t.Fatalf("commit = %+v", res)
			}

			s2 := c.SessionWithID("reader")
			defer s2.Close()
			for i := 0; i < 4; i++ {
				tx2, err := s2.Begin("")
				if err != nil {
					t.Fatal(err)
				}
				r, err := tx2.ExecSQL(`SELECT v FROM kv WHERE k = 1`)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := tx2.Commit(); err != nil {
					t.Fatal(err)
				}
				got := r.Rows[0][0].(string)
				if mode.Strong() && got != "networked" {
					t.Fatalf("strong mode %v read %q on iteration %d", mode, got, i)
				}
			}

			events := c.Recorder().Events()
			if len(events) < 5 {
				t.Fatalf("recorded %d events, want >= 5", len(events))
			}
			if mode.Strong() {
				if violations := history.CheckStrong(events); len(violations) != 0 {
					t.Fatalf("strong-consistency violations: %v", violations)
				}
			}
			if violations := history.CheckSession(events); mode == core.Session && len(violations) != 0 {
				t.Fatalf("session violations: %v", violations)
			}
		})
	}
}

// TestNetworkedSessionReconnect verifies the epoch discipline: a
// session whose gateway connection breaks resumes under a fresh
// session ID, so the oracle never sees one session lose its floor.
func TestNetworkedSessionReconnect(t *testing.T) {
	c := newNetCluster(t, core.Session)
	s := c.SessionWithID("flaky")
	defer s.Close()

	tx, err := s.Begin("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecSQL(`UPDATE kv SET v = 'one' WHERE k = 2`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.effectiveID(); got != "flaky" {
		t.Fatalf("effectiveID = %q before any failure", got)
	}

	// Sever the gateway connection out from under the session.
	s.wc.Close()
	// The next transaction must transparently reconnect with a new
	// epoch.
	tx2, err := s.Begin("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.ExecSQL(`SELECT v FROM kv WHERE k = 2`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.effectiveID(); got != "flaky#1" {
		t.Fatalf("effectiveID = %q after reconnect", got)
	}
	events := c.Recorder().Events()
	sessions := map[string]bool{}
	for _, e := range events {
		sessions[e.Session] = true
	}
	if !sessions["flaky"] || !sessions["flaky#1"] {
		t.Fatalf("history sessions = %v, want both epochs", sessions)
	}
	if violations := history.CheckMonotonicSessions(events); len(violations) != 0 {
		t.Fatalf("monotonic-session violations: %v", violations)
	}
}
