// Chaos harness: seeded fault-injected TPC-W runs over the networked
// cluster, validated against the history oracle in all four
// consistency modes.
//
// Controls:
//
//	SCONREP_CHAOS_SEEDS=<n>  run n seeds per mode (default 2; CI runs 8)
//	SCONREP_CHAOS_SEED=<s>   replay exactly one seed (overrides SEEDS)
//
// A failing run prints the SCONREP_CHAOS_SEED line that replays its
// fault schedule.
package cluster_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/fault"
	"sconrep/internal/history"
	"sconrep/internal/storage"
	"sconrep/internal/wire"
	"sconrep/internal/workload/tpcw"
)

const chaosReplicas = 3

func chaosSeeds() []int64 {
	if s := os.Getenv("SCONREP_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("bad SCONREP_CHAOS_SEED %q: %v", s, err))
		}
		return []int64{n}
	}
	count := 2
	if s := os.Getenv("SCONREP_CHAOS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			panic(fmt.Sprintf("bad SCONREP_CHAOS_SEEDS %q", s))
		}
		count = n
	}
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = int64(1000 + 97*i)
	}
	return seeds
}

func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short mode")
	}
	seeds := chaosSeeds()
	for _, mode := range []core.Mode{core.Eager, core.Coarse, core.Fine, core.Session} {
		t.Run(mode.String(), func(t *testing.T) {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runChaos(t, mode, seed, 1)
				})
			}
		})
	}
}

// TestChaosSharded is the same fault schedule over a 4-shard certifier
// (TPC-W shard map, full subscriptions): concurrent per-shard
// sequencers plus the cross-shard reserve/seal handshake must preserve
// every guarantee the single-sequencer configuration sells, and the
// version-order oracle additionally checks that the global counter
// stayed dense and monotone across sequencers.
func TestChaosSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short mode")
	}
	seeds := chaosSeeds()
	for _, mode := range []core.Mode{core.Eager, core.Coarse, core.Fine, core.Session} {
		t.Run(mode.String(), func(t *testing.T) {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runChaos(t, mode, seed, tpcw.ShardCount)
				})
			}
		})
	}
}

func runChaos(t *testing.T, mode core.Mode, seed int64, shards int) {
	test := "TestChaos"
	if shards > 1 {
		test = "TestChaosSharded"
	}
	replay := fmt.Sprintf("replay: SCONREP_CHAOS_SEED=%d go test -race -run '%s/%s' ./internal/cluster/", seed, test, mode)

	inj := fault.New(seed, fault.Config{
		DialFailProb:  0.05,
		DelayProb:     0.10,
		MaxDelay:      2 * time.Millisecond,
		DropProb:      0.015,
		DupProb:       0.003,
		HalfCloseProb: 0.003,
	})
	// Clean bring-up and load; noise starts with the workload.
	inj.SetActive(false)

	// Timing discipline: the replica serve gate must close
	// (StreamGrace + Idle) before the certifier stops waiting for a
	// partitioned subscriber (SubLease), and the client call timeout
	// must outlast an eager commit stalled for a full lease.
	ncfg := cluster.NetConfig{
		DialerFor: func(link string) wire.Dialer {
			return wire.Dialer(inj.Dialer(link, nil))
		},
		Timeouts:    wire.Timeouts{Call: 3 * time.Second, LongPoll: 3 * time.Second, Idle: 400 * time.Millisecond},
		Backoff:     wire.Backoff{Min: 5 * time.Millisecond, Max: 80 * time.Millisecond},
		StreamGrace: 500 * time.Millisecond,
		SubLease:    2 * time.Second,
	}
	cfg := cluster.Config{
		Replicas:      chaosReplicas,
		Mode:          mode,
		Seed:          seed,
		RecordHistory: true,
		// Chaos runs with the conflict-aware parallel applier wide open:
		// fault-injected reconnect storms must hit the install/publish
		// split, the striped fast path, and the serial fallback, not just
		// the ApplyWorkers=1 configuration.
		ApplyWorkers:  4,
		MaxApplyBatch: 32,
	}
	if shards > 1 {
		cfg.Shards = shards
		cfg.ShardTables = tpcw.ShardMap
	}
	c, err := cluster.NewNetworked(cfg, ncfg)
	if err != nil {
		t.Fatalf("%v\n%s", err, replay)
	}
	defer c.Close()

	scale := tpcw.Scale{Items: 50, Customers: 20, Seed: 42}
	if err := c.LoadData(func(e *storage.Engine) error { return tpcw.Load(e, scale) }); err != nil {
		t.Fatalf("%v\n%s", err, replay)
	}
	tpcw.RegisterAll(c)

	// Fault phase: probabilistic noise on every link plus a partition
	// agitator cycling through certifier links, replica links, and the
	// client link.
	inj.SetActive(true)
	labels := []string{cluster.LinkClient}
	for i := 0; i < chaosReplicas; i++ {
		labels = append(labels, cluster.CertLink(i), cluster.ReplicaLink(i))
	}
	stop := make(chan struct{})
	agDone := make(chan struct{})
	go func() {
		defer close(agDone)
		inj.Agitate(stop, labels, 120*time.Millisecond, 80*time.Millisecond)
	}()

	const ebs = 6
	mix := tpcw.ShoppingMix()
	var wg sync.WaitGroup
	counts := make([]int, ebs)
	for i := 0; i < ebs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eb := &tpcw.EB{Mix: mix, Scale: scale, ThinkTime: 2 * time.Millisecond, Retries: 2}
			counts[i] = eb.Run(c, i, stop)
		}(i)
	}

	// Mid-run whole-process failure on top of the link noise: crash
	// replica 2, then recover it while traffic continues.
	victim := c.Replica(chaosReplicas - 1)
	time.Sleep(400 * time.Millisecond)
	victim.Crash()
	time.Sleep(400 * time.Millisecond)
	recoverDeadline := time.Now().Add(10 * time.Second)
	for {
		if err := victim.Recover(); err == nil {
			break
		}
		if time.Now().After(recoverDeadline) {
			t.Fatalf("replica never recovered\n%s", replay)
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(400 * time.Millisecond)

	// Keep traffic flowing until the run produced enough events to be
	// meaningful: a hostile schedule can park every browser in a
	// blocked call (the 3s call timeout exceeds a fixed window), which
	// would make the oracle pass vacuously.
	extendDeadline := time.Now().Add(8 * time.Second)
	for c.Recorder().Len() < 10 && time.Now().Before(extendDeadline) {
		time.Sleep(50 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	<-agDone
	inj.RestoreAll()
	inj.SetActive(false)

	// Convergence: with faults healed and traffic stopped, every
	// replica must reach the certifier's final version.
	target := c.Certifier().Version()
	convergeDeadline := time.Now().Add(20 * time.Second)
	for {
		caughtUp := true
		for i := 0; i < chaosReplicas; i++ {
			if c.Replica(i).Crashed() || c.Replica(i).Version() < target {
				caughtUp = false
				break
			}
		}
		if caughtUp {
			break
		}
		if time.Now().After(convergeDeadline) {
			vs := make([]uint64, chaosReplicas)
			for i := range vs {
				vs[i] = c.Replica(i).Version()
			}
			t.Fatalf("replicas %v never converged to certifier version %d\n%s", vs, target, replay)
		}
		time.Sleep(5 * time.Millisecond)
	}

	total := 0
	for _, n := range counts {
		total += n
	}
	events := c.Recorder().Events()
	t.Logf("mode=%s seed=%d: %d interactions, %d committed txns, final version %d", mode, seed, total, len(events), target)
	if len(events) < 10 {
		t.Fatalf("only %d events recorded — chaos run was vacuous\n%s", len(events), replay)
	}

	// The oracle: the guarantees each mode sells must hold under the
	// full fault schedule.
	//
	// Version order first: it is mode-independent and, with Shards > 1,
	// the invariant sharded certification most directly endangers —
	// concurrent sequencers must still assign one dense global order.
	if v := history.CheckVersionOrder(events); len(v) != 0 {
		t.Errorf("%d version-order violations, first: %v\n%s", len(v), v[0], replay)
	}
	if mode.Strong() {
		if v := history.CheckStrong(events); len(v) != 0 {
			t.Errorf("%d strong-consistency violations, first: %v\n%s", len(v), v[0], replay)
		}
	}
	if mode == core.Session || mode == core.Fine {
		if v := history.CheckSession(events); len(v) != 0 {
			t.Errorf("%d session violations, first: %v\n%s", len(v), v[0], replay)
		}
	}
	// Version-level snapshot monotonicity is the scalar session floor's
	// guarantee: only the modes whose start rule folds it (CSC, SC)
	// promise it. FSC synchronizes per table — its session guarantee is
	// the table-aware CheckSession above plus the per-table floors, and
	// its snapshots may legitimately regress version-wise on cold
	// tables. ESC starts immediately and was always exempt.
	if mode == core.Coarse || mode == core.Session {
		if v := history.CheckMonotonicSessions(events); len(v) != 0 {
			t.Errorf("%d monotonic-session violations, first: %v\n%s", len(v), v[0], replay)
		}
	}
}
