package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/core"
	"sconrep/internal/wal"
)

// TestCertifierWALRecovery simulates a certifier crash: run update
// traffic against a WAL-backed cluster, then rebuild a fresh certifier
// from the log and verify it resumes exactly where the old one
// stopped — same version, same conflict knowledge.
func TestCertifierWALRecovery(t *testing.T) {
	log := wal.NewMemory()
	c, err := New(Config{Replicas: 2, Mode: core.Coarse, Seed: 31, WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadData(loadCounter); err != nil {
		t.Fatal(err)
	}
	c.RegisterTxn("bumpCounter", bumpCounter)
	defer c.Close()

	s := c.NewSession()
	committed := 0
	for i := 0; i < 15; i++ {
		tx, err := s.Begin("bumpCounter")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec(bumpCounter, int64(i%4)); err != nil {
			tx.Abort()
			continue
		}
		if _, err := tx.Commit(); err == nil {
			committed++
		}
	}
	oldVersion := c.Certifier().Version()
	if committed == 0 || oldVersion == 0 {
		t.Fatalf("no traffic: committed=%d version=%d", committed, oldVersion)
	}

	// "Crash" the certifier and restore a replacement from its log.
	restored := certifier.New()
	err = restored.RestoreFromWAL(func(fn func(*wal.Record) error) error {
		return wal.Replay(bytes.NewReader(log.MemoryBytes()), fn)
	})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Version() != oldVersion {
		t.Fatalf("restored version %d, want %d", restored.Version(), oldVersion)
	}
	// The restored conflict index must reject a transaction whose
	// snapshot predates a logged conflicting commit.
	lastWS := c.Certifier().History(oldVersion - 1)
	if len(lastWS) != 1 {
		t.Fatalf("history tail = %d entries", len(lastWS))
	}
	d, err := restored.Certify(0, 999, oldVersion-1, lastWS[0].WS)
	if err != nil || d.Commit {
		t.Fatalf("restored certifier allowed conflicting commit: %+v, %v", d, err)
	}
	// And accept a fresh-snapshot retry.
	d, err = restored.Certify(0, 1000, restored.Version(), lastWS[0].WS)
	if err != nil || !d.Commit {
		t.Fatalf("restored certifier rejected clean commit: %+v, %v", d, err)
	}
}

// TestMaintenanceUnderLoad runs vacuum + certifier trim repeatedly
// while traffic flows, verifying nothing breaks and storage is
// actually reclaimed.
func TestMaintenanceUnderLoad(t *testing.T) {
	c := newCluster(t, Config{Replicas: 2, Mode: core.Coarse, Seed: 37})
	stop := make(chan struct{})
	done := make(chan int, 4)
	for w := 0; w < 3; w++ {
		go func(w int) {
			s := c.SessionWithID(fmt.Sprintf("m%d", w))
			n := 0
			for {
				select {
				case <-stop:
					done <- n
					return
				default:
				}
				tx, err := s.Begin("bumpCounter")
				if err != nil {
					continue
				}
				if _, err := tx.Exec(bumpCounter, int64((w*5+n)%16)); err != nil {
					tx.Abort()
					continue
				}
				if _, err := tx.Commit(); err == nil {
					n++
				}
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		time.Sleep(20 * time.Millisecond)
		c.VacuumAll()
	}
	close(stop)
	total := 0
	for i := 0; i < 3; i++ {
		total += <-done
	}
	if total == 0 {
		t.Fatal("no commits under maintenance")
	}
	// After a final vacuum at the current watermark, re-vacuuming at
	// the very latest version can reclaim at most the one version of
	// slack VacuumAll leaves per updated row — anything more means the
	// periodic vacuums were not actually trimming chains.
	c.VacuumAll()
	reclaimedAgain := c.Replica(0).Engine().Vacuum(c.Replica(0).Version())
	if reclaimedAgain > 32 {
		t.Fatalf("vacuum left %d stale versions behind (of %d commits)", reclaimedAgain, total)
	}
}

// TestEagerSurvivesReplicaCrashMidCommit: a replica crash while eager
// commits are waiting must release the waiters (via the certifier's
// unsubscribe accounting), not deadlock them.
func TestEagerSurvivesReplicaCrashMidCommit(t *testing.T) {
	c := newCluster(t, Config{Replicas: 3, Mode: core.Eager, Seed: 41})
	s := c.NewSession()

	// Prime one commit so everything works.
	tx := mustBegin(t, s, "bumpCounter")
	if _, err := tx.Exec(bumpCounter, int64(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash a replica, then commit more: waits must resolve without it.
	c.Replica(2).Crash()
	doneCh := make(chan error, 1)
	go func() {
		tx, err := s.Begin("bumpCounter")
		if err != nil {
			doneCh <- err
			return
		}
		if _, err := tx.Exec(bumpCounter, int64(1)); err != nil {
			tx.Abort()
			doneCh <- err
			return
		}
		_, err = tx.Commit()
		doneCh <- err
	}()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("eager commit with crashed replica: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eager commit deadlocked on crashed replica")
	}
}

// TestSessionMonotonicAcrossReplicas: a session alternating between
// replicas must never observe snapshots going backwards, under every
// mode.
func TestSessionMonotonicAcrossReplicas(t *testing.T) {
	for _, mode := range []core.Mode{core.Session, core.Coarse, core.Fine} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, Config{Replicas: 3, Mode: mode, Seed: 43})
			writer := c.SessionWithID("writer")
			reader := c.SessionWithID("reader")
			var last uint64
			for i := 0; i < 15; i++ {
				wtx := mustBegin(t, writer, "bumpCounter")
				if _, err := wtx.Exec(bumpCounter, int64(i%16)); err != nil {
					wtx.Abort()
				} else if _, err := wtx.Commit(); err != nil {
					continue
				}
				rtx := mustBegin(t, reader, "readCounter")
				snap := rtx.Snapshot()
				if _, err := rtx.Exec(readCounter, int64(i%16)); err != nil {
					t.Fatal(err)
				}
				if _, err := rtx.Commit(); err != nil {
					t.Fatal(err)
				}
				if snap < last {
					t.Fatalf("reader snapshot regressed: %d after %d", snap, last)
				}
				last = snap
			}
		})
	}
}
