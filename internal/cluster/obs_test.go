package cluster

import (
	"strings"
	"testing"

	"sconrep/internal/core"
	"sconrep/internal/metrics"
	"sconrep/internal/obs"
)

// TestClusterObservability drives an instrumented FSC cluster and
// checks the exposition end-to-end: the replica gauges named by the
// paper's version accounting (Vlocal, per-table Vt, refresh backlog),
// the Figure 6 sync-delay histogram, certifier/LB counters, and at
// least one complete per-transaction trace in §V-A stage order.
func TestClusterObservability(t *testing.T) {
	c := newCluster(t, Config{Replicas: 3, Mode: core.Fine, Seed: 21})
	reg := obs.NewRegistry()
	tr := obs.NewTraceRecorder(256)
	c.EnableObs(reg, tr)

	runMixedLoad(t, c, 4, 20)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()

	for _, want := range []string{
		"sconrep_replica_applied_version{replica=\"0\"}",
		"sconrep_replica_table_version{replica=\"0\",table=\"counter\"}",
		"sconrep_replica_refresh_queue_depth{replica=\"0\"}",
		"sconrep_sync_delay_seconds_bucket{replica=\"0\",le=\"+Inf\"}",
		"sconrep_sync_delay_seconds_count{replica=\"0\"}",
		"sconrep_replica_commits_total",
		"sconrep_certifier_version",
		"sconrep_certifier_commits_total",
		"sconrep_lb_routed_total",
		"sconrep_lb_vsystem",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("exposition:\n%s", text)
	}

	// Vlocal on every replica must have advanced past the bootstrap
	// version: the load committed updates and FSC refreshes them.
	for i := 0; i < c.NumReplicas(); i++ {
		if v := c.Replica(i).Version(); v == 0 {
			t.Errorf("replica %d: Vlocal still 0 after load", i)
		}
	}

	traces := tr.Recent(0)
	if len(traces) == 0 {
		t.Fatal("no traces recorded")
	}

	// Stage order within a trace must follow §V-A: Version ≤ Queries ≤
	// Certify ≤ Sync ≤ Commit ≤ Global (each stage optional, but never
	// out of order), with non-overlapping spans.
	rank := map[string]int{}
	for i, s := range metrics.Stages {
		rank[s.String()] = i
	}
	sawCommitted := false
	for _, trc := range traces {
		if trc.Outcome == "commit" && !trc.ReadOnly && trc.CommitVersion > 0 {
			sawCommitted = true
		}
		prevRank, prevEnd := -1, int64(0)
		for _, sp := range trc.Stages {
			r, ok := rank[sp.Stage]
			if !ok {
				t.Fatalf("txn %d: unknown stage %q", trc.TxnID, sp.Stage)
			}
			if r < prevRank {
				t.Fatalf("txn %d: stage %s out of §V-A order in %v", trc.TxnID, sp.Stage, trc.Stages)
			}
			if sp.StartUs < prevEnd {
				t.Fatalf("txn %d: stage %s overlaps previous span in %v", trc.TxnID, sp.Stage, trc.Stages)
			}
			prevRank, prevEnd = r, sp.StartUs+sp.DurationUs
		}
	}
	if !sawCommitted {
		t.Fatal("no committed update transaction among recorded traces")
	}
}

// TestClusterObsDisabledIsFree: without EnableObs, the replica's obs
// pointer stays nil and every hook is a no-op — the cluster behaves
// identically and no instruments exist to scrape.
func TestClusterObsDisabledIsFree(t *testing.T) {
	c := newCluster(t, Config{Replicas: 2, Mode: core.Coarse, Seed: 22})
	s := c.NewSession()
	for i := 0; i < 5; i++ {
		tx := mustBegin(t, s, "bumpCounter")
		if _, err := tx.Exec(bumpCounter, int64(i)); err != nil {
			tx.Abort()
			continue
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	obs.NewRegistry().WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatalf("fresh registry not empty: %q", sb.String())
	}
}
