// Crash-recovery chaos: seeded fault-injected TPC-W runs over the
// networked cluster with DURABLE replicas, where the victim replica is
// repeatedly kill -9'd (process death + abandoned store) and brought
// back through the disk-restart path — kill mid-apply, kill
// mid-checkpoint, and a torn WAL tail. Each run validates the history
// oracle for its mode plus byte-identical recovery equivalence against
// the never-crashed replicas.
//
// Same seed controls as TestChaos (SCONREP_CHAOS_SEED / _SEEDS). The
// name deliberately does not extend TestChaos: the chaos CI job runs
// -run TestChaos, the recovery job runs -run TestCrashRecovery.
package cluster_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/fault"
	"sconrep/internal/history"
	"sconrep/internal/pstore"
	"sconrep/internal/storage"
	"sconrep/internal/wire"
	"sconrep/internal/workload/tpcw"
)

func TestCrashRecoveryChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery chaos skipped in -short mode")
	}
	seeds := chaosSeeds()
	for _, mode := range []core.Mode{core.Eager, core.Coarse, core.Fine, core.Session} {
		t.Run(mode.String(), func(t *testing.T) {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runCrashRecoveryChaos(t, mode, seed)
				})
			}
		})
	}
}

// restartRetry drives RestartReplica until it succeeds: under active
// link faults the recovery backfill can transiently fail, which is the
// retry-until-healthy loop a real operator (or supervisor) runs.
func restartRetry(t *testing.T, c *cluster.Cluster, i int, replay string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := c.RestartReplica(i)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d never restarted: %v\n%s", i, err, replay)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// tearWALTail truncates a few bytes off the newest WAL segment of the
// (killed) replica's data directory, simulating a torn final frame
// from a power cut. Recovery must discard the tail and backfill it.
func tearWALTail(t *testing.T, dataDir string, id int, replay string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dataDir, fmt.Sprintf("replica-%d", id), "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments to tear (err=%v)\n%s", err, replay)
	}
	sort.Strings(segs) // zero-padded bases: lexical order is numeric
	newest := segs[len(segs)-1]
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatalf("%v\n%s", err, replay)
	}
	if fi.Size() == 0 {
		return
	}
	cut := fi.Size() - 5
	if cut < 0 {
		cut = 0
	}
	if err := os.Truncate(newest, cut); err != nil {
		t.Fatalf("%v\n%s", err, replay)
	}
}

func runCrashRecoveryChaos(t *testing.T, mode core.Mode, seed int64) {
	replay := fmt.Sprintf("replay: SCONREP_CHAOS_SEED=%d go test -race -run 'TestCrashRecoveryChaos/%s' ./internal/cluster/", seed, mode)

	inj := fault.New(seed, fault.Config{
		DialFailProb:  0.05,
		DelayProb:     0.10,
		MaxDelay:      2 * time.Millisecond,
		DropProb:      0.015,
		DupProb:       0.003,
		HalfCloseProb: 0.003,
	})
	inj.SetActive(false)

	ncfg := cluster.NetConfig{
		DialerFor: func(link string) wire.Dialer {
			return wire.Dialer(inj.Dialer(link, nil))
		},
		Timeouts:    wire.Timeouts{Call: 3 * time.Second, LongPoll: 3 * time.Second, Idle: 400 * time.Millisecond},
		Backoff:     wire.Backoff{Min: 5 * time.Millisecond, Max: 80 * time.Millisecond},
		StreamGrace: 500 * time.Millisecond,
		SubLease:    2 * time.Second,
	}
	dataDir := t.TempDir()
	c, err := cluster.NewNetworked(cluster.Config{
		Replicas:      chaosReplicas,
		Mode:          mode,
		Seed:          seed,
		RecordHistory: true,
		ApplyWorkers:  4,
		MaxApplyBatch: 32,
		DataDir:       dataDir,
		// Small interval: the run must cross several checkpoint
		// rotations so restarts exercise restore + replay, not replay
		// from genesis.
		CheckpointEvery: 24,
	}, ncfg)
	if err != nil {
		t.Fatalf("%v\n%s", err, replay)
	}
	defer c.Close()

	scale := tpcw.Scale{Items: 50, Customers: 20, Seed: 42}
	if err := c.LoadData(func(e *storage.Engine) error { return tpcw.Load(e, scale) }); err != nil {
		t.Fatalf("%v\n%s", err, replay)
	}
	tpcw.RegisterAll(c)

	inj.SetActive(true)
	labels := []string{cluster.LinkClient}
	for i := 0; i < chaosReplicas; i++ {
		labels = append(labels, cluster.CertLink(i), cluster.ReplicaLink(i))
	}
	stop := make(chan struct{})
	agDone := make(chan struct{})
	go func() {
		defer close(agDone)
		inj.Agitate(stop, labels, 120*time.Millisecond, 80*time.Millisecond)
	}()

	const ebs = 6
	mix := tpcw.ShoppingMix()
	var wg sync.WaitGroup
	counts := make([]int, ebs)
	for i := 0; i < ebs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eb := &tpcw.EB{Mix: mix, Scale: scale, ThinkTime: 2 * time.Millisecond, Retries: 2}
			counts[i] = eb.Run(c, i, stop)
		}(i)
	}

	const victim = chaosReplicas - 1
	var bg sync.WaitGroup

	// Scenario 1 — kill -9 mid-apply: the victim dies while refresh
	// traffic is streaming into it, losing the unforced WAL tail.
	time.Sleep(300 * time.Millisecond)
	c.KillReplica(victim)
	time.Sleep(300 * time.Millisecond)
	restartRetry(t, c, victim, replay)

	// Scenario 2 — kill -9 mid-checkpoint: force a fuzzy checkpoint and
	// kill while it races the snapshot write, leaving a .tmp the next
	// open must discard.
	time.Sleep(200 * time.Millisecond)
	if st := c.Store(victim); st != nil {
		bg.Add(1)
		go func() {
			defer bg.Done()
			_ = st.CheckpointNow() // aborted by the kill below — error expected
		}()
	}
	c.KillReplica(victim)
	time.Sleep(300 * time.Millisecond)
	restartRetry(t, c, victim, replay)

	// Scenario 3 — torn WAL tail: kill, then corrupt the newest segment
	// the way a power cut would (partial final frame).
	time.Sleep(200 * time.Millisecond)
	c.KillReplica(victim)
	tearWALTail(t, dataDir, victim, replay)
	time.Sleep(200 * time.Millisecond)
	restartRetry(t, c, victim, replay)

	// Keep traffic flowing until the run produced enough events to be
	// meaningful (see TestChaos).
	extendDeadline := time.Now().Add(8 * time.Second)
	for c.Recorder().Len() < 10 && time.Now().Before(extendDeadline) {
		time.Sleep(50 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	<-agDone
	bg.Wait()
	inj.RestoreAll()
	inj.SetActive(false)

	// Convergence with faults healed.
	target := c.Certifier().Version()
	convergeDeadline := time.Now().Add(20 * time.Second)
	for {
		caughtUp := true
		for i := 0; i < chaosReplicas; i++ {
			if c.Replica(i).Crashed() || c.Replica(i).Version() < target {
				caughtUp = false
				break
			}
		}
		if caughtUp {
			break
		}
		if time.Now().After(convergeDeadline) {
			vs := make([]uint64, chaosReplicas)
			for i := range vs {
				vs[i] = c.Replica(i).Version()
			}
			t.Fatalf("replicas %v never converged to certifier version %d\n%s", vs, target, replay)
		}
		time.Sleep(5 * time.Millisecond)
	}

	total := 0
	for _, n := range counts {
		total += n
	}
	events := c.Recorder().Events()
	t.Logf("mode=%s seed=%d: %d interactions, %d committed txns, final version %d, checkpoint %d",
		mode, seed, total, len(events), target, c.Store(victim).Stats().CheckpointVersion)
	if len(events) < 10 {
		t.Fatalf("only %d events recorded — run was vacuous\n%s", len(events), replay)
	}

	// The mode's oracle must hold across all three kill/restart cycles.
	if mode.Strong() {
		if v := history.CheckStrong(events); len(v) != 0 {
			t.Errorf("%d strong-consistency violations, first: %v\n%s", len(v), v[0], replay)
		}
	}
	if mode == core.Session || mode == core.Fine {
		if v := history.CheckSession(events); len(v) != 0 {
			t.Errorf("%d session violations, first: %v\n%s", len(v), v[0], replay)
		}
	}
	if mode == core.Coarse || mode == core.Session {
		if v := history.CheckMonotonicSessions(events); len(v) != 0 {
			t.Errorf("%d monotonic-session violations, first: %v\n%s", len(v), v[0], replay)
		}
	}

	// Recovery equivalence: the thrice-killed replica must be
	// byte-identical to the never-crashed ones at the converged version.
	want, err := pstore.SnapshotAt(c.Replica(0).Engine(), target)
	if err != nil {
		t.Fatalf("%v\n%s", err, replay)
	}
	for i := 1; i < chaosReplicas; i++ {
		got, err := pstore.SnapshotAt(c.Replica(i).Engine(), target)
		if err != nil {
			t.Fatalf("%v\n%s", err, replay)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("replica %d state differs from never-crashed replica 0 at version %d\n%s", i, target, replay)
		}
	}
}
