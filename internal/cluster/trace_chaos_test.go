// Trace-completeness chaos: under fault-injected (delayed, jittered)
// links, every committed transaction's distributed span tree must
// still assemble without orphans — span context either rides a frame
// intact or the transaction it described never committed. Drop/dup
// faults are excluded: a dropped ack legitimately loses the client's
// root span while the commit proceeds, which is the documented
// at-least-once boundary, not a tracing bug.
package cluster_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sconrep/internal/cluster"
	"sconrep/internal/core"
	"sconrep/internal/fault"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/storage"
	"sconrep/internal/wire"
	"sconrep/internal/workload/tpcw"
)

func TestChaosTraceCompleteness(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short mode")
	}
	for _, seed := range []int64{1, 4242} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runTraceChaos(t, seed)
		})
	}
}

func runTraceChaos(t *testing.T, seed int64) {
	// Delay-only schedule: frames arrive late but always arrive.
	inj := fault.New(seed, fault.Config{
		DelayProb: 0.25,
		MaxDelay:  2 * time.Millisecond,
	})
	inj.SetActive(false)
	c, err := cluster.NewNetworked(cluster.Config{
		Replicas: chaosReplicas,
		Mode:     core.Fine,
		Seed:     seed,
	}, cluster.NetConfig{
		DialerFor: func(link string) wire.Dialer {
			return wire.Dialer(inj.Dialer(link, nil))
		},
		Timeouts: wire.Timeouts{Call: 3 * time.Second, LongPoll: 3 * time.Second, Idle: 2 * time.Second},
		Backoff:  wire.Backoff{Min: 5 * time.Millisecond, Max: 80 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	colls := c.EnableDTrace(1 << 16)

	scale := tpcw.Scale{Items: 50, Customers: 20, Seed: 42}
	if err := c.LoadData(func(e *storage.Engine) error { return tpcw.Load(e, scale) }); err != nil {
		t.Fatal(err)
	}
	tpcw.RegisterAll(c)

	inj.SetActive(true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const ebs = 3
	for i := 0; i < ebs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eb := &tpcw.EB{Mix: tpcw.ShoppingMix(), Scale: scale, ThinkTime: 2 * time.Millisecond, Retries: 2}
			eb.Run(c, i, stop)
		}(i)
	}
	time.Sleep(700 * time.Millisecond)
	close(stop)
	wg.Wait()
	inj.SetActive(false)

	// Drain: every refresh applied everywhere ends every refresh.apply
	// span; only then is the full forest in the collectors.
	target := c.Certifier().Version()
	deadline := time.Now().Add(10 * time.Second)
	for {
		caughtUp := true
		for i := 0; i < chaosReplicas; i++ {
			if c.Replica(i).Version() < target {
				caughtUp = false
			}
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged; cannot assess trace completeness")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)

	// Ring evictions would make completeness unfalsifiable.
	byTrace := make(map[dtrace.TraceID][]dtrace.Span)
	for node, coll := range colls {
		if d := coll.Dropped(); d != 0 {
			t.Fatalf("collector %s dropped %d spans; grow the test's ring", node, d)
		}
		for _, sp := range coll.Recent(0) {
			byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
		}
	}

	committed, updates := 0, 0
	for id, spans := range byTrace {
		var root *dtrace.Span
		for i := range spans {
			if spans[i].Name == "client.txn" {
				root = &spans[i]
			}
		}
		if root == nil || root.Attrs["outcome"] != "commit" {
			continue
		}
		committed++
		if orphans := dtrace.Orphans(spans); len(orphans) > 0 {
			t.Fatalf("trace %s: %d orphan span(s), first %q on %s (parent %s missing)",
				id, len(orphans), orphans[0].Name, orphans[0].Node, orphans[0].Parent)
		}
		var sawTxn, sawCommit bool
		applies := map[string]bool{}
		certified := false
		for _, sp := range spans {
			switch sp.Name {
			case "replica.txn":
				sawTxn = true
			case "replica.commit":
				sawCommit = true
			case "certifier.certify":
				if sp.Attrs["decision"] == "commit" {
					certified = true
				}
			case "refresh.apply":
				applies[sp.Node] = true
			}
		}
		if !sawTxn || !sawCommit {
			t.Fatalf("trace %s: committed but missing replica.txn/replica.commit (txn=%v commit=%v)",
				id, sawTxn, sawCommit)
		}
		if certified {
			updates++
			// The origin applies its own writes in the commit path; every
			// other replica must show the refresh application.
			if len(applies) != chaosReplicas-1 {
				t.Fatalf("trace %s: update applied on %d remote replicas, want %d (%v)",
					id, len(applies), chaosReplicas-1, applies)
			}
		}
	}
	t.Logf("seed=%d: %d committed traces (%d updates), all complete", seed, committed, updates)
	if committed < 10 || updates < 1 {
		t.Fatalf("vacuous run: %d committed traces, %d updates", committed, updates)
	}
}
