package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"sconrep/internal/latency"
	"sconrep/internal/pstore"
	"sconrep/internal/replica"
	"sconrep/internal/storage"
	"sconrep/internal/wire"
)

// Link labels for the networked topology; the fault injector keys its
// dialers and partitions on these.
const (
	// LinkClient is every client ⇄ gateway connection.
	LinkClient = "client"
)

// CertLink labels replica i's certifier link (requests and the refresh
// stream).
func CertLink(i int) string { return fmt.Sprintf("cert/%d", i) }

// ReplicaLink labels the gateway's link to replica i.
func ReplicaLink(i int) string { return fmt.Sprintf("replica/%d", i) }

// NetConfig configures the networked (real TCP) deployment of a
// cluster: per-link dialers for fault injection and the wire layer's
// hardening knobs.
type NetConfig struct {
	// DialerFor returns the dialer for a link label (LinkClient,
	// CertLink(i), ReplicaLink(i)); nil — or a nil return — means
	// net.Dial. The fault injector's Injector.Dialer plugs in here.
	DialerFor func(link string) wire.Dialer
	// Timeouts bounds certifier- and replica-link I/O.
	Timeouts wire.Timeouts
	// ClientTimeouts bounds client ⇄ gateway I/O; zero means Timeouts.
	ClientTimeouts wire.Timeouts
	// Backoff is the reconnect/retry schedule for all links.
	Backoff wire.Backoff
	// StreamGrace is how long a replica keeps serving after its refresh
	// stream drops before its gate closes. It must stay comfortably
	// below SubLease: the replica must stop serving before the
	// certifier stops waiting for it. Zero means 500ms.
	StreamGrace time.Duration
	// SubLease is the certifier-side subscription lease (see
	// wire.WithSubLease). Zero means the wire default.
	SubLease time.Duration
	// ReadyTimeout bounds the wait for every replica's refresh stream
	// at startup. Zero means 10s.
	ReadyTimeout time.Duration
}

func (n *NetConfig) dialer(link string) wire.Dialer {
	if n.DialerFor == nil {
		return nil
	}
	return n.DialerFor(link)
}

// netCluster holds the wire-layer pieces of a networked cluster.
type netCluster struct {
	cfg         NetConfig
	certSrv     *wire.CertServer
	certClients []*wire.CertClient
	repSrvs     []*wire.ReplicaServer
	gateway     *wire.Gateway
}

// NewNetworked builds and starts a cluster deployed over real loopback
// TCP: a certifier server, one replica server per replica (each with
// its own certifier client), and a gateway — the same topology
// cmd/sconrepd runs multi-process. Sessions opened on the returned
// cluster talk to the gateway through wire.Client connections, so
// every link can be faulted via NetConfig.DialerFor.
func NewNetworked(cfg Config, ncfg NetConfig) (*Cluster, error) {
	if cfg.Replicas < 1 || cfg.Replicas > 64 {
		return nil, fmt.Errorf("cluster: replica count %d out of range [1,64]", cfg.Replicas)
	}
	if ncfg.StreamGrace <= 0 {
		ncfg.StreamGrace = 500 * time.Millisecond
	}
	if ncfg.ReadyTimeout <= 0 {
		ncfg.ReadyTimeout = 10 * time.Second
	}
	c, err := newCore(cfg)
	if err != nil {
		return nil, err
	}
	n := &netCluster{cfg: ncfg}
	c.net = n

	shared := []wire.Option{
		wire.WithTimeouts(ncfg.Timeouts),
		wire.WithBackoff(ncfg.Backoff),
	}

	certSrv, err := wire.ServeCertifier(c.cert, "127.0.0.1:0",
		append(shared, wire.WithSubLease(ncfg.SubLease))...)
	if err != nil {
		return nil, err
	}
	n.certSrv = certSrv

	repAddrs := make([]string, 0, cfg.Replicas)
	labelByAddr := make(map[string]string)
	c.stores = make([]*pstore.Store, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		var backend storage.Backend
		if cfg.DataDir != "" {
			st, err := c.openStore(i, nil)
			if err != nil {
				n.close(c)
				return nil, err
			}
			c.stores[i] = st
			backend = st
		} else {
			backend = storage.MemBackend{Eng: storage.NewEngine()}
		}
		// The certifier client's Vlocal callback must track the live
		// engine: a disk restart (RecoverFrom) swaps it, and a
		// resubscription reporting the dead engine's version would make
		// the certifier backfill the wrong suffix. The replica does not
		// exist yet when we dial, so route through a slot filled right
		// after construction.
		var rslot atomic.Pointer[replica.Replica]
		eng := backend.Engine()
		vlocal := func() uint64 {
			if r := rslot.Load(); r != nil {
				return r.Version()
			}
			return eng.Version()
		}
		cc := wire.DialCertifier(certSrv.Addr(), i, 0,
			append(shared,
				wire.WithDialer(ncfg.dialer(CertLink(i))),
				wire.WithVLocal(vlocal),
				wire.WithShards(c.replicaShards(i)))...)
		n.certClients = append(n.certClients, cc)
		r := replica.NewWithBackend(replica.Config{
			ID:            i,
			EarlyCert:     !cfg.DisableEarlyCert,
			Latency:       latency.NewSource(cfg.Latency, cfg.Seed+int64(i)*7919+1),
			ApplyWorkers:  cfg.ApplyWorkers,
			MaxApplyBatch: cfg.MaxApplyBatch,
		}, backend, cc)
		rslot.Store(r)
		c.replicas = append(c.replicas, r)
		grace := ncfg.StreamGrace
		gate := func() error {
			if cc.Ready(grace) {
				return nil
			}
			return wire.ErrUnavailable
		}
		srv, err := wire.ServeReplica(r, "127.0.0.1:0",
			append(shared, wire.WithGate(gate))...)
		if err != nil {
			n.close(c)
			return nil, err
		}
		n.repSrvs = append(n.repSrvs, srv)
		repAddrs = append(repAddrs, srv.Addr())
		labelByAddr[srv.Addr()] = ReplicaLink(i)
	}

	gw, err := wire.ServeGateway("127.0.0.1:0", cfg.Mode, repAddrs,
		append(shared, wire.WithDialerFunc(func(addr string) wire.Dialer {
			return ncfg.dialer(labelByAddr[addr])
		}))...)
	if err != nil {
		n.close(c)
		return nil, err
	}
	n.gateway = gw
	// The gateway owns the balancer in networked mode; RegisterTxn,
	// Balancer(), and EnableObs route through it unchanged.
	c.balancer = gw.Balancer()
	c.shardRouting(c.balancer)

	// Wait for every replica's refresh stream before declaring the
	// cluster up: a replica whose subscription never connected would
	// start gated and the first transactions would all reroute.
	deadline := time.Now().Add(ncfg.ReadyTimeout)
	for _, cc := range n.certClients {
		for !cc.Ready(0) {
			if time.Now().After(deadline) {
				n.close(c)
				return nil, fmt.Errorf("cluster: replica refresh streams not up within %s", ncfg.ReadyTimeout)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return c, nil
}

// GatewayAddr returns the networked gateway's address ("" in-process).
func (c *Cluster) GatewayAddr() string {
	if c.net == nil {
		return ""
	}
	return c.net.gateway.Addr()
}

// CertifierAddr returns the networked certifier's address ("" in-process).
func (c *Cluster) CertifierAddr() string {
	if c.net == nil {
		return ""
	}
	return c.net.certSrv.Addr()
}

// close tears the wire layer down (reverse construction order).
func (n *netCluster) close(c *Cluster) {
	if n.gateway != nil {
		n.gateway.Close()
	}
	for _, s := range n.repSrvs {
		s.Close()
	}
	for _, r := range c.replicas {
		r.Crash()
	}
	for _, cc := range n.certClients {
		cc.Close()
	}
	if n.certSrv != nil {
		n.certSrv.Close()
	}
}
