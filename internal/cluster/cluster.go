// Package cluster assembles the replicated database of Figure 2 in
// process: one certifier, N replicas (proxy + storage engine), and a
// load balancer, with simulated network/IO costs injected from a
// latency model.
//
// Clients interact through Sessions, which reproduce the paper's
// client path: every interaction flows through the load balancer,
// transactions are tagged with the minimum start version their
// consistency mode requires, and commit acknowledgments feed the
// balancer's version accounting.
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/core"
	"sconrep/internal/history"
	"sconrep/internal/latency"
	"sconrep/internal/lb"
	"sconrep/internal/metrics"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/pstore"
	"sconrep/internal/replica"
	"sconrep/internal/shard"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
	"sconrep/internal/wal"
	"sconrep/internal/wire"
)

// Config describes a cluster.
type Config struct {
	// Replicas is the number of database replicas (1–64).
	Replicas int
	// Mode is the consistency configuration.
	Mode core.Mode
	// Latency is the simulated cost model; the zero Model injects no
	// delays (useful for correctness tests).
	Latency latency.Model
	// DisableEarlyCert turns off early certification (ablation).
	DisableEarlyCert bool
	// Seed makes injected jitter deterministic.
	Seed int64
	// WAL, when non-nil, backs the certifier's decision log; nil uses
	// an in-memory log.
	WAL *wal.Log
	// RecordHistory enables the consistency-checking event recorder.
	RecordHistory bool
	// ApplyWorkers is forwarded to every replica's conflict-aware
	// parallel refresh applier (0 = the replica default).
	ApplyWorkers int
	// MaxApplyBatch is forwarded to every replica's group-apply batch
	// bound (0 = the replica default).
	MaxApplyBatch int
	// DataDir, when non-empty, gives every replica a persistent
	// storage backend rooted at DataDir/replica-<i>: applied writesets
	// are WAL-logged and asynchronous fuzzy checkpoints bound restart
	// cost to the suffix since the last one (KillReplica/
	// RestartReplica exercise the kill -9 → disk-restart cycle). Empty
	// keeps the paper's in-memory replicas.
	DataDir string
	// CheckpointEvery is the number of logged versions between
	// automatic fuzzy checkpoints on durable replicas (0 = the pstore
	// default).
	CheckpointEvery uint64
	// Shards partitions the certifier into that many per-shard
	// sequencers (0 or 1 = the paper's single sequencer).
	Shards int
	// ShardTables pins tables to shards explicitly; unlisted tables
	// hash deterministically over [0, Shards). Ignored unless Shards>1.
	ShardTables map[string]int
	// ReplicaShards, when non-nil, gives replica i the partial refresh
	// subscription ReplicaShards[i] (a nil entry = all shards): versions
	// certified entirely elsewhere reach that replica as skip markers,
	// and the balancer routes transactions only to replicas covering
	// their table-set's shards. Must have one entry per replica when
	// set. Ignored unless Shards>1.
	ReplicaShards [][]int
}

// Cluster is a running replicated database.
type Cluster struct {
	cfg       Config
	cert      *certifier.Certifier
	replicas  []*replica.Replica
	balancer  *lb.LoadBalancer
	coll      *metrics.Collector
	rec       *history.Recorder
	clientLat func(seed int64) *latency.Source
	nextSess  atomic.Int64
	nextTxn   atomic.Uint64
	loaded    bool
	// commitObs, when set, observes every committed transaction's
	// runtime table accesses (see ObserveCommits). Set once, before
	// serving traffic.
	commitObs func(txnName string, readTables, writtenTables []string)
	// net is non-nil for a NewNetworked cluster: sessions then run over
	// wire clients against a real TCP gateway instead of calling the
	// balancer in process.
	net *netCluster
	// tracer mints client.txn root spans; nil until EnableDTrace (set
	// before traffic, so plain field access suffices).
	tracer *dtrace.Tracer
	// spanColls holds the per-component span collectors by node name.
	spanColls map[string]*dtrace.Collector

	// smu guards stores: RestartReplica swaps entries while obs
	// scrapes read them.
	smu sync.Mutex
	// stores holds each replica's persistent backend (nil entries for
	// in-memory clusters).
	// guarded by smu
	stores []*pstore.Store
	// loadFn is the deterministic LoadData bootstrap, kept so a disk
	// restart can rebuild an empty data directory.
	loadFn func(e *storage.Engine) error
	// recoveryHist observes each disk restart's recovery time; nil
	// until EnableObs.
	recoveryHist *obs.Histogram
}

// store returns replica i's persistent backend (nil for in-memory).
func (c *Cluster) store(i int) *pstore.Store {
	c.smu.Lock()
	defer c.smu.Unlock()
	return c.stores[i]
}

// Store returns replica i's persistent backend, nil for in-memory
// replicas. The store is live: CheckpointNow forces a fuzzy
// checkpoint, and KillReplica/RestartReplica abandon and replace it.
func (c *Cluster) Store(i int) *pstore.Store { return c.store(i) }

// storeDir is replica i's data directory under Config.DataDir.
func (c *Cluster) storeDir(i int) string {
	return filepath.Join(c.cfg.DataDir, fmt.Sprintf("replica-%d", i))
}

// openStore opens replica i's persistent backend. boot is nil on
// first construction (LoadData populates and aligns the store) and
// the saved LoadData function on restart (recovery re-runs it when
// the directory holds no checkpoint).
func (c *Cluster) openStore(i int, boot func(e *storage.Engine) error) (*pstore.Store, error) {
	return pstore.Open(c.storeDir(i), pstore.Options{
		CheckpointEvery: c.cfg.CheckpointEvery,
		Bootstrap:       boot,
	})
}

// newCore builds the pieces shared by the in-process and networked
// deployments: certifier, collector, recorder, client latency sources.
func newCore(cfg Config) (*Cluster, error) {
	log := cfg.WAL
	if log == nil {
		log = wal.NewMemory()
	}
	certOpts := []certifier.Option{
		certifier.WithWAL(log),
		certifier.WithLatency(latency.NewSource(cfg.Latency, cfg.Seed)),
	}
	if cfg.Mode == core.Eager {
		certOpts = append(certOpts, certifier.WithEager())
	}
	if cfg.Shards > 1 {
		smap, err := shard.New(cfg.Shards, cfg.ShardTables)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		certOpts = append(certOpts, certifier.WithShards(smap))
	}
	if cfg.ReplicaShards != nil && len(cfg.ReplicaShards) != cfg.Replicas {
		return nil, fmt.Errorf("cluster: ReplicaShards has %d entries for %d replicas", len(cfg.ReplicaShards), cfg.Replicas)
	}
	c := &Cluster{
		cfg:  cfg,
		cert: certifier.New(certOpts...),
		coll: metrics.NewCollector(),
		clientLat: func(seed int64) *latency.Source {
			return latency.NewSource(cfg.Latency, cfg.Seed^seed)
		},
	}
	if cfg.RecordHistory {
		c.rec = history.NewRecorder()
	}
	return c, nil
}

// replicaShards returns replica i's subscription shard set (nil = all).
func (c *Cluster) replicaShards(i int) []int {
	if c.cfg.Shards <= 1 || c.cfg.ReplicaShards == nil {
		return nil
	}
	return c.cfg.ReplicaShards[i]
}

// shardRouting wires the balancer's shard-aware dispatch when the
// cluster runs with partial replica subscriptions.
func (c *Cluster) shardRouting(bal *lb.LoadBalancer) {
	if c.cfg.Shards <= 1 || c.cfg.ReplicaShards == nil {
		return
	}
	served := make(map[int][]int, len(c.cfg.ReplicaShards))
	for i, s := range c.cfg.ReplicaShards {
		if s != nil {
			served[i] = s
		}
	}
	bal.SetShardRouting(c.cert.ShardMap(), served)
}

// ShardOf returns the certification shard the table maps to.
func (c *Cluster) ShardOf(table string) int { return c.cert.ShardMap().Of(table) }

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Replicas < 1 || cfg.Replicas > 64 {
		return nil, fmt.Errorf("cluster: replica count %d out of range [1,64]", cfg.Replicas)
	}
	c, err := newCore(cfg)
	if err != nil {
		return nil, err
	}
	nodes := make([]lb.Node, 0, cfg.Replicas)
	c.stores = make([]*pstore.Store, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		rcfg := replica.Config{
			ID:            i,
			EarlyCert:     !cfg.DisableEarlyCert,
			Latency:       latency.NewSource(cfg.Latency, cfg.Seed+int64(i)*7919+1),
			ApplyWorkers:  cfg.ApplyWorkers,
			MaxApplyBatch: cfg.MaxApplyBatch,
		}
		cs := replica.LocalShards(c.cert, c.replicaShards(i))
		var r *replica.Replica
		if cfg.DataDir != "" {
			st, err := c.openStore(i, nil)
			if err != nil {
				c.Close()
				return nil, err
			}
			c.stores[i] = st
			r = replica.NewWithBackend(rcfg, st, cs)
		} else {
			r = replica.New(rcfg, storage.NewEngine(), cs)
		}
		c.replicas = append(c.replicas, r)
		nodes = append(nodes, r)
	}
	c.balancer = lb.New(cfg.Mode, nodes)
	c.shardRouting(c.balancer)
	return c, nil
}

// LoadData bootstraps every replica with identical initial data by
// running load against each engine, then aligns the certifier's
// version counter with the replicas. load must be deterministic.
func (c *Cluster) LoadData(load func(e *storage.Engine) error) error {
	if c.loaded {
		return errors.New("cluster: LoadData called twice")
	}
	var v0 uint64
	for i, r := range c.replicas {
		if err := load(r.Engine()); err != nil {
			return fmt.Errorf("cluster: loading replica %d: %w", i, err)
		}
		if i == 0 {
			v0 = r.Engine().Version()
		} else if got := r.Engine().Version(); got != v0 {
			return fmt.Errorf("cluster: non-deterministic load: replica 0 at %d, replica %d at %d", v0, i, got)
		}
	}
	if err := c.cert.StartAt(v0); err != nil {
		return err
	}
	// Durable replicas: the bulk load is not logged (recovery re-runs
	// it instead), so align each store's log with the loaded version
	// and remember the loader for disk restarts.
	c.smu.Lock()
	for i, st := range c.stores {
		if st == nil {
			continue
		}
		if err := st.StartAt(v0); err != nil {
			c.smu.Unlock()
			return fmt.Errorf("cluster: aligning store %d: %w", i, err)
		}
	}
	c.loadFn = load
	c.smu.Unlock()
	c.loaded = true
	return nil
}

// KillReplica simulates kill -9 on a durable replica: detach it and
// abandon its store mid-flight — in-flight checkpoints abort leaving
// .tmp files, the unforced WAL tail may be lost. For in-memory
// replicas it is plain Crash.
func (c *Cluster) KillReplica(i int) {
	c.replicas[i].Crash()
	if st := c.store(i); st != nil {
		st.Abandon()
	}
}

// RestartReplica brings a killed durable replica back through the
// disk-restart path: reopen the data directory (newest verifying
// checkpoint + contiguous WAL suffix, Bootstrap on a wiped one), swap
// the recovered backend in, and resubscribe from the recovered Vlocal
// so the certifier backfills only the missing history suffix.
func (c *Cluster) RestartReplica(i int) error {
	c.smu.Lock()
	if c.stores[i] == nil {
		c.smu.Unlock()
		if err := c.replicas[i].Recover(); err != nil {
			return err
		}
		return nil
	}
	boot := c.loadFn
	c.smu.Unlock()
	st, err := c.openStore(i, boot)
	if err != nil {
		return err
	}
	c.smu.Lock()
	c.stores[i] = st
	hist := c.recoveryHist
	c.smu.Unlock()
	if hist != nil {
		hist.Observe(st.Stats().RecoveryTook)
	}
	if err := c.replicas[i].RecoverFrom(st); err != nil {
		st.Abandon()
		return err
	}
	return nil
}

// ExecSchemaAll applies a DDL statement (CREATE TABLE / CREATE INDEX)
// to every replica's engine. Schema changes are not replicated through
// the commit protocol and bump no versions; this is the cluster-level
// twin of sconrep.DB.ExecSchema, used by the staleness probe to roll
// out its sentinel table.
func (c *Cluster) ExecSchemaAll(q string) error {
	for i, r := range c.replicas {
		e := r.Engine()
		tx := e.Begin()
		_, err := sql.Exec(tx, e, q)
		tx.Abort() // DDL is engine-level; nothing to commit
		if err != nil {
			return fmt.Errorf("cluster: schema on replica %d: %w", i, err)
		}
	}
	return nil
}

// RegisterTxn records the combined static table-set of a named
// transaction's prepared statements — the workload information the
// fine-grained mode exploits.
func (c *Cluster) RegisterTxn(name string, stmts ...*sql.Prepared) {
	seen := map[string]bool{}
	var tables []string
	for _, p := range stmts {
		for _, t := range p.TableSet {
			if !seen[t] {
				seen[t] = true
				tables = append(tables, t)
			}
		}
	}
	c.balancer.RegisterTxn(name, tables)
}

// EnableObs attaches the whole cluster — certifier, every replica,
// and the load balancer — to a live metrics registry, and (when tr is
// non-nil) records per-transaction timeline traces. Call after New and
// before serving traffic; a nil registry is a no-op, leaving the
// hot paths with their zero-cost nil guards.
func (c *Cluster) EnableObs(reg *obs.Registry, tr *obs.TraceRecorder) {
	if reg == nil {
		return
	}
	c.cert.EnableObs(reg)
	mode := c.cfg.Mode.String()
	readDelay := reg.Histogram("sconrep_read_start_delay_seconds",
		"Delay between a transaction's arrival at its replica and its first possible read: the synchronization wait the consistency mode imposes, split by mode.",
		nil, "mode", mode)
	for i, r := range c.replicas {
		r.EnableObs(reg, tr)
		r.OnReadStartDelay(func(d time.Duration) { readDelay.Observe(d) })
		r := r
		reg.GaugeVecFunc("sconrep_replica_table_lag",
			"Replication lag per table: the certifier's last committed version for the table minus this replica's applied version of it.",
			"table", func() map[string]float64 {
				// Resolve the engine at scrape time: a disk restart
				// swaps it.
				eng := r.Engine()
				certTV := c.cert.TableVersions()
				names := make([]string, 0, len(certTV))
				for t := range certTV {
					names = append(names, t)
				}
				engTV := eng.TableVersionsAt(names, eng.Version())
				out := make(map[string]float64, len(certTV))
				for t, cv := range certTV {
					if lv := engTV[t]; cv > lv {
						out[t] = float64(cv - lv)
					} else {
						out[t] = 0
					}
				}
				return out
			}, "replica", strconv.Itoa(i))
	}
	c.enableStoreObs(reg)
	c.balancer.EnableObs(reg)
}

// enableStoreObs registers the durable-storage instruments: per
// replica, the checkpoint's age and write duration and the live WAL
// footprint, plus one recovery-time histogram fed by RestartReplica.
// No-op for in-memory clusters.
func (c *Cluster) enableStoreObs(reg *obs.Registry) {
	durable := false
	for i := range c.replicas {
		if c.store(i) == nil {
			continue
		}
		durable = true
		i := i
		id := strconv.Itoa(i)
		reg.GaugeFunc("sconrep_pstore_checkpoint_version",
			"Version the last durable fuzzy checkpoint captured.",
			func() float64 {
				st := c.store(i)
				if st == nil {
					return 0
				}
				return float64(st.Stats().CheckpointVersion)
			}, "replica", id)
		reg.GaugeFunc("sconrep_pstore_checkpoint_age_seconds",
			"Seconds since this replica's last durable fuzzy checkpoint (0 before the first).",
			func() float64 {
				st := c.store(i)
				if st == nil {
					return 0
				}
				at := st.Stats().LastCheckpointAt
				if at.IsZero() {
					return 0
				}
				return time.Since(at).Seconds()
			}, "replica", id)
		reg.GaugeFunc("sconrep_pstore_checkpoint_seconds",
			"Duration of this replica's last fuzzy checkpoint write.",
			func() float64 {
				st := c.store(i)
				if st == nil {
					return 0
				}
				return st.Stats().LastCheckpointTook.Seconds()
			}, "replica", id)
		reg.GaugeFunc("sconrep_pstore_wal_bytes",
			"Live WAL footprint: bytes across this replica's retained log segments.",
			func() float64 {
				st := c.store(i)
				if st == nil {
					return 0
				}
				return float64(st.Stats().WALBytes)
			}, "replica", id)
	}
	if durable {
		hist := reg.Histogram("sconrep_pstore_recovery_seconds",
			"Disk-restart recovery time: checkpoint restore plus WAL suffix replay, observed by RestartReplica.",
			nil)
		c.smu.Lock()
		c.recoveryHist = hist
		c.smu.Unlock()
	}
}

// EnableDTrace attaches a distributed tracer to every component: each
// session transaction mints a client.txn root span whose context rides
// the begin path through the load balancer (lb.route), the chosen
// replica (replica.txn and children), the certifier (certifier.certify,
// certifier.log_append), and the refresh fan-out (refresh.apply on
// every replica), so one transaction assembles into one causal span
// tree. Each logical node records into its own Collector ring of the
// given capacity — returned keyed "client", "gateway", "certifier",
// "replica-0"… — mirroring the per-process collectors of a
// multi-process deployment; serve them via obs.Options.Spans and
// stitch with sconrep-cli trace. Call after New, before traffic.
func (c *Cluster) EnableDTrace(capacity int) map[string]*dtrace.Collector {
	c.spanColls = make(map[string]*dtrace.Collector)
	mk := func(node string) *dtrace.Tracer {
		coll := dtrace.NewCollector(capacity)
		c.spanColls[node] = coll
		return dtrace.New(node, coll)
	}
	c.tracer = mk("client")
	c.balancer.EnableTracing(mk("gateway"))
	c.cert.EnableTracing(mk("certifier"))
	for i, r := range c.replicas {
		r.EnableTracing(mk(fmt.Sprintf("replica-%d", i)))
	}
	return c.spanColls
}

// SpanCollectors returns the per-node span collectors (nil before
// EnableDTrace).
func (c *Cluster) SpanCollectors() map[string]*dtrace.Collector { return c.spanColls }

// clientSpan mints the client.txn root span for one transaction; nil
// (a no-op span) when tracing is off.
func (c *Cluster) clientSpan(txnName string) *dtrace.ActiveSpan {
	sp := c.tracer.StartRoot("client.txn")
	if txnName != "" {
		sp.SetAttr("txn", txnName)
	}
	return sp
}

// ObserveCommits installs fn as the cluster's commit observer: it is
// called once per committed transaction with the transaction's
// registered name (as passed to Begin), the tables it read, and the
// tables it wrote — the runtime ground truth against the static
// table-set dictionary the fine-grained mode routes on. The dynamic
// oracle tests use it to assert observed ⊆ declared for every TPC-W
// transaction. Call once, before serving traffic; fn must be safe for
// concurrent use.
func (c *Cluster) ObserveCommits(fn func(txnName string, readTables, writtenTables []string)) {
	c.commitObs = fn
}

// Mode returns the consistency configuration.
func (c *Cluster) Mode() core.Mode { return c.cfg.Mode }

// Collector returns the metrics collector.
func (c *Cluster) Collector() *metrics.Collector { return c.coll }

// Recorder returns the history recorder (nil unless RecordHistory).
func (c *Cluster) Recorder() *history.Recorder { return c.rec }

// Certifier exposes the certifier (tests, maintenance).
func (c *Cluster) Certifier() *certifier.Certifier { return c.cert }

// Replica returns replica i.
func (c *Cluster) Replica(i int) *replica.Replica { return c.replicas[i] }

// NumReplicas returns the configured replica count.
func (c *Cluster) NumReplicas() int { return len(c.replicas) }

// Balancer exposes the load balancer.
func (c *Cluster) Balancer() *lb.LoadBalancer { return c.balancer }

// Close detaches all replicas, stopping their appliers, and closes
// any persistent stores gracefully; a networked cluster also tears
// down its servers and wire clients.
func (c *Cluster) Close() {
	if c.net != nil {
		c.net.close(c)
	} else {
		for _, r := range c.replicas {
			r.Crash()
		}
	}
	c.smu.Lock()
	stores := append([]*pstore.Store(nil), c.stores...)
	c.smu.Unlock()
	for _, st := range stores {
		if st != nil {
			_ = st.Close()
		}
	}
}

// VacuumAll reclaims storage on every replica and trims the
// certifier's history/index below the slowest replica's version.
// Safe to call while the cluster runs.
func (c *Cluster) VacuumAll() {
	min := uint64(^uint64(0))
	for _, r := range c.replicas {
		if v := r.Version(); v < min {
			min = v
		}
	}
	if min == ^uint64(0) || min == 0 {
		return
	}
	// Transactions may still be running at snapshots as low as min;
	// keep one extra version of slack.
	watermark := min - 1
	for _, r := range c.replicas {
		r.Engine().Vacuum(watermark)
	}
	c.cert.TrimBelow(watermark)
}

// Session is one client's connection through the load balancer. A
// session issues transactions serially (closed loop).
type Session struct {
	c   *Cluster
	id  string
	lat *latency.Source

	// Networked path: the session's gateway connection. A transport
	// failure makes wc unusable (its gateway-side version floor is
	// gone), so ensureClient reconnects under a fresh epoch — to the
	// consistency oracle the reconnect is a brand-new session, exactly
	// the guarantee a real client loses when its connection drops.
	wc    *wire.Client
	epoch int
}

// NewSession opens a session with a generated ID.
func (c *Cluster) NewSession() *Session {
	n := c.nextSess.Add(1)
	return c.SessionWithID(fmt.Sprintf("session-%d", n))
}

// SessionWithID opens a session with an explicit ID.
func (c *Cluster) SessionWithID(id string) *Session {
	return &Session{c: c, id: id, lat: c.clientLat(int64(len(id)) + c.nextSess.Add(1)*104729)}
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// effectiveID is the identifier the gateway (and the history oracle)
// sees: the base ID, suffixed with the reconnect epoch after the first
// transport failure.
func (s *Session) effectiveID() string {
	if s.epoch == 0 {
		return s.id
	}
	return fmt.Sprintf("%s#%d", s.id, s.epoch)
}

// ensureClient returns a usable gateway connection, dialing (or
// re-dialing under a new epoch) as needed.
func (s *Session) ensureClient() (*wire.Client, error) {
	if s.wc != nil && !s.wc.Broken() {
		return s.wc, nil
	}
	if s.wc != nil {
		s.wc.Close()
		s.wc = nil
		s.epoch++
	}
	n := s.c.net
	to := n.cfg.ClientTimeouts
	if to == (wire.Timeouts{}) {
		to = n.cfg.Timeouts
	}
	wc, err := wire.Dial(n.gateway.Addr(), s.effectiveID(),
		wire.WithDialer(n.cfg.dialer(LinkClient)),
		wire.WithTimeouts(to))
	if err != nil {
		return nil, err
	}
	s.wc = wc
	return wc, nil
}

// Close drops the session's accounting at the balancer. In networked
// mode, closing the gateway connection does the same server-side.
func (s *Session) Close() {
	if s.c.net != nil {
		if s.wc != nil {
			s.wc.Close()
			s.wc = nil
		}
		return
	}
	s.c.balancer.EndSession(s.id)
}

// Think blocks for an exponential think time with the given mean.
func (s *Session) Think(mean time.Duration) { s.lat.Think(mean) }

// Tx is one client transaction in flight.
type Tx struct {
	s      *Session
	rtx    *replica.Txn
	timer  *metrics.TxnTimer
	submit time.Time
	name   string
	done   bool

	// Networked path (rtx is nil): the gateway connection the
	// transaction runs on, its begin snapshot, and the session epoch ID
	// it was begun under.
	wc     *wire.Client
	snap   uint64
	sessID string

	// span is the client.txn root span (nil when tracing is off).
	span *dtrace.ActiveSpan
}

// Trace returns the transaction's trace ID (zero when tracing is off).
func (t *Tx) Trace() dtrace.TraceID { return t.span.Context().Trace }

// endSpan closes the root span with its outcome; End is idempotent, so
// the first terminal event wins.
func (t *Tx) endSpan(outcome string, version uint64, err error) {
	if t.span == nil {
		return
	}
	t.span.SetAttr("outcome", outcome)
	if version != 0 {
		t.span.SetAttr("version", strconv.FormatUint(version, 10))
	}
	if err != nil {
		t.span.SetAttr("error", err.Error())
	}
	t.span.End()
}

// Begin dispatches a transaction named txnName (the identifier the
// fine-grained mode resolves to a table-set; any string — including
// "" — works under the other modes).
func (s *Session) Begin(txnName string) (*Tx, error) {
	span := s.c.clientSpan(txnName)
	if s.c.net != nil {
		return s.netBegin(txnName, nil, span)
	}
	submit := time.Now()
	// Client → LB → replica.
	s.lat.NetworkHop()
	route, err := s.c.balancer.DispatchCtx(s.id, txnName, span.Context())
	if err != nil {
		span.SetAttr("outcome", "error")
		span.End()
		return nil, err
	}
	s.lat.NetworkHop()
	timer := metrics.NewTxnTimer()
	rtx, err := route.Node.(*replica.Replica).BeginCtx(route.MinVersion, timer, span.Context())
	if err != nil {
		span.SetAttr("outcome", "error")
		span.End()
		return nil, err
	}
	return &Tx{s: s, rtx: rtx, timer: timer, submit: submit, name: txnName, span: span}, nil
}

// BeginTables dispatches a transaction tagged with an explicit
// table-set (the paper's footnote-1 alternative to registered
// transaction names).
func (s *Session) BeginTables(tables []string) (*Tx, error) {
	span := s.c.clientSpan("")
	if s.c.net != nil {
		return s.netBegin("", tables, span)
	}
	submit := time.Now()
	s.lat.NetworkHop()
	route, err := s.c.balancer.DispatchTables(s.id, tables)
	if err != nil {
		span.SetAttr("outcome", "error")
		span.End()
		return nil, err
	}
	s.lat.NetworkHop()
	timer := metrics.NewTxnTimer()
	rtx, err := route.Node.(*replica.Replica).BeginCtx(route.MinVersion, timer, span.Context())
	if err != nil {
		span.SetAttr("outcome", "error")
		span.End()
		return nil, err
	}
	return &Tx{s: s, rtx: rtx, timer: timer, submit: submit, span: span}, nil
}

// netBegin starts a transaction over the wire. Begin leaves no state
// behind when its response is lost (the gateway aborts on connection
// death), so a transport failure is retried once on a fresh
// connection.
func (s *Session) netBegin(txnName string, tables []string, span *dtrace.ActiveSpan) (*Tx, error) {
	submit := time.Now()
	for attempt := 0; ; attempt++ {
		wc, err := s.ensureClient()
		if err != nil {
			span.SetAttr("outcome", "error")
			span.End()
			return nil, err
		}
		sessID := s.effectiveID()
		var snap uint64
		if len(tables) > 0 {
			snap, err = wc.BeginTablesTxCtx(tables, span.Context())
		} else {
			snap, err = wc.BeginTxCtx(txnName, span.Context())
		}
		if err != nil {
			if wc.Broken() && attempt == 0 {
				continue
			}
			span.SetAttr("outcome", "error")
			span.End()
			return nil, err
		}
		return &Tx{
			s: s, timer: metrics.NewTxnTimer(), submit: submit, name: txnName,
			wc: wc, snap: snap, sessID: sessID, span: span,
		}, nil
	}
}

// Exec runs one prepared statement (one client round trip).
func (t *Tx) Exec(p *sql.Prepared, params ...any) (*sql.Result, error) {
	if t.wc != nil {
		return t.netExec(p.SQL, params...)
	}
	t.s.lat.RoundTrip()
	res, err := t.rtx.Exec(p, params...)
	if err != nil {
		t.failed(err)
		return nil, err
	}
	return res, nil
}

// ExecSQL runs one ad-hoc statement.
func (t *Tx) ExecSQL(src string, params ...any) (*sql.Result, error) {
	if t.wc != nil {
		return t.netExec(src, params...)
	}
	t.s.lat.RoundTrip()
	res, err := t.rtx.ExecSQL(src, params...)
	if err != nil {
		t.failed(err)
		return nil, err
	}
	return res, nil
}

func (t *Tx) netExec(src string, params ...any) (*sql.Result, error) {
	res, err := t.wc.Exec(src, params...)
	if err != nil {
		t.failed(err)
		return nil, err
	}
	return res, nil
}

// failed marks execution errors that already aborted the transaction
// at the replica so Commit/Abort do not double-count. A broken wire
// session is terminal for the transaction the same way.
func (t *Tx) failed(err error) {
	terminal := errors.Is(err, replica.ErrEarlyAbort) || errors.Is(err, replica.ErrCrashed)
	if t.wc != nil && t.wc.Broken() {
		terminal = true
	}
	if terminal && !t.done {
		t.done = true
		t.endSpan("error", 0, err)
		t.s.c.coll.RecordAbort()
	}
}

// Abort discards the transaction.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.endSpan("abort", 0, nil)
	if t.wc != nil {
		if !t.wc.Broken() {
			_ = t.wc.Abort()
		}
		t.s.c.coll.RecordAbort()
		return
	}
	t.rtx.Abort()
	t.s.c.coll.RecordAbort()
}

// Commit finishes the transaction through the consistency mode's
// commit path and records metrics and history.
func (t *Tx) Commit() (replica.CommitResult, error) {
	if t.done {
		return replica.CommitResult{}, replica.ErrTxnDone
	}
	t.done = true
	if t.wc != nil {
		return t.netCommit()
	}
	t.s.lat.RoundTrip()
	snapshot := t.rtx.Snapshot()
	readTables := t.rtx.Touched()
	res, err := t.rtx.Commit(t.s.c.cfg.Mode == core.Eager)
	if err != nil {
		t.endSpan("error", 0, err)
		t.s.c.coll.RecordAbort()
		return res, err
	}
	// Response travels replica → LB → client.
	t.s.lat.NetworkHop()
	t.s.c.balancer.ObserveCommit(t.s.id, res)
	t.s.lat.NetworkHop()
	acked := time.Now()
	t.endSpan("commit", res.Version, nil)

	t.timer.Stop()
	syncDelay := t.timer.Stage(metrics.StageVersion)
	if t.s.c.cfg.Mode == core.Eager {
		syncDelay = t.timer.Stage(metrics.StageGlobal)
	}
	t.s.c.coll.RecordCommit(t.timer, !res.ReadOnly, acked.Sub(t.submit), syncDelay)
	if obs := t.s.c.commitObs; obs != nil {
		obs(t.name, readTables, res.WrittenTables)
	}
	if rec := t.s.c.rec; rec != nil {
		rec.Record(history.Event{
			TxnID:       t.s.c.nextTxn.Add(1),
			Session:     t.s.id,
			ReadOnly:    res.ReadOnly,
			Submit:      t.submit,
			Acked:       acked,
			Snapshot:    snapshot,
			Commit:      res.Version,
			WriteTables: res.WrittenTables,
			ReadTables:  readTables,
		})
	}
	return res, nil
}

// netCommit finishes the transaction over the wire and records the
// observation for metrics and the history oracle. An event is only
// recorded when the acknowledgment actually reached this client: a
// commit whose ack was lost to a fault may well have happened, but the
// client observed nothing, so the oracle has nothing to hold it to.
func (t *Tx) netCommit() (replica.CommitResult, error) {
	info, err := t.wc.CommitEx()
	if err != nil {
		t.endSpan("error", 0, err)
		t.s.c.coll.RecordAbort()
		return replica.CommitResult{}, err
	}
	t.endSpan("commit", info.Version, nil)
	acked := time.Now()
	t.timer.Stop()
	t.s.c.coll.RecordCommit(t.timer, !info.ReadOnly, acked.Sub(t.submit), 0)
	if obs := t.s.c.commitObs; obs != nil {
		obs(t.name, info.ReadTables, info.WriteTables)
	}
	if rec := t.s.c.rec; rec != nil {
		rec.Record(history.Event{
			TxnID:       t.s.c.nextTxn.Add(1),
			Session:     t.sessID,
			ReadOnly:    info.ReadOnly,
			Submit:      t.submit,
			Acked:       acked,
			Snapshot:    info.Snapshot,
			Commit:      info.Version,
			WriteTables: info.WriteTables,
			ReadTables:  info.ReadTables,
		})
	}
	return replica.CommitResult{
		Version:       info.Version,
		ReadOnly:      info.ReadOnly,
		WrittenTables: info.WriteTables,
	}, nil
}

// Timer exposes the transaction's stage timer (tests).
func (t *Tx) Timer() *metrics.TxnTimer { return t.timer }

// Snapshot returns the version the transaction reads.
func (t *Tx) Snapshot() uint64 {
	if t.wc != nil {
		return t.snap
	}
	return t.rtx.Snapshot()
}
