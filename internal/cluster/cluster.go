// Package cluster assembles the replicated database of Figure 2 in
// process: one certifier, N replicas (proxy + storage engine), and a
// load balancer, with simulated network/IO costs injected from a
// latency model.
//
// Clients interact through Sessions, which reproduce the paper's
// client path: every interaction flows through the load balancer,
// transactions are tagged with the minimum start version their
// consistency mode requires, and commit acknowledgments feed the
// balancer's version accounting.
package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/core"
	"sconrep/internal/history"
	"sconrep/internal/latency"
	"sconrep/internal/lb"
	"sconrep/internal/metrics"
	"sconrep/internal/obs"
	"sconrep/internal/replica"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
	"sconrep/internal/wal"
)

// Config describes a cluster.
type Config struct {
	// Replicas is the number of database replicas (1–64).
	Replicas int
	// Mode is the consistency configuration.
	Mode core.Mode
	// Latency is the simulated cost model; the zero Model injects no
	// delays (useful for correctness tests).
	Latency latency.Model
	// DisableEarlyCert turns off early certification (ablation).
	DisableEarlyCert bool
	// Seed makes injected jitter deterministic.
	Seed int64
	// WAL, when non-nil, backs the certifier's decision log; nil uses
	// an in-memory log.
	WAL *wal.Log
	// RecordHistory enables the consistency-checking event recorder.
	RecordHistory bool
}

// Cluster is a running replicated database.
type Cluster struct {
	cfg       Config
	cert      *certifier.Certifier
	replicas  []*replica.Replica
	balancer  *lb.LoadBalancer
	coll      *metrics.Collector
	rec       *history.Recorder
	clientLat func(seed int64) *latency.Source
	nextSess  atomic.Int64
	nextTxn   atomic.Uint64
	loaded    bool
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Replicas < 1 || cfg.Replicas > 64 {
		return nil, fmt.Errorf("cluster: replica count %d out of range [1,64]", cfg.Replicas)
	}
	log := cfg.WAL
	if log == nil {
		log = wal.NewMemory()
	}
	certOpts := []certifier.Option{
		certifier.WithWAL(log),
		certifier.WithLatency(latency.NewSource(cfg.Latency, cfg.Seed)),
	}
	if cfg.Mode == core.Eager {
		certOpts = append(certOpts, certifier.WithEager())
	}
	c := &Cluster{
		cfg:  cfg,
		cert: certifier.New(certOpts...),
		coll: metrics.NewCollector(),
		clientLat: func(seed int64) *latency.Source {
			return latency.NewSource(cfg.Latency, cfg.Seed^seed)
		},
	}
	if cfg.RecordHistory {
		c.rec = history.NewRecorder()
	}
	nodes := make([]lb.Node, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		r := replica.New(replica.Config{
			ID:        i,
			EarlyCert: !cfg.DisableEarlyCert,
			Latency:   latency.NewSource(cfg.Latency, cfg.Seed+int64(i)*7919+1),
		}, storage.NewEngine(), replica.Local(c.cert))
		c.replicas = append(c.replicas, r)
		nodes = append(nodes, r)
	}
	c.balancer = lb.New(cfg.Mode, nodes)
	return c, nil
}

// LoadData bootstraps every replica with identical initial data by
// running load against each engine, then aligns the certifier's
// version counter with the replicas. load must be deterministic.
func (c *Cluster) LoadData(load func(e *storage.Engine) error) error {
	if c.loaded {
		return errors.New("cluster: LoadData called twice")
	}
	var v0 uint64
	for i, r := range c.replicas {
		if err := load(r.Engine()); err != nil {
			return fmt.Errorf("cluster: loading replica %d: %w", i, err)
		}
		if i == 0 {
			v0 = r.Engine().Version()
		} else if got := r.Engine().Version(); got != v0 {
			return fmt.Errorf("cluster: non-deterministic load: replica 0 at %d, replica %d at %d", v0, i, got)
		}
	}
	if err := c.cert.StartAt(v0); err != nil {
		return err
	}
	c.loaded = true
	return nil
}

// RegisterTxn records the combined static table-set of a named
// transaction's prepared statements — the workload information the
// fine-grained mode exploits.
func (c *Cluster) RegisterTxn(name string, stmts ...*sql.Prepared) {
	seen := map[string]bool{}
	var tables []string
	for _, p := range stmts {
		for _, t := range p.TableSet {
			if !seen[t] {
				seen[t] = true
				tables = append(tables, t)
			}
		}
	}
	c.balancer.RegisterTxn(name, tables)
}

// EnableObs attaches the whole cluster — certifier, every replica,
// and the load balancer — to a live metrics registry, and (when tr is
// non-nil) records per-transaction timeline traces. Call after New and
// before serving traffic; a nil registry is a no-op, leaving the
// hot paths with their zero-cost nil guards.
func (c *Cluster) EnableObs(reg *obs.Registry, tr *obs.TraceRecorder) {
	if reg == nil {
		return
	}
	c.cert.EnableObs(reg)
	for _, r := range c.replicas {
		r.EnableObs(reg, tr)
	}
	c.balancer.EnableObs(reg)
}

// Mode returns the consistency configuration.
func (c *Cluster) Mode() core.Mode { return c.cfg.Mode }

// Collector returns the metrics collector.
func (c *Cluster) Collector() *metrics.Collector { return c.coll }

// Recorder returns the history recorder (nil unless RecordHistory).
func (c *Cluster) Recorder() *history.Recorder { return c.rec }

// Certifier exposes the certifier (tests, maintenance).
func (c *Cluster) Certifier() *certifier.Certifier { return c.cert }

// Replica returns replica i.
func (c *Cluster) Replica(i int) *replica.Replica { return c.replicas[i] }

// NumReplicas returns the configured replica count.
func (c *Cluster) NumReplicas() int { return len(c.replicas) }

// Balancer exposes the load balancer.
func (c *Cluster) Balancer() *lb.LoadBalancer { return c.balancer }

// Close detaches all replicas, stopping their appliers.
func (c *Cluster) Close() {
	for _, r := range c.replicas {
		r.Crash()
	}
}

// VacuumAll reclaims storage on every replica and trims the
// certifier's history/index below the slowest replica's version.
// Safe to call while the cluster runs.
func (c *Cluster) VacuumAll() {
	min := uint64(^uint64(0))
	for _, r := range c.replicas {
		if v := r.Version(); v < min {
			min = v
		}
	}
	if min == ^uint64(0) || min == 0 {
		return
	}
	// Transactions may still be running at snapshots as low as min;
	// keep one extra version of slack.
	watermark := min - 1
	for _, r := range c.replicas {
		r.Engine().Vacuum(watermark)
	}
	c.cert.TrimBelow(watermark)
}

// Session is one client's connection through the load balancer. A
// session issues transactions serially (closed loop).
type Session struct {
	c   *Cluster
	id  string
	lat *latency.Source
}

// NewSession opens a session with a generated ID.
func (c *Cluster) NewSession() *Session {
	n := c.nextSess.Add(1)
	return c.SessionWithID(fmt.Sprintf("session-%d", n))
}

// SessionWithID opens a session with an explicit ID.
func (c *Cluster) SessionWithID(id string) *Session {
	return &Session{c: c, id: id, lat: c.clientLat(int64(len(id)) + c.nextSess.Add(1)*104729)}
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Close drops the session's accounting at the balancer.
func (s *Session) Close() {
	s.c.balancer.EndSession(s.id)
}

// Think blocks for an exponential think time with the given mean.
func (s *Session) Think(mean time.Duration) { s.lat.Think(mean) }

// Tx is one client transaction in flight.
type Tx struct {
	s      *Session
	rtx    *replica.Txn
	timer  *metrics.TxnTimer
	submit time.Time
	name   string
	done   bool
}

// Begin dispatches a transaction named txnName (the identifier the
// fine-grained mode resolves to a table-set; any string — including
// "" — works under the other modes).
func (s *Session) Begin(txnName string) (*Tx, error) {
	submit := time.Now()
	// Client → LB → replica.
	s.lat.NetworkHop()
	route, err := s.c.balancer.Dispatch(s.id, txnName)
	if err != nil {
		return nil, err
	}
	s.lat.NetworkHop()
	timer := metrics.NewTxnTimer()
	rtx, err := route.Node.(*replica.Replica).Begin(route.MinVersion, timer)
	if err != nil {
		return nil, err
	}
	return &Tx{s: s, rtx: rtx, timer: timer, submit: submit, name: txnName}, nil
}

// BeginTables dispatches a transaction tagged with an explicit
// table-set (the paper's footnote-1 alternative to registered
// transaction names).
func (s *Session) BeginTables(tables []string) (*Tx, error) {
	submit := time.Now()
	s.lat.NetworkHop()
	route, err := s.c.balancer.DispatchTables(s.id, tables)
	if err != nil {
		return nil, err
	}
	s.lat.NetworkHop()
	timer := metrics.NewTxnTimer()
	rtx, err := route.Node.(*replica.Replica).Begin(route.MinVersion, timer)
	if err != nil {
		return nil, err
	}
	return &Tx{s: s, rtx: rtx, timer: timer, submit: submit}, nil
}

// Exec runs one prepared statement (one client round trip).
func (t *Tx) Exec(p *sql.Prepared, params ...any) (*sql.Result, error) {
	t.s.lat.RoundTrip()
	res, err := t.rtx.Exec(p, params...)
	if err != nil {
		t.failed(err)
		return nil, err
	}
	return res, nil
}

// ExecSQL runs one ad-hoc statement.
func (t *Tx) ExecSQL(src string, params ...any) (*sql.Result, error) {
	t.s.lat.RoundTrip()
	res, err := t.rtx.ExecSQL(src, params...)
	if err != nil {
		t.failed(err)
		return nil, err
	}
	return res, nil
}

// failed marks execution errors that already aborted the transaction
// at the replica so Commit/Abort do not double-count.
func (t *Tx) failed(err error) {
	if errors.Is(err, replica.ErrEarlyAbort) || errors.Is(err, replica.ErrCrashed) {
		if !t.done {
			t.done = true
			t.s.c.coll.RecordAbort()
		}
	}
}

// Abort discards the transaction.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.rtx.Abort()
	t.s.c.coll.RecordAbort()
}

// Commit finishes the transaction through the consistency mode's
// commit path and records metrics and history.
func (t *Tx) Commit() (replica.CommitResult, error) {
	if t.done {
		return replica.CommitResult{}, replica.ErrTxnDone
	}
	t.done = true
	t.s.lat.RoundTrip()
	snapshot := t.rtx.Snapshot()
	readTables := t.rtx.Touched()
	res, err := t.rtx.Commit(t.s.c.cfg.Mode == core.Eager)
	if err != nil {
		t.s.c.coll.RecordAbort()
		return res, err
	}
	// Response travels replica → LB → client.
	t.s.lat.NetworkHop()
	t.s.c.balancer.ObserveCommit(t.s.id, res)
	t.s.lat.NetworkHop()
	acked := time.Now()

	t.timer.Stop()
	syncDelay := t.timer.Stage(metrics.StageVersion)
	if t.s.c.cfg.Mode == core.Eager {
		syncDelay = t.timer.Stage(metrics.StageGlobal)
	}
	t.s.c.coll.RecordCommit(t.timer, !res.ReadOnly, acked.Sub(t.submit), syncDelay)
	if rec := t.s.c.rec; rec != nil {
		rec.Record(history.Event{
			TxnID:       t.s.c.nextTxn.Add(1),
			Session:     t.s.id,
			ReadOnly:    res.ReadOnly,
			Submit:      t.submit,
			Acked:       acked,
			Snapshot:    snapshot,
			Commit:      res.Version,
			WriteTables: res.WrittenTables,
			ReadTables:  readTables,
		})
	}
	return res, nil
}

// Timer exposes the transaction's stage timer (tests).
func (t *Tx) Timer() *metrics.TxnTimer { return t.timer }

// Snapshot returns the version the transaction reads.
func (t *Tx) Snapshot() uint64 { return t.rtx.Snapshot() }
