package cluster

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"sconrep/internal/obs"
	"sconrep/internal/replica"
)

// probeTable is the sentinel table the staleness probe writes. The
// double-underscore prefix keeps it out of any workload's way.
const probeTable = "__sconrep_probe"

// StalenessProbe measures true end-to-end visibility lag: it
// periodically commits a sentinel write through the ordinary client
// path and, for every replica, times how long after the commit
// acknowledgment the write becomes visible there (Vlocal reaching the
// probe's commit version). Unlike the version-delta gauges, which
// compare counters, this observes the full pipeline — certification,
// group-log fan-out, reorder buffering, and group apply — exactly as a
// lagging reader would.
type StalenessProbe struct {
	c        *Cluster
	hists    []*obs.Histogram
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// StartStalenessProbe creates the sentinel table on every replica and
// starts the probe loop, recording per-replica visibility lag into
// sconrep_staleness_seconds{replica}. Call after LoadData; Stop ends
// the loop. The probe's writes ride the normal commit protocol, so
// they advance versions like any client transaction (one tiny write
// per interval).
func (c *Cluster) StartStalenessProbe(reg *obs.Registry, interval time.Duration) (*StalenessProbe, error) {
	if interval <= 0 {
		interval = time.Second
	}
	if err := c.ExecSchemaAll(`CREATE TABLE ` + probeTable + ` (id INT PRIMARY KEY, seq INT)`); err != nil {
		return nil, err
	}
	p := &StalenessProbe{
		c:        c,
		hists:    make([]*obs.Histogram, len(c.replicas)),
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range c.replicas {
		p.hists[i] = reg.Histogram("sconrep_staleness_seconds",
			"End-to-end visibility lag: time from a sentinel write's commit acknowledgment until the write is applied on this replica.",
			nil, "replica", strconv.Itoa(i))
	}
	// Seed the single sentinel row so every later probe is an update.
	s := c.NewSession()
	tx, err := s.BeginTables([]string{probeTable})
	if err == nil {
		_, err = tx.ExecSQL(`INSERT INTO ` + probeTable + ` VALUES (1, 0)`)
		if err == nil {
			_, err = tx.Commit()
		} else {
			tx.Abort()
		}
	}
	s.Close()
	if err != nil {
		return nil, fmt.Errorf("cluster: staleness probe bootstrap: %w", err)
	}
	go p.run()
	return p, nil
}

// Stop ends the probe loop and waits for it to drain.
func (p *StalenessProbe) Stop() {
	close(p.stop)
	<-p.done
}

func (p *StalenessProbe) run() {
	defer close(p.done)
	s := p.c.NewSession()
	defer s.Close()
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for seq := 1; ; seq++ {
		select {
		case <-p.stop:
			return
		case <-tick.C:
		}
		p.probeOnce(s, seq)
	}
}

// probeOnce commits one sentinel update and fans out a waiter per
// replica; each observes the lag from ack to local visibility.
func (p *StalenessProbe) probeOnce(s *Session, seq int) {
	tx, err := s.BeginTables([]string{probeTable})
	if err != nil {
		return
	}
	if _, err := tx.ExecSQL(`UPDATE `+probeTable+` SET seq = ? WHERE id = 1`, seq); err != nil {
		tx.Abort()
		return
	}
	res, err := tx.Commit()
	if err != nil {
		return
	}
	acked := time.Now()
	var wg sync.WaitGroup
	for i, r := range p.c.replicas {
		wg.Add(1)
		go func(h *obs.Histogram, r *replica.Replica) {
			defer wg.Done()
			if r.WaitVersion(res.Version) == nil {
				h.Observe(time.Since(acked))
			}
		}(p.hists[i], r)
	}
	wg.Wait()
}
