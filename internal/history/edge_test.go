package history

import "testing"

// mkT builds an event with explicit table-sets.
func mkT(id uint64, session string, ro bool, submitMS, ackMS int, snapshot, commit uint64, writes, reads []string) Event {
	e := mk(id, session, ro, submitMS, ackMS, snapshot, commit)
	e.WriteTables = writes
	e.ReadTables = reads
	return e
}

// TestCheckerEdgeCases drives the three checkers through the awkward
// histories a fault-injected run produces: commit-version gaps left by
// aborted transactions, zero-duration transactions whose ack and a
// successor's submit coincide, read-only traffic crossing sessions,
// session epochs from reconnects, and — as the control — histories
// built to violate each guarantee.
func TestCheckerEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		events    []Event
		strong    int // expected violation counts
		session   int
		monotonic int
	}{
		{
			// Certification aborts consume no version, but a crashed
			// replica's in-flight transactions can leave version gaps
			// (here: nothing committed v2). Later snapshots skipping the
			// gap are fine; the checker must compare against observed
			// commits only, not assume dense versions.
			name: "aborted txns leave version gaps",
			events: []Event{
				mk(1, "a", false, 0, 10, 0, 1),
				mk(2, "b", false, 20, 30, 1, 3), // v2 was aborted/never acked
				mk(3, "c", true, 40, 50, 3, 3),
			},
		},
		{
			// Ti.Acked == Tj.Submit exactly: "commits before Tj starts"
			// is strict real-time precedence, so the pair is concurrent
			// and imposes nothing.
			name: "equal ack and submit are concurrent",
			events: []Event{
				mk(1, "a", false, 0, 20, 0, 1),
				mk(2, "b", true, 20, 30, 0, 0),
			},
		},
		{
			// A zero-duration transaction (Submit == Acked) must neither
			// crash the sweep nor obligate itself.
			name: "zero-duration transaction",
			events: []Event{
				mk(1, "a", false, 10, 10, 0, 1),
				mk(2, "b", true, 30, 40, 1, 1),
			},
		},
		{
			// Read-only transactions acked in one session impose no floor
			// on any other session — only updates publish state.
			name: "read-only crossing sessions imposes nothing",
			events: []Event{
				mk(1, "a", true, 0, 10, 9, 9),
				mk(2, "b", true, 20, 30, 0, 0),
				mk(3, "c", true, 40, 50, 0, 0),
			},
		},
		{
			// A reconnect bumps the session epoch ("s" → "s#1"): the two
			// halves are distinct sessions, so a snapshot regression
			// across the break is legal for session guarantees.
			name: "session epochs split on reconnect",
			events: []Event{
				mk(1, "s", true, 0, 10, 5, 5),
				mk(2, "s#1", true, 20, 30, 3, 3),
			},
		},
		{
			// Control: the same history without the epoch split IS a
			// monotonic violation — proving the epoch discipline is what
			// keeps chaos runs honest, not checker leniency.
			name: "same history without epoch split is flagged",
			events: []Event{
				mk(1, "s", true, 0, 10, 5, 5),
				mk(2, "s", true, 20, 30, 3, 3),
			},
			monotonic: 1,
		},
		{
			// Control: a deliberately stale read after an acknowledged
			// update violates strong consistency; in the same session it
			// violates session consistency too.
			name: "stale read flagged",
			events: []Event{
				mk(1, "s", false, 0, 10, 0, 4),
				mk(2, "s", true, 20, 30, 0, 0),
			},
			strong:  1,
			session: 1,
		},
		{
			// Table-aware: an update to "orders" acked before a reader of
			// "items" started does not obligate that reader's snapshot
			// (fine-grained consistency), but a reader of "orders" is
			// held to it.
			name: "fine-grained visibility by table",
			events: []Event{
				mkT(1, "a", false, 0, 10, 0, 2, []string{"orders"}, []string{"orders"}),
				mkT(2, "b", true, 20, 30, 0, 0, nil, []string{"items"}),
				mkT(3, "c", true, 40, 50, 0, 0, nil, []string{"orders"}),
			},
			strong: 1,
		},
		{
			// Sessions interleaved in time: every reader observes the
			// updates acknowledged before its submit, so nothing is
			// flagged anywhere.
			name: "interleaved sessions stay consistent",
			events: []Event{
				mk(1, "a", false, 0, 10, 0, 1),
				mk(2, "b", false, 5, 25, 0, 2),
				mk(3, "a", true, 15, 20, 1, 1),
				mk(4, "b", true, 30, 40, 2, 2),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(CheckStrong(tc.events)); got != tc.strong {
				t.Errorf("CheckStrong = %d violations, want %d: %v", got, tc.strong, CheckStrong(tc.events))
			}
			if got := len(CheckSession(tc.events)); got != tc.session {
				t.Errorf("CheckSession = %d violations, want %d: %v", got, tc.session, CheckSession(tc.events))
			}
			if got := len(CheckMonotonicSessions(tc.events)); got != tc.monotonic {
				t.Errorf("CheckMonotonicSessions = %d violations, want %d: %v", got, tc.monotonic, CheckMonotonicSessions(tc.events))
			}
		})
	}
}
