package history

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// mk builds an event with millisecond offsets from a fixed origin.
func mk(id uint64, session string, ro bool, submitMS, ackMS int, snapshot, commit uint64) Event {
	origin := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return Event{
		TxnID:    id,
		Session:  session,
		ReadOnly: ro,
		Submit:   origin.Add(time.Duration(submitMS) * time.Millisecond),
		Acked:    origin.Add(time.Duration(ackMS) * time.Millisecond),
		Snapshot: snapshot,
		Commit:   commit,
	}
}

// TestPaperHistoryH1 encodes history H1 from §II: T1 writes X and
// commits at version 1; T2 starts afterwards but reads the old value
// (snapshot 0). H1 is serializable yet NOT strongly consistent.
func TestPaperHistoryH1(t *testing.T) {
	events := []Event{
		mk(1, "A", false, 0, 10, 0, 1), // T1: W(X=1), commit v1
		mk(2, "B", true, 20, 30, 0, 0), // T2: R(X=0) — stale snapshot
	}
	if v := CheckStrong(events); len(v) != 1 {
		t.Fatalf("H1 should violate strong consistency once, got %v", v)
	}
	// Different sessions: session consistency holds.
	if v := CheckSession(events); len(v) != 0 {
		t.Fatalf("H1 should satisfy session consistency, got %v", v)
	}
}

// TestPaperHistoryH2 encodes H2: strong consistency enforced, T2 reads
// the latest value.
func TestPaperHistoryH2(t *testing.T) {
	events := []Event{
		mk(1, "A", false, 0, 10, 0, 1),
		mk(2, "B", true, 20, 30, 1, 1), // snapshot includes T1
	}
	if v := CheckStrong(events); len(v) != 0 {
		t.Fatalf("H2 should be strongly consistent, got %v", v)
	}
}

// TestPaperHistoryH3 encodes H3: two concurrent transactions that both
// read the latest committed state then write disjoint items (snapshot
// isolated, not serializable — write skew). Strong consistency is
// about commit visibility, so H3 passes the strong check.
func TestPaperHistoryH3(t *testing.T) {
	events := []Event{
		mk(1, "A", false, 0, 50, 0, 1), // overlapping execution
		mk(2, "B", false, 5, 60, 0, 2),
	}
	if v := CheckStrong(events); len(v) != 0 {
		t.Fatalf("H3 (concurrent txns) should pass strong check, got %v", v)
	}
}

func TestSessionViolation(t *testing.T) {
	events := []Event{
		mk(1, "s1", false, 0, 10, 0, 1),
		mk(2, "s1", true, 20, 25, 0, 0), // own update invisible: violation
		mk(3, "s2", true, 30, 35, 0, 0), // other session: no session violation
	}
	v := CheckSession(events)
	if len(v) != 1 || v[0].Later.TxnID != 2 {
		t.Fatalf("session violations = %v", v)
	}
	// But strong consistency is violated for both readers.
	if v := CheckStrong(events); len(v) != 2 {
		t.Fatalf("strong violations = %v", v)
	}
}

func TestConcurrentNotRequired(t *testing.T) {
	// Ti acked AFTER Tj submitted: no obligation even if Tj read less.
	events := []Event{
		mk(1, "A", false, 0, 100, 0, 5),
		mk(2, "B", true, 50, 60, 0, 0),
	}
	if v := CheckStrong(events); len(v) != 0 {
		t.Fatalf("overlapping txns flagged: %v", v)
	}
}

func TestReadOnlyImposesNothing(t *testing.T) {
	// A read-only txn acked early does not oblige later snapshots.
	events := []Event{
		mk(1, "A", true, 0, 10, 7, 7),
		mk(2, "B", true, 20, 30, 0, 0),
	}
	if v := CheckStrong(events); len(v) != 0 {
		t.Fatalf("read-only imposed visibility: %v", v)
	}
}

func TestMonotonicSessions(t *testing.T) {
	good := []Event{
		mk(1, "s", true, 0, 10, 3, 3),
		mk(2, "s", true, 20, 30, 5, 5),
	}
	if v := CheckMonotonicSessions(good); len(v) != 0 {
		t.Fatalf("monotonic session flagged: %v", v)
	}
	bad := []Event{
		mk(1, "s", true, 0, 10, 5, 5),
		mk(2, "s", true, 20, 30, 3, 3), // went back in time
	}
	if v := CheckMonotonicSessions(bad); len(v) != 1 {
		t.Fatalf("regression not flagged: %v", v)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				r.Record(mk(uint64(g*1000+i), "s", false, i, i+1, 0, 1))
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if r.Len() != 800 {
		t.Fatalf("recorded %d events, want 800", r.Len())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{
		Earlier:   mk(1, "a", false, 0, 1, 0, 9),
		Later:     mk(2, "b", true, 5, 6, 3, 3),
		Guarantee: "strong consistency",
	}
	s := v.String()
	if s == "" {
		t.Fatal("empty violation string")
	}
}

// TestQuickSweepMatchesNaive compares the O(n log n) checker with the
// O(n²) definition over random histories.
func TestQuickSweepMatchesNaive(t *testing.T) {
	type rawEvent struct {
		Submit   uint16
		Duration uint8
		Snapshot uint8
		Commit   uint8
		ReadOnly bool
	}
	f := func(raws []rawEvent) bool {
		if len(raws) > 24 {
			raws = raws[:24]
		}
		events := make([]Event, len(raws))
		for i, rw := range raws {
			commit := uint64(rw.Commit)
			if rw.ReadOnly {
				commit = uint64(rw.Snapshot)
			}
			events[i] = mk(uint64(i+1), "s", rw.ReadOnly,
				int(rw.Submit), int(rw.Submit)+int(rw.Duration)+1,
				uint64(rw.Snapshot), commit)
		}
		// Naive: every pair.
		naiveViolated := map[uint64]bool{}
		for i := range events {
			for j := range events {
				ti, tj := events[i], events[j]
				if ti.ReadOnly || i == j {
					continue
				}
				if ti.Acked.Before(tj.Submit) && tj.Snapshot < ti.Commit {
					naiveViolated[tj.TxnID] = true
				}
			}
		}
		fastViolated := map[uint64]bool{}
		for _, v := range CheckStrong(events) {
			fastViolated[v.Later.TxnID] = true
		}
		if len(naiveViolated) != len(fastViolated) {
			return false
		}
		for id := range naiveViolated {
			if !fastViolated[id] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
