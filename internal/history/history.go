// Package history records client-observed transaction events and
// checks them against the paper's correctness definitions:
//
//	Definition 1 (strong consistency): if Ti commits before Tj starts —
//	in client-observable real time — then Tj must observe Ti's effects:
//	Tj's snapshot version must include Ti's commit version.
//
//	Definition 2 (session consistency): the same guarantee restricted
//	to pairs within one session.
//
// The checkers are an independent oracle: they know nothing about
// modes or trackers, only client-side timestamps and the versions the
// replicas reported, so a protocol bug in the middleware shows up as a
// violation here.
package history

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Event is one committed transaction as the client experienced it.
type Event struct {
	TxnID   uint64
	Session string
	// ReadOnly marks transactions with empty writesets.
	ReadOnly bool
	// Submit is when the client asked to begin the transaction;
	// Acked is when the client learned the commit outcome. Both are
	// client-side times, which is what "commits before ... starts"
	// means for an external observer.
	Submit time.Time
	Acked  time.Time
	// Snapshot is the database version the transaction read.
	Snapshot uint64
	// Commit is the assigned commit version (updates), or Snapshot for
	// read-only transactions.
	Commit uint64
	// WriteTables lists the tables the transaction wrote (updates).
	// ReadTables lists the tables it accessed (reads and writes).
	// When both are empty the checkers fall back to version-only
	// comparison, which is sound but stricter than Definition 1: it
	// flags invisibility of commits the transaction could not have
	// observed anyway.
	WriteTables []string
	ReadTables  []string
}

// Recorder accumulates events from concurrent clients.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one event.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of everything recorded.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Violation is one pair of transactions breaking a guarantee: later
// began after earlier was acknowledged, yet read a snapshot that
// excludes earlier's commit.
type Violation struct {
	Earlier, Later Event
	Guarantee      string
}

// String formats the violation for test failure messages.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation: txn %d (session %s) committed version %d at %s; txn %d (session %s) began at %s but read snapshot %d",
		v.Guarantee,
		v.Earlier.TxnID, v.Earlier.Session, v.Earlier.Commit, v.Earlier.Acked.Format("15:04:05.000000"),
		v.Later.TxnID, v.Later.Session, v.Later.Submit.Format("15:04:05.000000"), v.Later.Snapshot)
}

// maxViolations bounds the returned slice so a systematically broken
// run does not drown the report.
const maxViolations = 100

// CheckStrong verifies Definition 1 over the events: for every update
// Ti acknowledged before Tj was submitted, Tj.Snapshot ≥ Ti.Commit.
// It returns violations (bounded to the first 100).
func CheckStrong(events []Event) []Violation {
	return sweep(events, "strong consistency")
}

// CheckSession verifies Definition 2: the strong-consistency condition
// restricted to pairs within the same session.
func CheckSession(events []Event) []Violation {
	bySession := map[string][]Event{}
	for _, e := range events {
		if e.Session != "" {
			bySession[e.Session] = append(bySession[e.Session], e)
		}
	}
	var out []Violation
	// Deterministic order across runs.
	var sessions []string
	for s := range bySession {
		sessions = append(sessions, s)
	}
	sort.Strings(sessions)
	for _, s := range sessions {
		out = append(out, sweepNamed(bySession[s], "session consistency")...)
		if len(out) >= maxViolations {
			return out[:maxViolations]
		}
	}
	return out
}

func sweep(events []Event, guarantee string) []Violation {
	return sweepNamed(events, guarantee)
}

// sweepNamed runs the O(n log n + n·t) real-time check: walking
// transactions in submit order while tracking, globally and per
// written table, the highest commit version already acknowledged.
//
// Definition 1 constrains only what a transaction can observe: if the
// later transaction declares the tables it reads, a violation requires
// an acknowledged-earlier update to a table it actually read to be
// missing from its snapshot (view equivalence). Fine-grained strong
// consistency is exactly the mode that exploits this. Transactions
// without table information are held to the stricter version-only
// test.
func sweepNamed(events []Event, guarantee string) []Violation {
	updates := make([]Event, 0, len(events))
	for _, e := range events {
		if !e.ReadOnly {
			updates = append(updates, e)
		}
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Acked.Before(updates[j].Acked) })
	bySubmit := append([]Event(nil), events...)
	sort.Slice(bySubmit, func(i, j int) bool { return bySubmit[i].Submit.Before(bySubmit[j].Submit) })

	var out []Violation
	var maxEvent *Event               // max over all acked updates
	maxByTable := map[string]*Event{} // max per written table
	ptr := 0
	for i := range bySubmit {
		tj := &bySubmit[i]
		for ptr < len(updates) && updates[ptr].Acked.Before(tj.Submit) {
			u := &updates[ptr]
			if maxEvent == nil || u.Commit > maxEvent.Commit {
				maxEvent = u
			}
			for _, tab := range u.WriteTables {
				if cur := maxByTable[tab]; cur == nil || u.Commit > cur.Commit {
					maxByTable[tab] = u
				}
			}
			ptr++
		}
		var required *Event
		if len(tj.ReadTables) > 0 {
			for _, tab := range tj.ReadTables {
				if cur := maxByTable[tab]; cur != nil && (required == nil || cur.Commit > required.Commit) {
					required = cur
				}
			}
		} else {
			required = maxEvent
		}
		if required != nil && tj.Snapshot < required.Commit && tj.TxnID != required.TxnID {
			out = append(out, Violation{Earlier: *required, Later: *tj, Guarantee: guarantee})
			if len(out) >= maxViolations {
				return out
			}
		}
	}
	return out
}

// CheckVersionOrder verifies the version-order invariants sharded
// certification must preserve despite assigning versions from
// concurrent per-shard sequencers: every acknowledged update carries a
// commit version no other acknowledged update shares (one global dense
// order — a duplicate means two sequencers assigned the same version),
// and every update's commit version exceeds its snapshot (a commit at
// or below its own snapshot means the version counter went backwards
// or the assignment raced the snapshot read).
func CheckVersionOrder(events []Event) []Violation {
	byVersion := map[uint64]*Event{}
	var out []Violation
	for i := range events {
		e := &events[i]
		if e.ReadOnly {
			continue
		}
		if prev, ok := byVersion[e.Commit]; ok {
			out = append(out, Violation{Earlier: *prev, Later: *e, Guarantee: "unique commit versions"})
		} else {
			byVersion[e.Commit] = e
		}
		if e.Commit <= e.Snapshot {
			out = append(out, Violation{Earlier: *e, Later: *e, Guarantee: "commit above snapshot"})
		}
		if len(out) >= maxViolations {
			return out[:maxViolations]
		}
	}
	return out
}

// CheckMonotonicSessions verifies that within each session, snapshot
// versions never go backwards in submit order — the "never go back in
// time" property §VI ascribes to session consistency.
func CheckMonotonicSessions(events []Event) []Violation {
	bySession := map[string][]Event{}
	for _, e := range events {
		if e.Session != "" {
			bySession[e.Session] = append(bySession[e.Session], e)
		}
	}
	var sessions []string
	for s := range bySession {
		sessions = append(sessions, s)
	}
	sort.Strings(sessions)
	var out []Violation
	for _, s := range sessions {
		evs := bySession[s]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Submit.Before(evs[j].Submit) })
		// A session is serial: each txn submits after the previous was
		// acknowledged. Guard against overlapping submissions, which
		// would make "previous" meaningless.
		for i := 1; i < len(evs); i++ {
			if !evs[i].Submit.Before(evs[i-1].Acked) && evs[i].Snapshot < evs[i-1].Snapshot {
				out = append(out, Violation{Earlier: evs[i-1], Later: evs[i], Guarantee: "monotonic session snapshots"})
				if len(out) >= maxViolations {
					return out
				}
			}
		}
	}
	return out
}
