// Package wal provides the append-only record log used for durability:
// the certifier's decision log and the replica-side applied-writeset
// log of the persistent storage backend.
//
// In the paper's design (§IV, following Tashkent) replicas run with
// log forcing disabled; transaction durability is the certifier's
// responsibility. The certifier appends one record per committed
// update transaction — the assigned commit version and the full
// writeset — and forces it before acknowledging. Replica-side logs
// (internal/pstore) append without forcing: a lost suffix is refetched
// from the certifier on recovery.
//
// # Frame format
//
// Each record is a gob payload wrapped in a 14-byte header:
//
//	[0:2]   magic 0x53 0x57 ("SW")
//	[2:6]   payload size, little-endian uint32 (capped at MaxRecordSize)
//	[6:10]  CRC32 (IEEE) of the payload
//	[10:14] CRC32 (IEEE) of header bytes [0:10]
//
// The header CRC makes the size field trustworthy before any payload
// allocation happens, so a bit flip in a length prefix cannot turn
// into a multi-gigabyte allocation. On replay, a record that fails
// either CRC triggers a resync scan: if a later fully framed record
// exists, the damage is mid-log and replay fails with ErrCorrupt; if
// nothing valid follows, the damaged record is the torn tail of a
// crashed append and is discarded cleanly. ReplayN reports the byte
// length of the valid prefix so callers can truncate the file before
// appending — appending after a torn tail without truncating would
// strand every later record behind garbage.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"sconrep/internal/writeset"
)

// Record is one durable log entry: a commit version and its writeset.
type Record struct {
	Version  uint64
	TxnID    uint64
	WriteSet writeset.WriteSet
}

// ErrCorrupt reports a record that failed its checksum mid-log (not at
// the tail, where truncation is the expected crash artifact).
var ErrCorrupt = errors.New("wal: corrupt record")

const (
	headerSize = 14
	magic0     = 0x53
	magic1     = 0x57

	// MaxRecordSize bounds a single record's payload. A size field
	// beyond it is treated as corruption even if the header CRC
	// matches (it cannot have been written by Append).
	MaxRecordSize = 64 << 20
)

// Log is an append-only record log. The zero value is not usable; use
// Open, NewMemory, or NewWriter.
type Log struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	syncer interface{ Sync() error }
	buf    bytes.Buffer
}

// NewMemory returns a log writing to an in-memory buffer — used by
// in-process clusters where durability is simulated by the latency
// model rather than real disk I/O.
func NewMemory() *Log {
	l := &Log{}
	l.w = &l.buf
	return l
}

// NewWriter returns a log appending to w without forcing. Used for
// replica-side applied-writeset logs, which the paper runs non-forced:
// losing the tail is safe because the certifier backfills it. If w is
// an io.Closer, Close closes it.
func NewWriter(w io.Writer) *Log {
	l := &Log{w: w}
	if c, ok := w.(io.Closer); ok {
		l.closer = c
	}
	return l
}

// Open opens (creating if needed) a file-backed log for appending.
// Appends are forced (fsync) — this is the certifier's durability
// path. If the file may end in a torn record from a previous crash,
// replay with ReplayFileN and truncate to the valid prefix first.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{w: f, closer: f, syncer: f}, nil
}

// Append writes one record and, for forced logs, syncs it to stable
// storage.
func (l *Log) Append(r *Record) error {
	var payload bytes.Buffer
	payload.Write(make([]byte, headerSize)) // header placeholder, filled below
	if err := gob.NewEncoder(&payload).Encode(r); err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	frame := payload.Bytes()
	body := frame[headerSize:]
	if len(body) > MaxRecordSize {
		return fmt.Errorf("wal: record too large (%d bytes)", len(body))
	}
	frame[0] = magic0
	frame[1] = magic1
	binary.LittleEndian.PutUint32(frame[2:6], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[6:10], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(frame[10:14], crc32.ChecksumIEEE(frame[0:10]))

	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(frame); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if l.syncer != nil {
		if err := l.syncer.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Close closes the underlying file, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closer != nil {
		return l.closer.Close()
	}
	return nil
}

// MemoryBytes returns a copy of an in-memory log's contents (nil for
// file-backed logs); used to replay without touching disk.
func (l *Log) MemoryBytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf.Bytes()...)
}

// Replay reads records from r until EOF, invoking fn for each. A
// truncated or bit-flipped tail record (torn final write) ends replay
// cleanly; a checksum mismatch with a valid record after it returns
// ErrCorrupt.
func Replay(r io.Reader, fn func(*Record) error) error {
	_, err := ReplayN(r, fn)
	return err
}

// ReplayN is Replay returning, additionally, the byte length of the
// valid record prefix. Callers that will append to the same file must
// truncate it to that length first, or records appended after a
// discarded torn tail are unreachable on the next replay.
func ReplayN(r io.Reader, fn func(*Record) error) (int64, error) {
	br := &countingReader{r: r}
	valid := int64(0)
	for {
		start := br.n
		var hdr [headerSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, nil // clean EOF or torn header at tail
			}
			return valid, fmt.Errorf("wal: read header: %w", err)
		}
		size := binary.LittleEndian.Uint32(hdr[2:6])
		if hdr[0] != magic0 || hdr[1] != magic1 ||
			crc32.ChecksumIEEE(hdr[0:10]) != binary.LittleEndian.Uint32(hdr[10:14]) ||
			size > MaxRecordSize {
			return valid, resync(br, hdr[:], nil, start)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, nil // torn payload at tail
			}
			return valid, fmt.Errorf("wal: read payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[6:10]) {
			return valid, resync(br, hdr[:], payload, start)
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return valid, fmt.Errorf("wal: decode at offset %d: %w", start, err)
		}
		if err := fn(&rec); err != nil {
			return valid, err
		}
		valid = br.n
	}
}

// resync decides whether a damaged record at offset start is a torn
// tail (nothing framed after it — discard cleanly) or mid-log damage
// (a later record still frames correctly — ErrCorrupt). consumed holds
// the bytes of the damaged record already read (header, then payload
// if it was reached).
func resync(br io.Reader, hdr, payload []byte, start int64) error {
	rest, err := io.ReadAll(br)
	if err != nil {
		return fmt.Errorf("wal: read during resync: %w", err)
	}
	region := make([]byte, 0, len(hdr)+len(payload)+len(rest))
	region = append(region, hdr...)
	region = append(region, payload...)
	region = append(region, rest...)
	// Scan past the damaged record's own start for any later offset
	// that frames as a record: magic, a valid header CRC, and a size
	// that fits in the remaining bytes.
	for i := 1; i+headerSize <= len(region); i++ {
		if region[i] != magic0 || region[i+1] != magic1 {
			continue
		}
		h := region[i : i+headerSize]
		if crc32.ChecksumIEEE(h[0:10]) != binary.LittleEndian.Uint32(h[10:14]) {
			continue
		}
		size := binary.LittleEndian.Uint32(h[2:6])
		if size > MaxRecordSize || i+headerSize+int(size) > len(region) {
			continue
		}
		if crc32.ChecksumIEEE(region[i+headerSize:i+headerSize+int(size)]) != binary.LittleEndian.Uint32(h[6:10]) {
			continue
		}
		return fmt.Errorf("%w at offset %d", ErrCorrupt, start)
	}
	return nil // torn tail: nothing valid after the damage
}

// ReplayFile replays a file-backed log.
func ReplayFile(path string, fn func(*Record) error) error {
	_, err := ReplayFileN(path, fn)
	return err
}

// ReplayFileN replays a file-backed log and returns the valid prefix
// length (0 if the file does not exist). To reopen the log for
// appending after a crash, truncate the file to the returned length
// first (see Open).
func ReplayFileN(path string, fn func(*Record) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: open for replay: %w", err)
	}
	defer f.Close()
	return ReplayN(f, fn)
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
