// Package wal provides the append-only decision log the certifier uses
// to make certification decisions durable.
//
// In the paper's design (§IV, following Tashkent) replicas run with
// log forcing disabled; transaction durability is the certifier's
// responsibility. The certifier appends one record per committed
// update transaction — the assigned commit version and the full
// writeset — and forces it before acknowledging. On recovery the log
// is replayed to rebuild the certifier's version counter and the
// refresh history replicas may still need.
//
// Records are length-prefixed gob frames with a CRC32 guard, so a torn
// final write is detected and truncated rather than misread.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"sconrep/internal/writeset"
)

// Record is one durable certification decision.
type Record struct {
	Version  uint64
	TxnID    uint64
	WriteSet writeset.WriteSet
}

// ErrCorrupt reports a record that failed its checksum mid-log (not at
// the tail, where truncation is the expected crash artifact).
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only record log. The zero value is not usable; use
// Open or NewMemory.
type Log struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	syncer interface{ Sync() error }
	buf    bytes.Buffer
}

// NewMemory returns a log writing to an in-memory buffer — used by
// in-process clusters where durability is simulated by the latency
// model rather than real disk I/O.
func NewMemory() *Log {
	l := &Log{}
	l.w = &l.buf
	return l
}

// Open opens (creating if needed) a file-backed log for appending.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{w: f, closer: f, syncer: f}, nil
}

// Append writes one record and forces it to stable storage (for
// file-backed logs).
func (l *Log) Append(r *Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(r); err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))

	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if _, err := l.w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	if l.syncer != nil {
		if err := l.syncer.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Close closes the underlying file, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closer != nil {
		return l.closer.Close()
	}
	return nil
}

// MemoryBytes returns a copy of an in-memory log's contents (nil for
// file-backed logs); used to replay without touching disk.
func (l *Log) MemoryBytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf.Bytes()...)
}

// Replay reads records from r until EOF, invoking fn for each. A
// truncated tail (torn final write) ends replay cleanly; a checksum
// mismatch with further bytes after it returns ErrCorrupt.
func Replay(r io.Reader, fn func(*Record) error) error {
	br := &countingReader{r: r}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn header at tail
			}
			return fmt.Errorf("wal: read header: %w", err)
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn payload at tail
			}
			return fmt.Errorf("wal: read payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			// Distinguish a torn tail from mid-log damage: if there is
			// anything after this record, the log is corrupt.
			var probe [1]byte
			if _, err := br.Read(probe[:]); err == io.EOF {
				return nil
			}
			return fmt.Errorf("%w at offset %d", ErrCorrupt, br.n)
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("wal: decode: %w", err)
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
}

// ReplayFile replays a file-backed log.
func ReplayFile(path string, fn func(*Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: open for replay: %w", err)
	}
	defer f.Close()
	return Replay(f, fn)
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
