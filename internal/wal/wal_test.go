package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"sconrep/internal/writeset"
)

func record(v uint64) *Record {
	return &Record{
		Version: v,
		TxnID:   v * 10,
		WriteSet: writeset.WriteSet{Items: []writeset.Item{
			{Table: "t", Key: "k", Op: writeset.OpUpdate, Row: []any{int64(v), "x"}},
		}},
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	l := NewMemory()
	for v := uint64(1); v <= 5; v++ {
		if err := l.Append(record(v)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := Replay(bytes.NewReader(l.MemoryBytes()), func(r *Record) error {
		got = append(got, r.Version)
		if r.WriteSet.Items[0].Row[0].(int64) != int64(r.Version) {
			t.Fatalf("row mismatch in record %d", r.Version)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("replayed versions = %v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 3; v++ {
		if err := l.Append(record(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := ReplayFile(path, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
	// Appending after reopen continues the log.
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(record(4)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	n = 0
	if err := ReplayFile(path, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("after reopen: %d records, want 4", n)
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := ReplayFile(filepath.Join(t.TempDir(), "nope.log"), func(*Record) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if err != nil {
		t.Fatalf("missing file err = %v, want nil", err)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	l := NewMemory()
	_ = l.Append(record(1))
	_ = l.Append(record(2))
	data := l.MemoryBytes()
	// Chop bytes off the final record: replay must stop after record 1.
	for cut := 1; cut < 20; cut++ {
		torn := data[:len(data)-cut]
		var got []uint64
		if err := Replay(bytes.NewReader(torn), func(r *Record) error {
			got = append(got, r.Version)
			return nil
		}); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("cut %d: replayed %v, want [1]", cut, got)
		}
	}
}

// TestTailCorruptionEveryByte is the torn-write regression: whatever
// single byte of the final record a crash (or a failing disk) mangles
// — header magic, size, either CRC, or payload — replay must discard
// exactly that record and report the valid prefix before it, never an
// error and never a short or oversized allocation.
func TestTailCorruptionEveryByte(t *testing.T) {
	l := NewMemory()
	_ = l.Append(record(1))
	_ = l.Append(record(2))
	prefix := int64(len(l.MemoryBytes()))
	_ = l.Append(record(3))
	data := l.MemoryBytes()

	check := func(kind string, pos int, mutated []byte) {
		var got []uint64
		n, err := ReplayN(bytes.NewReader(mutated), func(r *Record) error {
			got = append(got, r.Version)
			return nil
		})
		if err != nil {
			t.Fatalf("%s at %d: err = %v, want nil", kind, pos, err)
		}
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("%s at %d: replayed %v, want [1 2]", kind, pos, got)
		}
		if n != prefix {
			t.Fatalf("%s at %d: valid prefix = %d, want %d", kind, pos, n, prefix)
		}
	}

	for pos := int(prefix); pos < len(data); pos++ {
		// Bit-flip every byte of the last record.
		flipped := append([]byte(nil), data...)
		flipped[pos] ^= 0xff
		check("flip", pos, flipped)
		// Truncate at every byte offset inside the last record.
		check("cut", pos, data[:pos])
	}
}

// A corrupted size field must never drive a payload allocation: the
// header CRC catches it, and even a crafted header with a valid CRC is
// rejected beyond MaxRecordSize.
func TestOversizedRecordRejected(t *testing.T) {
	hdr := make([]byte, headerSize)
	hdr[0], hdr[1] = magic0, magic1
	binary.LittleEndian.PutUint32(hdr[2:6], 1<<31)
	binary.LittleEndian.PutUint32(hdr[6:10], 0)
	binary.LittleEndian.PutUint32(hdr[10:14], crc32.ChecksumIEEE(hdr[0:10]))
	n, err := ReplayN(bytes.NewReader(hdr), func(*Record) error {
		t.Fatal("callback on oversized record")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("oversized lone record: n=%d err=%v, want 0, nil", n, err)
	}
}

// Reopening a log that crashed mid-append must truncate the torn tail
// before appending, or the new records land behind garbage and are
// lost on the next replay.
func TestTruncateTornTailThenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append(record(1))
	_ = l.Append(record(2))
	l.Close()
	// Tear the tail: chop half of record 2.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	valid, err := ReplayFileN(path, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, valid); err != nil {
		t.Fatal(err)
	}
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(record(9)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	var got []uint64
	if err := ReplayFile(path, func(r *Record) error {
		got = append(got, r.Version)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Fatalf("replayed %v, want [1 9]", got)
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	l := NewMemory()
	_ = l.Append(record(1))
	_ = l.Append(record(2))
	data := l.MemoryBytes()
	// A flip anywhere in the first record — header or payload — must be
	// reported as corruption, because a valid record follows it.
	for _, pos := range []int{0, 3, 7, 10, headerSize, headerSize + 5} {
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0xff
		err := Replay(bytes.NewReader(mutated), func(*Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", pos, err)
		}
	}
}

func TestReplayFilePermissionIndependent(t *testing.T) {
	// A log written then made read-only must still replay.
	path := filepath.Join(t.TempDir(), "ro.log")
	l, _ := Open(path)
	_ = l.Append(record(7))
	l.Close()
	if err := os.Chmod(path, 0o444); err != nil {
		t.Skip("cannot chmod")
	}
	var n int
	if err := ReplayFile(path, func(*Record) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("replay = %d, %v", n, err)
	}
}
