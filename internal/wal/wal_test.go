package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sconrep/internal/writeset"
)

func record(v uint64) *Record {
	return &Record{
		Version: v,
		TxnID:   v * 10,
		WriteSet: writeset.WriteSet{Items: []writeset.Item{
			{Table: "t", Key: "k", Op: writeset.OpUpdate, Row: []any{int64(v), "x"}},
		}},
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	l := NewMemory()
	for v := uint64(1); v <= 5; v++ {
		if err := l.Append(record(v)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := Replay(bytes.NewReader(l.MemoryBytes()), func(r *Record) error {
		got = append(got, r.Version)
		if r.WriteSet.Items[0].Row[0].(int64) != int64(r.Version) {
			t.Fatalf("row mismatch in record %d", r.Version)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("replayed versions = %v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 3; v++ {
		if err := l.Append(record(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := ReplayFile(path, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
	// Appending after reopen continues the log.
	l, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(record(4)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	n = 0
	if err := ReplayFile(path, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("after reopen: %d records, want 4", n)
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := ReplayFile(filepath.Join(t.TempDir(), "nope.log"), func(*Record) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if err != nil {
		t.Fatalf("missing file err = %v, want nil", err)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	l := NewMemory()
	_ = l.Append(record(1))
	_ = l.Append(record(2))
	data := l.MemoryBytes()
	// Chop bytes off the final record: replay must stop after record 1.
	for cut := 1; cut < 20; cut++ {
		torn := data[:len(data)-cut]
		var got []uint64
		if err := Replay(bytes.NewReader(torn), func(r *Record) error {
			got = append(got, r.Version)
			return nil
		}); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("cut %d: replayed %v, want [1]", cut, got)
		}
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	l := NewMemory()
	_ = l.Append(record(1))
	_ = l.Append(record(2))
	data := l.MemoryBytes()
	// Flip a payload byte of the first record.
	data[10] ^= 0xff
	err := Replay(bytes.NewReader(data), func(*Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReplayFilePermissionIndependent(t *testing.T) {
	// A log written then made read-only must still replay.
	path := filepath.Join(t.TempDir(), "ro.log")
	l, _ := Open(path)
	_ = l.Append(record(7))
	l.Close()
	if err := os.Chmod(path, 0o444); err != nil {
		t.Skip("cannot chmod")
	}
	var n int
	if err := ReplayFile(path, func(*Record) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("replay = %d, %v", n, err)
	}
}
