package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the replay path: it must
// return (possibly with an error), never panic, never allocate beyond
// MaxRecordSize for a single record, and every record it does deliver
// must have passed both CRCs.
func FuzzWALReplay(f *testing.F) {
	l := NewMemory()
	_ = l.Append(record(1))
	_ = l.Append(record(2))
	valid := l.MemoryBytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, 0xff, 0xff, 0xff, 0xff})
	torn := append([]byte(nil), valid...)
	torn[len(torn)-3] ^= 0x40
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := ReplayN(bytes.NewReader(data), func(r *Record) error {
			_ = r.Version
			return nil
		})
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", n, len(data))
		}
		if err == nil && n > 0 {
			// The valid prefix must itself replay cleanly and fully.
			m, err2 := ReplayN(bytes.NewReader(data[:n]), func(*Record) error { return nil })
			if err2 != nil || m != n {
				t.Fatalf("valid prefix not self-consistent: m=%d err=%v", m, err2)
			}
		}
	})
}
