package shard

import (
	"reflect"
	"testing"
)

func TestMapDeterministic(t *testing.T) {
	a, err := New(4, map[string]int{"customer": 0, "item": 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(4, map[string]int{"customer": 0, "item": 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"customer", "item", "orders", "order_line", "zzz"} {
		if a.Of(table) != b.Of(table) {
			t.Fatalf("table %q maps differently across identical maps", table)
		}
		if s := a.Of(table); s < 0 || s >= 4 {
			t.Fatalf("table %q out of range: %d", table, s)
		}
	}
	if a.Of("customer") != 0 || a.Of("item") != 1 {
		t.Fatal("explicit assignments not honored")
	}
}

func TestMapValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("New(0) accepted")
	}
	if _, err := New(2, map[string]int{"t": 2}); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
}

func TestOfTables(t *testing.T) {
	m, err := New(4, map[string]int{"a": 3, "b": 1, "c": 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.OfTables([]string{"a", "b", "c"}); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("OfTables = %v, want [1 3]", got)
	}
	if got := m.OfTables([]string{"b"}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("OfTables = %v, want [1]", got)
	}
	var nilMap *Map
	if got := nilMap.OfTables([]string{"a", "b"}); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("nil map OfTables = %v, want [0]", got)
	}
	if nilMap.N() != 1 || nilMap.Of("x") != 0 {
		t.Fatal("nil map must behave as one shard")
	}
}

func TestCovers(t *testing.T) {
	if !Covers(nil, []int{0, 3}) {
		t.Fatal("nil served must cover everything")
	}
	if !Covers([]int{0, 1, 3}, []int{0, 3}) {
		t.Fatal("superset must cover")
	}
	if Covers([]int{0, 1}, []int{0, 3}) {
		t.Fatal("missing shard must not cover")
	}
}
