// Package shard defines the static table→shard assignment that keys
// the certifier's per-shard sequencers and the replicas' partial
// refresh subscriptions.
//
// A shard is a group of tables certified by one sequencer. Writesets
// whose tables all map to one shard are certified with zero shared
// locking against other shards; writesets spanning shards take the
// cross-shard reserve/seal handshake in ascending shard-ID order.
// Because conflicts require a common (table, key) pair — hence a
// common table, hence a common shard — the first-committer-wins test
// is complete when every involved shard's conflict index is consulted.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Map is an immutable table→shard assignment over n shards. Tables
// with an explicit assignment use it; all others fall back to a
// deterministic FNV-1a hash, so every process in a cluster derives the
// same map from the same (n, assignments) configuration.
//
// A nil *Map behaves as a single shard (the unsharded legacy
// configuration).
type Map struct {
	n      int
	assign map[string]int
}

// New builds a map over n shards with the given explicit assignments
// (nil for pure hashing). n < 1 is rejected, as is any assignment
// outside [0, n).
func New(n int, assign map[string]int) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, have %d", n)
	}
	m := &Map{n: n}
	if len(assign) > 0 {
		m.assign = make(map[string]int, len(assign))
		for t, s := range assign {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("shard: table %q assigned to shard %d, want [0,%d)", t, s, n)
			}
			m.assign[t] = s
		}
	}
	return m, nil
}

// Single returns the one-shard map — the unsharded configuration.
func Single() *Map { return &Map{n: 1} }

// N returns the number of shards (1 for a nil map).
func (m *Map) N() int {
	if m == nil {
		return 1
	}
	return m.n
}

// Of returns the shard the table maps to.
func (m *Map) Of(table string) int {
	if m == nil || m.n == 1 {
		return 0
	}
	if s, ok := m.assign[table]; ok {
		return s
	}
	h := fnv.New32a()
	h.Write([]byte(table))
	return int(h.Sum32() % uint32(m.n))
}

// OfTables returns the ascending set of shards the tables map to. The
// first element is the transaction's home shard (the one that owns its
// history entry, decision memo, and durable log record).
func (m *Map) OfTables(tables []string) []int {
	if m == nil || m.n == 1 || len(tables) == 0 {
		return []int{0}
	}
	seen := make(map[int]bool, 2)
	out := make([]int, 0, 2)
	for _, t := range tables {
		s := m.Of(t)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// Covers reports whether the served shard set (nil = all shards)
// includes every shard in need.
func Covers(served []int, need []int) bool {
	if served == nil {
		return true
	}
	for _, n := range need {
		found := false
		for _, s := range served {
			if s == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
