package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageStrings(t *testing.T) {
	want := []string{"Version", "Queries", "Certify", "Sync", "Commit", "Global"}
	for i, st := range Stages {
		if st.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, st.String(), want[i])
		}
	}
}

func TestTxnTimerAccumulates(t *testing.T) {
	tm := NewTxnTimer()
	tm.Start(StageVersion)
	time.Sleep(10 * time.Millisecond)
	tm.Start(StageQueries) // implicitly ends Version
	time.Sleep(10 * time.Millisecond)
	tm.Stop()
	if tm.Stage(StageVersion) < 5*time.Millisecond {
		t.Fatalf("version stage = %v", tm.Stage(StageVersion))
	}
	if tm.Stage(StageQueries) < 5*time.Millisecond {
		t.Fatalf("queries stage = %v", tm.Stage(StageQueries))
	}
	if tm.Stage(StageGlobal) != 0 {
		t.Fatalf("untouched stage = %v", tm.Stage(StageGlobal))
	}
	total := tm.Total()
	if total != tm.Stage(StageVersion)+tm.Stage(StageQueries) {
		t.Fatalf("total %v != sum of stages", total)
	}
	// Stop is idempotent.
	before := tm.Total()
	tm.Stop()
	if tm.Total() != before {
		t.Fatal("double Stop changed totals")
	}
}

func TestTimerReenterStage(t *testing.T) {
	tm := NewTxnTimer()
	tm.Start(StageSync)
	time.Sleep(5 * time.Millisecond)
	tm.Start(StageCommit)
	time.Sleep(1 * time.Millisecond)
	tm.Start(StageSync) // revisit
	time.Sleep(5 * time.Millisecond)
	tm.Stop()
	if tm.Stage(StageSync) < 8*time.Millisecond {
		t.Fatalf("revisited stage did not accumulate: %v", tm.Stage(StageSync))
	}
}

func TestCollectorFlow(t *testing.T) {
	c := NewCollector()
	tm := NewTxnTimer()
	tm.Start(StageQueries)
	time.Sleep(time.Millisecond)
	tm.Stop()
	c.RecordCommit(tm, true, 10*time.Millisecond, 2*time.Millisecond)
	c.RecordCommit(tm, false, 20*time.Millisecond, 0)
	c.RecordAbort()

	s := c.Snapshot()
	if s.Committed != 2 || s.Updates != 1 || s.ReadOnly != 1 || s.Aborted != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.MeanResponse != 15*time.Millisecond {
		t.Fatalf("mean response = %v", s.MeanResponse)
	}
	if s.MeanSync != time.Millisecond {
		t.Fatalf("mean sync = %v", s.MeanSync)
	}
	if got := s.AbortRate(); got < 0.3 || got > 0.4 {
		t.Fatalf("abort rate = %v", got)
	}
	if s.TPS <= 0 {
		t.Fatalf("tps = %v", s.TPS)
	}
	if !strings.Contains(s.String(), "tps=") {
		t.Fatalf("String = %q", s.String())
	}
	if !strings.Contains(s.BreakdownRow(), "Queries=") {
		t.Fatalf("BreakdownRow = %q", s.BreakdownRow())
	}
}

func TestResetDropsWarmup(t *testing.T) {
	c := NewCollector()
	tm := NewTxnTimer()
	c.RecordCommit(tm, true, time.Millisecond, 0)
	c.Reset()
	s := c.Snapshot()
	if s.Committed != 0 {
		t.Fatalf("warm-up data survived Reset: %+v", s)
	}
	c.RecordCommit(tm, true, time.Millisecond, 0)
	if c.Snapshot().Committed != 1 {
		t.Fatal("post-Reset commit not recorded")
	}
}

func TestEmptySnapshotSafe(t *testing.T) {
	c := NewCollector()
	s := c.Snapshot()
	if s.MeanResponse != 0 || s.P95Response != 0 || s.AbortRate() != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	c := NewCollector()
	tm := NewTxnTimer()
	for i := 1; i <= 100; i++ {
		c.RecordCommit(tm, false, time.Duration(i)*time.Millisecond, 0)
	}
	s := c.Snapshot()
	if s.P95Response < 90*time.Millisecond || s.P95Response > 100*time.Millisecond {
		t.Fatalf("p95 = %v", s.P95Response)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// 10 samples of 1..10ms: nearest-rank p95 is the 10th value. The
	// old floored-index formula returned the 9th.
	c := NewCollector()
	tm := NewTxnTimer()
	for i := 1; i <= 10; i++ {
		c.RecordCommit(tm, false, time.Duration(i)*time.Millisecond, 0)
	}
	if got := c.Snapshot().P95Response; got != 10*time.Millisecond {
		t.Fatalf("p95 of 10 samples = %v, want 10ms", got)
	}
	// p50 of [1..10] is the 5th value; p100 is the max; tiny p clamps
	// to the minimum.
	h := &durationHist{}
	for i := 1; i <= 10; i++ {
		h.add(time.Duration(i) * time.Millisecond)
	}
	if got := h.percentile(0.5); got != 5*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.percentile(1.0); got != 10*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.percentile(0.001); got != time.Millisecond {
		t.Fatalf("p0.1 = %v", got)
	}
}

func TestSnapshotMarshalJSON(t *testing.T) {
	c := NewCollector()
	tm := NewTxnTimer()
	tm.Start(StageQueries)
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	c.RecordCommit(tm, true, 10*time.Millisecond, 3*time.Millisecond)
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Committed    int64            `json:"committed"`
		TPS          float64          `json:"tps"`
		MeanResponse int64            `json:"mean_response_us"`
		MeanSync     int64            `json:"mean_sync_us"`
		Stages       map[string]int64 `json:"stage_means_us"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("round trip: %v (%s)", err, data)
	}
	if parsed.Committed != 1 || parsed.TPS <= 0 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed.MeanResponse != 10000 || parsed.MeanSync != 3000 {
		t.Fatalf("durations not in microseconds: %+v", parsed)
	}
	if parsed.Stages["Queries"] < 1000 {
		t.Fatalf("stage means = %v", parsed.Stages)
	}
	if _, ok := parsed.Stages["Global"]; !ok {
		t.Fatalf("stage means missing zero stages: %v", parsed.Stages)
	}
}

func TestTimerSpans(t *testing.T) {
	tm := NewTxnTimer()
	tm.Start(StageVersion)
	tm.Start(StageQueries)
	tm.Start(StageCertify)
	tm.Stop()
	spans := tm.Spans()
	want := []Stage{StageVersion, StageQueries, StageCertify}
	if len(spans) != len(want) {
		t.Fatalf("spans = %d, want %d", len(spans), len(want))
	}
	for i, sp := range spans {
		if sp.Stage != want[i] {
			t.Fatalf("span %d stage = %v, want %v", i, sp.Stage, want[i])
		}
		if sp.End.Before(sp.Start) {
			t.Fatalf("span %d ends before it starts", i)
		}
		if i > 0 && spans[i].Start.Before(spans[i-1].End) {
			t.Fatalf("span %d overlaps predecessor", i)
		}
	}
}

func TestReservoirPastMaxSamples(t *testing.T) {
	h := &durationHist{}
	n := maxSamples + 4096
	for i := 1; i <= n; i++ {
		h.add(time.Duration(i) * time.Microsecond)
	}
	if h.n != int64(n) {
		t.Fatalf("n = %d, want %d", h.n, n)
	}
	if len(h.samples) != maxSamples {
		t.Fatalf("reservoir grew past bound: %d", len(h.samples))
	}
	// Mean uses every observation, not just the reservoir.
	wantMean := time.Duration(n+1) * time.Microsecond / 2
	if got := h.mean(); got != wantMean {
		t.Fatalf("mean = %v, want %v", got, wantMean)
	}
	// The reservoir keeps every k-th late sample, so it still spans
	// the whole distribution: p95 must land near the top of the range,
	// not collapse to the early prefix.
	p95 := h.percentile(0.95)
	lo := time.Duration(maxSamples*9/10) * time.Microsecond
	hi := time.Duration(n) * time.Microsecond
	if p95 < lo || p95 > hi {
		t.Fatalf("p95 = %v, want in [%v, %v]", p95, lo, hi)
	}
}

func TestCollectorConcurrentHammer(t *testing.T) {
	// Race-clean under -race: commits, aborts, resets, and snapshots
	// from many goroutines.
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tm := NewTxnTimer()
			tm.Start(StageQueries)
			tm.Stop()
			for i := 0; i < 500; i++ {
				switch i % 4 {
				case 0, 1:
					c.RecordCommit(tm, i%2 == 0, time.Duration(i)*time.Microsecond, 0)
				case 2:
					c.RecordAbort()
				case 3:
					s := c.Snapshot()
					if s.Committed < 0 || s.Aborted < 0 {
						t.Errorf("negative snapshot: %+v", s)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Committed != 8*250 || s.Aborted != 8*125 {
		t.Fatalf("committed=%d aborted=%d", s.Committed, s.Aborted)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm := NewTxnTimer()
			for i := 0; i < 200; i++ {
				c.RecordCommit(tm, i%2 == 0, time.Millisecond, 0)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().Committed; got != 1600 {
		t.Fatalf("committed = %d, want 1600", got)
	}
}
