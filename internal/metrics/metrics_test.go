package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageStrings(t *testing.T) {
	want := []string{"Version", "Queries", "Certify", "Sync", "Commit", "Global"}
	for i, st := range Stages {
		if st.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, st.String(), want[i])
		}
	}
}

func TestTxnTimerAccumulates(t *testing.T) {
	tm := NewTxnTimer()
	tm.Start(StageVersion)
	time.Sleep(10 * time.Millisecond)
	tm.Start(StageQueries) // implicitly ends Version
	time.Sleep(10 * time.Millisecond)
	tm.Stop()
	if tm.Stage(StageVersion) < 5*time.Millisecond {
		t.Fatalf("version stage = %v", tm.Stage(StageVersion))
	}
	if tm.Stage(StageQueries) < 5*time.Millisecond {
		t.Fatalf("queries stage = %v", tm.Stage(StageQueries))
	}
	if tm.Stage(StageGlobal) != 0 {
		t.Fatalf("untouched stage = %v", tm.Stage(StageGlobal))
	}
	total := tm.Total()
	if total != tm.Stage(StageVersion)+tm.Stage(StageQueries) {
		t.Fatalf("total %v != sum of stages", total)
	}
	// Stop is idempotent.
	before := tm.Total()
	tm.Stop()
	if tm.Total() != before {
		t.Fatal("double Stop changed totals")
	}
}

func TestTimerReenterStage(t *testing.T) {
	tm := NewTxnTimer()
	tm.Start(StageSync)
	time.Sleep(5 * time.Millisecond)
	tm.Start(StageCommit)
	time.Sleep(1 * time.Millisecond)
	tm.Start(StageSync) // revisit
	time.Sleep(5 * time.Millisecond)
	tm.Stop()
	if tm.Stage(StageSync) < 8*time.Millisecond {
		t.Fatalf("revisited stage did not accumulate: %v", tm.Stage(StageSync))
	}
}

func TestCollectorFlow(t *testing.T) {
	c := NewCollector()
	tm := NewTxnTimer()
	tm.Start(StageQueries)
	time.Sleep(time.Millisecond)
	tm.Stop()
	c.RecordCommit(tm, true, 10*time.Millisecond, 2*time.Millisecond)
	c.RecordCommit(tm, false, 20*time.Millisecond, 0)
	c.RecordAbort()

	s := c.Snapshot()
	if s.Committed != 2 || s.Updates != 1 || s.ReadOnly != 1 || s.Aborted != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.MeanResponse != 15*time.Millisecond {
		t.Fatalf("mean response = %v", s.MeanResponse)
	}
	if s.MeanSync != time.Millisecond {
		t.Fatalf("mean sync = %v", s.MeanSync)
	}
	if got := s.AbortRate(); got < 0.3 || got > 0.4 {
		t.Fatalf("abort rate = %v", got)
	}
	if s.TPS <= 0 {
		t.Fatalf("tps = %v", s.TPS)
	}
	if !strings.Contains(s.String(), "tps=") {
		t.Fatalf("String = %q", s.String())
	}
	if !strings.Contains(s.BreakdownRow(), "Queries=") {
		t.Fatalf("BreakdownRow = %q", s.BreakdownRow())
	}
}

func TestResetDropsWarmup(t *testing.T) {
	c := NewCollector()
	tm := NewTxnTimer()
	c.RecordCommit(tm, true, time.Millisecond, 0)
	c.Reset()
	s := c.Snapshot()
	if s.Committed != 0 {
		t.Fatalf("warm-up data survived Reset: %+v", s)
	}
	c.RecordCommit(tm, true, time.Millisecond, 0)
	if c.Snapshot().Committed != 1 {
		t.Fatal("post-Reset commit not recorded")
	}
}

func TestEmptySnapshotSafe(t *testing.T) {
	c := NewCollector()
	s := c.Snapshot()
	if s.MeanResponse != 0 || s.P95Response != 0 || s.AbortRate() != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	c := NewCollector()
	tm := NewTxnTimer()
	for i := 1; i <= 100; i++ {
		c.RecordCommit(tm, false, time.Duration(i)*time.Millisecond, 0)
	}
	s := c.Snapshot()
	if s.P95Response < 90*time.Millisecond || s.P95Response > 100*time.Millisecond {
		t.Fatalf("p95 = %v", s.P95Response)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm := NewTxnTimer()
			for i := 0; i < 200; i++ {
				c.RecordCommit(tm, i%2 == 0, time.Millisecond, 0)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().Committed; got != 1600 {
		t.Fatalf("committed = %d, want 1600", got)
	}
}
