// Package metrics collects the measurements the paper reports:
// throughput (TPS), response time, and the per-transaction latency
// decomposition of §V-A — version / queries / certify / sync / commit /
// global — plus the synchronization delay series of Figure 6.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage identifies one component of a transaction's latency.
type Stage int

const (
	// StageVersion is the synchronization start delay: waiting for the
	// replica to reach the version required by the consistency mode.
	StageVersion Stage = iota
	// StageQueries is SQL statement execution.
	StageQueries
	// StageCertify is the round trip to the certifier.
	StageCertify
	// StageSync is waiting for earlier commits (refresh or local) so
	// the transaction commits in certifier order.
	StageSync
	// StageCommit is the local DBMS commit.
	StageCommit
	// StageGlobal is the eager mode's global commit delay: waiting for
	// every replica to apply and commit the transaction.
	StageGlobal
	numStages
)

// Stages lists all stages in presentation order.
var Stages = []Stage{StageVersion, StageQueries, StageCertify, StageSync, StageCommit, StageGlobal}

// String returns the label used in Figure 4.
func (s Stage) String() string {
	switch s {
	case StageVersion:
		return "Version"
	case StageQueries:
		return "Queries"
	case StageCertify:
		return "Certify"
	case StageSync:
		return "Sync"
	case StageCommit:
		return "Commit"
	case StageGlobal:
		return "Global"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Span is one timed visit to a stage, in wall-clock order. A stage
// revisited later in the transaction produces a second span.
type Span struct {
	Stage Stage
	Start time.Time
	End   time.Time
}

// TxnTimer accumulates one transaction's stage durations and the
// ordered span timeline (for trace recording). It is not safe for
// concurrent use; each in-flight transaction owns one.
type TxnTimer struct {
	stages  [numStages]time.Duration
	spans   []Span
	started time.Time
	current Stage
	running bool
}

// NewTxnTimer returns a timer with no running stage.
func NewTxnTimer() *TxnTimer { return &TxnTimer{} }

// Start begins timing a stage, ending any stage already running.
func (t *TxnTimer) Start(s Stage) {
	now := time.Now()
	if t.running {
		t.stages[t.current] += now.Sub(t.started)
		t.spans = append(t.spans, Span{Stage: t.current, Start: t.started, End: now})
	}
	t.current = s
	t.started = now
	t.running = true
}

// Stop ends the running stage.
func (t *TxnTimer) Stop() {
	if t.running {
		now := time.Now()
		t.stages[t.current] += now.Sub(t.started)
		t.spans = append(t.spans, Span{Stage: t.current, Start: t.started, End: now})
		t.running = false
	}
}

// Spans returns the completed stage visits in wall-clock order. The
// currently running stage (if any) is not included; call Stop first
// for a complete timeline.
func (t *TxnTimer) Spans() []Span { return t.spans }

// Stage returns the accumulated duration of one stage.
func (t *TxnTimer) Stage(s Stage) time.Duration { return t.stages[s] }

// Total returns the sum of all stages.
func (t *TxnTimer) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.stages {
		sum += d
	}
	return sum
}

// Collector aggregates transaction outcomes across concurrent clients.
type Collector struct {
	mu          sync.Mutex
	start       time.Time
	collecting  bool
	committed   int64
	aborted     int64
	readOnly    int64
	updates     int64
	stageTotals [numStages]time.Duration
	respTimes   durationHist
	syncDelays  durationHist
	// readSyncDelays tracks the sync delay of read-only transactions
	// separately: on skewed workloads it isolates the fine-grained
	// mode's benefit from closed-loop load feedback (readers that do
	// not wait speed the whole loop up, which deepens the apply backlog
	// and inflates the update transactions' waits — the all-transaction
	// mean then no longer separates the modes).
	readSyncDelays durationHist
}

// NewCollector returns a collector that starts recording immediately.
// Call Reset at the end of a warm-up phase to begin a clean
// measurement interval.
func NewCollector() *Collector {
	return &Collector{start: time.Now(), collecting: true}
}

// Reset discards warm-up data and starts the measurement interval.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.start = time.Now()
	c.collecting = true
	c.committed, c.aborted, c.readOnly, c.updates = 0, 0, 0, 0
	c.stageTotals = [numStages]time.Duration{}
	c.respTimes = durationHist{}
	c.syncDelays = durationHist{}
	c.readSyncDelays = durationHist{}
}

// RecordCommit records one committed transaction with its timer.
// response is the client-observed wall time (stages plus network and
// queueing); syncDelay is the consistency synchronization delay: the
// version stage for the lazy modes, the global stage for eager.
func (c *Collector) RecordCommit(t *TxnTimer, update bool, response, syncDelay time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.collecting {
		return
	}
	c.committed++
	if update {
		c.updates++
	} else {
		c.readOnly++
		c.readSyncDelays.add(syncDelay)
	}
	for i := Stage(0); i < numStages; i++ {
		c.stageTotals[i] += t.stages[i]
	}
	c.respTimes.add(response)
	c.syncDelays.add(syncDelay)
}

// RecordAbort records one aborted transaction.
func (c *Collector) RecordAbort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.collecting {
		return
	}
	c.aborted++
}

// Snapshot is a point-in-time summary of the measurement interval.
type Snapshot struct {
	Elapsed      time.Duration
	Committed    int64
	Aborted      int64
	ReadOnly     int64
	Updates      int64
	TPS          float64
	MeanResponse time.Duration
	P95Response  time.Duration
	MeanSync     time.Duration
	// MeanReadSync is the mean sync delay over read-only transactions
	// only (zero when none committed).
	MeanReadSync time.Duration
	// StageMeans averages each stage over all committed transactions;
	// stages that only occur on update transactions (certify, sync,
	// global) are averaged over the whole mix, matching the paper's
	// per-mix breakdown in Figure 4.
	StageMeans map[Stage]time.Duration
}

// Snapshot summarizes the measurement interval so far. It does not
// end the interval: collection continues and later snapshots cover a
// longer elapsed time.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := time.Since(c.start)
	s := Snapshot{
		Elapsed:    elapsed,
		Committed:  c.committed,
		Aborted:    c.aborted,
		ReadOnly:   c.readOnly,
		Updates:    c.updates,
		StageMeans: make(map[Stage]time.Duration, int(numStages)),
	}
	if elapsed > 0 {
		s.TPS = float64(c.committed) / elapsed.Seconds()
	}
	if c.committed > 0 {
		for i := Stage(0); i < numStages; i++ {
			s.StageMeans[i] = c.stageTotals[i] / time.Duration(c.committed)
		}
		s.MeanResponse = c.respTimes.mean()
		s.P95Response = c.respTimes.percentile(0.95)
		s.MeanSync = c.syncDelays.mean()
		s.MeanReadSync = c.readSyncDelays.mean()
	}
	return s
}

// AbortRate returns aborted / (aborted + committed).
func (s Snapshot) AbortRate() float64 {
	total := s.Aborted + s.Committed
	if total == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(total)
}

// String renders a compact one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("tps=%.1f resp=%s p95=%s sync=%s commit=%d abort=%d",
		s.TPS, s.MeanResponse.Round(time.Microsecond), s.P95Response.Round(time.Microsecond),
		s.MeanSync.Round(time.Microsecond), s.Committed, s.Aborted)
}

// MarshalJSON renders the snapshot in the machine-readable format
// shared by sconrep-bench and the obs /snapshot endpoint: stage means
// keyed by stage name, all durations in microseconds.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	stages := make(map[string]int64, len(s.StageMeans))
	for st, d := range s.StageMeans {
		stages[st.String()] = d.Microseconds()
	}
	return json.Marshal(struct {
		ElapsedUs      int64            `json:"elapsed_us"`
		Committed      int64            `json:"committed"`
		Aborted        int64            `json:"aborted"`
		ReadOnly       int64            `json:"read_only"`
		Updates        int64            `json:"updates"`
		TPS            float64          `json:"tps"`
		AbortRate      float64          `json:"abort_rate"`
		MeanResponseUs int64            `json:"mean_response_us"`
		P95ResponseUs  int64            `json:"p95_response_us"`
		MeanSyncUs     int64            `json:"mean_sync_us"`
		MeanReadSyncUs int64            `json:"mean_read_sync_us"`
		StageMeansUs   map[string]int64 `json:"stage_means_us"`
	}{
		ElapsedUs:      s.Elapsed.Microseconds(),
		Committed:      s.Committed,
		Aborted:        s.Aborted,
		ReadOnly:       s.ReadOnly,
		Updates:        s.Updates,
		TPS:            s.TPS,
		AbortRate:      s.AbortRate(),
		MeanResponseUs: s.MeanResponse.Microseconds(),
		P95ResponseUs:  s.P95Response.Microseconds(),
		MeanSyncUs:     s.MeanSync.Microseconds(),
		MeanReadSyncUs: s.MeanReadSync.Microseconds(),
		StageMeansUs:   stages,
	})
}

// BreakdownRow renders the Figure-4 style stage breakdown.
func (s Snapshot) BreakdownRow() string {
	var b strings.Builder
	for i, st := range Stages {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s=%s", st, s.StageMeans[st].Round(10*time.Microsecond))
	}
	return b.String()
}

// durationHist keeps raw samples (bounded) for mean and percentiles.
type durationHist struct {
	sum     time.Duration
	n       int64
	samples []time.Duration
}

// maxSamples bounds memory; beyond it we keep every k-th sample, which
// is adequate for the p95 of a stationary interval.
const maxSamples = 65536

func (h *durationHist) add(d time.Duration) {
	h.sum += d
	h.n++
	if len(h.samples) < maxSamples {
		h.samples = append(h.samples, d)
	} else if h.n%16 == 0 {
		h.samples[int(h.n/16)%maxSamples] = d
	}
}

func (h *durationHist) mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// percentile uses the nearest-rank method: the smallest sample such
// that at least p of the samples are ≤ it. Flooring the index (the
// previous int(p*(n-1)) formula) under-reports high percentiles on
// small sample sets — with 10 samples it returned the 9th for p95
// instead of the 10th.
func (h *durationHist) percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
