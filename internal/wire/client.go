package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"sconrep/internal/obs/dtrace"
	"sconrep/internal/sql"
)

// Client is an application's connection to a gateway: one session, one
// transaction at a time.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	to   Timeouts
	seq  uint64
	// broken is set on any transport error: the session's gateway state
	// is unknown and the caller must reconnect with a fresh session.
	broken atomic.Bool
}

// Dial opens a session against a gateway.
func Dial(addr, sessionID string, opts ...Option) (*Client, error) {
	o := buildOptions(opts)
	conn, err := o.dialer(addr)("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial gateway %s: %w", addr, err)
	}
	c := &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), to: o.to}
	if d := o.to.Call; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := c.enc.Encode(clientHello{SessionID: sessionID}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether the session hit a transport error. A broken
// client cannot be reused: the gateway may have already aborted the
// open transaction and dropped the session's version floor.
func (c *Client) Broken() bool { return c.broken.Load() }

func (c *Client) call(req clientRequest) (*clientResponse, error) {
	if c.broken.Load() {
		return nil, fmt.Errorf("wire: session broken, reconnect")
	}
	c.seq++
	req.Seq = c.seq
	if d := c.to.Call; d > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := c.enc.Encode(&req); err != nil {
		c.broken.Store(true)
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	if d := c.to.Call; d > 0 {
		c.conn.SetReadDeadline(time.Now().Add(d))
	}
	var resp clientResponse
	if err := c.dec.Decode(&resp); err != nil {
		c.broken.Store(true)
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	if resp.Seq != c.seq {
		c.broken.Store(true)
		return nil, fmt.Errorf("wire: response out of sequence (got %d, want %d)", resp.Seq, c.seq)
	}
	c.conn.SetDeadline(time.Time{})
	if resp.Err != "" {
		fake := replicaResponse{Err: resp.Err, ErrCode: resp.ErrCode}
		return &resp, decodeErr(&fake)
	}
	return &resp, nil
}

// RegisterTxn declares a named transaction's table-set at the gateway
// (fine-grained consistency).
func (c *Client) RegisterTxn(name string, tables []string) error {
	_, err := c.call(clientRequest{Op: "register", Name: name, Tables: tables})
	return err
}

// Begin starts a transaction under the given name.
func (c *Client) Begin(txnName string) error {
	_, err := c.BeginTx(txnName)
	return err
}

// BeginTx starts a transaction and returns the snapshot version it
// reads at.
func (c *Client) BeginTx(txnName string) (snapshot uint64, err error) {
	return c.BeginTxCtx(txnName, dtrace.SpanContext{})
}

// BeginTxCtx is BeginTx carrying the caller's span context, which the
// gateway threads through its routing decision and the replica begin
// so the whole chain joins one trace.
func (c *Client) BeginTxCtx(txnName string, sc dtrace.SpanContext) (snapshot uint64, err error) {
	resp, err := c.call(clientRequest{Op: "begin", TxnName: txnName, Trace: sc})
	if err != nil {
		return 0, err
	}
	return resp.Snapshot, nil
}

// BeginTablesTx starts a transaction tagged with an explicit table-set
// (the fine-grained mode's footnote-1 alternative to registration).
func (c *Client) BeginTablesTx(tables []string) (snapshot uint64, err error) {
	return c.BeginTablesTxCtx(tables, dtrace.SpanContext{})
}

// BeginTablesTxCtx is BeginTablesTx carrying the caller's span context.
func (c *Client) BeginTablesTxCtx(tables []string, sc dtrace.SpanContext) (snapshot uint64, err error) {
	resp, err := c.call(clientRequest{Op: "begin", Tables: tables, Trace: sc})
	if err != nil {
		return 0, err
	}
	return resp.Snapshot, nil
}

// Exec runs one SQL statement in the open transaction.
func (c *Client) Exec(query string, params ...any) (*sql.Result, error) {
	resp, err := c.call(clientRequest{Op: "exec", SQL: query, Params: params})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// CommitInfo describes an acknowledged commit as the client saw it.
type CommitInfo struct {
	// Version is the commit version (snapshot version when ReadOnly).
	Version  uint64
	ReadOnly bool
	// Snapshot is the version the transaction read at.
	Snapshot uint64
	// WriteTables / ReadTables are the observed table-sets, for the
	// history checker.
	WriteTables []string
	ReadTables  []string
}

// Commit finishes the open transaction and returns the commit version
// (snapshot version for read-only transactions).
func (c *Client) Commit() (version uint64, readOnly bool, err error) {
	info, err := c.CommitEx()
	return info.Version, info.ReadOnly, err
}

// CommitEx finishes the open transaction and returns the full commit
// observation.
func (c *Client) CommitEx() (CommitInfo, error) {
	resp, err := c.call(clientRequest{Op: "commit"})
	if err != nil {
		return CommitInfo{}, err
	}
	return CommitInfo{
		Version:     resp.Version,
		ReadOnly:    resp.ReadOnly,
		Snapshot:    resp.Snapshot,
		WriteTables: resp.WriteTables,
		ReadTables:  resp.ReadTables,
	}, nil
}

// Abort discards the open transaction.
func (c *Client) Abort() error {
	_, err := c.call(clientRequest{Op: "abort"})
	return err
}
