package wire

import (
	"encoding/gob"
	"fmt"
	"net"

	"sconrep/internal/sql"
)

// Client is an application's connection to a gateway: one session, one
// transaction at a time.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial opens a session against a gateway.
func Dial(addr, sessionID string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial gateway %s: %w", addr, err)
	}
	c := &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	if err := c.enc.Encode(clientHello{SessionID: sessionID}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req clientRequest) (*clientResponse, error) {
	if err := c.enc.Encode(&req); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	var resp clientResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	if resp.Err != "" {
		fake := replicaResponse{Err: resp.Err, ErrCode: resp.ErrCode}
		return &resp, decodeErr(&fake)
	}
	return &resp, nil
}

// RegisterTxn declares a named transaction's table-set at the gateway
// (fine-grained consistency).
func (c *Client) RegisterTxn(name string, tables []string) error {
	_, err := c.call(clientRequest{Op: "register", Name: name, Tables: tables})
	return err
}

// Begin starts a transaction under the given name.
func (c *Client) Begin(txnName string) error {
	_, err := c.call(clientRequest{Op: "begin", TxnName: txnName})
	return err
}

// Exec runs one SQL statement in the open transaction.
func (c *Client) Exec(query string, params ...any) (*sql.Result, error) {
	resp, err := c.call(clientRequest{Op: "exec", SQL: query, Params: params})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Commit finishes the open transaction and returns the commit version
// (snapshot version for read-only transactions).
func (c *Client) Commit() (version uint64, readOnly bool, err error) {
	resp, err := c.call(clientRequest{Op: "commit"})
	if err != nil {
		return 0, false, err
	}
	return resp.Version, resp.ReadOnly, nil
}

// Abort discards the open transaction.
func (c *Client) Abort() error {
	_, err := c.call(clientRequest{Op: "abort"})
	return err
}
