package wire

import (
	"errors"
	"net"
	"time"
)

// ErrUnavailable marks a replica that is temporarily not serving —
// its refresh stream is down or it is catching up after a partition.
// The gateway reroutes; clients may retry.
var ErrUnavailable = errors.New("wire: replica unavailable")

// Dialer opens one connection; the fault injector and tests substitute
// their own. Nil means net.Dial.
type Dialer func(network, addr string) (net.Conn, error)

// Timeouts bounds wire I/O. Zero fields mean no deadline (the
// pre-hardening behavior).
type Timeouts struct {
	// Call bounds one request/response exchange: the write deadline for
	// the request and the read deadline for the response.
	Call time.Duration
	// LongPoll replaces Call on deliberately long-blocking calls (the
	// eager global-commit wait).
	LongPoll time.Duration
	// Idle is a server-side read deadline between requests and the
	// subscription stream's per-batch receive deadline. Idle
	// connections beyond it are torn down; pooled clients re-dial
	// transparently and the subscription reconnects, so Idle doubles as
	// the stream's partition detector.
	Idle time.Duration
}

// Backoff is a bounded exponential backoff schedule for reconnects and
// retried calls.
type Backoff struct {
	Min time.Duration
	Max time.Duration
	// MaxElapsed caps the total retry span of one logical operation;
	// zero retries until the owner closes.
	MaxElapsed time.Duration
}

func (b Backoff) orDefault() Backoff {
	if b.Min <= 0 {
		b.Min = 20 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	return b
}

// next doubles the delay up to Max.
func (b Backoff) next(d time.Duration) time.Duration {
	d *= 2
	if d > b.Max {
		d = b.Max
	}
	return d
}

// options collects the knobs shared across wire constructors.
type options struct {
	dialFor      func(addr string) Dialer
	to           Timeouts
	backoff      Backoff
	subLease     time.Duration
	gate         func() error
	vlocalFn     func() uint64
	refreshCodec string
	shards       []int
}

// Option configures a wire endpoint.
type Option func(*options)

// WithDialer uses d for every outbound connection.
func WithDialer(d Dialer) Option {
	return func(o *options) { o.dialFor = func(string) Dialer { return d } }
}

// WithDialerFunc selects a dialer per destination address — the hook
// the fault injector uses to give each link its own label.
func WithDialerFunc(f func(addr string) Dialer) Option {
	return func(o *options) { o.dialFor = f }
}

// WithTimeouts bounds the endpoint's I/O.
func WithTimeouts(t Timeouts) Option {
	return func(o *options) { o.to = t }
}

// WithBackoff sets the reconnect/retry schedule.
func WithBackoff(b Backoff) Option {
	return func(o *options) { o.backoff = b }
}

// SubLeaseNone disables the subscription lease: a dropped stream
// unsubscribes its replica immediately.
const SubLeaseNone = -1

// WithSubLease sets how long the certifier server keeps a replica
// subscribed after its refresh stream drops (CertServer). Within the
// lease a reconnecting replica resumes its subscription — and, under
// eager mode, commits keep waiting for it, which is what prevents a
// briefly partitioned replica from being silently excluded from the
// global commit. Past the lease the replica is unsubscribed as
// crashed. Zero means the default (10s); SubLeaseNone disables.
func WithSubLease(d time.Duration) Option {
	return func(o *options) { o.subLease = d }
}

// WithGate installs a serve gate on a replica server: begin requests
// fail with the gate's error while it is non-nil. The gate is how a
// replica that has lost its refresh stream (or is catching up after
// one) stops serving possibly stale strong reads.
func WithGate(g func() error) Option {
	return func(o *options) { o.gate = g }
}

// WithVLocal gives the certifier client a live view of the replica's
// durable version, used to backfill missed refreshes on reconnect.
func WithVLocal(f func() uint64) Option {
	return func(o *options) { o.vlocalFn = f }
}

// Refresh-stream codec names for WithRefreshCodec.
const (
	// RefreshCodecBinary offers the length-prefixed binary refresh
	// codec (the default): a server that understands it switches the
	// stream to binary frames, a legacy server silently keeps gob.
	RefreshCodecBinary = "binary"
	// RefreshCodecGob pins the stream to gob, skipping negotiation.
	RefreshCodecGob = "gob"
)

// WithRefreshCodec selects the refresh-stream codec a certifier client
// offers (CertClient). The default, RefreshCodecBinary, negotiates the
// zero-copy binary codec with servers that support it and falls back
// to gob against older ones; RefreshCodecGob forces the legacy stream,
// the escape hatch for mixed-version debugging.
func WithRefreshCodec(name string) Option {
	return func(o *options) { o.refreshCodec = name }
}

// WithShards restricts a certifier client's refresh subscription (and
// its reconnect backfills) to the given certification shards. Versions
// certified entirely on other shards arrive as skip markers — the
// replica advances its version counter without row data — so a replica
// serving a slice of the table space pays refresh bandwidth only for
// that slice. Nil keeps the full stream; against a pre-sharding server
// the option is silently ignored and the full stream flows.
func WithShards(shards []int) Option {
	return func(o *options) { o.shards = shards }
}

const defaultSubLease = 10 * time.Second

func buildOptions(opts []Option) options {
	var o options
	for _, op := range opts {
		op(&o)
	}
	o.backoff = o.backoff.orDefault()
	if o.subLease == 0 {
		o.subLease = defaultSubLease
	}
	return o
}

// dialer resolves the dialer for addr (never nil).
func (o *options) dialer(addr string) Dialer {
	if o.dialFor != nil {
		if d := o.dialFor(addr); d != nil {
			return d
		}
	}
	return net.Dial
}
