package wire

import (
	"bufio"
	"encoding/gob"
	"io"
	"sync"
)

// encBufSize fits the common case — a response or a coalesced refresh
// batch — without growing; larger frames spill through bufio's
// large-write path untouched.
const encBufSize = 32 << 10

// encBufPool recycles encode buffers across connections. Gateways and
// certifier links churn through short-lived connections under load
// (session per client, reconnects after partitions); pooling keeps the
// per-connection encode buffer off the garbage collector's plate.
var encBufPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, encBufSize) },
}

// frameWriter pairs a gob encoder with a pooled write buffer so every
// encoded frame — however many internal writes gob performs — reaches
// the connection in as few syscalls as possible, and the buffer is
// returned to the pool when the connection handler exits.
type frameWriter struct {
	bw  *bufio.Writer
	enc *gob.Encoder
}

func newFrameWriter(w io.Writer) *frameWriter {
	bw := encBufPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return &frameWriter{bw: bw, enc: gob.NewEncoder(bw)}
}

// encode writes one frame and flushes it to the connection.
func (f *frameWriter) encode(v any) error {
	if err := f.enc.Encode(v); err != nil {
		return err
	}
	return f.bw.Flush()
}

// release detaches the buffer from the connection and returns it to
// the pool. The frameWriter must not be used afterwards.
func (f *frameWriter) release() {
	f.bw.Reset(io.Discard)
	encBufPool.Put(f.bw)
	f.bw = nil
	f.enc = nil
}
