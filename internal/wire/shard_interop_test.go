// Wire-level interop for sharded certification and partial refresh
// subscriptions: a pre-sharding peer speaks hellos and requests without
// the Shards fields, and gob simply omits (encode side) or ignores
// (decode side) them — so legacy peers must keep getting the full
// stream, and partial subscribers must get skip markers (nil WS) for
// foreign-shard versions so the version order stays contiguous.
package wire

import (
	"bufio"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/shard"
	"sconrep/internal/writeset"
)

// newShardedCert builds a 4-shard certifier with tables t0..t3 pinned
// to shards 0..3.
func newShardedCert(t *testing.T) *certifier.Certifier {
	t.Helper()
	smap, err := shard.New(4, map[string]int{"t0": 0, "t1": 1, "t2": 2, "t3": 3})
	if err != nil {
		t.Fatal(err)
	}
	return certifier.New(certifier.WithShards(smap))
}

// certifyOn commits one single-row writeset on the given table.
func certifyOn(t *testing.T, cert *certifier.Certifier, table string, txnID uint64) {
	t.Helper()
	ws := &writeset.WriteSet{Items: []writeset.Item{
		{Table: table, Key: "k", Op: writeset.OpUpdate, Row: []any{"x"}},
	}}
	d, err := cert.Certify(0, txnID, cert.Version(), ws)
	if err != nil || !d.Commit {
		t.Fatalf("certify %s: commit=%v err=%v", table, d.Commit, err)
	}
}

// TestShardedStreamLegacySubscriber proves a pre-sharding subscriber —
// whose hello has no Shards field — gets the full refresh stream from
// a sharded certifier: every version, every writeset, no skip markers.
func TestShardedStreamLegacySubscriber(t *testing.T) {
	cert := newShardedCert(t)
	srv, err := ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(legacyCertHello{Kind: "sub", ReplicaID: 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(cert.Replicas()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never subscribed the legacy client")
		}
		time.Sleep(time.Millisecond)
	}
	for i, table := range []string{"t0", "t1", "t2", "t3"} {
		certifyOn(t, cert, table, uint64(i+1))
	}

	dec := gob.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var seen uint64
	for seen < 4 {
		var batch legacyRefreshBatch
		if err := dec.Decode(&batch); err != nil {
			t.Fatalf("gob frame after %d refreshes: %v", seen, err)
		}
		for i := range batch.Refreshes {
			r := batch.Refreshes[i]
			if r.Version != seen+1 {
				t.Fatalf("version %d out of order (want %d)", r.Version, seen+1)
			}
			seen = r.Version
			if r.WS == nil || len(r.WS.Items) != 1 {
				t.Fatalf("version %d: legacy subscriber got a skip marker (WS=%v), want the full writeset", r.Version, r.WS)
			}
		}
	}
}

// TestShardedStreamPartialSubscriber proves the partial-subscription
// contract: a subscriber declaring Shards gets full writesets for its
// shards and nil-WS skip markers — version order still contiguous —
// for everything else.
func TestShardedStreamPartialSubscriber(t *testing.T) {
	cert := newShardedCert(t)
	srv, err := ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(certHello{Kind: "sub", ReplicaID: 5, Shards: []int{0, 2}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(cert.Replicas()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never subscribed the client")
		}
		time.Sleep(time.Millisecond)
	}
	for i, table := range []string{"t0", "t1", "t2", "t3"} {
		certifyOn(t, cert, table, uint64(i+1))
	}

	br := bufio.NewReader(conn)
	dec := gob.NewDecoder(br)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	served := map[uint64]bool{1: true, 3: true} // t0 → v1, t2 → v3
	var seen uint64
	for seen < 4 {
		var batch refreshBatch
		if err := dec.Decode(&batch); err != nil {
			t.Fatalf("gob frame after %d refreshes: %v", seen, err)
		}
		for i := range batch.Refreshes {
			r := batch.Refreshes[i]
			if r.Version != seen+1 {
				t.Fatalf("version %d out of order (want %d): skip markers must keep the order contiguous", r.Version, seen+1)
			}
			seen = r.Version
			if served[r.Version] && (r.WS == nil || len(r.WS.Items) != 1) {
				t.Fatalf("version %d is on a subscribed shard but arrived as a skip marker", r.Version)
			}
			if !served[r.Version] && r.WS != nil {
				t.Fatalf("version %d is on an unsubscribed shard but carried writeset %+v", r.Version, r.WS)
			}
		}
	}
}

// TestShardedHistoryPartialRequest proves the backfill side of partial
// subscriptions: a history request declaring Shards gets the same
// filtering as the live stream, while a legacy request (no Shards
// field) gets every writeset.
func TestShardedHistoryPartialRequest(t *testing.T) {
	cert := newShardedCert(t)
	srv, err := ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i, table := range []string{"t0", "t1", "t2", "t3"} {
		certifyOn(t, cert, table, uint64(i+1))
	}

	call := func(t *testing.T, req certRequest) []certifier.Refresh {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		if err := enc.Encode(certHello{Kind: "req", ReplicaID: 9}); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&req); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var resp certResponse
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp.History
	}

	full := call(t, certRequest{Seq: 1, Op: "history", After: 0})
	if len(full) != 4 {
		t.Fatalf("legacy history returned %d refreshes, want 4", len(full))
	}
	for _, r := range full {
		if r.WS == nil {
			t.Fatalf("legacy history: version %d is a skip marker", r.Version)
		}
	}

	part := call(t, certRequest{Seq: 1, Op: "history", After: 0, Shards: []int{1}})
	if len(part) != 4 {
		t.Fatalf("partial history returned %d refreshes, want 4 (markers keep the order contiguous)", len(part))
	}
	for _, r := range part {
		if r.Version == 2 && r.WS == nil {
			t.Fatalf("partial history: version 2 is on the requested shard but arrived as a skip marker")
		}
		if r.Version != 2 && r.WS != nil {
			t.Fatalf("partial history: version %d is off-shard but carried a writeset", r.Version)
		}
	}
}
