package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/shard"
	"sconrep/internal/writeset"
)

// BenchmarkWireRefreshStream measures end-to-end refresh delivery over
// a real TCP subscription link: certify on the server side, consume
// the replica-side queue — once per stream codec. The gob number
// reflects the frame batching (one frame per mailbox Take, never per
// refresh) and the pooled encode buffers; the binary number adds the
// zero-copy length-prefixed codec the subscription negotiates by
// default.
func BenchmarkWireRefreshStream(b *testing.B) {
	for _, codec := range []string{RefreshCodecGob, RefreshCodecBinary} {
		b.Run(codec, func(b *testing.B) { benchRefreshStream(b, codec) })
	}
}

func benchRefreshStream(b *testing.B, codec string) {
	cert := certifier.New()
	srv, err := ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := DialCertifier(srv.Addr(), 1, 0, WithRefreshCodec(codec))
	defer cli.Close()
	q := cli.Subscribe(1)

	deadline := time.Now().Add(5 * time.Second)
	for !cli.StreamLive(0) {
		if time.Now().After(deadline) {
			b.Fatal("refresh stream never came up")
		}
		time.Sleep(time.Millisecond)
	}

	ws := &writeset.WriteSet{Items: []writeset.Item{
		{Table: "t", Key: "hot", Op: writeset.OpUpdate, Row: []any{"x"}},
	}}
	done := make(chan struct{})
	last := uint64(b.N)

	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		defer close(done)
		// Trim consumed history as a deployed replica's apply watermark
		// would: without it the certifier retains all b.N refreshes and
		// the run measures GC scan work over an ever-growing log — a cost
		// that scales with iteration count, not with the codec under test.
		var seen, trimmed uint64
		for seen < last {
			batch, ok := q.Take()
			if !ok {
				return
			}
			for i := range batch {
				if batch[i].Version > seen {
					seen = batch[i].Version
				}
			}
			if seen-trimmed >= 4096 {
				cert.TrimBelow(seen)
				trimmed = seen
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		// Snapshot tracks the version counter, so the single hot key
		// never conflicts and every certification becomes a refresh.
		d, err := cert.Certify(0, uint64(i+1), uint64(i), ws)
		if err != nil {
			b.Fatal(err)
		}
		if !d.Commit {
			b.Fatalf("certify %d aborted", i+1)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		b.Fatal("stream consumer stalled")
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "refreshes/s")
}

// BenchmarkWirePartialSubscription measures what partial refresh
// subscriptions save on the wire: a hand-rolled subscriber (so the
// link's raw bytes are countable) consumes a 4-shard refresh stream
// spread evenly over tables t0..t3 while subscribing to all, half, or
// one of the shards. Every version still arrives — skip markers keep
// the order contiguous — so bytes/refresh must drop roughly with the
// subscribed fraction.
func BenchmarkWirePartialSubscription(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards []int
	}{
		{"full", nil},
		{"half", []int{0, 1}},
		{"quarter", []int{0}},
	} {
		b.Run(tc.name, func(b *testing.B) { benchPartialSubscription(b, tc.shards) })
	}
}

func benchPartialSubscription(b *testing.B, shards []int) {
	smap, err := shard.New(4, map[string]int{"t0": 0, "t1": 1, "t2": 2, "t3": 3})
	if err != nil {
		b.Fatal(err)
	}
	cert := certifier.New(certifier.WithShards(smap))
	srv, err := ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(certHello{Kind: "sub", ReplicaID: 1, Shards: shards}); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(cert.Replicas()) == 0 {
		if time.Now().After(deadline) {
			b.Fatal("server never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// A realistic row payload so the full-writeset versus skip-marker
	// gap dominates gob's fixed framing.
	row := []any{strings.Repeat("v", 96), int64(7), strings.Repeat("w", 32)}
	var read atomic.Int64
	cr := &countingReader{r: conn, n: &read}
	dec := gob.NewDecoder(cr)
	done := make(chan error, 1)
	last := uint64(b.N)

	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		var seen, trimmed uint64
		for seen < last {
			var batch refreshBatch
			if err := dec.Decode(&batch); err != nil {
				done <- err
				return
			}
			for i := range batch.Refreshes {
				if v := batch.Refreshes[i].Version; v > seen {
					seen = v
				}
			}
			if seen-trimmed >= 4096 {
				cert.TrimBelow(seen)
				trimmed = seen
			}
		}
		done <- nil
	}()
	for i := 0; i < b.N; i++ {
		ws := &writeset.WriteSet{Items: []writeset.Item{
			{Table: fmt.Sprintf("t%d", i%4), Key: fmt.Sprintf("k%d", i), Op: writeset.OpUpdate, Row: row},
		}}
		d, err := cert.Certify(0, uint64(i+1), uint64(i), ws)
		if err != nil {
			b.Fatal(err)
		}
		if !d.Commit {
			b.Fatalf("certify %d aborted", i+1)
		}
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(read.Load())/float64(b.N), "bytes/refresh")
}

// countingReader counts the bytes a gob decoder pulls off the link.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}
