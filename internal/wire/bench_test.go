package wire

import (
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/writeset"
)

// BenchmarkWireRefreshStream measures end-to-end refresh delivery over
// a real TCP subscription link: certify on the server side, consume
// the replica-side queue — once per stream codec. The gob number
// reflects the frame batching (one frame per mailbox Take, never per
// refresh) and the pooled encode buffers; the binary number adds the
// zero-copy length-prefixed codec the subscription negotiates by
// default.
func BenchmarkWireRefreshStream(b *testing.B) {
	for _, codec := range []string{RefreshCodecGob, RefreshCodecBinary} {
		b.Run(codec, func(b *testing.B) { benchRefreshStream(b, codec) })
	}
}

func benchRefreshStream(b *testing.B, codec string) {
	cert := certifier.New()
	srv, err := ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := DialCertifier(srv.Addr(), 1, 0, WithRefreshCodec(codec))
	defer cli.Close()
	q := cli.Subscribe(1)

	deadline := time.Now().Add(5 * time.Second)
	for !cli.StreamLive(0) {
		if time.Now().After(deadline) {
			b.Fatal("refresh stream never came up")
		}
		time.Sleep(time.Millisecond)
	}

	ws := &writeset.WriteSet{Items: []writeset.Item{
		{Table: "t", Key: "hot", Op: writeset.OpUpdate, Row: []any{"x"}},
	}}
	done := make(chan struct{})
	last := uint64(b.N)

	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		defer close(done)
		// Trim consumed history as a deployed replica's apply watermark
		// would: without it the certifier retains all b.N refreshes and
		// the run measures GC scan work over an ever-growing log — a cost
		// that scales with iteration count, not with the codec under test.
		var seen, trimmed uint64
		for seen < last {
			batch, ok := q.Take()
			if !ok {
				return
			}
			for i := range batch {
				if batch[i].Version > seen {
					seen = batch[i].Version
				}
			}
			if seen-trimmed >= 4096 {
				cert.TrimBelow(seen)
				trimmed = seen
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		// Snapshot tracks the version counter, so the single hot key
		// never conflicts and every certification becomes a refresh.
		d, err := cert.Certify(0, uint64(i+1), uint64(i), ws)
		if err != nil {
			b.Fatal(err)
		}
		if !d.Commit {
			b.Fatalf("certify %d aborted", i+1)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		b.Fatal("stream consumer stalled")
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "refreshes/s")
}
