package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sconrep/internal/core"
	"sconrep/internal/lb"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/replica"
	"sconrep/internal/sql"
)

// Client-link protocol (application ⇄ gateway).

type clientHello struct {
	SessionID string
}

type clientRequest struct {
	// Seq numbers requests per connection; see seqGuard.
	Seq uint64
	Op  string // "register", "begin", "exec", "commit", "abort"

	// register; for begin, an explicit table-set (DispatchTables)
	Name   string
	Tables []string

	// begin
	TxnName string
	// Trace is the client-side root span's context, propagated through
	// the lb route and the replica begin. Optional frame-header
	// extension: old clients never set it, old gateways skip it.
	Trace dtrace.SpanContext

	// exec
	SQL    string
	Params []any
}

type clientResponse struct {
	Seq     uint64
	Err     string
	ErrCode string
	Result  *sql.Result
	// begin / commit
	Snapshot uint64
	// commit
	Version     uint64
	ReadOnly    bool
	WriteTables []string
	ReadTables  []string
}

// Gateway is the networked load balancer: it accepts client sessions,
// routes transactions to replica processes per the consistency mode,
// and maintains the version tracker from commit acknowledgments.
type Gateway struct {
	balancer *lb.LoadBalancer
	replicas []*remoteReplica
	ln       net.Listener
	stop     chan struct{}
	opts     options

	mu sync.Mutex
	// closed refuses new connections.
	// guarded by mu
	closed bool
	// conns is the set of live client connections.
	// guarded by mu
	conns map[net.Conn]struct{}
	// obsReqs is nil-safe until EnableObs.
	// guarded by mu
	obsReqs  *obs.CounterVec
	sessions atomic.Int64
}

// EnableObs registers the gateway's live metrics with reg: client
// request counts per operation, open session count, and the embedded
// load balancer's routing/version instruments. Call before traffic.
func (g *Gateway) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	g.mu.Lock()
	g.obsReqs = reg.CounterVec("sconrep_wire_requests_total",
		"Wire requests served, by link and operation.", "op", "link", "gateway")
	g.mu.Unlock()
	reg.GaugeFunc("sconrep_gateway_sessions",
		"Client sessions currently connected to the gateway.",
		func() float64 { return float64(g.sessions.Load()) })
	g.balancer.EnableObs(reg)
}

// ServeGateway starts a gateway on addr routing to the given replica
// addresses under the given consistency mode.
func ServeGateway(addr string, mode core.Mode, replicaAddrs []string, opts ...Option) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	g := &Gateway{ln: ln, stop: make(chan struct{}), opts: buildOptions(opts), conns: make(map[net.Conn]struct{})}
	nodes := make([]lb.Node, 0, len(replicaAddrs))
	for i, a := range replicaAddrs {
		rr := newRemoteReplica(i, a, &g.opts)
		g.replicas = append(g.replicas, rr)
		nodes = append(nodes, rr)
	}
	g.balancer = lb.New(mode, nodes)
	go g.acceptLoop()
	go g.probeLoop()
	return g, nil
}

// Addr returns the bound address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Close stops the gateway: listener, live client sessions, and the
// replica connection pools.
func (g *Gateway) Close() error {
	close(g.stop)
	g.mu.Lock()
	g.closed = true
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	err := g.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, r := range g.replicas {
		r.pool.close()
	}
	return err
}

// Balancer exposes the LB (tests).
func (g *Gateway) Balancer() *lb.LoadBalancer { return g.balancer }

func (g *Gateway) acceptLoop() {
	for {
		c, err := g.ln.Accept()
		if err != nil {
			return
		}
		go g.handle(c)
	}
}

// probeLoop keeps replica health fresh so recovered replicas rejoin.
func (g *Gateway) probeLoop() {
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
			for _, r := range g.replicas {
				r.probe()
			}
		}
	}
}

// gatewaySession is the per-connection session state: sessions are
// serial, so at most one transaction is open per connection.
type gatewaySession struct {
	id      string
	replica *remoteReplica
	txnID   uint64
	open    bool
}

func (g *Gateway) handle(c net.Conn) {
	defer c.Close()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.conns[c] = struct{}{}
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.conns, c)
		g.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	fw := newFrameWriter(c)
	defer fw.release()
	var hello clientHello
	if err := dec.Decode(&hello); err != nil {
		return
	}
	sess := &gatewaySession{id: hello.SessionID}
	g.sessions.Add(1)
	defer g.sessions.Add(-1)
	defer func() {
		if sess.open {
			_, _ = sess.replica.call(&replicaRequest{Op: "abort", TxnID: sess.txnID})
			sess.replica.active.Add(-1)
		}
		g.balancer.EndSession(sess.id)
	}()
	var guard seqGuard
	for {
		var req clientRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		if !guard.ok(req.Seq) {
			return
		}
		resp := g.dispatch(sess, &req)
		resp.Seq = req.Seq
		if err := fw.encode(resp); err != nil {
			return
		}
	}
}

func (g *Gateway) dispatch(sess *gatewaySession, req *clientRequest) *clientResponse {
	g.mu.Lock()
	reqs := g.obsReqs
	g.mu.Unlock()
	reqs.With(req.Op).Inc()
	resp := &clientResponse{}
	fail := func(err error) *clientResponse {
		resp.Err = err.Error()
		resp.ErrCode = errCode(err)
		return resp
	}
	switch req.Op {
	case "register":
		g.balancer.RegisterTxn(req.Name, req.Tables)
	case "begin":
		if sess.open {
			return fail(errors.New("wire: transaction already open on this session"))
		}
		var route lb.Route
		var err error
		if len(req.Tables) > 0 {
			route, err = g.balancer.DispatchTables(sess.id, req.Tables)
		} else {
			route, err = g.balancer.DispatchCtx(sess.id, req.TxnName, req.Trace)
		}
		if err != nil {
			return fail(err)
		}
		rr := route.Node.(*remoteReplica)
		rr.active.Add(1)
		// An untraced (or pre-tracing) client supplies no span context;
		// fall back to the route span so the replica's work still joins
		// a gateway-rooted trace instead of fragmenting.
		downstream := req.Trace
		if !downstream.Valid() {
			downstream = route.Trace
		}
		r, err := rr.call(&replicaRequest{Op: "begin", MinVersion: route.MinVersion, Trace: downstream})
		if err != nil {
			rr.active.Add(-1)
			return fail(err)
		}
		sess.replica = rr
		sess.txnID = r.TxnID
		sess.open = true
		resp.Snapshot = r.Snapshot
	case "exec":
		if !sess.open {
			return fail(errors.New("wire: no open transaction"))
		}
		r, err := sess.replica.call(&replicaRequest{Op: "exec", TxnID: sess.txnID, SQL: req.SQL, Params: req.Params})
		if err != nil {
			if errors.Is(err, replica.ErrEarlyAbort) || errors.Is(err, replica.ErrCertifyConflict) || errors.Is(err, replica.ErrCrashed) {
				sess.open = false
				sess.replica.active.Add(-1)
			}
			return fail(err)
		}
		resp.Result = r.Result
	case "commit":
		if !sess.open {
			return fail(errors.New("wire: no open transaction"))
		}
		sess.open = false
		sess.replica.active.Add(-1)
		eager := g.balancer.Mode() == core.Eager
		r, err := sess.replica.call(&replicaRequest{Op: "commit", TxnID: sess.txnID, Eager: eager})
		if err != nil {
			return fail(err)
		}
		g.balancer.ObserveCommit(sess.id, r.Commit)
		resp.Version = r.Commit.Version
		resp.ReadOnly = r.Commit.ReadOnly
		resp.Snapshot = r.Snapshot
		resp.WriteTables = r.Commit.WrittenTables
		resp.ReadTables = r.Touched
	case "abort":
		if sess.open {
			sess.open = false
			sess.replica.active.Add(-1)
			_, _ = sess.replica.call(&replicaRequest{Op: "abort", TxnID: sess.txnID})
		}
	default:
		return fail(fmt.Errorf("wire: unknown client op %q", req.Op))
	}
	return resp
}
