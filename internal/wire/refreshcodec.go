package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"unsafe"

	"sconrep/internal/certifier"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/writeset"
)

// Binary refresh codec. The refresh stream is the replication hot path
// — every committed update transaction crosses it once per replica —
// and gob spends most of its time on reflection and type descriptors.
// This codec replaces it with length-prefixed binary frames:
//
//	u32 payload length (little-endian)
//	payload:
//	  uvarint count
//	  per refresh:
//	    uvarint TxnID, uvarint Version, varint Origin, flags byte
//	    [flagTrace] 16-byte TraceID + 8-byte SpanID
//	    [flagWS]    uvarint item count, then per item:
//	                  string Table, string Key, op byte,
//	                  uvarint rowTag (0 = nil row, else 1+len), then per
//	                  value a tag byte (nil/int64/float64/string/bool)
//	                  followed by the value bytes
//
// Strings are uvarint-length-prefixed. Decoding reads the payload into
// one exact-size buffer and aliases every decoded string into it with
// unsafe.String — zero copies, zero per-string allocations. The buffer
// is freshly allocated per frame and never reused, so the aliases stay
// valid for as long as the writesets live; the cost is that one
// retained string pins its whole frame, which is fine here because
// refresh writesets are applied and dropped promptly.
//
// Negotiation rides the existing gob layer: the subscriber offers the
// codec in certHello.Codec, and a server that understands it answers
// with one gob refreshBatch{Codec: codecBinary} marker frame before
// switching the stream to binary frames. Gob skips unknown struct
// fields in both directions, so a legacy peer on either end silently
// degrades to the gob stream (see the interop tests).

// codecBinary is the wire token for this codec, offered in
// certHello.Codec and echoed in the accept marker. Versioned so a
// future layout change is a new token, not a silent break.
const codecBinary = "sconrep-bin/1"

// maxRefreshFrame bounds one binary frame (64 MiB). A length prefix
// beyond it means a corrupt or hostile stream; the connection is torn
// down rather than the allocation attempted.
const maxRefreshFrame = 64 << 20

// Refresh flags.
const (
	flagWS    = 1 << 0 // refresh carries a writeset
	flagTrace = 1 << 1 // writeset carries a span context (16+8 bytes)
)

// Row value tags.
const (
	tagNil = iota
	tagInt64
	tagFloat64
	tagString
	tagFalse
	tagTrue
)

var errFrameCorrupt = errors.New("wire: corrupt refresh frame")

// refreshBufPool recycles encode buffers; the decoded side cannot pool
// (frames are aliased by the decoded strings).
var refreshBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, encBufSize); return &b },
}

// writeRefreshFrame encodes one batch as a binary frame into bw and
// flushes it. The encode buffer is pooled; only the bufio writer's copy
// touches the connection.
func writeRefreshFrame(bw *bufio.Writer, batch []certifier.Refresh) error {
	bp := refreshBufPool.Get().(*[]byte)
	buf, err := appendRefreshPayload((*bp)[:0], batch)
	if err == nil && len(buf) > maxRefreshFrame {
		err = fmt.Errorf("wire: refresh frame %d bytes exceeds limit", len(buf))
	}
	if err != nil {
		refreshBufPool.Put(bp)
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(buf)))
	_, werr := bw.Write(hdr[:])
	if werr == nil {
		_, werr = bw.Write(buf)
	}
	if werr == nil {
		werr = bw.Flush()
	}
	*bp = buf
	refreshBufPool.Put(bp)
	return werr
}

// appendRefreshPayload appends the batch's payload encoding to buf.
func appendRefreshPayload(buf []byte, batch []certifier.Refresh) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	for i := range batch {
		r := &batch[i]
		buf = binary.AppendUvarint(buf, r.TxnID)
		buf = binary.AppendUvarint(buf, r.Version)
		buf = binary.AppendVarint(buf, int64(r.Origin))
		var flags byte
		if r.WS != nil {
			flags |= flagWS
			if r.WS.Trace != nil {
				flags |= flagTrace
			}
		}
		buf = append(buf, flags)
		if r.WS == nil {
			continue
		}
		if tr := r.WS.Trace; tr != nil {
			buf = append(buf, tr.Trace[:]...)
			buf = append(buf, tr.Span[:]...)
		}
		buf = binary.AppendUvarint(buf, uint64(len(r.WS.Items)))
		for j := range r.WS.Items {
			it := &r.WS.Items[j]
			buf = appendString(buf, it.Table)
			buf = appendString(buf, it.Key)
			buf = append(buf, byte(it.Op))
			if it.Row == nil {
				buf = binary.AppendUvarint(buf, 0)
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(len(it.Row))+1)
			for _, v := range it.Row {
				var err error
				if buf, err = appendValue(buf, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v any) ([]byte, error) {
	switch v := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case int64:
		return binary.AppendVarint(append(buf, tagInt64), v), nil
	case float64:
		return binary.LittleEndian.AppendUint64(append(buf, tagFloat64), math.Float64bits(v)), nil
	case string:
		return appendString(append(buf, tagString), v), nil
	case bool:
		if v {
			return append(buf, tagTrue), nil
		}
		return append(buf, tagFalse), nil
	default:
		return nil, fmt.Errorf("wire: refresh codec: unsupported row value %T", v)
	}
}

// readRefreshFrame reads one binary frame from r and decodes it. The
// payload buffer is exact-size and single-use: decoded strings alias
// it.
func readRefreshFrame(r io.Reader) ([]certifier.Refresh, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxRefreshFrame {
		return nil, fmt.Errorf("wire: refresh frame length %d exceeds limit", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return parseRefreshPayload(p)
}

// payloadReader walks one frame payload. Every read is bounds-checked;
// any truncation or malformed varint surfaces as errFrameCorrupt, and
// count fields are sanity-bounded by the remaining bytes before any
// allocation, so a hostile frame cannot force a huge make().
type payloadReader struct {
	p   []byte
	off int
}

func (d *payloadReader) remaining() int { return len(d.p) - d.off }

func (d *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.p[d.off:])
	if n <= 0 {
		return 0, errFrameCorrupt
	}
	d.off += n
	return v, nil
}

func (d *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(d.p[d.off:])
	if n <= 0 {
		return 0, errFrameCorrupt
	}
	d.off += n
	return v, nil
}

func (d *payloadReader) byte() (byte, error) {
	if d.off >= len(d.p) {
		return 0, errFrameCorrupt
	}
	b := d.p[d.off]
	d.off++
	return b, nil
}

func (d *payloadReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > d.remaining() {
		return nil, errFrameCorrupt
	}
	b := d.p[d.off : d.off+n]
	d.off += n
	return b, nil
}

// str decodes a length-prefixed string aliasing the frame buffer.
func (d *payloadReader) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(n))
	if err != nil || len(b) == 0 {
		return "", err
	}
	return unsafe.String(&b[0], len(b)), nil
}

// count reads a count field and rejects values that cannot possibly
// fit in the remaining payload (each counted element is ≥ 1 byte).
func (d *payloadReader) count() (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(d.remaining()) {
		return 0, errFrameCorrupt
	}
	return int(n), nil
}

// parseRefreshPayload decodes one frame payload. Trailing garbage
// after the last refresh is rejected: a desynchronized stream must
// fail loudly, not deliver a prefix.
func parseRefreshPayload(p []byte) ([]certifier.Refresh, error) {
	d := &payloadReader{p: p}
	cnt, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]certifier.Refresh, 0, cnt)
	for i := 0; i < cnt; i++ {
		r, err := d.refresh()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if d.remaining() != 0 {
		return nil, errFrameCorrupt
	}
	return out, nil
}

func (d *payloadReader) refresh() (certifier.Refresh, error) {
	var r certifier.Refresh
	var err error
	if r.TxnID, err = d.uvarint(); err != nil {
		return r, err
	}
	if r.Version, err = d.uvarint(); err != nil {
		return r, err
	}
	origin, err := d.varint()
	if err != nil {
		return r, err
	}
	r.Origin = int(origin)
	flags, err := d.byte()
	if err != nil {
		return r, err
	}
	if flags&^(flagWS|flagTrace) != 0 {
		return r, errFrameCorrupt
	}
	var trace *dtrace.SpanContext
	if flags&flagTrace != 0 {
		b, err := d.bytes(16 + 8)
		if err != nil {
			return r, err
		}
		trace = new(dtrace.SpanContext)
		copy(trace.Trace[:], b[:16])
		copy(trace.Span[:], b[16:])
	}
	if flags&flagWS == 0 {
		if flags&flagTrace != 0 {
			return r, errFrameCorrupt // trace rides the writeset
		}
		return r, nil
	}
	ws := &writeset.WriteSet{Trace: trace}
	items, err := d.count()
	if err != nil {
		return r, err
	}
	if items > 0 {
		ws.Items = make([]writeset.Item, items)
	}
	for j := 0; j < items; j++ {
		if err := d.item(&ws.Items[j]); err != nil {
			return r, err
		}
	}
	r.WS = ws
	return r, nil
}

func (d *payloadReader) item(it *writeset.Item) error {
	var err error
	if it.Table, err = d.str(); err != nil {
		return err
	}
	if it.Key, err = d.str(); err != nil {
		return err
	}
	op, err := d.byte()
	if err != nil {
		return err
	}
	switch writeset.Op(op) {
	case writeset.OpInsert, writeset.OpUpdate, writeset.OpDelete:
		it.Op = writeset.Op(op)
	default:
		return errFrameCorrupt
	}
	rowTag, err := d.uvarint()
	if err != nil {
		return err
	}
	if rowTag == 0 {
		return nil // nil row (deletes)
	}
	// rowTag is 1+len, so the value count is rowTag-1 (each ≥ 1 byte).
	if rowTag-1 > uint64(d.remaining()) {
		return errFrameCorrupt
	}
	it.Row = make([]any, rowTag-1)
	for k := range it.Row {
		if it.Row[k], err = d.value(); err != nil {
			return err
		}
	}
	return nil
}

func (d *payloadReader) value() (any, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagInt64:
		return d.varint()
	case tagFloat64:
		b, err := d.bytes(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
	case tagString:
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		return s, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	default:
		return nil, errFrameCorrupt
	}
}
