package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sconrep/internal/lb"
	"sconrep/internal/metrics"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/replica"
	"sconrep/internal/sql"
)

// Replica-link protocol (gateway ⇄ replica).

type replicaRequest struct {
	// Seq numbers requests per connection; see seqGuard.
	Seq uint64
	Op  string // "begin", "exec", "commit", "abort", "status"

	// begin
	MinVersion uint64
	// Trace is the caller's span context for begin — an optional
	// frame-header extension old peers ignore (gob skips unknown
	// fields and zero-fills missing ones).
	Trace dtrace.SpanContext

	// exec / commit / abort
	TxnID  uint64
	SQL    string
	Params []any
	Eager  bool
}

type replicaResponse struct {
	Seq     uint64
	Err     string
	ErrCode string // "conflict", "crashed", "unavailable", "" — retryability over the wire

	TxnID    uint64
	Snapshot uint64
	Result   *sql.Result
	Commit   replica.CommitResult
	// Touched is the transaction's observed table-set at commit (reads
	// and writes) — forwarded to the history checker.
	Touched []string

	// status
	Version uint64
	Active  int
	Crashed bool
	// Ready reports the serve gate: false while the replica's refresh
	// stream is down or it is catching up after a partition.
	Ready bool
}

func (r *replicaRequest) setSeq(n uint64) { r.Seq = n }
func (r *replicaResponse) seq() uint64    { return r.Seq }

// seqGuard validates one decoded request's sequence number against the
// connection's counter. Requests must arrive exactly in order: a gap or
// repeat means the stream desynchronized — most likely a duplicated
// frame — and the only safe move is to drop the connection before the
// duplicate executes anything.
type seqGuard struct{ last uint64 }

func (g *seqGuard) ok(seq uint64) bool {
	if seq != g.last+1 {
		return false
	}
	g.last = seq
	return true
}

func errCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, replica.ErrCertifyConflict), errors.Is(err, replica.ErrEarlyAbort):
		return "conflict"
	case errors.Is(err, replica.ErrCrashed):
		return "crashed"
	case errors.Is(err, ErrUnavailable), errors.Is(err, lb.ErrNoReplicas):
		return "unavailable"
	default:
		return "other"
	}
}

func decodeErr(resp *replicaResponse) error {
	if resp.Err == "" {
		return nil
	}
	switch resp.ErrCode {
	case "conflict":
		return fmt.Errorf("%w: %s", replica.ErrCertifyConflict, resp.Err)
	case "crashed":
		return fmt.Errorf("%w: %s", replica.ErrCrashed, resp.Err)
	case "unavailable":
		return fmt.Errorf("%w: %s", ErrUnavailable, resp.Err)
	default:
		return errors.New(resp.Err)
	}
}

// ReplicaServer exposes one replica's transaction API on a listener.
type ReplicaServer struct {
	rep  *replica.Replica
	ln   net.Listener
	opts options

	mu sync.Mutex
	// closed refuses new connections.
	// guarded by mu
	closed bool
	// conns is the set of live connections.
	// guarded by mu
	conns map[net.Conn]struct{}
	// txns maps wire txn IDs to open transactions.
	// guarded by mu
	txns map[uint64]*replica.Txn
	// next is the last issued wire txn ID.
	// guarded by mu
	next uint64
	// stmts caches parses by statement text.
	// guarded by mu
	stmts map[string]*sql.Prepared
	// obsReqs is nil-safe until EnableObs.
	// guarded by mu
	obsReqs *obs.CounterVec
}

// EnableObs counts served requests per operation under
// sconrep_wire_requests_total{link="replica"}. Call before traffic.
func (s *ReplicaServer) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.obsReqs = reg.CounterVec("sconrep_wire_requests_total",
		"Wire requests served, by link and operation.", "op", "link", "replica")
	s.mu.Unlock()
}

// ServeReplica starts serving rep on addr.
func ServeReplica(rep *replica.Replica, addr string, opts ...Option) (*ReplicaServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &ReplicaServer{
		rep:   rep,
		ln:    ln,
		opts:  buildOptions(opts),
		conns: make(map[net.Conn]struct{}),
		txns:  make(map[uint64]*replica.Txn),
		stmts: make(map[string]*sql.Prepared),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *ReplicaServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and severs live connections.
func (s *ReplicaServer) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *ReplicaServer) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(c)
	}
}

// prepared caches parses by statement text.
func (s *ReplicaServer) prepared(text string) (*sql.Prepared, error) {
	s.mu.Lock()
	p, ok := s.stmts[text]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := sql.Prepare(text)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stmts[text] = p
	s.mu.Unlock()
	return p, nil
}

func (s *ReplicaServer) getTxn(id uint64) (*replica.Txn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, ok := s.txns[id]
	return tx, ok
}

func (s *ReplicaServer) dropTxn(id uint64) {
	s.mu.Lock()
	delete(s.txns, id)
	s.mu.Unlock()
}

func (s *ReplicaServer) handle(c net.Conn) {
	defer c.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	fw := newFrameWriter(c)
	defer fw.release()
	var guard seqGuard
	for {
		if d := s.opts.to.Idle; d > 0 {
			c.SetReadDeadline(time.Now().Add(d))
		}
		var req replicaRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		if !guard.ok(req.Seq) {
			return
		}
		c.SetReadDeadline(time.Time{})
		resp := s.dispatch(&req)
		resp.Seq = req.Seq
		if d := s.opts.to.Call; d > 0 {
			c.SetWriteDeadline(time.Now().Add(d))
		}
		if err := fw.encode(resp); err != nil {
			return
		}
	}
}

func (s *ReplicaServer) dispatch(req *replicaRequest) *replicaResponse {
	s.mu.Lock()
	reqs := s.obsReqs
	s.mu.Unlock()
	reqs.With(req.Op).Inc()
	resp := &replicaResponse{}
	fail := func(err error) *replicaResponse {
		resp.Err = err.Error()
		resp.ErrCode = errCode(err)
		return resp
	}
	switch req.Op {
	case "begin":
		if g := s.opts.gate; g != nil {
			if err := g(); err != nil {
				return fail(err)
			}
		}
		tx, err := s.rep.BeginCtx(req.MinVersion, metrics.NewTxnTimer(), req.Trace)
		if err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.next++
		id := s.next
		s.txns[id] = tx
		s.mu.Unlock()
		resp.TxnID = id
		resp.Snapshot = tx.Snapshot()
	case "exec":
		tx, ok := s.getTxn(req.TxnID)
		if !ok {
			return fail(replica.ErrTxnDone)
		}
		p, err := s.prepared(req.SQL)
		if err != nil {
			return fail(err)
		}
		res, err := tx.Exec(p, req.Params...)
		if err != nil {
			if errors.Is(err, replica.ErrEarlyAbort) || errors.Is(err, replica.ErrCrashed) {
				s.dropTxn(req.TxnID)
			}
			return fail(err)
		}
		resp.Result = res
	case "commit":
		tx, ok := s.getTxn(req.TxnID)
		if !ok {
			return fail(replica.ErrTxnDone)
		}
		s.dropTxn(req.TxnID)
		touched := tx.Touched()
		cres, err := tx.Commit(req.Eager)
		if err != nil {
			return fail(err)
		}
		resp.Commit = cres
		resp.Snapshot = tx.Snapshot()
		resp.Touched = touched
	case "abort":
		if tx, ok := s.getTxn(req.TxnID); ok {
			s.dropTxn(req.TxnID)
			tx.Abort()
		}
	case "status":
		resp.Version = s.rep.Version()
		resp.Active = s.rep.Active()
		resp.Crashed = s.rep.Crashed()
		resp.Ready = true
		if g := s.opts.gate; g != nil && g() != nil {
			resp.Ready = false
		}
	default:
		return fail(fmt.Errorf("wire: unknown replica op %q", req.Op))
	}
	return resp
}

// remoteReplica is the gateway's handle on one replica process. It
// implements lb.Node: the active count is tracked gateway-side (the
// gateway initiates every transaction), and health is derived from
// link errors plus status probes.
type remoteReplica struct {
	id      int
	pool    *connPool
	active  atomic.Int64
	healthy atomic.Bool
}

func newRemoteReplica(id int, addr string, o *options) *remoteReplica {
	r := &remoteReplica{id: id, pool: newConnPool(addr, nil, o.dialer(addr), o.to)}
	r.healthy.Store(true)
	return r
}

// ID implements lb.Node.
func (r *remoteReplica) ID() int { return r.id }

// Active implements lb.Node.
func (r *remoteReplica) Active() int { return int(r.active.Load()) }

// Crashed implements lb.Node.
func (r *remoteReplica) Crashed() bool { return !r.healthy.Load() }

func (r *remoteReplica) call(req *replicaRequest) (*replicaResponse, error) {
	var resp replicaResponse
	if err := r.pool.call(req, &resp); err != nil {
		r.healthy.Store(false)
		return nil, err
	}
	if resp.ErrCode == "crashed" || resp.ErrCode == "unavailable" {
		r.healthy.Store(false)
	}
	return &resp, decodeErr(&resp)
}

// probe refreshes the health flag; the gateway calls it periodically
// so crashed or gated replicas rejoin the routing set once they
// recover or catch up.
func (r *remoteReplica) probe() {
	var resp replicaResponse
	if err := r.pool.call(&replicaRequest{Op: "status"}, &resp); err != nil {
		r.healthy.Store(false)
		return
	}
	r.healthy.Store(!resp.Crashed && resp.Ready)
}
