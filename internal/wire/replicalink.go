package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"sconrep/internal/metrics"
	"sconrep/internal/obs"
	"sconrep/internal/replica"
	"sconrep/internal/sql"
)

// Replica-link protocol (gateway ⇄ replica).

type replicaRequest struct {
	Op string // "begin", "exec", "commit", "abort", "status"

	// begin
	MinVersion uint64

	// exec / commit / abort
	TxnID  uint64
	SQL    string
	Params []any
	Eager  bool
}

type replicaResponse struct {
	Err     string
	ErrCode string // "conflict", "crashed", "" — retryability over the wire

	TxnID    uint64
	Snapshot uint64
	Result   *sql.Result
	Commit   replica.CommitResult

	// status
	Version uint64
	Active  int
	Crashed bool
}

func errCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, replica.ErrCertifyConflict), errors.Is(err, replica.ErrEarlyAbort):
		return "conflict"
	case errors.Is(err, replica.ErrCrashed):
		return "crashed"
	default:
		return "other"
	}
}

func decodeErr(resp *replicaResponse) error {
	if resp.Err == "" {
		return nil
	}
	switch resp.ErrCode {
	case "conflict":
		return fmt.Errorf("%w: %s", replica.ErrCertifyConflict, resp.Err)
	case "crashed":
		return fmt.Errorf("%w: %s", replica.ErrCrashed, resp.Err)
	default:
		return errors.New(resp.Err)
	}
}

// ReplicaServer exposes one replica's transaction API on a listener.
type ReplicaServer struct {
	rep *replica.Replica
	ln  net.Listener

	mu      sync.Mutex
	txns    map[uint64]*replica.Txn
	next    uint64
	stmts   map[string]*sql.Prepared
	obsReqs *obs.CounterVec // nil-safe until EnableObs
}

// EnableObs counts served requests per operation under
// sconrep_wire_requests_total{link="replica"}. Call before traffic.
func (s *ReplicaServer) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.obsReqs = reg.CounterVec("sconrep_wire_requests_total",
		"Wire requests served, by link and operation.", "op", "link", "replica")
	s.mu.Unlock()
}

// ServeReplica starts serving rep on addr.
func ServeReplica(rep *replica.Replica, addr string) (*ReplicaServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &ReplicaServer{
		rep:   rep,
		ln:    ln,
		txns:  make(map[uint64]*replica.Txn),
		stmts: make(map[string]*sql.Prepared),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *ReplicaServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *ReplicaServer) Close() error { return s.ln.Close() }

func (s *ReplicaServer) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(c)
	}
}

// prepared caches parses by statement text.
func (s *ReplicaServer) prepared(text string) (*sql.Prepared, error) {
	s.mu.Lock()
	p, ok := s.stmts[text]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := sql.Prepare(text)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stmts[text] = p
	s.mu.Unlock()
	return p, nil
}

func (s *ReplicaServer) getTxn(id uint64) (*replica.Txn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, ok := s.txns[id]
	return tx, ok
}

func (s *ReplicaServer) dropTxn(id uint64) {
	s.mu.Lock()
	delete(s.txns, id)
	s.mu.Unlock()
}

func (s *ReplicaServer) handle(c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	enc := gob.NewEncoder(c)
	for {
		var req replicaRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *ReplicaServer) dispatch(req *replicaRequest) *replicaResponse {
	s.mu.Lock()
	reqs := s.obsReqs
	s.mu.Unlock()
	reqs.With(req.Op).Inc()
	resp := &replicaResponse{}
	fail := func(err error) *replicaResponse {
		resp.Err = err.Error()
		resp.ErrCode = errCode(err)
		return resp
	}
	switch req.Op {
	case "begin":
		tx, err := s.rep.Begin(req.MinVersion, metrics.NewTxnTimer())
		if err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.next++
		id := s.next
		s.txns[id] = tx
		s.mu.Unlock()
		resp.TxnID = id
		resp.Snapshot = tx.Snapshot()
	case "exec":
		tx, ok := s.getTxn(req.TxnID)
		if !ok {
			return fail(replica.ErrTxnDone)
		}
		p, err := s.prepared(req.SQL)
		if err != nil {
			return fail(err)
		}
		res, err := tx.Exec(p, req.Params...)
		if err != nil {
			if errors.Is(err, replica.ErrEarlyAbort) || errors.Is(err, replica.ErrCrashed) {
				s.dropTxn(req.TxnID)
			}
			return fail(err)
		}
		resp.Result = res
	case "commit":
		tx, ok := s.getTxn(req.TxnID)
		if !ok {
			return fail(replica.ErrTxnDone)
		}
		s.dropTxn(req.TxnID)
		cres, err := tx.Commit(req.Eager)
		if err != nil {
			return fail(err)
		}
		resp.Commit = cres
		resp.Snapshot = tx.Snapshot()
	case "abort":
		if tx, ok := s.getTxn(req.TxnID); ok {
			s.dropTxn(req.TxnID)
			tx.Abort()
		}
	case "status":
		resp.Version = s.rep.Version()
		resp.Active = s.rep.Active()
		resp.Crashed = s.rep.Crashed()
	default:
		return fail(fmt.Errorf("wire: unknown replica op %q", req.Op))
	}
	return resp
}

// remoteReplica is the gateway's handle on one replica process. It
// implements lb.Node: the active count is tracked gateway-side (the
// gateway initiates every transaction), and health is derived from
// link errors plus status probes.
type remoteReplica struct {
	id      int
	pool    *connPool
	active  atomic.Int64
	healthy atomic.Bool
}

func newRemoteReplica(id int, addr string) *remoteReplica {
	r := &remoteReplica{id: id, pool: newConnPool(addr, nil)}
	r.healthy.Store(true)
	return r
}

// ID implements lb.Node.
func (r *remoteReplica) ID() int { return r.id }

// Active implements lb.Node.
func (r *remoteReplica) Active() int { return int(r.active.Load()) }

// Crashed implements lb.Node.
func (r *remoteReplica) Crashed() bool { return !r.healthy.Load() }

func (r *remoteReplica) call(req *replicaRequest) (*replicaResponse, error) {
	var resp replicaResponse
	if err := r.pool.call(req, &resp); err != nil {
		r.healthy.Store(false)
		return nil, err
	}
	if resp.ErrCode == "crashed" {
		r.healthy.Store(false)
	}
	return &resp, decodeErr(&resp)
}

// probe refreshes the health flag; the gateway calls it periodically
// so crashed replicas rejoin the routing set after recovery.
func (r *remoteReplica) probe() {
	var resp replicaResponse
	if err := r.pool.call(&replicaRequest{Op: "status"}, &resp); err != nil {
		r.healthy.Store(false)
		return
	}
	r.healthy.Store(!resp.Crashed)
}
