// Package wire provides the TCP/gob transport that turns the
// in-process cluster into a distributed deployment, mirroring the
// paper's testbed topology (Figure 2):
//
//	client ⇄ gateway (load balancer) ⇄ replicas ⇄ certifier
//
// Three protocols, all gob-framed over TCP:
//
//   - certifier link (CertServer / CertClient): replicas certify
//     writesets, stream refreshes, acknowledge applies, and fetch
//     recovery history;
//   - replica link (ReplicaServer / replicaConn): the gateway begins,
//     executes, and commits transactions on a replica;
//   - client link (Gateway / Client): applications open sessions and
//     run named transactions.
//
// Request/response calls use small per-destination connection pools
// (one in-flight call per connection); refresh streaming uses one
// dedicated connection per replica. Row values are []any restricted to
// int64/float64/string/bool/nil, which gob handles once registered.
package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/writeset"
)

func init() {
	// Row values travel as interface fields.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
}

// connPool is a lazily grown pool of connections to one address. Each
// Call takes a connection for a full request/response exchange.
type connPool struct {
	addr string
	dial Dialer
	to   Timeouts
	// mu guards the free list; CertClient tears pools down while
	// holding its subscription lock.
	// locks after CertClient.mu
	mu sync.Mutex
	// free is the idle-connection list.
	// guarded by mu
	free []*rpcConn
	// hello is sent once on every new connection to select the peer's
	// handler. A func() any is invoked per connection, for hellos that
	// carry live state (the certifier client's Vlocal).
	hello any
}

type rpcConn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// pooled marks connections reused from the free list: a send
	// failure on one usually means the server idled it out, so the call
	// is retried once on a fresh dial.
	pooled bool
	// seq numbers the exchanges on this connection. A response whose
	// echoed sequence number does not match the request's means the
	// byte stream desynchronized (e.g. a duplicated frame); the
	// connection is unusable and is torn down.
	seq uint64
}

// seqReq / seqResp are implemented by request/response frame types that
// carry a per-connection sequence number.
type seqReq interface{ setSeq(uint64) }
type seqResp interface{ seq() uint64 }

func newConnPool(addr string, hello any, dial Dialer, to Timeouts) *connPool {
	if dial == nil {
		dial = net.Dial
	}
	return &connPool{addr: addr, hello: hello, dial: dial, to: to}
}

func (p *connPool) get() (*rpcConn, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		rc := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		rc.pooled = true
		return rc, nil
	}
	p.mu.Unlock()
	c, err := p.dial("tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", p.addr, err)
	}
	rc := &rpcConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
	if p.hello != nil {
		h := p.hello
		if fn, ok := h.(func() any); ok {
			h = fn()
		}
		if d := p.to.Call; d > 0 {
			c.SetWriteDeadline(time.Now().Add(d))
		}
		if err := rc.enc.Encode(h); err != nil {
			c.Close()
			return nil, fmt.Errorf("wire: hello to %s: %w", p.addr, err)
		}
	}
	return rc, nil
}

func (p *connPool) put(rc *rpcConn) {
	p.mu.Lock()
	p.free = append(p.free, rc)
	p.mu.Unlock()
}

// call performs one request/response exchange; on any error the
// connection is discarded.
func (p *connPool) call(req, resp any) error {
	return p.callDeadline(req, resp, p.to.Call)
}

// callDeadline is call with an explicit exchange deadline (zero means
// none). If the request fails to send on a pooled connection — the
// server likely reaped it while idle — the exchange is retried once on
// a fresh connection; a send that reached the wire is never retried
// here, so retry-safety decisions stay with the callers.
func (p *connPool) callDeadline(req, resp any, d time.Duration) error {
	for {
		rc, err := p.get()
		if err != nil {
			return err
		}
		rc.seq++
		if sr, ok := req.(seqReq); ok {
			sr.setSeq(rc.seq)
		}
		if d > 0 {
			rc.c.SetWriteDeadline(time.Now().Add(d))
		}
		if err := rc.enc.Encode(req); err != nil {
			rc.c.Close()
			if rc.pooled {
				continue
			}
			return fmt.Errorf("wire: send to %s: %w", p.addr, err)
		}
		if d > 0 {
			rc.c.SetReadDeadline(time.Now().Add(d))
		}
		if err := rc.dec.Decode(resp); err != nil {
			rc.c.Close()
			return fmt.Errorf("wire: recv from %s: %w", p.addr, err)
		}
		if sr, ok := resp.(seqResp); ok && sr.seq() != rc.seq {
			rc.c.Close()
			return fmt.Errorf("wire: response out of sequence from %s (got %d, want %d)", p.addr, sr.seq(), rc.seq)
		}
		if d > 0 {
			rc.c.SetDeadline(time.Time{})
		}
		p.put(rc)
		return nil
	}
}

// close drops all pooled connections.
func (p *connPool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rc := range p.free {
		rc.c.Close()
	}
	p.free = nil
}

// refreshQueue implements replica.RefreshSource over a push stream.
type refreshQueue struct {
	// mu guards the backlog; CertClient rotates queues while holding
	// its subscription lock.
	// locks after CertClient.mu
	mu sync.Mutex
	// items is the received-but-untaken refresh backlog.
	// guarded by mu
	items  []certifier.Refresh
	notify chan struct{}
	// closed drops further pushes.
	// guarded by mu
	closed bool
}

func newRefreshQueue() *refreshQueue {
	return &refreshQueue{notify: make(chan struct{}, 1)}
}

func (q *refreshQueue) push(batch []certifier.Refresh) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, batch...)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Take implements replica.RefreshSource.
func (q *refreshQueue) Take() ([]certifier.Refresh, bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			batch := q.items
			q.items = nil
			q.mu.Unlock()
			return batch, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		q.mu.Unlock()
		<-q.notify
	}
}

// Pending implements replica.RefreshSource.
func (q *refreshQueue) Pending() []certifier.Refresh {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]certifier.Refresh(nil), q.items...)
}

// QueueLen implements replica.RefreshSource.
func (q *refreshQueue) QueueLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *refreshQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// cloneWS deep-copies a writeset received from the network (defensive;
// gob already allocates fresh storage, but the certifier retains
// references).
func cloneWS(ws *writeset.WriteSet) *writeset.WriteSet { return ws.Clone() }
