package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"reflect"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/writeset"
)

// codecBatch exercises every shape the codec must carry: all five row
// value types, nil rows (deletes), empty strings, an empty writeset, a
// recovery-replay origin (-1), and a traced writeset.
func codecBatch() []certifier.Refresh {
	sc := &dtrace.SpanContext{}
	sc.Trace[0], sc.Trace[15] = 0xab, 0xcd
	sc.Span[3] = 0xef
	return []certifier.Refresh{
		{TxnID: 1, Version: 10, Origin: 0, WS: &writeset.WriteSet{Items: []writeset.Item{
			{Table: "kv", Key: "k1", Op: writeset.OpUpdate, Row: []any{int64(-7), "hello", float64(3.25), true, false, nil}},
			{Table: "kv", Key: "", Op: writeset.OpInsert, Row: []any{""}},
		}}},
		{TxnID: 2, Version: 11, Origin: -1, WS: &writeset.WriteSet{Items: []writeset.Item{
			{Table: "orders", Key: "o9", Op: writeset.OpDelete}, // nil row
		}}},
		{TxnID: 3, Version: 12, Origin: 2, WS: &writeset.WriteSet{}},
		{TxnID: 4, Version: 13, Origin: 1, WS: &writeset.WriteSet{
			Trace: sc,
			Items: []writeset.Item{{Table: "t", Key: "x", Op: writeset.OpUpdate, Row: []any{}}},
		}},
	}
}

func TestRefreshCodecRoundTrip(t *testing.T) {
	batch := codecBatch()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeRefreshFrame(bw, batch); err != nil {
		t.Fatal(err)
	}
	got, err := readRefreshFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, batch)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after one frame", buf.Len())
	}
}

// TestRefreshCodecMatchesGob pins the binary codec to gob's semantics:
// the same batch decoded from either codec is identical, so a replica
// behaves the same whichever stream the negotiation landed on.
func TestRefreshCodecMatchesGob(t *testing.T) {
	batch := codecBatch()

	var gb bytes.Buffer
	if err := gob.NewEncoder(&gb).Encode(refreshBatch{Refreshes: batch}); err != nil {
		t.Fatal(err)
	}
	var viaGob refreshBatch
	if err := gob.NewDecoder(&gb).Decode(&viaGob); err != nil {
		t.Fatal(err)
	}

	var bb bytes.Buffer
	bw := bufio.NewWriter(&bb)
	if err := writeRefreshFrame(bw, batch); err != nil {
		t.Fatal(err)
	}
	viaBin, err := readRefreshFrame(&bb)
	if err != nil {
		t.Fatal(err)
	}
	// gob decodes zero-length non-nil slices back as nil; normalize that
	// one representational difference before comparing.
	for i := range viaBin {
		if ws := viaBin[i].WS; ws != nil && len(ws.Items) == 0 {
			ws.Items = nil
		}
		if ws := viaBin[i].WS; ws != nil {
			for j := range ws.Items {
				if ws.Items[j].Row != nil && len(ws.Items[j].Row) == 0 {
					ws.Items[j].Row = nil
				}
			}
		}
	}
	if !reflect.DeepEqual(viaBin, viaGob.Refreshes) {
		t.Fatalf("codecs disagree:\n bin %+v\n gob %+v", viaBin, viaGob.Refreshes)
	}
}

func TestRefreshCodecTruncatedRejected(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeRefreshFrame(bw, codecBatch()); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for n := 0; n < len(frame); n++ {
		if _, err := readRefreshFrame(bytes.NewReader(frame[:n])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", n, len(frame))
		}
	}
}

func TestRefreshCodecCorruptRejected(t *testing.T) {
	// A length prefix beyond the frame limit is refused before any
	// allocation.
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], maxRefreshFrame+1)
	if _, err := readRefreshFrame(bytes.NewReader(huge[:])); err == nil {
		t.Fatal("oversize length prefix accepted")
	}

	// Payload-level corruption: unknown flags, bad op, bad value tag,
	// counts beyond the payload, trailing garbage.
	bad := [][]byte{
		{0x01, 0x01, 0x01, 0x00, 0xff},       // unknown flag bits
		{0xff, 0xff, 0xff, 0xff, 0xff, 0x02}, // count > remaining
	}
	valid, err := appendRefreshPayload(nil, codecBatch())
	if err != nil {
		t.Fatal(err)
	}
	bad = append(bad, append(append([]byte{}, valid...), 0x00)) // trailing garbage
	tamperOp := append([]byte{}, valid...)
	tamperOp[bytes.IndexByte(tamperOp, byte(writeset.OpUpdate))] = 0x7f
	bad = append(bad, tamperOp)
	for i, p := range bad {
		if _, err := parseRefreshPayload(p); err == nil {
			t.Fatalf("corrupt payload %d decoded cleanly", i)
		}
	}
}

// certifyN pushes n single-item committed updates through cert.
func certifyN(t testing.TB, cert *certifier.Certifier, n int) {
	t.Helper()
	ws := &writeset.WriteSet{Items: []writeset.Item{
		{Table: "t", Key: "hot", Op: writeset.OpUpdate, Row: []any{"x"}},
	}}
	for i := 0; i < n; i++ {
		d, err := cert.Certify(0, uint64(i+1), uint64(i), ws)
		if err != nil || !d.Commit {
			t.Fatalf("certify %d: commit=%v err=%v", i+1, d.Commit, err)
		}
	}
}

// TestRefreshStreamBinaryNegotiated drives the server's accept path
// with a hand-rolled subscriber: offer the binary codec in the hello,
// require the gob marker frame, then consume raw binary frames.
func TestRefreshStreamBinaryNegotiated(t *testing.T) {
	cert := certifier.New()
	srv, err := ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(certHello{Kind: "sub", ReplicaID: 7, Codec: codecBinary}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	dec := gob.NewDecoder(br)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var marker refreshBatch
	if err := dec.Decode(&marker); err != nil {
		t.Fatal(err)
	}
	if marker.Codec != codecBinary || len(marker.Refreshes) != 0 {
		t.Fatalf("accept marker = %+v", marker)
	}

	certifyN(t, cert, 5)
	var seen uint64
	for seen < 5 {
		batch, err := readRefreshFrame(br)
		if err != nil {
			t.Fatalf("binary frame after %d refreshes: %v", seen, err)
		}
		for i := range batch {
			if batch[i].Version != seen+1 {
				t.Fatalf("version %d out of order (want %d)", batch[i].Version, seen+1)
			}
			seen = batch[i].Version
			if got := batch[i].WS.Items[0].Row[0]; got != "x" {
				t.Fatalf("row value = %v", got)
			}
		}
	}
}

// legacyCertHello / legacyRefreshBatch are the pre-codec frame shapes,
// exactly as a peer built before this change would use them.
type legacyCertHello struct {
	Kind      string
	ReplicaID int
	VLocal    uint64
}

type legacyRefreshBatch struct {
	Refreshes []certifier.Refresh
}

// TestRefreshStreamLegacyClient proves a pre-codec subscriber against a
// modern server stays on gob: no Codec offer means no marker frame and
// plain gob batches.
func TestRefreshStreamLegacyClient(t *testing.T) {
	cert := certifier.New()
	srv, err := ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(legacyCertHello{Kind: "sub", ReplicaID: 3}); err != nil {
		t.Fatal(err)
	}
	// Refreshes flow only to live subscriptions; wait until the server
	// has processed the hello before certifying.
	deadline := time.Now().Add(5 * time.Second)
	for len(cert.Replicas()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never subscribed the legacy client")
		}
		time.Sleep(time.Millisecond)
	}
	certifyN(t, cert, 3)
	dec := gob.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var seen uint64
	for seen < 3 {
		var batch legacyRefreshBatch
		if err := dec.Decode(&batch); err != nil {
			t.Fatalf("gob frame after %d refreshes: %v", seen, err)
		}
		for i := range batch.Refreshes {
			seen = batch.Refreshes[i].Version
		}
	}
}

// TestRefreshStreamLegacyServer proves a modern client against a
// pre-codec server falls back to gob: the server skips the unknown
// Codec hello field, streams legacy frames, and the client consumes
// them because no accept marker ever arrives.
func TestRefreshStreamLegacyServer(t *testing.T) {
	cert := certifier.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				dec, enc := gob.NewDecoder(c), gob.NewEncoder(c)
				var hello legacyCertHello
				if dec.Decode(&hello) != nil {
					return
				}
				switch hello.Kind {
				case "req":
					for {
						var req certRequest
						if dec.Decode(&req) != nil {
							return
						}
						resp := certResponse{Seq: req.Seq}
						switch req.Op {
						case "version":
							resp.Version = cert.Version()
						case "history":
							resp.History = cert.History(req.After)
						}
						if enc.Encode(&resp) != nil {
							return
						}
					}
				case "sub":
					sub := cert.Subscribe(hello.ReplicaID)
					defer sub.Cancel()
					for {
						batch, ok := sub.Take()
						if !ok {
							return
						}
						if enc.Encode(legacyRefreshBatch{Refreshes: batch}) != nil {
							return
						}
					}
				}
			}(c)
		}
	}()

	cli := DialCertifier(ln.Addr().String(), 1, 0) // default: offers binary
	defer cli.Close()
	q := cli.Subscribe(1)
	deadline := time.Now().Add(5 * time.Second)
	for !cli.StreamLive(0) || len(cert.Replicas()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never came up against legacy server")
		}
		time.Sleep(time.Millisecond)
	}
	certifyN(t, cert, 4)
	var seen uint64
	for seen < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled at version %d", seen)
		}
		batch, ok := q.Take()
		if !ok {
			t.Fatal("queue closed")
		}
		for i := range batch {
			seen = batch[i].Version
		}
	}
}

// FuzzRefreshCodec feeds arbitrary bytes to the payload parser: it must
// never panic, and anything it accepts must round-trip through the
// encoder unchanged (the parse→encode→parse fixed point).
func FuzzRefreshCodec(f *testing.F) {
	seed, err := appendRefreshPayload(nil, codecBatch())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x01, 0x01, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := parseRefreshPayload(data)
		if err != nil {
			return
		}
		enc, err := appendRefreshPayload(nil, batch)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		again, err := parseRefreshPayload(enc)
		if err != nil {
			t.Fatalf("re-encoded payload failed to parse: %v", err)
		}
		// The fixed point is asserted at the byte level: encode(again)
		// must reproduce enc exactly. DeepEqual would be wrong here —
		// float rows can legally hold NaN, which the codec round-trips
		// bit-exactly but == (and so DeepEqual) reports as unequal.
		enc2, err := appendRefreshPayload(nil, again)
		if err != nil {
			t.Fatalf("re-parsed payload failed to encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip diverged:\n got %x (%+v)\nwant %x (%+v)", enc2, again, enc, batch)
		}
	})
}
