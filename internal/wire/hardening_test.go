package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/core"
	"sconrep/internal/metrics"
	"sconrep/internal/replica"
	"sconrep/internal/storage"
)

// TestCallDeadlineOnStalledPeer guards the deadline hardening: a peer
// that accepts the request but never responds must not hang the call
// forever. Before wire carried deadlines, this test deadlocked.
func TestCallDeadlineOnStalledPeer(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		// Drain the hello and the first request, then go silent.
		dec := gob.NewDecoder(server)
		var h certHello
		_ = dec.Decode(&h)
		var req certRequest
		_ = dec.Decode(&req)
		select {} // stall forever; Close from the deferred cleanup frees us
	}()
	dial := func(network, addr string) (net.Conn, error) { return client, nil }
	p := newConnPool("stalled", certHello{Kind: "req"}, dial, Timeouts{Call: 100 * time.Millisecond})
	start := time.Now()
	var resp certResponse
	err := p.call(&certRequest{Op: "version"}, &resp)
	if err == nil {
		t.Fatal("call against a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %s to fire", elapsed)
	}
}

// TestCallDeadlineOnDeafPeer is the write-side variant: the peer never
// reads, so even the hello cannot flush. The write deadline must fail
// the call.
func TestCallDeadlineOnDeafPeer(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	dial := func(network, addr string) (net.Conn, error) { return client, nil }
	p := newConnPool("deaf", certHello{Kind: "req"}, dial, Timeouts{Call: 100 * time.Millisecond})
	start := time.Now()
	var resp certResponse
	err := p.call(&certRequest{Op: "version"}, &resp)
	if err == nil {
		t.Fatal("call against a deaf peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("write deadline took %s to fire", elapsed)
	}
}

// TestSeqGuardDropsDuplicatedFrame: a duplicated request frame (the
// fault injector's DupProb, or any replaying middlebox) must kill the
// connection before the duplicate executes.
func TestSeqGuardDropsDuplicatedFrame(t *testing.T) {
	d := newDeployment(t, 1, core.Coarse)
	conn, err := net.Dial("tcp", d.repSrvs[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&replicaRequest{Seq: 1, Op: "status"}); err != nil {
		t.Fatal(err)
	}
	var resp replicaResponse
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1 || resp.Crashed {
		t.Fatalf("status = %+v", resp)
	}
	// Replay the same sequence number: the server must drop the
	// connection without serving it.
	if err := enc.Encode(&replicaRequest{Seq: 1, Op: "status"}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := dec.Decode(&resp); err == nil {
		t.Fatal("duplicated frame was served instead of dropping the connection")
	}
}

// TestCertClientResubscribeAfterServerRestart is the reconnect
// regression: kill the certifier server mid-stream, advance the
// certifier while the replica is partitioned, restart the server on
// the same port, and require the replica to catch up without missing a
// refresh.
func TestCertClientResubscribeAfterServerRestart(t *testing.T) {
	cert := certifier.New()
	srv, err := ServeCertifier(cert, "127.0.0.1:0",
		WithTimeouts(Timeouts{Call: 2 * time.Second, LongPoll: 2 * time.Second, Idle: 200 * time.Millisecond}),
		WithBackoff(Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	// Replica 0 attaches over the wire.
	eng := storage.NewEngine()
	loadKV(t, eng)
	cc := DialCertifier(addr, 0, eng.Version(),
		WithTimeouts(Timeouts{Call: 2 * time.Second, LongPoll: 2 * time.Second, Idle: 200 * time.Millisecond}),
		WithBackoff(Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond}),
		WithVLocal(eng.Version))
	defer cc.Close()
	rep := replica.New(replica.Config{ID: 0, EarlyCert: true}, eng, cc)
	defer rep.Crash()

	// The client's hello carries VLocal for start-version adoption and
	// lands asynchronously; wait for it before committing anything.
	adopt := time.Now().Add(5 * time.Second)
	for cert.Version() != eng.Version() {
		if time.Now().After(adopt) {
			t.Fatalf("certifier never adopted start version %d", eng.Version())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Replica 1 attaches in process, so it can keep committing while
	// the wire server is down.
	eng2 := storage.NewEngine()
	loadKV(t, eng2)
	rep2 := replica.New(replica.Config{ID: 1, EarlyCert: true}, eng2, replica.Local(cert))
	defer rep2.Crash()

	commit := func(r *replica.Replica, stmt string) uint64 {
		t.Helper()
		tx, err := r.Begin(0, metrics.NewTxnTimer())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.ExecSQL(stmt); err != nil {
			t.Fatal(err)
		}
		res, err := tx.Commit(false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Version
	}
	waitVersion := func(r *replica.Replica, v uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for r.Version() < v {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d stuck at version %d, want %d", r.ID(), r.Version(), v)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	v1 := commit(rep2, `UPDATE kv SET v = 'one' WHERE k = 1`)
	waitVersion(rep, v1) // stream works before the restart

	// Kill the server mid-stream. The client's queue must survive.
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for cc.StreamLive(0) {
		if time.Now().After(deadline) {
			t.Fatal("stream still reported live after server close")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The world moves on while replica 0 is partitioned.
	v2 := commit(rep2, `UPDATE kv SET v = 'two' WHERE k = 2`)
	v3 := commit(rep2, `UPDATE kv SET v = 'three' WHERE k = 3`)
	if rep.Version() >= v2 {
		t.Fatalf("partitioned replica saw version %d", rep.Version())
	}

	// Restart on the same port; the client must resubscribe from its
	// Vlocal and backfill v2 and v3 with no gap.
	srv2, err := ServeCertifier(cert, addr,
		WithTimeouts(Timeouts{Call: 2 * time.Second, LongPoll: 2 * time.Second, Idle: 200 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitVersion(rep, v3)

	got := snapshotKV(t, eng)
	if got[2] != "two" || got[3] != "three" {
		t.Fatalf("recovered state = %v", got)
	}
	if !cc.Ready(0) {
		t.Fatal("client not Ready after catch-up")
	}
	_ = v2
}

// TestLossyCertifierRestartAdoptsLiveVersion: a certifier restarted
// WITHOUT its decision log adopts its start version from the first
// hello. That hello must carry the replica's LIVE Vlocal — adopting
// the dial-time snapshot would re-assign already-used commit versions
// and crash every replica past the stale point.
func TestLossyCertifierRestartAdoptsLiveVersion(t *testing.T) {
	to := Timeouts{Call: 2 * time.Second, LongPoll: 2 * time.Second, Idle: 200 * time.Millisecond}
	bo := Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond}
	cert := certifier.New()
	srv, err := ServeCertifier(cert, "127.0.0.1:0", WithTimeouts(to), WithBackoff(bo))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	eng := storage.NewEngine()
	loadKV(t, eng)
	boot := eng.Version()
	cc := DialCertifier(addr, 0, boot, WithTimeouts(to), WithBackoff(bo), WithVLocal(eng.Version))
	defer cc.Close()
	rep := replica.New(replica.Config{ID: 0, EarlyCert: true}, eng, cc)
	defer rep.Crash()

	commit := func(stmt string) uint64 {
		t.Helper()
		tx, err := rep.Begin(0, metrics.NewTxnTimer())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.ExecSQL(stmt); err != nil {
			t.Fatal(err)
		}
		res, err := tx.Commit(false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Version
	}
	wait := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	wait(func() bool { return cert.Version() == boot }, "bootstrap adoption")

	// Move the replica well past its bootstrap version.
	var v uint64
	for i := 1; i <= 3; i++ {
		v = commit(fmt.Sprintf(`UPDATE kv SET v = 'x%d' WHERE k = %d`, i, i))
	}
	wait(func() bool { return eng.Version() == v }, "commits applied")

	// Lossy restart: a FRESH certifier on the same port, no WAL replay.
	srv.Close()
	fresh := certifier.New()
	srv2, err := ServeCertifier(fresh, addr, WithTimeouts(to), WithBackoff(bo))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// Adoption must land on the live version v, not the bootstrap one.
	wait(func() bool { return fresh.Version() == v }, "live-version adoption")
	wait(func() bool { return cc.Ready(0) }, "client ready after restart")

	// The next commit gets a never-used version and applies cleanly.
	if got := commit(`UPDATE kv SET v = 'after' WHERE k = 1`); got != v+1 {
		t.Fatalf("post-restart commit got version %d, want %d", got, v+1)
	}
	if kv := snapshotKV(t, eng); kv[1] != "after" {
		t.Fatalf("post-restart state = %v", kv)
	}
}
