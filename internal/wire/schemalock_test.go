package wire

// Generated-interop round-trip test for the committed wire schema
// lock. For every struct in schema.lock it proves, with live gob
// streams, the two evolution properties the wirecompat analyzer
// asserts statically:
//
//   - forward skip: a populated current value decodes cleanly into a
//     shadow type with one field removed (a legacy peer simply skips
//     the field it does not know);
//   - backward zero-fill: a populated shadow value (a legacy encoder)
//     decodes into the current type, leaving only the dropped field at
//     its zero value.
//
// It also pins the lock itself to the code: every locked struct must
// exist here with exactly the locked exported field names, so the lock
// cannot drift from the tree without this test noticing — the schema
// mirror below is the reviewed statement of what travels on the wire.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"reflect"
	"testing"

	"sconrep/internal/analysis"
	"sconrep/internal/certifier"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/replica"
	"sconrep/internal/sql"
	"sconrep/internal/wal"
	"sconrep/internal/writeset"
)

// lockedTypes maps every schema.lock struct name to its Go type. The
// wire package's internal test can name the unexported envelopes; the
// exported cross-package payloads are imported directly.
var lockedTypes = map[string]reflect.Type{
	"sconrep/internal/wire.certHello":         reflect.TypeOf(certHello{}),
	"sconrep/internal/wire.certRequest":       reflect.TypeOf(certRequest{}),
	"sconrep/internal/wire.certResponse":      reflect.TypeOf(certResponse{}),
	"sconrep/internal/wire.refreshBatch":      reflect.TypeOf(refreshBatch{}),
	"sconrep/internal/wire.clientHello":       reflect.TypeOf(clientHello{}),
	"sconrep/internal/wire.clientRequest":     reflect.TypeOf(clientRequest{}),
	"sconrep/internal/wire.clientResponse":    reflect.TypeOf(clientResponse{}),
	"sconrep/internal/wire.replicaRequest":    reflect.TypeOf(replicaRequest{}),
	"sconrep/internal/wire.replicaResponse":   reflect.TypeOf(replicaResponse{}),
	"sconrep/internal/wal.Record":             reflect.TypeOf(wal.Record{}),
	"sconrep/internal/writeset.WriteSet":      reflect.TypeOf(writeset.WriteSet{}),
	"sconrep/internal/writeset.Item":          reflect.TypeOf(writeset.Item{}),
	"sconrep/internal/certifier.Refresh":      reflect.TypeOf(certifier.Refresh{}),
	"sconrep/internal/certifier.Decision":     reflect.TypeOf(certifier.Decision{}),
	"sconrep/internal/obs/dtrace.SpanContext": reflect.TypeOf(dtrace.SpanContext{}),
	"sconrep/internal/sql.Result":             reflect.TypeOf(sql.Result{}),
	"sconrep/internal/replica.CommitResult":   reflect.TypeOf(replica.CommitResult{}),
}

func loadSchemaLock(t *testing.T) *analysis.Schema {
	t.Helper()
	data, err := os.ReadFile("schema.lock")
	if err != nil {
		t.Fatalf("reading schema.lock: %v", err)
	}
	s, err := analysis.ParseSchemaLock(data)
	if err != nil {
		t.Fatalf("parsing schema.lock: %v", err)
	}
	return s
}

// TestSchemaLockMatchesTypes pins the lock to the live types: same
// struct set, same exported field names in the same order.
func TestSchemaLockMatchesTypes(t *testing.T) {
	lock := loadSchemaLock(t)
	for name := range lock.Structs {
		if _, ok := lockedTypes[name]; !ok {
			t.Errorf("schema.lock struct %s has no entry in lockedTypes: add it (and a round-trip case) here", name)
		}
	}
	for name, typ := range lockedTypes {
		st, ok := lock.Structs[name]
		if !ok {
			t.Errorf("lockedTypes entry %s is not in schema.lock: run `sconrep-vet -update-schema`", name)
			continue
		}
		var exported []string
		for i := 0; i < typ.NumField(); i++ {
			if f := typ.Field(i); f.IsExported() {
				exported = append(exported, f.Name)
			}
		}
		if len(exported) != len(st.Fields) {
			t.Errorf("%s: %d exported fields in code, %d in schema.lock", name, len(exported), len(st.Fields))
			continue
		}
		for i, f := range st.Fields {
			if exported[i] != f.Name {
				t.Errorf("%s field %d: code has %s, schema.lock has %s", name, i, exported[i], f.Name)
			}
		}
	}
}

// TestSchemaLockRoundTrips runs the shadow-type round trips for every
// locked struct and every droppable field.
func TestSchemaLockRoundTrips(t *testing.T) {
	lock := loadSchemaLock(t)
	for name, typ := range lockedTypes {
		st := lock.Structs[name]
		if st == nil {
			continue // TestSchemaLockMatchesTypes reports it
		}
		if len(st.Fields) < 2 {
			// Dropping the only field would leave a struct gob refuses
			// to encode ("no exported fields"); a one-field struct has
			// no partial-decode surface anyway.
			continue
		}
		t.Run(typ.Name(), func(t *testing.T) {
			for _, f := range st.Fields {
				testDropField(t, typ, f.Name)
			}
		})
	}
}

// testDropField gob-round-trips typ against a shadow of typ with the
// named field removed, in both directions.
func testDropField(t *testing.T, typ reflect.Type, drop string) {
	t.Helper()
	shadow := shadowType(typ, drop)
	full := reflect.New(typ)
	populate(full.Elem(), 3)

	// Forward skip: current encoder -> legacy decoder.
	dec := gob.NewDecoder(encodeValue(t, full.Interface()))
	shadowPtr := reflect.New(shadow)
	if err := dec.DecodeValue(shadowPtr); err != nil {
		t.Fatalf("%s: decoding into shadow without %s: %v", typ.Name(), drop, err)
	}
	compareCommon(t, typ.Name()+" forward drop "+drop, full.Elem(), shadowPtr.Elem(), drop)

	// Backward zero-fill: legacy encoder -> current decoder.
	shadowVal := reflect.New(shadow)
	populate(shadowVal.Elem(), 5)
	dec = gob.NewDecoder(encodeValue(t, shadowVal.Interface()))
	back := reflect.New(typ)
	if err := dec.DecodeValue(back); err != nil {
		t.Fatalf("%s: decoding legacy stream without %s: %v", typ.Name(), drop, err)
	}
	compareCommon(t, typ.Name()+" backward drop "+drop, back.Elem(), shadowVal.Elem(), drop)
	if got := back.Elem().FieldByName(drop); !got.IsZero() {
		t.Errorf("%s: field %s absent from the legacy stream must decode to its zero value, got %v",
			typ.Name(), drop, got.Interface())
	}
}

func encodeValue(t *testing.T, v any) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encoding %T: %v", v, err)
	}
	return &buf
}

// shadowType rebuilds typ without the named field, as a legacy peer
// compiled before the field existed would declare it.
func shadowType(typ reflect.Type, drop string) reflect.Type {
	var fields []reflect.StructField
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() || f.Name == drop {
			continue
		}
		fields = append(fields, reflect.StructField{Name: f.Name, Type: f.Type})
	}
	return reflect.StructOf(fields)
}

// compareCommon asserts every exported field except drop carried its
// value across the stream (gob encodes zero-value fields as absent,
// which decodes back to zero — still equal).
func compareCommon(t *testing.T, label string, a, b reflect.Value, drop string) {
	t.Helper()
	for i := 0; i < a.Type().NumField(); i++ {
		f := a.Type().Field(i)
		if !f.IsExported() || f.Name == drop {
			continue
		}
		bv := b.FieldByName(f.Name)
		if !bv.IsValid() {
			continue
		}
		if !reflect.DeepEqual(a.Field(i).Interface(), bv.Interface()) {
			t.Errorf("%s: field %s diverged: %v vs %v", label, f.Name, a.Field(i).Interface(), bv.Interface())
		}
	}
}

// populate fills v with deterministic nonzero data, recursing through
// the schema's composite shapes. Interface fields get int64, one of
// the concrete scalar types wire's init registers with gob.
func populate(v reflect.Value, seed int64) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(seed)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(seed))
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(seed))
	case reflect.String:
		v.SetString(fmt.Sprintf("s%d", seed))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		populate(s.Index(0), seed)
		populate(s.Index(1), seed+1)
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			populate(v.Index(i), seed+int64(i))
		}
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		k := reflect.New(v.Type().Key()).Elem()
		populate(k, seed)
		val := reflect.New(v.Type().Elem()).Elem()
		populate(val, seed+1)
		m.SetMapIndex(k, val)
		v.Set(m)
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		populate(p.Elem(), seed)
		v.Set(p)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				populate(v.Field(i), seed+int64(i))
			}
		}
	case reflect.Interface:
		v.Set(reflect.ValueOf(int64(seed)))
	}
}
