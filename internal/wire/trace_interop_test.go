package wire

import (
	"bytes"
	"encoding/gob"
	"net"
	"testing"

	"sconrep/internal/core"
	"sconrep/internal/obs/dtrace"
)

// The pre-tracing wire format: the same frames without the Trace
// extension, exactly as a peer built before this change would encode
// and decode them. gob matches struct fields by name, skipping stream
// fields the receiver lacks and zero-filling receiver fields the
// stream lacks — which is what makes Trace an optional extension.

type legacyClientRequest struct {
	Seq     uint64
	Op      string
	Name    string
	Tables  []string
	TxnName string
	SQL     string
	Params  []any
}

type legacyReplicaRequest struct {
	Seq        uint64
	Op         string
	MinVersion uint64
	TxnID      uint64
	SQL        string
	Params     []any
	Eager      bool
}

// TestTraceFrameGobCompat proves both directions of the frame-header
// extension at the gob layer: a modern frame carrying a span context
// decodes cleanly on a legacy peer (field skipped), and a legacy frame
// decodes cleanly on a modern peer (context zero, i.e. untraced).
func TestTraceFrameGobCompat(t *testing.T) {
	sc := dtrace.SpanContext{}
	sc.Trace[0], sc.Trace[15] = 0xab, 0xcd
	sc.Span[0] = 0xef

	// Modern → legacy: the Trace field is skipped, everything else lands.
	var buf bytes.Buffer
	modern := clientRequest{Seq: 7, Op: "begin", TxnName: "tpcw.buyConfirm", Trace: sc}
	if err := gob.NewEncoder(&buf).Encode(&modern); err != nil {
		t.Fatal(err)
	}
	var old legacyClientRequest
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("legacy peer failed to decode a span-carrying frame: %v", err)
	}
	if old.Seq != 7 || old.Op != "begin" || old.TxnName != "tpcw.buyConfirm" {
		t.Fatalf("legacy decode mangled fields: %+v", old)
	}

	// Legacy → modern: Trace zero-fills to the invalid context.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&legacyReplicaRequest{Seq: 3, Op: "begin", MinVersion: 9}); err != nil {
		t.Fatal(err)
	}
	var now replicaRequest
	if err := gob.NewDecoder(&buf).Decode(&now); err != nil {
		t.Fatalf("modern peer failed to decode a legacy frame: %v", err)
	}
	if now.Seq != 3 || now.MinVersion != 9 {
		t.Fatalf("modern decode mangled fields: %+v", now)
	}
	if now.Trace.Valid() {
		t.Fatalf("legacy frame produced a valid span context: %+v", now.Trace)
	}
}

// TestLegacyClientRoundTrip runs a full begin/exec/commit against a
// real traced deployment from a hand-rolled legacy client that never
// sends span-context frames — the old-peer interop the wire layer
// promises.
func TestLegacyClientRoundTrip(t *testing.T) {
	d := newDeployment(t, 2, core.Coarse)
	// Trace the server side so the test exercises the code paths that
	// would consume a context if one arrived.
	coll := dtrace.NewCollector(64)
	d.gateway.Balancer().EnableTracing(dtrace.New("gateway", coll))
	for _, rep := range d.replicas {
		rep.EnableTracing(dtrace.New("replica", dtrace.NewCollector(64)))
	}

	conn, err := net.Dial("tcp", d.gateway.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(clientHello{SessionID: "legacy"}); err != nil {
		t.Fatal(err)
	}
	call := func(req legacyClientRequest) clientResponse {
		t.Helper()
		if err := enc.Encode(&req); err != nil {
			t.Fatal(err)
		}
		var resp clientResponse
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Seq != req.Seq {
			t.Fatalf("response out of sequence: got %d want %d", resp.Seq, req.Seq)
		}
		if resp.Err != "" {
			t.Fatalf("op %s failed: %s", req.Op, resp.Err)
		}
		return resp
	}

	call(legacyClientRequest{Seq: 1, Op: "begin"})
	call(legacyClientRequest{Seq: 2, Op: "exec", SQL: `UPDATE kv SET v = ? WHERE k = ?`, Params: []any{"legacy", int64(1)}})
	resp := call(legacyClientRequest{Seq: 3, Op: "commit"})
	if resp.Version == 0 || resp.ReadOnly {
		t.Fatalf("commit = %+v", resp)
	}

	// The gateway still minted its routing span; its parent is simply a
	// fresh root because the legacy client supplied no context.
	for _, sp := range coll.Recent(0) {
		if sp.Name == "lb.route" && sp.Parent != (dtrace.SpanID{}) {
			t.Fatalf("lb.route span for a legacy client has a parent: %+v", sp)
		}
	}
}
