package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"sconrep/internal/certifier"
	"sconrep/internal/obs"
	"sconrep/internal/replica"
	"sconrep/internal/writeset"
)

// Certifier-link protocol. Every connection starts with certHello;
// Kind selects streaming ("sub") or request/response ("req").
type certHello struct {
	Kind      string // "sub" or "req"
	ReplicaID int
	VLocal    uint64 // replica's durable version, for StartAt adoption
}

// certRequest is the request envelope on "req" connections; exactly
// one field group is set per call.
type certRequest struct {
	Op string // "certify", "applied", "history", "globalwait", "version"

	// certify
	Origin   int
	TxnID    uint64
	Snapshot uint64
	WS       *writeset.WriteSet

	// applied / globalwait
	ReplicaID int
	Version   uint64

	// history
	After uint64
}

// certResponse is the response envelope.
type certResponse struct {
	Err      string
	Decision certifier.Decision
	History  []certifier.Refresh
	Version  uint64
}

// refreshBatch is pushed on "sub" connections.
type refreshBatch struct {
	Refreshes []certifier.Refresh
}

// CertServer exposes a certifier on a TCP listener.
type CertServer struct {
	cert *certifier.Certifier
	ln   net.Listener

	mu      sync.Mutex
	adopted bool
	closed  bool

	obsReqs *obs.CounterVec // nil-safe until EnableObs
}

// EnableObs counts served requests per operation under
// sconrep_wire_requests_total{link="certifier"}. Call before traffic.
func (s *CertServer) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.obsReqs = reg.CounterVec("sconrep_wire_requests_total",
		"Wire requests served, by link and operation.", "op", "link", "certifier")
	s.mu.Unlock()
}

// ServeCertifier starts serving cert on addr and returns the server.
// If the certifier is fresh (version 0), the first replica hello's
// VLocal is adopted via StartAt, aligning the version counter with
// deterministically bootstrapped replicas.
func ServeCertifier(cert *certifier.Certifier, addr string) (*CertServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &CertServer{cert: cert, ln: ln}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *CertServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *CertServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.ln.Close()
}

func (s *CertServer) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(c)
	}
}

func (s *CertServer) handle(c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	enc := gob.NewEncoder(c)
	var hello certHello
	if err := dec.Decode(&hello); err != nil {
		return
	}
	s.maybeAdopt(hello)
	switch hello.Kind {
	case "sub":
		s.streamRefreshes(c, enc, hello.ReplicaID)
	case "req":
		s.serveRequests(dec, enc)
	}
}

// maybeAdopt aligns a fresh certifier with bootstrapped replicas.
func (s *CertServer) maybeAdopt(h certHello) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adopted || h.VLocal == 0 {
		return
	}
	if err := s.cert.StartAt(h.VLocal); err == nil {
		log.Printf("wire: certifier adopted start version %d from replica %d", h.VLocal, h.ReplicaID)
	}
	s.adopted = true
}

func (s *CertServer) streamRefreshes(c net.Conn, enc *gob.Encoder, replicaID int) {
	sub := s.cert.Subscribe(replicaID)
	defer s.cert.Unsubscribe(replicaID)
	for {
		batch, ok := sub.Take()
		if !ok {
			return
		}
		if err := enc.Encode(refreshBatch{Refreshes: batch}); err != nil {
			return
		}
	}
}

func (s *CertServer) serveRequests(dec *gob.Decoder, enc *gob.Encoder) {
	for {
		var req certRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.mu.Lock()
		reqs := s.obsReqs
		s.mu.Unlock()
		reqs.With(req.Op).Inc()
		var resp certResponse
		switch req.Op {
		case "certify":
			d, err := s.cert.Certify(req.Origin, req.TxnID, req.Snapshot, cloneWS(req.WS))
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Decision = d
		case "applied":
			s.cert.Applied(req.ReplicaID, req.Version)
		case "history":
			resp.History = s.cert.History(req.After)
		case "globalwait":
			<-s.cert.GlobalCommitted(req.Version)
		case "version":
			resp.Version = s.cert.Version()
		default:
			resp.Err = fmt.Sprintf("wire: unknown certifier op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// CertClient implements replica.CertService against a remote
// certifier.
type CertClient struct {
	addr      string
	replicaID int
	vlocal    uint64
	pool      *connPool

	mu    sync.Mutex
	queue *refreshQueue
	sub   net.Conn
}

var _ replica.CertService = (*CertClient)(nil)

// DialCertifier connects a replica to a remote certifier. vlocal is
// the replica's bootstrapped version (for StartAt adoption).
func DialCertifier(addr string, replicaID int, vlocal uint64) *CertClient {
	return &CertClient{
		addr:      addr,
		replicaID: replicaID,
		vlocal:    vlocal,
		pool:      newConnPool(addr, certHello{Kind: "req", ReplicaID: replicaID, VLocal: vlocal}),
	}
}

func (c *CertClient) call(req certRequest) (certResponse, error) {
	var resp certResponse
	if err := c.pool.call(&req, &resp); err != nil {
		return resp, err
	}
	if resp.Err != "" {
		if resp.Err == certifier.ErrSnapshotTooOld.Error() {
			return resp, certifier.ErrSnapshotTooOld
		}
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Certify implements replica.CertService.
func (c *CertClient) Certify(origin int, txnID, snapshot uint64, ws *writeset.WriteSet) (certifier.Decision, error) {
	resp, err := c.call(certRequest{Op: "certify", Origin: origin, TxnID: txnID, Snapshot: snapshot, WS: ws})
	return resp.Decision, err
}

// Subscribe implements replica.CertService: it opens the streaming
// connection and pumps refresh batches into a local queue.
func (c *CertClient) Subscribe(replicaID int) replica.RefreshSource {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queue != nil {
		c.queue.close()
	}
	if c.sub != nil {
		c.sub.Close()
	}
	q := newRefreshQueue()
	c.queue = q
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		log.Printf("wire: subscribe dial %s: %v", c.addr, err)
		q.close()
		return q
	}
	c.sub = conn
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(certHello{Kind: "sub", ReplicaID: replicaID, VLocal: c.vlocal}); err != nil {
		conn.Close()
		q.close()
		return q
	}
	go func() {
		dec := gob.NewDecoder(conn)
		for {
			var batch refreshBatch
			if err := dec.Decode(&batch); err != nil {
				q.close()
				return
			}
			q.push(batch.Refreshes)
		}
	}()
	return q
}

// Unsubscribe implements replica.CertService.
func (c *CertClient) Unsubscribe(replicaID int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sub != nil {
		c.sub.Close()
		c.sub = nil
	}
	if c.queue != nil {
		c.queue.close()
		c.queue = nil
	}
}

// Applied implements replica.CertService.
func (c *CertClient) Applied(replicaID int, v uint64) {
	if _, err := c.call(certRequest{Op: "applied", ReplicaID: replicaID, Version: v}); err != nil {
		log.Printf("wire: applied(%d): %v", v, err)
	}
}

// GlobalCommitted implements replica.CertService. The returned channel
// closes when the remote wait completes (or the link fails — blocking
// a commit forever on a dead certifier would be worse than a spurious
// early ack, and the paper's certifier is assumed recoverable).
func (c *CertClient) GlobalCommitted(v uint64) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.call(certRequest{Op: "globalwait", Version: v}); err != nil {
			log.Printf("wire: globalwait(%d): %v", v, err)
		}
	}()
	return done
}

// Version fetches the certifier's latest assigned commit version —
// the system-wide watermark a replica compares its Vlocal against to
// report replication lag on /healthz.
func (c *CertClient) Version() (uint64, error) {
	resp, err := c.call(certRequest{Op: "version"})
	return resp.Version, err
}

// History implements replica.CertService.
func (c *CertClient) History(after uint64) []certifier.Refresh {
	resp, err := c.call(certRequest{Op: "history", After: after})
	if err != nil {
		log.Printf("wire: history(%d): %v", after, err)
		return nil
	}
	return resp.History
}

// Close tears down the client.
func (c *CertClient) Close() {
	c.Unsubscribe(c.replicaID)
	c.pool.close()
}
