package wire

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/replica"
	"sconrep/internal/writeset"
)

// Certifier-link protocol. Every connection starts with certHello;
// Kind selects streaming ("sub") or request/response ("req").
type certHello struct {
	Kind      string // "sub" or "req"
	ReplicaID int
	VLocal    uint64 // replica's durable version, for StartAt adoption
	// Codec is the refresh-stream codec the subscriber offers (empty =
	// gob). A server that understands the offer accepts it by making its
	// first stream frame a gob refreshBatch{Codec: ...} marker; gob
	// skips unknown fields in both directions, so legacy peers on
	// either side silently keep the gob stream.
	Codec string
	// Shards restricts the refresh subscription to the listed
	// certification shards (nil or empty = all). Versions certified
	// entirely elsewhere arrive as skip markers — refreshes with a nil
	// writeset — keeping the replica's version order contiguous at a
	// fraction of the bytes. Legacy peers on either side degrade to the
	// full stream: an old server never decodes the field, an old client
	// never sets it.
	Shards []int
}

// certRequest is the request envelope on "req" connections; exactly
// one field group is set per call.
type certRequest struct {
	// Seq numbers requests per connection; see seqGuard.
	Seq uint64
	Op  string // "certify", "applied", "history", "globalwait", "version", "unsubscribe"

	// certify
	Origin   int
	TxnID    uint64
	Snapshot uint64
	WS       *writeset.WriteSet
	// Trace is the committing span's context — an optional frame-header
	// extension; peers that predate tracing leave it zero and gob lets
	// older servers skip it entirely.
	Trace dtrace.SpanContext

	// applied / globalwait / unsubscribe
	ReplicaID int
	Version   uint64

	// history
	After uint64
	// Shards filters the history page like a partial subscription
	// filters the stream: entries certified entirely outside these
	// shards come back as skip markers (nil writeset). Nil = full
	// fidelity; legacy servers ignore the field and return full pages,
	// which is correct, just larger.
	Shards []int
}

// certResponse is the response envelope.
type certResponse struct {
	Seq      uint64
	Err      string
	Decision certifier.Decision
	History  []certifier.Refresh
	Version  uint64
	// TableVers answers the "tablevers" op: the latest commit version
	// that wrote each table.
	TableVers map[string]uint64
}

func (r *certRequest) setSeq(n uint64) { r.Seq = n }
func (r *certResponse) seq() uint64    { return r.Seq }

// refreshBatch is pushed on "sub" connections.
type refreshBatch struct {
	Refreshes []certifier.Refresh
	// Codec, on the first frame of a stream only, accepts the
	// subscriber's offered codec: every subsequent frame on this
	// connection is in that codec (binary length-prefixed frames for
	// codecBinary), not gob. Empty on legacy servers, which keeps the
	// whole stream gob.
	Codec string
}

// CertServer exposes a certifier on a TCP listener.
type CertServer struct {
	cert *certifier.Certifier
	ln   net.Listener
	opts options

	mu sync.Mutex
	// closed refuses new connection tracking.
	// guarded by mu
	closed bool
	// conns is the set of live connections.
	// guarded by mu
	conns map[net.Conn]struct{}
	// streamGen numbers each replica's subscription streams so a
	// superseded stream (the replica reconnected) never cancels its
	// successor's subscription.
	// guarded by mu
	streamGen map[int]int

	// obsReqs is nil-safe until EnableObs.
	// guarded by mu
	obsReqs *obs.CounterVec
}

// EnableObs counts served requests per operation under
// sconrep_wire_requests_total{link="certifier"}. Call before traffic.
func (s *CertServer) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.obsReqs = reg.CounterVec("sconrep_wire_requests_total",
		"Wire requests served, by link and operation.", "op", "link", "certifier")
	s.mu.Unlock()
}

// ServeCertifier starts serving cert on addr and returns the server.
// While the certifier has certified nothing, replica hellos adopt
// their live VLocal via StartAt, aligning the version counter with
// deterministically bootstrapped replicas (and with replicas that are
// ahead after a certifier restart without its decision log).
func ServeCertifier(cert *certifier.Certifier, addr string, opts ...Option) (*CertServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &CertServer{
		cert:      cert,
		ln:        ln,
		opts:      buildOptions(opts),
		conns:     make(map[net.Conn]struct{}),
		streamGen: make(map[int]int),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *CertServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and severs every live connection.
// Subscriptions are left to their leases: a certifier server restart
// is indistinguishable from a partition to the replicas, and they
// resubscribe the same way.
func (s *CertServer) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *CertServer) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(c)
	}
}

// track registers a live connection; it reports false when the server
// is already closed.
func (s *CertServer) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *CertServer) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *CertServer) handle(c net.Conn) {
	defer c.Close()
	if !s.track(c) {
		return
	}
	defer s.untrack(c)
	dec := gob.NewDecoder(c)
	fw := newFrameWriter(c)
	defer fw.release()
	if d := s.opts.to.Idle; d > 0 {
		c.SetReadDeadline(time.Now().Add(d))
	}
	var hello certHello
	if err := dec.Decode(&hello); err != nil {
		return
	}
	s.maybeAdopt(hello)
	switch hello.Kind {
	case "sub":
		s.streamRefreshes(c, fw, hello)
	case "req":
		s.serveRequests(c, dec, fw)
	}
}

// maybeAdopt aligns a decision-free certifier with bootstrapped
// replicas. Tried on every hello, not just the first: hellos carry
// the replica's live Vlocal, so one racing an in-progress bootstrap
// can land a partial version that a later hello (or the in-process
// LoadData path) must raise. StartAt itself refuses to move once any
// decision exists, or to move backwards.
func (s *CertServer) maybeAdopt(h certHello) {
	if h.VLocal == 0 || h.VLocal <= s.cert.Version() {
		return
	}
	if err := s.cert.StartAt(h.VLocal); err == nil {
		log.Printf("wire: certifier adopted start version %d from replica %d", h.VLocal, h.ReplicaID)
	}
}

// streamRefreshes pumps the subscription to the replica, one gob frame
// per Take batch — never per refresh. The mailbox coalesces bursts, so
// a backlogged replica receives a few large frames instead of a frame
// per committed transaction.
func (s *CertServer) streamRefreshes(c net.Conn, fw *frameWriter, hello certHello) {
	replicaID := hello.ReplicaID
	s.mu.Lock()
	s.streamGen[replicaID]++
	gen := s.streamGen[replicaID]
	s.mu.Unlock()
	sub := s.cert.SubscribeShards(replicaID, hello.Shards)
	defer s.releaseStream(replicaID, gen, sub)
	// The stream only writes; reads would block forever, so drop the
	// hello deadline.
	c.SetReadDeadline(time.Time{})
	// Codec negotiation: accept exactly the binary token (anything else
	// — including future codecs this build predates — degrades to gob).
	// The accept marker is itself a gob frame, so a modern client that
	// reached a legacy server simply never sees one.
	binFrames := hello.Codec == codecBinary
	if binFrames {
		if d := s.opts.to.Call; d > 0 {
			c.SetWriteDeadline(time.Now().Add(d))
		}
		if err := fw.encode(refreshBatch{Codec: codecBinary}); err != nil {
			return
		}
	}
	for {
		batch, ok := sub.Take()
		if !ok {
			return
		}
		if d := s.opts.to.Call; d > 0 {
			c.SetWriteDeadline(time.Now().Add(d))
		}
		var err error
		if binFrames {
			err = writeRefreshFrame(fw.bw, batch)
		} else {
			err = fw.encode(refreshBatch{Refreshes: batch})
		}
		if err != nil {
			return
		}
	}
}

// releaseStream runs when a subscription stream dies. If the stream is
// still the replica's current one, the subscription is kept alive for
// the lease period — a partitioned replica that reconnects within it
// resumes without ever being treated as crashed. Cancellation goes
// through Subscription.Cancel, which is a no-op once a newer
// subscription (possibly via another server on the same certifier)
// has replaced this one.
func (s *CertServer) releaseStream(replicaID, gen int, sub *certifier.Subscription) {
	s.mu.Lock()
	current := s.streamGen[replicaID] == gen
	lease := s.opts.subLease
	s.mu.Unlock()
	if !current {
		return
	}
	if lease <= 0 {
		sub.Cancel()
		return
	}
	time.AfterFunc(lease, func() {
		s.mu.Lock()
		expired := s.streamGen[replicaID] == gen
		s.mu.Unlock()
		if expired {
			sub.Cancel()
		}
	})
}

func (s *CertServer) serveRequests(c net.Conn, dec *gob.Decoder, fw *frameWriter) {
	var guard seqGuard
	for {
		if d := s.opts.to.Idle; d > 0 {
			c.SetReadDeadline(time.Now().Add(d))
		}
		var req certRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		if !guard.ok(req.Seq) {
			return
		}
		c.SetReadDeadline(time.Time{})
		s.mu.Lock()
		reqs := s.obsReqs
		s.mu.Unlock()
		reqs.With(req.Op).Inc()
		var resp certResponse
		resp.Seq = req.Seq
		switch req.Op {
		case "certify":
			d, err := s.cert.CertifyCtx(req.Origin, req.TxnID, req.Snapshot, cloneWS(req.WS), req.Trace)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Decision = d
		case "applied":
			s.cert.Applied(req.ReplicaID, req.Version)
		case "history":
			resp.History = s.cert.FilterUnserved(s.cert.History(req.After), req.Shards)
		case "globalwait":
			<-s.cert.GlobalCommitted(req.Version)
		case "version":
			resp.Version = s.cert.Version()
		case "tablevers":
			resp.TableVers = s.cert.TableVersions()
		case "unsubscribe":
			s.cert.Unsubscribe(req.ReplicaID)
		default:
			resp.Err = fmt.Sprintf("wire: unknown certifier op %q", req.Op)
		}
		if d := s.opts.to.Call; d > 0 {
			c.SetWriteDeadline(time.Now().Add(d))
		}
		if err := fw.encode(&resp); err != nil {
			return
		}
	}
}

// CertClient implements replica.CertService against a remote
// certifier. Unlike the pre-hardening client, its refresh subscription
// survives the certifier link: the local queue stays open across
// reconnects, each reconnect backfills the refreshes missed (from the
// replica's live Vlocal when WithVLocal is given), and request calls
// retry transient transport failures with bounded exponential backoff.
type CertClient struct {
	addr      string
	replicaID int
	vlocal    uint64
	opts      options
	pool      *connPool

	closed    chan struct{}
	closeOnce sync.Once

	mu sync.Mutex
	// queue is the current subscription's local refresh queue.
	// guarded by mu
	queue *refreshQueue
	// sub is the live subscription stream connection.
	// guarded by mu
	sub net.Conn
	// subGen numbers subscriptions so stale loops exit.
	// guarded by mu
	subGen int

	// Stream health for the replica serve gate.
	streamUp  atomic.Bool
	downSince atomic.Int64 // unix nanos
	// serveFloor is the certifier version observed at the last
	// (re)subscribe: everything the certifier may already have
	// acknowledged to clients. A replica must not serve strong reads
	// until Vlocal reaches it (see Ready).
	serveFloor atomic.Uint64

	// Coalesced apply acknowledgments: Applied is called once per
	// refresh on the applier's hot path, so acks are shipped
	// asynchronously and collapsed to the highest version (the
	// certifier treats acks as cumulative).
	ackMu sync.Mutex
	// ackMax is the highest version posted for acknowledgment.
	// guarded by ackMu
	ackMax uint64
	// ackSent is the highest version shipped to the certifier.
	// guarded by ackMu
	ackSent uint64
	// ackBusy marks a running ackLoop goroutine.
	// guarded by ackMu
	ackBusy bool
}

var _ replica.CertService = (*CertClient)(nil)

// DialCertifier connects a replica to a remote certifier. vlocal is
// the replica's bootstrapped version (for StartAt adoption).
func DialCertifier(addr string, replicaID int, vlocal uint64, opts ...Option) *CertClient {
	o := buildOptions(opts)
	// The hello's VLocal drives fresh-certifier adoption. It must be the
	// replica's LIVE version, not the dial-time snapshot: a certifier
	// restarted without its decision log adopts from the first hello it
	// sees, and adopting a stale version would hand out already-used
	// commit versions (crashing every replica past the stale point).
	hello := func() any {
		v := vlocal
		if o.vlocalFn != nil {
			v = o.vlocalFn()
		}
		return certHello{Kind: "req", ReplicaID: replicaID, VLocal: v}
	}
	c := &CertClient{
		addr:      addr,
		replicaID: replicaID,
		vlocal:    vlocal,
		opts:      o,
		pool:      newConnPool(addr, hello, o.dialer(addr), o.to),
		closed:    make(chan struct{}),
	}
	c.downSince.Store(time.Now().UnixNano())
	return c
}

var errClientClosed = errors.New("wire: certifier client closed")

// callRetry performs one certifier call, retrying transport failures
// with exponential backoff until the client closes or the backoff's
// MaxElapsed (when set, or the override) runs out. Application-level
// responses — including abort decisions and certifier errors — return
// immediately; only the transport retries.
func (c *CertClient) callRetry(req certRequest, exchange, maxElapsed time.Duration) (certResponse, error) {
	b := c.opts.backoff
	if maxElapsed == 0 {
		maxElapsed = b.MaxElapsed
	}
	delay := b.Min
	start := time.Now()
	var resp certResponse
	for {
		select {
		case <-c.closed:
			return resp, errClientClosed
		default:
		}
		resp = certResponse{}
		err := c.pool.callDeadline(&req, &resp, exchange)
		if err == nil {
			return c.appErr(resp)
		}
		if maxElapsed > 0 && time.Since(start)+delay > maxElapsed {
			return resp, err
		}
		t := time.NewTimer(delay)
		select {
		case <-c.closed:
			t.Stop()
			return resp, errClientClosed
		case <-t.C:
		}
		delay = b.next(delay)
	}
}

// appErr maps the response's error string back to an error value,
// preserving the sentinel the replica branches on.
func (c *CertClient) appErr(resp certResponse) (certResponse, error) {
	if resp.Err == "" {
		return resp, nil
	}
	if resp.Err == certifier.ErrSnapshotTooOld.Error() {
		return resp, certifier.ErrSnapshotTooOld
	}
	return resp, errors.New(resp.Err)
}

// Certify implements replica.CertService. Transport failures retry:
// the certifier memoizes commit decisions per (origin, txn, snapshot),
// so a retry after a lost response returns the original decision
// instead of a spurious conflict.
func (c *CertClient) Certify(origin int, txnID, snapshot uint64, ws *writeset.WriteSet, sc dtrace.SpanContext) (certifier.Decision, error) {
	resp, err := c.callRetry(certRequest{Op: "certify", Origin: origin, TxnID: txnID, Snapshot: snapshot, WS: ws, Trace: sc}, c.opts.to.Call, 0)
	return resp.Decision, err
}

// Subscribe implements replica.CertService. The returned queue is
// fed by a background loop that dials the stream, backfills missed
// refreshes, and reconnects with backoff when the link drops — the
// queue itself stays open until Unsubscribe or Close, so the replica's
// applier never exits on a transient partition.
func (c *CertClient) Subscribe(replicaID int) replica.RefreshSource {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queue != nil {
		c.queue.close()
	}
	if c.sub != nil {
		c.sub.Close()
		c.sub = nil
	}
	c.subGen++
	q := newRefreshQueue()
	c.queue = q
	go c.subLoop(c.subGen, q)
	return q
}

// subscribed reports whether gen is still the current subscription.
func (c *CertClient) subscribed(gen int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subGen == gen && c.queue != nil
}

// subLoop maintains the refresh stream for one subscription
// generation: connect, learn the certifier's current version (the
// serve floor), backfill missed refreshes, then pump batches until the
// stream breaks; repeat with backoff.
func (c *CertClient) subLoop(gen int, q *refreshQueue) {
	b := c.opts.backoff
	delay := b.Min
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		if !c.subscribed(gen) {
			return
		}
		if c.runStream(gen, q) {
			delay = b.Min // made progress: reset the backoff
		}
		c.streamDown()
		t := time.NewTimer(delay)
		select {
		case <-c.closed:
			t.Stop()
			return
		case <-t.C:
		}
		delay = b.next(delay)
	}
}

// runStream performs one connect-backfill-pump cycle; it reports
// whether the stream got as far as delivering refreshes (for backoff
// reset).
func (c *CertClient) runStream(gen int, q *refreshQueue) bool {
	dial := c.opts.dialer(c.addr)
	conn, err := dial("tcp", c.addr)
	if err != nil {
		return false
	}
	c.mu.Lock()
	if c.subGen != gen {
		c.mu.Unlock()
		conn.Close()
		return false
	}
	c.sub = conn
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.sub == conn {
			c.sub = nil
		}
		c.mu.Unlock()
		conn.Close()
	}()

	from := c.vlocal
	if c.opts.vlocalFn != nil {
		from = c.opts.vlocalFn()
	}
	enc := gob.NewEncoder(conn)
	if d := c.opts.to.Call; d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	hello := certHello{Kind: "sub", ReplicaID: c.replicaID, VLocal: from, Shards: c.opts.shards}
	if c.opts.refreshCodec != RefreshCodecGob {
		hello.Codec = codecBinary
	}
	if err := enc.Encode(hello); err != nil {
		return false
	}
	conn.SetWriteDeadline(time.Time{})

	// The serve floor must be learned before this replica serves again:
	// every version the certifier has assigned so far may already be
	// acknowledged to some client, so strong reads must wait for it.
	// Then backfill what the replica missed while disconnected; the
	// replica's reorder buffer deduplicates overlap with the stream.
	ver, err := c.callRetry(certRequest{Op: "version"}, c.opts.to.Call, c.opts.backoff.Max)
	if err != nil {
		return false
	}
	if v := ver.Version; v > c.serveFloor.Load() {
		c.serveFloor.Store(v)
	}
	// History is paged (certifier.MaxHistoryBatch per response): loop
	// until the backfill reaches the serve floor or the certifier's
	// pages run dry. Against a legacy server the first page carries the
	// whole suffix and the loop exits after one round trip.
	for after := from; after < ver.Version; {
		hist, err := c.callRetry(certRequest{Op: "history", After: after, Shards: c.opts.shards}, c.opts.to.Call, c.opts.backoff.Max)
		if err != nil {
			return false
		}
		if len(hist.History) == 0 {
			break
		}
		q.push(hist.History)
		after = hist.History[len(hist.History)-1].Version
	}

	c.streamUp.Store(true)
	defer c.streamDown()
	// One bufio reader feeds both the gob decoder and the binary frame
	// reader: gob given an io.ByteReader reads exactly one message per
	// Decode (no lookahead buffering of its own), so after the accept
	// marker the binary frames start at the reader's current position.
	br := bufio.NewReader(conn)
	dec := gob.NewDecoder(br)
	binFrames, first := false, true
	for {
		if d := c.opts.to.Idle; d > 0 {
			conn.SetReadDeadline(time.Now().Add(d))
		}
		var batch []certifier.Refresh
		if binFrames {
			b, err := readRefreshFrame(br)
			if err != nil {
				return true
			}
			batch = b
		} else {
			var fr refreshBatch
			if err := dec.Decode(&fr); err != nil {
				return true
			}
			if first && fr.Codec == codecBinary {
				// The server accepted the binary offer; every following
				// frame on this connection is binary. A legacy server
				// never sets Codec, leaving the stream on gob.
				binFrames = true
			}
			batch = fr.Refreshes
		}
		first = false
		if !c.subscribed(gen) {
			return true
		}
		if len(batch) > 0 {
			q.push(batch)
		}
	}
}

func (c *CertClient) streamDown() {
	if c.streamUp.CompareAndSwap(true, false) {
		c.downSince.Store(time.Now().UnixNano())
	}
}

// StreamLive reports whether the refresh stream is connected, or has
// been down for less than grace.
func (c *CertClient) StreamLive(grace time.Duration) bool {
	if c.streamUp.Load() {
		return true
	}
	if grace <= 0 {
		return false
	}
	return time.Since(time.Unix(0, c.downSince.Load())) < grace
}

// Ready reports whether this replica may serve strong reads: its
// refresh stream is live (within grace) and its Vlocal has reached the
// serve floor recorded at the last (re)subscribe. The second condition
// closes the reconnect window: right after a partition heals the
// stream is up but the replica may still be applying the backlog, and
// serving during that window would return stale strong reads.
// Requires WithVLocal; without it only stream health is checked.
func (c *CertClient) Ready(grace time.Duration) bool {
	if !c.StreamLive(grace) {
		return false
	}
	if c.opts.vlocalFn != nil {
		return c.opts.vlocalFn() >= c.serveFloor.Load()
	}
	return true
}

// Unsubscribe implements replica.CertService: an explicit detach
// (crash), told to the certifier so eager commits stop waiting for
// this replica immediately instead of after the lease.
func (c *CertClient) Unsubscribe(replicaID int) {
	c.mu.Lock()
	c.subGen++
	if c.sub != nil {
		c.sub.Close()
		c.sub = nil
	}
	if c.queue != nil {
		c.queue.close()
		c.queue = nil
	}
	c.mu.Unlock()
	c.streamDown()
	// Best effort: a partition here means the server-side lease cleans
	// up instead.
	_, _ = c.callRetry(certRequest{Op: "unsubscribe", ReplicaID: replicaID}, c.opts.to.Call, c.opts.backoff.Max)
}

// Applied implements replica.CertService. Acks are shipped
// asynchronously, coalesced to the highest applied version; the
// certifier's accounting is cumulative, so collapsed and retried acks
// are safe.
func (c *CertClient) Applied(replicaID int, v uint64) {
	c.ackMu.Lock()
	if v > c.ackMax {
		c.ackMax = v
	}
	if c.ackBusy {
		c.ackMu.Unlock()
		return
	}
	c.ackBusy = true
	c.ackMu.Unlock()
	go c.ackLoop()
}

func (c *CertClient) ackLoop() {
	for {
		c.ackMu.Lock()
		v := c.ackMax
		if v <= c.ackSent {
			c.ackBusy = false
			c.ackMu.Unlock()
			return
		}
		c.ackMu.Unlock()
		if _, err := c.callRetry(certRequest{Op: "applied", ReplicaID: c.replicaID, Version: v}, c.opts.to.Call, 0); err != nil {
			log.Printf("wire: applied(%d): %v", v, err)
			c.ackMu.Lock()
			c.ackBusy = false
			c.ackMu.Unlock()
			return
		}
		c.ackMu.Lock()
		if v > c.ackSent {
			c.ackSent = v
		}
		c.ackMu.Unlock()
	}
}

// GlobalCommitted implements replica.CertService. The wait retries
// across certifier reconnects (GlobalCommitted is idempotent: once
// satisfied, the certifier answers immediately); the channel closes
// early only if the client itself is shut down.
func (c *CertClient) GlobalCommitted(v uint64) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		exchange := c.opts.to.LongPoll
		if exchange == 0 {
			exchange = c.opts.to.Call
		}
		if _, err := c.callRetry(certRequest{Op: "globalwait", Version: v}, exchange, 0); err != nil {
			log.Printf("wire: globalwait(%d): %v", v, err)
		}
	}()
	return done
}

// Version fetches the certifier's latest assigned commit version —
// the system-wide watermark a replica compares its Vlocal against to
// report replication lag on /healthz.
func (c *CertClient) Version() (uint64, error) {
	var resp certResponse
	if err := c.pool.callDeadline(&certRequest{Op: "version"}, &resp, c.opts.to.Call); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// TableVersions fetches the certifier's per-table commit versions —
// the authoritative side of the per-table replication-lag gauges a
// replica compares its own TableVersionsAt against (so /healthz can
// report the max per-table lag instead of a scalar version delta).
func (c *CertClient) TableVersions() (map[string]uint64, error) {
	var resp certResponse
	if err := c.pool.callDeadline(&certRequest{Op: "tablevers"}, &resp, c.opts.to.Call); err != nil {
		return nil, err
	}
	return resp.TableVers, nil
}

// History implements replica.CertService: one page per call; the
// replica's recovery loop pages until empty. Pages honour the client's
// shard subscription (unserved entries arrive as skip markers).
func (c *CertClient) History(after uint64) []certifier.Refresh {
	resp, err := c.callRetry(certRequest{Op: "history", After: after, Shards: c.opts.shards}, c.opts.to.Call, c.opts.backoff.Max)
	if err != nil {
		log.Printf("wire: history(%d): %v", after, err)
		return nil
	}
	return resp.History
}

// Close tears down the client.
func (c *CertClient) Close() {
	c.closeOnce.Do(func() { close(c.closed) })
	c.mu.Lock()
	c.subGen++
	if c.sub != nil {
		c.sub.Close()
		c.sub = nil
	}
	if c.queue != nil {
		c.queue.close()
		c.queue = nil
	}
	c.mu.Unlock()
	c.pool.close()
}
