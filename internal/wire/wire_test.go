package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/core"
	"sconrep/internal/replica"
	"sconrep/internal/storage"
)

// deployment is a full in-process multi-"process" topology over real
// loopback TCP: certifier server, N replica servers (each dialing the
// certifier through the network), and a gateway.
type deployment struct {
	certSrv  *CertServer
	repSrvs  []*ReplicaServer
	clients  []*CertClient
	replicas []*replica.Replica
	gateway  *Gateway
}

func loadKV(t *testing.T, eng *storage.Engine) {
	t.Helper()
	err := eng.CreateTable(&storage.Schema{
		Table:   "kv",
		Columns: []storage.Column{{Name: "k", Type: storage.TInt}, {Name: "v", Type: storage.TString}},
		Key:     []string{"k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.Begin()
	for k := int64(0); k < 10; k++ {
		if err := tx.Insert("kv", []any{k, "init"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.CommitLocal(); err != nil {
		t.Fatal(err)
	}
}

func newDeployment(t *testing.T, n int, mode core.Mode) *deployment {
	t.Helper()
	d := &deployment{}
	cert := certifier.New(append([]certifier.Option(nil), func() []certifier.Option {
		if mode == core.Eager {
			return []certifier.Option{certifier.WithEager()}
		}
		return nil
	}()...)...)
	var err error
	d.certSrv, err = ServeCertifier(cert, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var replicaAddrs []string
	for i := 0; i < n; i++ {
		eng := storage.NewEngine()
		loadKV(t, eng)
		cc := DialCertifier(d.certSrv.Addr(), i, eng.Version())
		rep := replica.New(replica.Config{ID: i, EarlyCert: true}, eng, cc)
		srv, err := ServeReplica(rep, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.clients = append(d.clients, cc)
		d.replicas = append(d.replicas, rep)
		d.repSrvs = append(d.repSrvs, srv)
		replicaAddrs = append(replicaAddrs, srv.Addr())
	}
	d.gateway, err = ServeGateway("127.0.0.1:0", mode, replicaAddrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.gateway.Close()
		for _, s := range d.repSrvs {
			s.Close()
		}
		for _, r := range d.replicas {
			r.Crash()
		}
		for _, c := range d.clients {
			c.Close()
		}
		d.certSrv.Close()
	})
	return d
}

func TestDistributedEndToEnd(t *testing.T) {
	d := newDeployment(t, 3, core.Coarse)
	c, err := Dial(d.gateway.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Update through the full network path.
	if err := c.Begin(""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`UPDATE kv SET v = ? WHERE k = ?`, "networked", int64(1)); err != nil {
		t.Fatal(err)
	}
	v, ro, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ro || v == 0 {
		t.Fatalf("commit = %d, ro=%v", v, ro)
	}

	// Strong consistency across a different client: the read must see
	// the update regardless of routing.
	c2, err := Dial(d.gateway.Addr(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 6; i++ {
		if err := c2.Begin(""); err != nil {
			t.Fatal(err)
		}
		res, err := c2.Exec(`SELECT v FROM kv WHERE k = ?`, int64(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c2.Commit(); err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].(string); got != "networked" {
			t.Fatalf("iteration %d: read %q", i, got)
		}
	}
}

func TestDistributedEager(t *testing.T) {
	d := newDeployment(t, 3, core.Eager)
	c, err := Dial(d.gateway.Addr(), "s")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`UPDATE kv SET v = 'eager' WHERE k = 0`); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// The eager guarantee: at ack, every replica has applied v.
	for i, rep := range d.replicas {
		if rep.Version() < v {
			t.Fatalf("eager ack before replica %d applied (%d < %d)", i, rep.Version(), v)
		}
	}
}

func TestDistributedConflict(t *testing.T) {
	d := newDeployment(t, 2, core.Coarse)
	// Two sessions race on the same row; with serial client calls we
	// emulate the race by beginning both before either commits.
	a, _ := Dial(d.gateway.Addr(), "a")
	b, _ := Dial(d.gateway.Addr(), "b")
	defer a.Close()
	defer b.Close()
	if err := a.Begin(""); err != nil {
		t.Fatal(err)
	}
	if err := b.Begin(""); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(`UPDATE kv SET v = 'a' WHERE k = 5`); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(`UPDATE kv SET v = 'b' WHERE k = 5`); err != nil {
		// Early certification may abort b at statement time if a's
		// refresh already arrived; that requires a to have committed,
		// which it has not. So this must succeed.
		t.Fatal(err)
	}
	if _, _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	_, _, err := b.Commit()
	if !errors.Is(err, replica.ErrCertifyConflict) {
		t.Fatalf("second committer: %v", err)
	}
}

func TestDistributedFineGrained(t *testing.T) {
	d := newDeployment(t, 2, core.Fine)
	c, _ := Dial(d.gateway.Addr(), "s")
	defer c.Close()
	if err := c.RegisterTxn("readK", []string{"kv"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin("readK"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`SELECT v FROM kv WHERE k = 2`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedConcurrentClients(t *testing.T) {
	d := newDeployment(t, 3, core.Coarse)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(d.gateway.Addr(), fmt.Sprintf("w%d", w))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < 10; i++ {
				k := int64((w*10 + i) % 10)
				if err := c.Begin(""); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Exec(`UPDATE kv SET v = ? WHERE k = ?`, fmt.Sprintf("w%d-%d", w, i), k); err != nil {
					_ = c.Abort()
					continue // early-cert abort is fine
				}
				if _, _, err := c.Commit(); err != nil {
					if errors.Is(err, replica.ErrCertifyConflict) {
						continue
					}
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// All replicas converge.
	final := waitConverged(t, d)
	base := snapshotKV(t, d.replicas[0].Engine())
	for i := 1; i < len(d.replicas); i++ {
		got := snapshotKV(t, d.replicas[i].Engine())
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("replica %d diverged at %d: %q vs %q (final version %d)", i, k, got[k], v, final)
			}
		}
	}
}

func waitConverged(t *testing.T, d *deployment) uint64 {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		max := uint64(0)
		min := ^uint64(0)
		for _, r := range d.replicas {
			v := r.Version()
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		if min == max {
			return max
		}
		select {
		case <-deadline:
			t.Fatalf("replicas did not converge (min %d, max %d)", min, max)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func snapshotKV(t *testing.T, e *storage.Engine) map[int64]string {
	t.Helper()
	tx := e.Begin()
	defer tx.Abort()
	kvs, err := tx.ScanAll("kv")
	if err != nil {
		t.Fatal(err)
	}
	out := map[int64]string{}
	for _, kv := range kvs {
		out[kv.Row[0].(int64)] = kv.Row[1].(string)
	}
	return out
}

func TestDistributedReplicaCrashFailover(t *testing.T) {
	d := newDeployment(t, 3, core.Coarse)
	d.replicas[1].Crash()

	c, _ := Dial(d.gateway.Addr(), "s")
	defer c.Close()
	ok := 0
	for i := 0; i < 12; i++ {
		if err := c.Begin(""); err != nil {
			continue // routed to the dead replica before probe caught up
		}
		if _, err := c.Exec(`UPDATE kv SET v = 'post-crash' WHERE k = 3`); err != nil {
			_ = c.Abort()
			continue
		}
		if _, _, err := c.Commit(); err == nil {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no transaction succeeded with one replica down")
	}
	// Recover and verify catch-up through the networked history path.
	if err := d.replicas[1].Recover(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, d)
	got := snapshotKV(t, d.replicas[1].Engine())
	if got[3] != "post-crash" {
		t.Fatalf("recovered replica kv[3] = %q", got[3])
	}
}

func TestStatusAndStmtCache(t *testing.T) {
	d := newDeployment(t, 1, core.Coarse)
	rr := newRemoteReplica(0, d.repSrvs[0].Addr(), &options{})
	resp, err := rr.call(&replicaRequest{Op: "status"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Crashed || resp.Version == 0 {
		t.Fatalf("status = %+v", resp)
	}
	// Exercise the server's statement cache with repeated texts.
	c, _ := Dial(d.gateway.Addr(), "s")
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Begin(""); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(`SELECT COUNT(*) FROM kv`); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	d.repSrvs[0].mu.Lock()
	cached := len(d.repSrvs[0].stmts)
	d.repSrvs[0].mu.Unlock()
	if cached != 1 {
		t.Fatalf("statement cache has %d entries, want 1", cached)
	}
}

func TestClientErrorsWithoutTxn(t *testing.T) {
	d := newDeployment(t, 1, core.Coarse)
	c, _ := Dial(d.gateway.Addr(), "s")
	defer c.Close()
	if _, err := c.Exec(`SELECT 1 FROM kv`); err == nil {
		t.Fatal("exec without begin succeeded")
	}
	if _, _, err := c.Commit(); err == nil {
		t.Fatal("commit without begin succeeded")
	}
	if err := c.Begin(""); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(""); err == nil {
		t.Fatal("double begin succeeded")
	}
}
