package lb

import (
	"testing"

	"sconrep/internal/core"
	"sconrep/internal/replica"
)

// fakeNode implements Node for routing tests.
type fakeNode struct {
	id      int
	active  int
	crashed bool
}

func (f *fakeNode) ID() int       { return f.id }
func (f *fakeNode) Active() int   { return f.active }
func (f *fakeNode) Crashed() bool { return f.crashed }

func TestDispatchLeastActive(t *testing.T) {
	nodes := []Node{
		&fakeNode{id: 0, active: 5},
		&fakeNode{id: 1, active: 2},
		&fakeNode{id: 2, active: 9},
	}
	l := New(core.Coarse, nodes)
	route, err := l.Dispatch("s", "")
	if err != nil {
		t.Fatal(err)
	}
	if route.Node.ID() != 1 {
		t.Fatalf("routed to %d, want 1", route.Node.ID())
	}
}

func TestDispatchSkipsCrashed(t *testing.T) {
	nodes := []Node{
		&fakeNode{id: 0, active: 0, crashed: true},
		&fakeNode{id: 1, active: 7},
	}
	l := New(core.Coarse, nodes)
	route, err := l.Dispatch("s", "")
	if err != nil {
		t.Fatal(err)
	}
	if route.Node.ID() != 1 {
		t.Fatalf("routed to crashed node")
	}
	if l.LiveReplicas() != 1 {
		t.Fatalf("LiveReplicas = %d", l.LiveReplicas())
	}
}

func TestDispatchAllCrashed(t *testing.T) {
	l := New(core.Coarse, []Node{&fakeNode{id: 0, crashed: true}})
	if _, err := l.Dispatch("s", ""); err != ErrNoReplicas {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
}

func TestDispatchSpreadsTies(t *testing.T) {
	nodes := []Node{
		&fakeNode{id: 0},
		&fakeNode{id: 1},
		&fakeNode{id: 2},
	}
	l := New(core.Coarse, nodes)
	seen := map[int]int{}
	for i := 0; i < 30; i++ {
		route, _ := l.Dispatch("s", "")
		seen[route.Node.ID()]++
	}
	for id := 0; id < 3; id++ {
		if seen[id] == 0 {
			t.Fatalf("node %d never chosen under ties: %v", id, seen)
		}
	}
}

func TestVersionTaggingPerMode(t *testing.T) {
	nodes := []Node{&fakeNode{id: 0}}
	observe := func(l *LoadBalancer) {
		l.ObserveCommit("alice", replica.CommitResult{Version: 5, WrittenTables: []string{"orders"}})
		l.ObserveCommit("bob", replica.CommitResult{Version: 7, WrittenTables: []string{"item"}})
	}

	l := New(core.Coarse, nodes)
	observe(l)
	if r, _ := l.Dispatch("carol", "any"); r.MinVersion != 7 {
		t.Fatalf("coarse min = %d, want 7", r.MinVersion)
	}

	l = New(core.Session, nodes)
	observe(l)
	if r, _ := l.Dispatch("alice", "any"); r.MinVersion != 5 {
		t.Fatalf("session(alice) min = %d, want 5", r.MinVersion)
	}
	if r, _ := l.Dispatch("carol", "any"); r.MinVersion != 0 {
		t.Fatalf("session(carol) min = %d, want 0", r.MinVersion)
	}

	l = New(core.Eager, nodes)
	observe(l)
	if r, _ := l.Dispatch("alice", "any"); r.MinVersion != 0 {
		t.Fatalf("eager min = %d, want 0", r.MinVersion)
	}

	l = New(core.Fine, nodes)
	l.RegisterTxn("readOrders", []string{"orders"})
	l.RegisterTxn("readItems", []string{"item"})
	l.RegisterTxn("readCountry", []string{"country"})
	observe(l)
	if r, _ := l.Dispatch("x", "readOrders"); r.MinVersion != 5 {
		t.Fatalf("fine(orders) min = %d, want 5", r.MinVersion)
	}
	if r, _ := l.Dispatch("x", "readItems"); r.MinVersion != 7 {
		t.Fatalf("fine(item) min = %d, want 7", r.MinVersion)
	}
	if r, _ := l.Dispatch("x", "readCountry"); r.MinVersion != 0 {
		t.Fatalf("fine(country) min = %d, want 0", r.MinVersion)
	}
	// Unknown transaction name: degrade to coarse, never weaker.
	if r, _ := l.Dispatch("x", "unknownTxn"); r.MinVersion != 7 {
		t.Fatalf("fine(unknown) min = %d, want 7 (coarse fallback)", r.MinVersion)
	}
}

func TestReadOnlyObservationKeepsSessionMonotonic(t *testing.T) {
	l := New(core.Session, []Node{&fakeNode{id: 0}})
	l.ObserveCommit("s", replica.CommitResult{Version: 9, ReadOnly: true})
	if r, _ := l.Dispatch("s", ""); r.MinVersion != 9 {
		t.Fatalf("session after read-only = %d, want 9", r.MinVersion)
	}
	// Read-only must not advance Vsystem (no update happened).
	if got := l.Tracker().VSystem(); got != 0 {
		t.Fatalf("Vsystem advanced by read-only commit: %d", got)
	}
	l.EndSession("s")
	if r, _ := l.Dispatch("s", ""); r.MinVersion != 0 {
		t.Fatalf("session survived EndSession: %d", r.MinVersion)
	}
}

func TestAddNode(t *testing.T) {
	l := New(core.Coarse, []Node{&fakeNode{id: 0, active: 3}})
	l.AddNode(&fakeNode{id: 1, active: 0})
	route, _ := l.Dispatch("s", "")
	if route.Node.ID() != 1 {
		t.Fatalf("new node not routable")
	}
}

func TestDispatchTables(t *testing.T) {
	l := New(core.Fine, []Node{&fakeNode{id: 0}})
	l.ObserveCommit("s", replica.CommitResult{Version: 4, WrittenTables: []string{"orders"}})
	l.ObserveCommit("s", replica.CommitResult{Version: 9, WrittenTables: []string{"item"}})
	if r, _ := l.DispatchTables("x", []string{"orders"}); r.MinVersion != 4 {
		t.Fatalf("explicit tables min = %d, want 4", r.MinVersion)
	}
	if r, _ := l.DispatchTables("x", []string{"country"}); r.MinVersion != 0 {
		t.Fatalf("untouched table min = %d, want 0", r.MinVersion)
	}
	// Non-fine modes ignore the set and use their own rule.
	lc := New(core.Coarse, []Node{&fakeNode{id: 0}})
	lc.ObserveCommit("s", replica.CommitResult{Version: 7, WrittenTables: []string{"t"}})
	if r, _ := lc.DispatchTables("x", []string{"country"}); r.MinVersion != 7 {
		t.Fatalf("coarse with explicit tables min = %d, want 7", r.MinVersion)
	}
}
