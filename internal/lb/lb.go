// Package lb implements the load balancer of §IV: the intermediary
// that hides the cluster from clients. It routes each transaction to
// the replica with the fewest active transactions, and tags the
// request with the minimum start version the session's consistency
// mode requires — which is where the coarse-grained, fine-grained, and
// session techniques actually live.
//
// The load balancer holds soft state only (active counts, version
// accounting, the table-set dictionary); it can be rebuilt from
// replica responses, which is the paper's fault-tolerance argument for
// using a standby rather than replicating it.
package lb

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"sconrep/internal/core"
	"sconrep/internal/obs"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/replica"
	"sconrep/internal/shard"
)

// Node is the view of a replica the balancer needs for routing.
type Node interface {
	ID() int
	Active() int
	Crashed() bool
}

// ErrNoReplicas is returned when every replica is crashed.
var ErrNoReplicas = errors.New("lb: no live replicas")

// LoadBalancer routes transactions and enforces the consistency mode
// by version tagging.
type LoadBalancer struct {
	mode     core.Mode
	tracker  *core.Tracker
	registry *core.TableSetRegistry

	mu sync.Mutex
	// nodes is the routing set.
	// guarded by mu
	nodes []Node
	// rr breaks ties among equally loaded replicas so a idle cluster
	// still spreads sessions.
	// guarded by mu
	rr int
	// smap enables shard-aware routing when non-nil with N>1: a
	// transaction is routed only to replicas subscribed to every shard
	// its table-set touches.
	// guarded by mu
	smap *shard.Map
	// served maps node ID to its subscribed shard set; a missing or nil
	// entry serves all shards.
	// guarded by mu
	served map[int][]int

	// Live-observability instruments (nil-safe no-ops until EnableObs).
	obsRouted   *obs.CounterVec
	obsNoLive   *obs.Counter
	obsDegraded *obs.Counter

	// tracer mints lb.route spans; nil until EnableTracing.
	tracer atomic.Pointer[dtrace.Tracer]
}

// EnableTracing attaches the distributed tracer: each dispatch then
// records an lb.route span (replica chosen, start-version tag) under
// the caller's span context. Call before traffic.
func (l *LoadBalancer) EnableTracing(tr *dtrace.Tracer) { l.tracer.Store(tr) }

// New returns a balancer over the given replicas.
func New(mode core.Mode, nodes []Node) *LoadBalancer {
	return &LoadBalancer{
		mode:     mode,
		tracker:  core.NewTracker(),
		registry: core.NewTableSetRegistry(),
		nodes:    append([]Node(nil), nodes...),
	}
}

// Mode returns the consistency configuration in force.
func (l *LoadBalancer) Mode() core.Mode { return l.mode }

// Tracker exposes the version accounting (tests, monitoring).
func (l *LoadBalancer) Tracker() *core.Tracker { return l.tracker }

// Registry exposes the transaction table-set dictionary.
func (l *LoadBalancer) Registry() *core.TableSetRegistry { return l.registry }

// RegisterTxn records the static table-set for a named transaction —
// the dictionary the fine-grained mode consults (§IV-B stores it in
// the database; here the application registers its prepared
// transactions at startup, which is equivalent and keeps the
// dictionary warm).
func (l *LoadBalancer) RegisterTxn(name string, tableSet []string) {
	l.registry.Register(name, tableSet)
}

// EnableObs registers the balancer's live metrics with reg:
// per-replica routing counts, live-replica count, and the version
// accounting (Vsystem, per-table Vt) the consistency modes tag
// transactions with. Call once, before serving traffic.
func (l *LoadBalancer) EnableObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.mu.Lock()
	l.obsRouted = reg.CounterVec("sconrep_lb_routed_total",
		"Transactions dispatched, by destination replica.", "replica")
	l.obsNoLive = reg.Counter("sconrep_lb_no_live_replicas_total",
		"Dispatch attempts that failed because every replica was crashed.")
	l.obsDegraded = reg.Counter("sconrep_lb_fine_degraded_total",
		"Fine-grained dispatches degraded to coarse because the transaction name was unregistered (§V-D).")
	l.mu.Unlock()
	reg.GaugeFunc("sconrep_lb_live_replicas",
		"Replicas currently considered live for routing.",
		func() float64 { return float64(l.LiveReplicas()) })
	reg.GaugeFunc("sconrep_lb_vsystem",
		"Vsystem: the newest commit version the balancer has observed.",
		func() float64 { return float64(l.tracker.VSystem()) })
	reg.GaugeVecFunc("sconrep_lb_table_version",
		"Vt per table as tracked by the balancer (fine-grained start bound).",
		"table", func() map[string]float64 {
			_, tables := l.tracker.Snapshot()
			out := make(map[string]float64, len(tables))
			for tab, v := range tables {
				out[tab] = float64(v)
			}
			return out
		})
}

// SetShardRouting makes dispatch shard-aware: smap keys each table to
// its certification shard, served lists the shards each node (by
// replica ID) subscribes to — a missing or nil entry means all shards.
// A transaction then routes only to replicas that cover every shard
// its table-set touches (the registry is consulted for routing in
// every consistency mode, not just fine-grained); a transaction whose
// table-set is unknown routes to full-coverage replicas only, trading
// balance for correctness exactly like the fine-grained mode's coarse
// degradation. Call before traffic.
func (l *LoadBalancer) SetShardRouting(smap *shard.Map, served map[int][]int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.smap = smap
	l.served = served
}

// AddNode attaches a replica to the routing set.
func (l *LoadBalancer) AddNode(n Node) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nodes = append(l.nodes, n)
}

// Route describes where and how a transaction should start.
type Route struct {
	Node Node
	// MinVersion is the synchronization start bound the replica must
	// reach before the transaction begins.
	MinVersion uint64
	// Trace is the lb.route span's context (zero when lb tracing is
	// off). A gateway fronting an untraced client can parent the
	// replica's work under it so the deployment still yields one
	// stitched, gateway-rooted tree.
	Trace dtrace.SpanContext
}

// pick selects the live replica with the fewest active transactions
// among those covering every shard in need (nil need = any replica),
// breaking ties round-robin.
func (l *LoadBalancer) pick(need []int) (Node, error) {
	l.mu.Lock()
	var best Node
	bestActive := int(^uint(0) >> 1)
	n := len(l.nodes)
	for i := 0; i < n; i++ {
		node := l.nodes[(l.rr+i)%n]
		if node.Crashed() {
			continue
		}
		if need != nil && !shard.Covers(l.served[node.ID()], need) {
			continue
		}
		if a := node.Active(); a < bestActive {
			best = node
			bestActive = a
		}
	}
	l.rr++
	l.mu.Unlock()
	if best == nil {
		l.obsNoLive.Inc()
		return nil, ErrNoReplicas
	}
	l.obsRouted.With(strconv.Itoa(best.ID())).Inc()
	return best, nil
}

// requiredShards maps a transaction's table-set to the shards a
// serving replica must subscribe to. Nil when sharding is off (no
// routing constraint). known is false for an unregistered table-set:
// the transaction may touch anything, so only full-coverage replicas
// qualify.
func (l *LoadBalancer) requiredShards(tables []string, known bool) []int {
	l.mu.Lock()
	smap := l.smap
	l.mu.Unlock()
	if smap == nil || smap.N() == 1 {
		return nil
	}
	if !known {
		all := make([]int, smap.N())
		for i := range all {
			all[i] = i
		}
		return all
	}
	return smap.OfTables(tables)
}

// Dispatch picks a replica (least active transactions, skipping
// crashed nodes) and computes the start-version tag for a transaction.
//
// txnName selects the table-set under fine-grained consistency; an
// unregistered or empty name falls back to coarse-grained treatment
// (synchronize on Vsystem), preserving strong consistency when the
// workload information is missing — the degradation §V-D describes.
func (l *LoadBalancer) Dispatch(sessionID, txnName string) (Route, error) {
	return l.DispatchCtx(sessionID, txnName, dtrace.SpanContext{})
}

// DispatchCtx is Dispatch under the caller's span context: the routing
// decision is recorded as an lb.route span annotated with the chosen
// replica and the start-version tag.
func (l *LoadBalancer) DispatchCtx(sessionID, txnName string, sc dtrace.SpanContext) (Route, error) {
	span := l.tracer.Load().StartSpan("lb.route", sc)
	route, err := l.dispatch(sessionID, txnName)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return Route{}, err
	}
	span.SetAttr("replica", strconv.Itoa(route.Node.ID()))
	span.SetAttr("min_version", strconv.FormatUint(route.MinVersion, 10))
	route.Trace = span.Context()
	span.End()
	return route, nil
}

func (l *LoadBalancer) dispatch(sessionID, txnName string) (Route, error) {
	// The table-set dictionary drives routing in every mode once
	// sharding is on, not just fine-grained version tagging: a replica
	// with a partial shard subscription never sees row data for other
	// shards, so it must not serve transactions that touch them.
	ts, known := l.registry.Lookup(txnName)
	best, err := l.pick(l.requiredShards(ts, known))
	if err != nil {
		return Route{}, err
	}

	mode := l.mode
	if mode == core.Fine {
		if !known {
			// Unknown workload: degrade to coarse, never to weaker.
			l.obsDegraded.Inc()
			return Route{Node: best, MinVersion: l.tracker.MinStartVersion(core.Coarse, nil, sessionID)}, nil
		}
		return Route{Node: best, MinVersion: l.tracker.MinStartVersion(core.Fine, ts, sessionID)}, nil
	}
	return Route{Node: best, MinVersion: l.tracker.MinStartVersion(mode, nil, sessionID)}, nil
}

// DispatchTables is Dispatch with an explicit table-set instead of a
// registered transaction name — the paper's footnote-1 alternative
// where clients tag requests with the tables they will access. Under
// non-fine modes the table-set is ignored.
func (l *LoadBalancer) DispatchTables(sessionID string, tables []string) (Route, error) {
	node, err := l.pick(l.requiredShards(tables, true))
	if err != nil {
		return Route{}, err
	}
	ts := []string(nil)
	if l.mode == core.Fine {
		ts = tables
	}
	return Route{Node: node, MinVersion: l.tracker.MinStartVersion(l.mode, ts, sessionID)}, nil
}

// ObserveCommit folds a replica's commit response into the version
// accounting. For read-only transactions the snapshot keeps the
// session monotonic; for updates Vsystem, the written tables' Vt, and
// the session version all advance.
func (l *LoadBalancer) ObserveCommit(sessionID string, res replica.CommitResult) {
	l.tracker.ObserveTableVersions(sessionID, res.TableVersions)
	if res.ReadOnly {
		l.tracker.ObserveReadOnly(res.Version, sessionID)
		return
	}
	l.tracker.ObserveCommit(res.Version, res.WrittenTables, sessionID)
}

// EndSession drops a session's accounting.
func (l *LoadBalancer) EndSession(sessionID string) {
	l.tracker.ForgetSession(sessionID)
}

// LiveReplicas returns the number of non-crashed nodes.
func (l *LoadBalancer) LiveReplicas() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, node := range l.nodes {
		if !node.Crashed() {
			n++
		}
	}
	return n
}
