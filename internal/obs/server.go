package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"sconrep/internal/obs/dtrace"
)

// Health is a role-aware readiness report: a replica is ready when its
// replication lag is bounded, a certifier when it is serving, a
// gateway when it has live replicas to route to.
type Health struct {
	Ready  bool           `json:"ready"`
	Role   string         `json:"role,omitempty"`
	Detail map[string]any `json:"detail,omitempty"`
}

// HealthFunc produces the current health report at request time.
type HealthFunc func() Health

// Options configures an observability server. Any field may be zero:
// missing pieces serve empty (but valid) responses.
type Options struct {
	Registry *Registry
	Traces   *TraceRecorder
	Health   HealthFunc
	// Spans is this process's distributed-tracing collector; when set,
	// /trace/{hex-trace-id} serves the node's span fragment of that
	// trace and /spans serves the most recent spans.
	Spans *dtrace.Collector
	// JSON mounts extra endpoints (path → value producer); responses
	// are marshaled with encoding/json. Used by the bench runner to
	// serve the live metrics.Snapshot at /snapshot.
	JSON map[string]func() any
}

// NewHandler builds the HTTP handler serving /metrics, /healthz,
// /traces, /debug/pprof/*, and any extra JSON endpoints.
func NewHandler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{Ready: true}
		if o.Health != nil {
			h = o.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		traces := o.Traces.Recent(n)
		if traces == nil {
			traces = []Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Total   uint64  `json:"total_recorded"`
			Dropped uint64  `json:"dropped"`
			Traces  []Trace `json:"traces"`
		}{o.Traces.Total(), o.Traces.Dropped(), traces})
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		id, err := dtrace.ParseTraceID(strings.TrimPrefix(r.URL.Path, "/trace/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spans := o.Spans.Trace(id)
		if spans == nil {
			spans = []dtrace.Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Trace   string        `json:"trace"`
			Total   uint64        `json:"total_recorded"`
			Dropped uint64        `json:"dropped"`
			Spans   []dtrace.Span `json:"spans"`
		}{id.String(), o.Spans.Total(), o.Spans.Dropped(), spans})
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		spans := o.Spans.Recent(n)
		if spans == nil {
			spans = []dtrace.Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Total   uint64        `json:"total_recorded"`
			Dropped uint64        `json:"dropped"`
			Spans   []dtrace.Span `json:"spans"`
		}{o.Spans.Total(), o.Spans.Dropped(), spans})
	})
	for path, fn := range o.JSON {
		fn := fn
		mux.HandleFunc(path, func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(fn())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9100").
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(o)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
