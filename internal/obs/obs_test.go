package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("txns_total", "transactions", "replica", "0")
	c.Inc()
	c.Add(2)
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("version", "vlocal", func() float64 { return 42 })

	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE txns_total counter",
		`txns_total{replica="0"} 3`,
		"# HELP depth queue depth",
		"depth 5",
		"version 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("routed_total", "routes", "replica")
	v.With("0").Inc()
	v.With("1").Add(5)
	v.With("0").Inc()
	out := scrape(t, r)
	if !strings.Contains(out, `routed_total{replica="0"} 2`) || !strings.Contains(out, `routed_total{replica="1"} 5`) {
		t.Fatalf("counter vec exposition:\n%s", out)
	}
	// TYPE appears exactly once per family.
	if strings.Count(out, "# TYPE routed_total") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestGaugeVecFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeVecFunc("table_version", "per-table", "table",
		func() map[string]float64 { return map[string]float64{"a": 1, "b": 2} },
		"replica", "3")
	out := scrape(t, r)
	if !strings.Contains(out, `table_version{replica="3",table="a"} 1`) ||
		!strings.Contains(out, `table_version{replica="3",table="b"} 2`) {
		t.Fatalf("gauge vec exposition:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // le 0.001
	h.Observe(5 * time.Millisecond)   // le 0.01
	h.Observe(50 * time.Millisecond)  // le 0.1
	h.Observe(2 * time.Second)        // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	out := scrape(t, r)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	// Exact boundary lands in its own bucket (le-inclusive).
	h2 := newHistogram([]float64{0.001})
	h2.Observe(time.Millisecond)
	if got := h2.counts[0].Load(); got != 1 {
		t.Fatalf("boundary observation in bucket 0 = %d", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(3)
	g := r.Gauge("y", "")
	g.Set(1)
	r.GaugeFunc("z", "", func() float64 { return 0 })
	r.GaugeVecFunc("w", "", "l", nil)
	h := r.Histogram("v", "", nil)
	h.Observe(time.Second)
	v := r.CounterVec("u", "", "l")
	v.With("a").Inc()
	r.WritePrometheus(io.Discard)

	var tr *TraceRecorder
	tr.Record(Trace{})
	if tr.Recent(5) != nil || tr.Total() != 0 {
		t.Fatal("nil recorder returned data")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments accumulated values")
	}
}

func TestReRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("v", "", func() float64 { return 1 }, "replica", "0")
	r.GaugeFunc("v", "", func() float64 { return 2 }, "replica", "0") // restart: same labels
	out := scrape(t, r)
	if strings.Contains(out, "v{replica=\"0\"} 1") || !strings.Contains(out, `v{replica="0"} 2`) {
		t.Fatalf("re-registration did not replace:\n%s", out)
	}
	if strings.Count(out, `v{replica="0"}`) != 1 {
		t.Fatalf("duplicate samples after re-registration:\n%s", out)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("conc_total", "", "g", fmt.Sprint(g))
			h := r.Histogram("conc_seconds", "", nil, "g", fmt.Sprint(g))
			for i := 0; i < 100; i++ {
				c.Inc()
				h.Observe(time.Millisecond)
				if i%10 == 0 {
					r.WritePrometheus(io.Discard)
				}
			}
		}(g)
	}
	wg.Wait()
	out := scrape(t, r)
	if !strings.Contains(out, `conc_total{g="3"} 100`) {
		t.Fatalf("concurrent registration lost samples:\n%s", out)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTraceRecorder(3)
	for i := 1; i <= 5; i++ {
		tr.Record(Trace{TxnID: uint64(i)})
	}
	got := tr.Recent(0)
	if len(got) != 3 {
		t.Fatalf("recent len = %d", len(got))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if got[i].TxnID != want {
			t.Fatalf("recent[%d] = %d, want %d", i, got[i].TxnID, want)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d", tr.Total())
	}
	if n := len(tr.Recent(2)); n != 2 {
		t.Fatalf("Recent(2) len = %d", n)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "test counter").Inc()
	tr := NewTraceRecorder(8)
	tr.Record(Trace{TxnID: 9, Outcome: "commit", Stages: []StageSpan{{Stage: "Queries", DurationUs: 5}}})
	ready := true
	srv, err := Serve("127.0.0.1:0", Options{
		Registry: reg,
		Traces:   tr,
		Health:   func() Health { return Health{Ready: ready, Role: "replica", Detail: map[string]any{"lag": 0}} },
		JSON:     map[string]func() any{"/snapshot": func() any { return map[string]int{"tps": 100} }},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	ready = false
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unready /healthz = %d", code)
	}
	code, body := get("/traces")
	if code != 200 {
		t.Fatalf("/traces = %d", code)
	}
	var parsed struct {
		Total  uint64  `json:"total_recorded"`
		Traces []Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("/traces not JSON: %v (%q)", err, body)
	}
	if parsed.Total != 1 || len(parsed.Traces) != 1 || parsed.Traces[0].TxnID != 9 {
		t.Fatalf("/traces = %+v", parsed)
	}
	if code, body := get("/snapshot"); code != 200 || !strings.Contains(body, `"tps":100`) {
		t.Fatalf("/snapshot = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof = %d", code)
	}
}
