package dtrace

import (
	"encoding/json"
	"testing"
	"time"
)

// fakeClock is a deterministic injectable clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func newTestTracer(node string, coll *Collector) (*Tracer, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return New(node, coll, WithClock(clk.now), WithSeed(42)), clk
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetAttr("k", "v")
	sp.Link(SpanContext{})
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span context must be invalid")
	}
	child := tr.StartSpan("y", SpanContext{})
	if child != nil {
		t.Fatal("nil tracer must return nil child span")
	}
	var c *Collector
	c.add(Span{})
	if c.Total() != 0 || c.Dropped() != 0 || c.Trace(TraceID{}) != nil || c.Recent(1) != nil {
		t.Fatal("nil collector must be inert")
	}
}

func TestSpanParentingAndCollect(t *testing.T) {
	coll := NewCollector(16)
	tr, _ := newTestTracer("node0", coll)

	root := tr.StartRoot("client.txn")
	child := tr.StartSpan("replica.txn", root.Context())
	child.SetAttr("replica", "0")
	child.End()
	root.End()

	spans := coll.Trace(root.Context().Trace)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	forest := BuildForest(spans)
	if len(forest) != 1 {
		t.Fatalf("got %d roots, want 1", len(forest))
	}
	if forest[0].Span.Name != "client.txn" || len(forest[0].Children) != 1 {
		t.Fatalf("bad tree shape: %+v", forest[0])
	}
	got := forest[0].Children[0]
	if got.Span.Name != "replica.txn" || got.Span.Attrs["replica"] != "0" {
		t.Fatalf("bad child: %+v", got.Span)
	}
	if got.Span.Duration() <= 0 {
		t.Fatalf("child duration %v, want > 0", got.Span.Duration())
	}
	if len(Orphans(spans)) != 0 {
		t.Fatalf("unexpected orphans: %v", Orphans(spans))
	}
}

func TestDeterministicIDs(t *testing.T) {
	a, _ := newTestTracer("node0", nil)
	b, _ := newTestTracer("node0", nil)
	for i := 0; i < 10; i++ {
		sa, sb := a.StartRoot("s"), b.StartRoot("s")
		if sa.Context() != sb.Context() {
			t.Fatalf("id streams diverged at %d: %v vs %v", i, sa.Context(), sb.Context())
		}
	}
	// Different nodes (default seed) must not collide.
	c := New("node1", nil, WithClock(func() time.Time { return time.Unix(0, 0) }))
	if c.StartRoot("s").Context() == a.StartRoot("s").Context() {
		t.Fatal("distinct nodes minted identical ids")
	}
}

func TestCollectorRingAndDropped(t *testing.T) {
	coll := NewCollector(4)
	tr, _ := newTestTracer("n", coll)
	for i := 0; i < 10; i++ {
		tr.StartRoot("s").End()
	}
	if coll.Total() != 10 {
		t.Fatalf("Total = %d, want 10", coll.Total())
	}
	if coll.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", coll.Dropped())
	}
	if got := len(coll.Recent(0)); got != 4 {
		t.Fatalf("Recent(0) = %d spans, want 4", got)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	coll := NewCollector(8)
	tr, _ := newTestTracer("n", coll)
	sp := tr.StartRoot("s")
	sp.End()
	sp.End()
	if coll.Total() != 1 {
		t.Fatalf("Total = %d, want 1 after double End", coll.Total())
	}
}

func TestHexRoundTrip(t *testing.T) {
	tr, _ := newTestTracer("n", nil)
	id := tr.StartRoot("s").Context().Trace
	parsed, err := ParseTraceID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Fatalf("round trip %v != %v", parsed, id)
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Fatal("short/invalid id must fail to parse")
	}
}

func TestSpanJSON(t *testing.T) {
	coll := NewCollector(8)
	tr, _ := newTestTracer("n", coll)
	root := tr.StartRoot("a")
	sp := tr.StartSpan("b", root.Context())
	sp.Link(root.Context())
	sp.End()
	root.End()

	raw, err := json.Marshal(coll.Recent(0))
	if err != nil {
		t.Fatal(err)
	}
	var back []Span
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d spans, want 2", len(back))
	}
	// Newest first: back[0] is the root, back[1] the linked child.
	if back[1].Trace != root.Context().Trace || len(back[1].Links) != 1 {
		t.Fatalf("ids or links lost in JSON: %+v", back[1])
	}
}
