// Package dtrace is a zero-dependency distributed-tracing layer in the
// Dapper mold: 16-byte trace ids and 8-byte span ids propagate across
// the wire as an optional frame-header extension, each process records
// its finished spans into a bounded ring (Collector), and a stitcher
// (BuildForest) reassembles the per-process fragments into the causal
// tree of one transaction: client session → lb route → replica
// execute → certifier certify → refresh apply on every replica.
//
// Everything is pay-for-what-you-use: all methods are nil-safe, so an
// instrumented hot path costs exactly one nil check when tracing is
// off — no allocation, no locks, no clock reads. Span ids come from a
// seeded splitmix64 counter (never from math/rand or the wall clock),
// and the clock itself is injectable (WithClock) so seeded packages
// stay deterministic under the sconrep-vet analyzer.
package dtrace

import (
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end transaction trace.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText implements encoding.TextMarshaler (hex, for JSON).
func (t TraceID) MarshalText() ([]byte, error) {
	b := make([]byte, hex.EncodedLen(len(t)))
	hex.Encode(b, t[:])
	return b, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *TraceID) UnmarshalText(b []byte) error {
	id, err := ParseTraceID(string(b))
	if err != nil {
		return err
	}
	*t = id
	return nil
}

// MarshalText implements encoding.TextMarshaler (hex, for JSON).
func (s SpanID) MarshalText() ([]byte, error) {
	b := make([]byte, hex.EncodedLen(len(s)))
	hex.Encode(b, s[:])
	return b, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 2*len(s) {
		return fmt.Errorf("dtrace: span id must be %d hex digits, got %q", 2*len(s), b)
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) {
		return t, fmt.Errorf("dtrace: trace id must be %d hex digits, got %q", 2*len(t), s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("dtrace: bad trace id %q: %w", s, err)
	}
	return t, nil
}

// SpanContext is the wire-propagated fragment of a span: just enough
// for a downstream process to parent its own spans under ours. The
// zero value is "no context"; gob encodes it compactly and old peers
// that do not know the field simply never set it.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Span is one finished span as recorded by a Collector.
type Span struct {
	Trace  TraceID           `json:"trace"`
	ID     SpanID            `json:"id"`
	Parent SpanID            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Node   string            `json:"node"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	// Links reference spans in other traces that causally fed this one
	// — a refresh batch links every commit it coalesced.
	Links []SpanContext `json:"links,omitempty"`
}

// Duration is the span's wall time under its recording clock.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// splitmix64 is the id mixer: a full-period permutation of uint64, so
// distinct counter values never collide.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Tracer mints spans for one named node (process/component). A nil
// *Tracer is valid and inert: StartRoot/StartSpan return a nil span
// whose methods are all no-ops.
type Tracer struct {
	node string
	coll *Collector
	now  func() time.Time
	// ctr feeds splitmix64; seeded per tracer so id streams are
	// deterministic given a fixed seed and call order.
	ctr atomic.Uint64
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock injects the time source. Seeded packages must pass their
// deterministic clock here; the sconrep-vet determinism analyzer
// rejects dtrace.New calls without WithClock inside seeded packages.
func WithClock(now func() time.Time) Option {
	return func(t *Tracer) { t.now = now }
}

// WithSeed sets the id-stream seed (default: a hash of the node name,
// so two nodes never mint the same ids even with identical call
// counts).
func WithSeed(seed uint64) Option {
	return func(t *Tracer) { t.ctr.Store(seed) }
}

// New returns a tracer recording into coll. The default clock is
// time.Now; the default id seed is derived from the node name.
func New(node string, coll *Collector, opts ...Option) *Tracer {
	t := &Tracer{node: node, coll: coll, now: time.Now}
	var h uint64 = 14695981039346656037 // FNV-1a over the node name
	for i := 0; i < len(node); i++ {
		h = (h ^ uint64(node[i])) * 1099511628211
	}
	t.ctr.Store(h)
	for _, o := range opts {
		o(t)
	}
	return t
}

func (t *Tracer) nextID() uint64 {
	// Mixing the post-increment counter keeps ids unique per tracer and
	// non-sequential on the wire.
	return splitmix64(t.ctr.Add(1))
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	a, b := t.nextID(), t.nextID()
	for i := 0; i < 8; i++ {
		id[i] = byte(a >> (8 * i))
		id[8+i] = byte(b >> (8 * i))
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	v := t.nextID()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (8 * i))
	}
	return id
}

// ActiveSpan is an in-flight span. A nil *ActiveSpan is valid: every
// method is a no-op and Context returns the zero context, so callers
// thread spans unconditionally.
type ActiveSpan struct {
	tr  *Tracer
	mu  sync.Mutex
	rec Span
	// ended guards against double End (e.g. abort paths that also run
	// the deferred finalizer).
	ended bool
}

// StartRoot opens a span with a fresh trace id.
func (t *Tracer) StartRoot(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{tr: t, rec: Span{
		Trace: t.newTraceID(),
		ID:    t.newSpanID(),
		Name:  name,
		Node:  t.node,
		Start: t.now(),
	}}
}

// StartSpan opens a span under parent. An invalid parent yields a new
// root (local traces still assemble when an old peer dropped the
// context).
func (t *Tracer) StartSpan(name string, parent SpanContext) *ActiveSpan {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(name)
	}
	return &ActiveSpan{tr: t, rec: Span{
		Trace:  parent.Trace,
		ID:     t.newSpanID(),
		Parent: parent.Span,
		Name:   name,
		Node:   t.node,
		Start:  t.now(),
	}}
}

// Context returns the span's wire context (zero on nil).
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.rec.Trace, Span: s.rec.ID}
}

// SetAttr attaches one key/value annotation.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[key] = value
	s.mu.Unlock()
}

// Link records a causal reference to a span in another trace.
func (s *ActiveSpan) Link(sc SpanContext) {
	if s == nil || !sc.Valid() {
		return
	}
	s.mu.Lock()
	s.rec.Links = append(s.rec.Links, sc)
	s.mu.Unlock()
}

// End stamps the finish time and hands the span to the collector.
// Safe to call more than once; only the first End records.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.End = s.tr.now()
	rec := s.rec
	s.mu.Unlock()
	s.tr.coll.add(rec)
}

// Collector keeps the most recent finished spans of one process in a
// bounded ring. Nil-safe like every other type here.
type Collector struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	count int
	total uint64
}

// NewCollector returns a collector retaining the last capacity spans
// (minimum 1).
func NewCollector(capacity int) *Collector {
	if capacity < 1 {
		capacity = 1
	}
	return &Collector{ring: make([]Span, capacity)}
}

func (c *Collector) add(s Span) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ring[c.next] = s
	c.next = (c.next + 1) % len(c.ring)
	if c.count < len(c.ring) {
		c.count++
	}
	c.total++
	c.mu.Unlock()
}

// Total returns how many spans were ever recorded (including evicted
// ones).
func (c *Collector) Total() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped returns how many spans the ring has evicted.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total - uint64(c.count)
}

// Trace returns every retained span of one trace, oldest first.
func (c *Collector) Trace(id TraceID) []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Span
	for i := c.count; i >= 1; i-- {
		s := c.ring[(c.next-i+len(c.ring))%len(c.ring)]
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// Recent returns up to n retained spans, newest first (n <= 0: all).
func (c *Collector) Recent(n int) []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 || n > c.count {
		n = c.count
	}
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, c.ring[(c.next-i+len(c.ring))%len(c.ring)])
	}
	return out
}

// TreeNode is one span with its children, as stitched by BuildForest.
type TreeNode struct {
	Span     Span        `json:"span"`
	Children []*TreeNode `json:"children,omitempty"`
}

// BuildForest assembles spans (possibly fetched from several nodes,
// possibly with duplicates) into parent/child trees. Roots are spans
// whose parent is absent from the set; trees and siblings are ordered
// by start time, then id, so output is stable.
func BuildForest(spans []Span) []*TreeNode {
	byID := make(map[SpanID]*TreeNode, len(spans))
	order := make([]SpanID, 0, len(spans))
	for i := range spans {
		s := spans[i]
		if _, dup := byID[s.ID]; dup {
			continue
		}
		byID[s.ID] = &TreeNode{Span: s}
		order = append(order, s.ID)
	}
	var roots []*TreeNode
	for _, id := range order {
		n := byID[id]
		if p, ok := byID[n.Span.Parent]; ok && !n.Span.Parent.IsZero() {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	less := func(a, b *TreeNode) bool {
		if !a.Span.Start.Equal(b.Span.Start) {
			return a.Span.Start.Before(b.Span.Start)
		}
		return a.Span.ID.String() < b.Span.ID.String()
	}
	var sortTree func(ns []*TreeNode)
	sortTree = func(ns []*TreeNode) {
		sort.Slice(ns, func(i, j int) bool { return less(ns[i], ns[j]) })
		for _, n := range ns {
			sortTree(n.Children)
		}
	}
	sortTree(roots)
	return roots
}

// Orphans returns the spans in the set whose parent id is non-zero but
// absent — the completeness check the chaos harness asserts on.
func Orphans(spans []Span) []Span {
	present := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		present[s.ID] = true
	}
	var out []Span
	for _, s := range spans {
		if !s.Parent.IsZero() && !present[s.Parent] {
			out = append(out, s)
		}
	}
	return out
}
