package obs

import (
	"sync"
	"time"
)

// StageSpan is one stage of a transaction's timeline, offsets relative
// to the transaction's first stage.
type StageSpan struct {
	Stage      string `json:"stage"`
	StartUs    int64  `json:"start_us"`
	DurationUs int64  `json:"duration_us"`
}

// Trace is one completed transaction's timeline: the §V-A stage
// sequence (begin → version-wait → execute → certify → sync → commit,
// plus global under eager) with the versions and replica involved.
type Trace struct {
	TxnID         uint64      `json:"txn_id"`
	Replica       int         `json:"replica"`
	Outcome       string      `json:"outcome"` // "commit" or "abort"
	ReadOnly      bool        `json:"read_only"`
	Snapshot      uint64      `json:"snapshot"`
	CommitVersion uint64      `json:"commit_version,omitempty"`
	Start         time.Time   `json:"start"`
	TotalUs       int64       `json:"total_us"`
	Stages        []StageSpan `json:"stages"`
}

// TraceRecorder keeps the most recent transaction traces in a bounded
// ring buffer. Record is cheap (one lock, one copy) and nil-safe, so
// instrumented paths pay only a nil check when tracing is off.
type TraceRecorder struct {
	mu    sync.Mutex
	ring  []Trace
	next  int
	count int
	total uint64
}

// NewTraceRecorder returns a recorder keeping the last capacity traces
// (minimum 1).
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRecorder{ring: make([]Trace, capacity)}
}

// Record stores one trace, evicting the oldest when full.
func (t *TraceRecorder) Record(tr Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.total++
	t.mu.Unlock()
}

// Recent returns up to n traces, newest first. n <= 0 returns all
// retained traces.
func (t *TraceRecorder) Recent(n int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.count {
		n = t.count
	}
	out := make([]Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Total returns how many traces have ever been recorded (including
// evicted ones).
func (t *TraceRecorder) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many traces the ring has evicted — the gap
// between Total and what Recent can still return. Scrapers use it to
// detect silent ring overflow.
func (t *TraceRecorder) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.count)
}
