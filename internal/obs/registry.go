// Package obs is the live observability layer: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms) with Prometheus text exposition, a bounded ring-buffer
// trace recorder for per-transaction timelines, and an HTTP server
// exposing /metrics, /healthz, /traces, and net/http/pprof.
//
// The offline bench already measures the paper's §V-A quantities; this
// package makes the same signals visible on a *running* cluster:
// Vlocal vs Vsystem (replication lag), per-table versions, refresh
// queue depth, synchronization delay, certification and abort rates.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *CounterVec, *Registry, or *TraceRecorder are no-ops, so
// instrumented hot paths cost one nil check when observability is
// disabled — no goroutines, no allocation, no locks.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency histogram. Buckets are
// upper-bound seconds (le-inclusive, Prometheus convention); an
// implicit +Inf bucket catches overflow. Observations are lock-free.
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // len(upper)+1; last is +Inf
	sum    atomic.Int64   // nanoseconds
}

// DefBuckets covers the paper's latency range: sub-millisecond local
// operations through multi-second eager global-commit stalls.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{upper: up, counts: make([]atomic.Int64, len(up)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(h.upper, s) // first bucket with upper >= s
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// ObserveValue records one unitless value (e.g. a batch size) against
// the same buckets. The rendered _sum is the plain value sum: values
// are stored scaled so the nanosecond→second conversion used for
// durations cancels out.
func (h *Histogram) ObserveValue(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.Add(int64(v * float64(time.Second)))
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// CounterVec is a family of counters split by one label.
type CounterVec struct {
	reg   *Registry
	name  string
	label string
	base  []string

	mu   sync.Mutex
	kids map[string]*Counter
}

// With returns the counter for one label value, creating it on first
// use. Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[value]; ok {
		return c
	}
	c := &Counter{}
	v.kids[value] = c
	pairs := append(append([]string(nil), v.base...), v.label, value)
	v.reg.register(v.name, entry{kind: kindCounter, pairs: pairs, counter: c})
	return c
}

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindGaugeVecFunc
	kindHistogram
)

type entry struct {
	kind     kind
	pairs    []string // label key/value pairs
	counter  *Counter
	gauge    *Gauge
	fn       func() float64
	vecLabel string
	vecFn    func() map[string]float64
	hist     *Histogram
}

type family struct {
	name, help string
	typ        string
	entries    map[string]*entry // keyed by rendered label string
	order      []string
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use and
// nil-safe (a nil registry registers nothing and returns nil
// instruments).
type Registry struct {
	// mu guards the family table; vec instruments register lazily
	// created children while holding their own child-map lock.
	// locks after CounterVec.mu
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

func typeOf(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// register installs an entry, replacing any previous entry with the
// same name and label set (a restarted component re-registers its
// instruments; the newest wins).
func (r *Registry) register(name string, e entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerLocked(name, "", e)
}

func (r *Registry) registerLocked(name, help string, e entry) {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typeOf(e.kind), entries: make(map[string]*entry)}
		r.fams[name] = f
	}
	if help != "" {
		f.help = help
	}
	key := renderLabels(e.pairs)
	if _, exists := f.entries[key]; !exists {
		f.order = append(f.order, key)
	}
	f.entries[key] = &e
}

// Counter registers and returns a counter. Trailing arguments are
// label key/value pairs.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.mu.Lock()
	r.registerLocked(name, help, entry{kind: kindCounter, pairs: labelPairs, counter: c})
	r.mu.Unlock()
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.mu.Lock()
	r.registerLocked(name, help, entry{kind: kindGauge, pairs: labelPairs, gauge: g})
	r.mu.Unlock()
	return g
}

// GaugeFunc registers a gauge evaluated at scrape time. fn must be
// safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.registerLocked(name, help, entry{kind: kindGaugeFunc, pairs: labelPairs, fn: fn})
	r.mu.Unlock()
}

// GaugeVecFunc registers a gauge family whose per-label values are
// produced at scrape time: fn returns label-value → gauge value, and
// each key is emitted under the given label name.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64, labelPairs ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.registerLocked(name, help, entry{kind: kindGaugeVecFunc, pairs: labelPairs, vecLabel: label, vecFn: fn})
	r.mu.Unlock()
}

// Histogram registers and returns a fixed-bucket histogram. nil or
// empty buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(buckets)
	r.mu.Lock()
	r.registerLocked(name, help, entry{kind: kindHistogram, pairs: labelPairs, hist: h})
	r.mu.Unlock()
	return h
}

// CounterVec registers a counter family split by one label (plus
// optional constant label pairs).
func (r *Registry) CounterVec(name, help, label string, labelPairs ...string) *CounterVec {
	if r == nil {
		return nil
	}
	// Materialize the family eagerly so an unused vec still appears.
	r.mu.Lock()
	if _, ok := r.fams[name]; !ok {
		r.fams[name] = &family{name: name, help: help, typ: "counter", entries: make(map[string]*entry)}
	} else if help != "" {
		r.fams[name].help = help
	}
	r.mu.Unlock()
	return &CounterVec{reg: r, name: name, label: label, base: labelPairs, kids: make(map[string]*Counter)}
}

// renderLabels formats label pairs as {k="v",...}; empty pairs render
// as "".
func renderLabels(pairs []string, extra ...string) string {
	all := append(append([]string(nil), pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", all[i], all[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families and samples in sorted
// order for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot entry pointers so scrape-time funcs run outside r.mu
	// (they may take component locks).
	type famSnap struct {
		name, help, typ string
		keys            []string
		entries         []*entry
	}
	snaps := make([]famSnap, 0, len(names))
	for _, n := range names {
		f := r.fams[n]
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		es := make([]*entry, 0, len(keys))
		for _, k := range keys {
			es = append(es, f.entries[k])
		}
		snaps = append(snaps, famSnap{name: f.name, help: f.help, typ: f.typ, keys: keys, entries: es})
	}
	r.mu.Unlock()

	for _, f := range snaps {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for i, e := range f.entries {
			labels := f.keys[i]
			switch e.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labels, e.counter.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labels, e.gauge.Value())
			case kindGaugeFunc:
				fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(e.fn()))
			case kindGaugeVecFunc:
				vals := e.vecFn()
				keys := make([]string, 0, len(vals))
				for k := range vals {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(e.pairs, e.vecLabel, k), formatFloat(vals[k]))
				}
			case kindHistogram:
				h := e.hist
				var cum int64
				for bi, ub := range h.upper {
					cum += h.counts[bi].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(e.pairs, "le", formatFloat(ub)), cum)
				}
				cum += h.counts[len(h.upper)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(e.pairs, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(time.Duration(h.sum.Load()).Seconds()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, cum)
			}
		}
	}
}
